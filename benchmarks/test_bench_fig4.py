"""Regenerates Figure 4: LC tail latency under Heracles (all three LC
workloads x six BE tasks x the load axis)."""

from conftest import regenerate

from repro.analysis.tables import render_load_series_table
from repro.experiments.fig4_latency_slo import run_fig4

LOADS = (0.05, 0.20, 0.35, 0.50, 0.65, 0.80, 0.95)


def test_bench_fig4_latency_slo(benchmark):
    sweeps = regenerate(benchmark, run_fig4, loads=LOADS, duration_s=700.0)
    for name, sweep in sweeps.items():
        series = {"baseline": sweep.baseline_slo}
        for be_name in sweep.results:
            series[be_name] = sweep.worst_slo_series(be_name)
        print()
        print(render_load_series_table(
            series, sweep.loads,
            title=f"{name}: worst tail latency (fraction of SLO)"))
    # The paper's headline: no SLO violations in any colocation.
    for name, sweep in sweeps.items():
        for be_name in sweep.results:
            assert sweep.no_violations(be_name), (name, be_name)
