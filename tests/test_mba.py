"""Tests for the MBA-style DRAM bandwidth isolation extension."""

import pytest

import repro
from repro.core.mba import MbaCoreMemoryController, attach_mba_heracles
from repro.hardware.server import Server, TaskTickDemand
from repro.hardware.spec import default_machine_spec
from repro.sim.actuators import Actuators


class TestThrottleMechanism:
    def test_throttle_scales_channel_demand(self):
        server = Server(default_machine_spec())
        demand = TaskTickDemand(task="be", cores_by_socket={0: 4},
                                activity=0.5,
                                uncached_dram_gbps_by_socket={0: 40.0},
                                dram_throttle=0.5)
        server.resolve([demand])
        assert server.telemetry.total_dram_gbps == pytest.approx(20.0)

    def test_throttled_task_reads_as_starved(self):
        server = Server(default_machine_spec())
        demand = TaskTickDemand(task="be", cores_by_socket={0: 4},
                                activity=0.5,
                                uncached_dram_gbps_by_socket={0: 40.0},
                                dram_throttle=0.25)
        usages = server.resolve([demand])
        usage = usages["be"]
        assert usage.dram_demand_gbps == pytest.approx(40.0)
        assert usage.dram_achieved_gbps == pytest.approx(10.0)

    def test_throttle_validation(self):
        demand = TaskTickDemand(task="x", cores_by_socket={0: 1},
                                activity=0.5, dram_throttle=0.0)
        with pytest.raises(ValueError):
            demand.validate(default_machine_spec())

    def test_actuator_ladder(self):
        actuators = Actuators(Server(default_machine_spec()))
        assert actuators.be_dram_throttle == pytest.approx(1.0)
        actuators.lower_be_dram_throttle()
        assert actuators.be_dram_throttle == pytest.approx(0.85)
        for _ in range(50):
            actuators.lower_be_dram_throttle()
        assert actuators.be_dram_throttle == pytest.approx(0.10)
        for _ in range(50):
            actuators.raise_be_dram_throttle()
        assert actuators.be_dram_throttle == pytest.approx(1.0)

    def test_actuator_validation(self):
        actuators = Actuators(Server(default_machine_spec()))
        with pytest.raises(ValueError):
            actuators.lower_be_dram_throttle(factor=1.5)
        with pytest.raises(ValueError):
            actuators.raise_be_dram_throttle(factor=0.0)

    def test_disable_resets_throttle(self):
        actuators = Actuators(Server(default_machine_spec()))
        actuators.enable_be()
        actuators.lower_be_dram_throttle()
        actuators.disable_be()
        assert actuators.be_dram_throttle == pytest.approx(1.0)

    def test_throttle_flows_into_be_allocation(self):
        actuators = Actuators(Server(default_machine_spec()))
        actuators.enable_be()
        actuators.lower_be_dram_throttle()
        assert actuators.be_allocation().dram_throttle == pytest.approx(0.85)


class TestMbaController:
    def test_attach_builds_mba_variant(self):
        sim = repro.build_colocation("websearch", "stream-DRAM", load=0.4,
                                     seed=3)
        controller = attach_mba_heracles(sim)
        assert isinstance(controller.core_memory, MbaCoreMemoryController)

    def test_safe_against_stream_dram(self):
        sim = repro.build_colocation("websearch", "stream-DRAM", load=0.4,
                                     seed=3)
        attach_mba_heracles(sim)
        history = sim.run(700)
        assert history.worst_window_slo(skip_s=240) <= 1.0

    def test_throttles_before_removing_cores(self):
        sim = repro.build_colocation("websearch", "stream-DRAM", load=0.4,
                                     seed=3)
        attach_mba_heracles(sim)
        history = sim.run(700)
        throttles = [r for r in history.records
                     if r.be_enabled and sim.actuators.be_dram_throttle < 1.0]
        # The throttle was actually exercised at some point, or the run
        # ended throttled.
        assert throttles or sim.actuators.be_dram_throttle < 1.0

    def test_keeps_more_cores_than_core_removal(self):
        from repro.core import HeraclesController
        base_sim = repro.build_colocation("websearch", "stream-DRAM",
                                          load=0.4, seed=3)
        HeraclesController.for_sim(base_sim)
        base = base_sim.run(700)

        mba_sim = repro.build_colocation("websearch", "stream-DRAM",
                                         load=0.4, seed=3)
        attach_mba_heracles(mba_sim)
        mba = mba_sim.run(700)

        assert (mba.mean("be_cores", skip_s=300)
                >= base.mean("be_cores", skip_s=300))
        assert mba.worst_window_slo(skip_s=240) <= 1.0
