"""Performance models: queueing tails, saturation knees, interference."""

from .interference import (InterferenceSensitivity, be_throughput_efficiency,
                           network_latency_factor, service_inflation)
from .queueing import QueueModel, erlang_c, solve_service_time_ms
from .saturation import headroom_fraction, knee_penalty, soft_clip

__all__ = [
    "InterferenceSensitivity", "be_throughput_efficiency",
    "network_latency_factor", "service_inflation",
    "QueueModel", "erlang_c", "solve_service_time_ms",
    "headroom_fraction", "knee_penalty", "soft_clip",
]
