"""Experiment harness: one module per paper table/figure.

* :mod:`.fig1_interference` — the §3 characterization table.
* :mod:`.fig3_convexity` — max load under SLO vs (cores, LLC).
* :mod:`.fig4_latency_slo` — tail latency under Heracles (also the
  shared sweep for Figs. 5-7).
* :mod:`.fig5_emu` — effective machine utilization.
* :mod:`.fig6_shared_resources` — DRAM/CPU/power utilization.
* :mod:`.fig7_network_bw` — memkeyval egress bandwidth with iperf.
* :mod:`.fig8_cluster` — the 12-hour websearch cluster.
* :mod:`.tco_table` — the §5.3 TCO analysis.
"""

from .common import (CharacterizationResult, ColocationResult, baseline_cell,
                     characterization_cell, run_colocation)

__all__ = [
    "CharacterizationResult", "ColocationResult", "baseline_cell",
    "characterization_cell", "run_colocation",
]
