"""Metrics and reporting: EMU, the TCO model, and table rendering."""

from .emu import EmuSummary, cluster_emu, effective_machine_utilization
from .tables import (format_percent, render_load_series_table, render_series,
                     render_table)
from .tco import TcoModel, TcoParameters

__all__ = [
    "EmuSummary", "cluster_emu", "effective_machine_utilization",
    "format_percent", "render_load_series_table", "render_series",
    "render_table",
    "TcoModel", "TcoParameters",
]
