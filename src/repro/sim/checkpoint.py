"""Checkpoint/restore of whole simulation engines to NumPy archives.

The paper's operating regime is *long* — diurnal and week-scale load on
warehouse fleets — and before this module every what-if restarted from
``t=0`` and a crash lost the whole run.  A checkpoint snapshots one
engine's complete live state mid-run so the run can continue — in this
process, a new process, or several processes at once (warm-started
what-if branching: simulate to steady state once, fork many futures).

Snapshot format (version 1)
---------------------------

One engine checkpoint is a single uncompressed ``.npz`` archive:

``__meta__``
    UTF-8 JSON as a ``uint8`` array: ``version`` (the format version —
    loading rejects archives written by a different layout), ``kind``
    (which engine family wrote it: ``"single"``, ``"batch"``,
    ``"mega_group"`` — loading rejects a mismatch so a batch archive
    cannot silently restore where a scalar sim is expected),
    ``time_s`` (the engine clock at the snapshot), plus caller extras.

``__pickle__``
    The engine itself as a pickle blob (``uint8``).  Everything that
    makes the next tick bit-identical rides in here: physics columns
    (via :class:`~repro.metrics.columns.ColumnStore`'s pickle support,
    which trims preallocated capacity and folds spilled chunks back
    in), actuator / monitor / controller state, the chaos schedule
    cursor, and every ``np.random.default_rng`` stream's bit-generator
    state (NumPy ``Generator`` objects pickle exactly).

``array:<name>``
    Caller-provided native arrays — the fleet engines store their
    partially collected ``(T, N)`` telemetry here so a resumed run
    continues filling the same rows.

The correctness contract is the one every engine layer ships under:
run-to-T is **bit-identical** to run-to-T/2 + save + load + resume, for
every engine family, shard count, worker count, and chaos schedule
(``tests/test_checkpoint.py``, ``tests/test_scenario_fuzz.py``).

Resume arithmetic
-----------------

Engines advance a relative ``run(duration_s)`` = ``round(duration_s /
dt_s)`` ticks, accumulating ``time_s += dt_s`` as float state — so a
restored engine replays the exact time sequence by simply ticking the
*remaining step count*.  Step counts must be split in integer ticks
(:func:`checkpoint_step`), never by subtracting durations: with
``dt=1`` and halves of 1.5 s, ``round(1.5) + round(1.5) = 4`` ticks but
``round(3.0) = 3``.
"""

from __future__ import annotations

import json
import os
import pickle
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional
from zipfile import BadZipFile

import numpy as np

#: Archive layout version; bumped on any incompatible format change.
CHECKPOINT_VERSION = 1

_META_KEY = "__meta__"
_PICKLE_KEY = "__pickle__"
_ARRAY_PREFIX = "array:"


class CheckpointError(ValueError):
    """An archive that cannot be written, read, or safely restored."""


def checkpoint_step(at_s: float, duration_s: float, dt_s: float) -> int:
    """The tick count after which a ``checkpoint at at_s`` fires.

    The snapshot is taken after the engine has *completed*
    ``round(at_s / dt_s)`` ticks — the engine clock then reads ``at_s``
    — and must land strictly inside the run: at least one tick before
    it (an empty prefix checkpoints nothing) and within the total.
    """
    if dt_s <= 0:
        raise CheckpointError("dt must be positive")
    total = int(round(duration_s / dt_s))
    step = int(round(at_s / dt_s))
    if step < 1 or step > total:
        raise CheckpointError(
            f"checkpoint at t={at_s}s is tick {step} of a {total}-tick "
            f"run; it must land in [1, {total}]")
    return step


def save_engine(sim: Any, path: str, kind: str,
                arrays: Optional[Mapping[str, np.ndarray]] = None,
                extra_meta: Optional[Mapping[str, Any]] = None) -> str:
    """Write one engine's full state as a version-1 archive.

    Args:
        sim: the engine (scalar, batch, or mega group).  Must pickle —
            every shipped engine does, cyclic controller references and
            RNG streams included.
        path: archive file path (``.npz`` appended if absent, matching
            ``np.savez``); parent directories are created.
        kind: engine family tag, checked again at load time.
        arrays: native arrays stored alongside the blob (the fleet
            engines' partially collected telemetry).
        extra_meta: JSON-serializable extras merged into ``__meta__``.

    Returns the path actually written.
    """
    meta: Dict[str, Any] = {
        "version": CHECKPOINT_VERSION,
        "kind": str(kind),
        "time_s": float(getattr(sim, "time_s", 0.0)),
    }
    if extra_meta:
        overlap = set(extra_meta) & set(meta)
        if overlap:
            raise CheckpointError(
                f"extra_meta may not override {sorted(overlap)}")
        meta.update(extra_meta)
    payload = {
        _META_KEY: np.frombuffer(
            json.dumps(meta, sort_keys=True).encode("utf-8"),
            dtype=np.uint8),
        _PICKLE_KEY: np.frombuffer(
            pickle.dumps(sim, protocol=pickle.HIGHEST_PROTOCOL),
            dtype=np.uint8),
    }
    for name, array in (arrays or {}).items():
        payload[_ARRAY_PREFIX + name] = np.ascontiguousarray(array)
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    if not path.endswith(".npz"):
        path += ".npz"
    np.savez(path, **payload)
    return path


@dataclass
class EngineCheckpoint:
    """One restored engine plus everything saved alongside it."""

    sim: Any
    meta: Dict[str, Any]
    arrays: Dict[str, np.ndarray]

    @property
    def time_s(self) -> float:
        """The engine clock at the moment of the snapshot."""
        return float(self.meta["time_s"])


def trace_checkpoint_save(sink: Any, t_s: float, steps_done: int) -> None:
    """Emit one run-scoped ``save`` event into a decision-trace sink.

    Called with the sink that owns the run's trace (a fleet-level sink
    for fleet snapshots, the engine's own for member scenarios) *before*
    the archive is written, so a sink pickled inside the archive already
    carries the event and a resumed run replays it identically.
    ``member`` is ``-1`` (run-scoped, not tied to any leaf); ``a`` is
    the completed tick count the snapshot holds.  No-op when ``sink``
    is ``None`` (tracing disabled).
    """
    if sink is not None:
        sink.emit(float(t_s), -1, "checkpoint", "save",
                  a=float(steps_done))


def _reconcile_obs(sim: Any) -> None:
    """Align a restored engine's observability hooks with this process.

    A checkpoint pickles whatever sink/profiler the saving run had.
    The resuming process's environment decides what *this* run records:
    tracing off here detaches a pickled sink (and its replayed events);
    tracing on here attaches a fresh sink to an archive saved without
    one (the trace then covers only the resumed ticks — full-run trace
    equality needs tracing on in both runs).  Engines predating the
    observability layer restore untouched via the class-attr defaults.
    """
    from ..obs.profile import make_profiler, profile_enabled
    from ..obs.trace import make_sink, trace_enabled
    if not trace_enabled():
        sim._obs_trace = None
    elif getattr(sim, "_obs_trace", None) is None:
        sim._obs_trace = make_sink()
    if not profile_enabled():
        sim._obs_prof = None
    elif getattr(sim, "_obs_prof", None) is None:
        sim._obs_prof = make_profiler()


def load_engine(path: str,
                expect_kind: Optional[str] = None) -> EngineCheckpoint:
    """Restore an engine archive written by :func:`save_engine`.

    Validates the format version and (when ``expect_kind`` is given)
    the engine family before unpickling, so a wrong file fails with a
    message naming the mismatch instead of an attribute error three
    layers into the resumed run.  The restored engine's observability
    hooks are reconciled with this process's ``REPRO_TRACE`` /
    ``REPRO_PROFILE`` environment (see :func:`_reconcile_obs`).
    """
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        path += ".npz"
    try:
        with np.load(path) as archive:
            if _META_KEY not in archive or _PICKLE_KEY not in archive:
                raise CheckpointError(
                    f"{path}: not an engine checkpoint (missing "
                    f"{_META_KEY}/{_PICKLE_KEY})")
            meta = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
            blob = bytes(archive[_PICKLE_KEY])
            arrays = {
                name[len(_ARRAY_PREFIX):]: np.array(archive[name])
                for name in archive.files
                if name.startswith(_ARRAY_PREFIX)
            }
    except (OSError, BadZipFile) as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}")
    version = meta.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path}: checkpoint version {version!r}, this build reads "
            f"version {CHECKPOINT_VERSION}")
    kind = meta.get("kind")
    if expect_kind is not None and kind != expect_kind:
        raise CheckpointError(
            f"{path}: holds a {kind!r} engine, expected {expect_kind!r}")
    sim = pickle.loads(blob)
    _reconcile_obs(sim)
    return EngineCheckpoint(sim=sim, meta=meta, arrays=arrays)


def run_ticks(sim: Any, steps: int, dt_s: float) -> None:
    """Advance an engine by an exact tick count.

    The resume primitive for the scalar and batch engines: segment
    boundaries are expressed in ticks, so save-at-T/2 + resume replays
    the very same tick sequence a straight run executes.
    """
    for _ in range(steps):
        sim.tick(dt_s)


def completed_steps(sim: Any, dt_s: float) -> int:
    """Ticks an engine has already executed, from its clock.

    ``time_s`` accumulates ``dt_s`` per tick, so the completed count is
    its rounded quotient — exact for any float-accumulation drift far
    below half a tick (a week at ``dt=1`` drifts by microseconds).
    """
    if dt_s <= 0:
        raise CheckpointError("dt must be positive")
    return int(round(float(sim.time_s) / dt_s))
