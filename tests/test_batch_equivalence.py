"""Batched-backend equivalence: BatchColocationSim(N=1) vs ColocationSim.

The batch backend promises to be a numerical replica of the scalar
engine, not an approximation: same formulas, same operation ordering,
same per-server seeded noise streams.  These tests enforce the promise
tick-for-tick across the three controller regimes the cluster and the
figures exercise — managed (Heracles), static partitioning, and no BE
at all — plus a mixed heterogeneous batch where every member must match
its scalar twin simultaneously.
"""

import numpy as np
import pytest

from repro.baselines.static import conservative_static, optimistic_static
from repro.core.controller import HeraclesController
from repro.hardware.spec import default_machine_spec
from repro.sim.batch import BatchColocationSim
from repro.sim.engine import ColocationSim
from repro.workloads.best_effort import make_be_workload
from repro.workloads.latency_critical import make_lc_workload
from repro.workloads.traces import ConstantLoad, DiurnalTrace

FLOAT_FIELDS = (
    "t_s", "load", "tail_latency_ms", "slo_fraction", "be_throughput_norm",
    "emu", "dram_bw_gbps", "dram_utilization", "cpu_utilization",
    "power_fraction_of_tdp", "lc_net_gbps", "be_net_gbps",
    "link_utilization",
)
EXACT_FIELDS = ("be_cores", "be_llc_ways", "be_enabled", "be_dvfs_cap_ghz",
                "be_net_ceil_gbps")


def make_trace(seed=5):
    """A wiggly trace that sweeps the controller through its regimes."""
    return DiurnalTrace(low=0.15, high=0.90, period_s=600.0,
                        noise_sigma=0.03, seed=seed)


def assert_histories_match(scalar_history, batch_history, rtol=1e-9):
    assert len(scalar_history) == len(batch_history)
    for name in FLOAT_FIELDS:
        a = scalar_history.column(name)
        b = batch_history.column(name)
        np.testing.assert_allclose(
            a, b, rtol=rtol, atol=1e-12,
            err_msg=f"TickRecord field {name!r} diverged")
    for name in EXACT_FIELDS:
        a = [getattr(r, name) for r in scalar_history.records]
        b = [getattr(r, name) for r in batch_history.records]
        assert a == b, f"TickRecord field {name!r} diverged"


def scalar_run(lc_name, be_name, trace, seed, controller_factory,
               duration_s):
    spec = default_machine_spec()
    lc = make_lc_workload(lc_name, spec)
    be = make_be_workload(be_name, spec) if be_name else None
    sim = ColocationSim(lc=lc, trace=trace, be=be, spec=spec, seed=seed)
    if controller_factory is not None:
        controller_factory(sim)
    sim.run(duration_s)
    return sim.history


def batch_run(lc_name, be_name, trace, seed, controller_factory,
              duration_s):
    spec = default_machine_spec()
    lc = make_lc_workload(lc_name, spec)
    be = make_be_workload(be_name, spec) if be_name else None
    batch = BatchColocationSim(lc=lc, trace=trace, bes=be, spec=spec,
                               seeds=[seed])
    if controller_factory is not None:
        controller_factory(batch.members[0])
    batch.run(duration_s)
    return batch.members[0].history


class TestSingleServerEquivalence:
    DURATION = 420.0

    def test_managed_heracles(self):
        factory = HeraclesController.for_sim
        a = scalar_run("websearch", "brain", make_trace(), 11, factory,
                       self.DURATION)
        b = batch_run("websearch", "brain", make_trace(), 11, factory,
                      self.DURATION)
        assert_histories_match(a, b)

    def test_static_partitioning(self):
        def factory(sim):
            sim.attach_controller(optimistic_static(sim.actuators))

        a = scalar_run("websearch", "streetview", make_trace(3), 4, factory,
                       self.DURATION)
        b = batch_run("websearch", "streetview", make_trace(3), 4, factory,
                      self.DURATION)
        assert_histories_match(a, b)

    def test_conservative_static(self):
        def factory(sim):
            sim.attach_controller(conservative_static(sim.actuators))

        a = scalar_run("ml_cluster", "stream-DRAM", make_trace(9), 2,
                       factory, self.DURATION)
        b = batch_run("ml_cluster", "stream-DRAM", make_trace(9), 2,
                      factory, self.DURATION)
        assert_histories_match(a, b)

    def test_no_be(self):
        a = scalar_run("websearch", None, make_trace(7), 5, None,
                       self.DURATION)
        b = batch_run("websearch", None, make_trace(7), 5, None,
                      self.DURATION)
        assert_histories_match(a, b)

    def test_memkeyval_network_bound(self):
        """iperf drives the egress max-min and net-latency paths."""
        factory = HeraclesController.for_sim
        a = scalar_run("memkeyval", "iperf", make_trace(13), 8, factory,
                       self.DURATION)
        b = batch_run("memkeyval", "iperf", make_trace(13), 8, factory,
                      self.DURATION)
        assert_histories_match(a, b)


#: One full-lifecycle event schedule per chaos action, shared with the
#: dt-invariance suite (event times sit on the coarsest tick grid).
CHAOS_EVENT_SETS = {
    "leaf_crash": ((50.0, "leaf_crash", None), (120.0, "leaf_restart", None)),
    "straggler": ((40.0, "straggler", 0.55), (150.0, "straggler", 1.0)),
    "power_cap": ((30.0, "power_cap", 0.6), (140.0, "power_cap", 1.0)),
    "partition": ((60.0, "partition", 45.0),),
    "actuator": ((20.0, "disable_be", None), (80.0, "enable_be", None),
                 (100.0, "set_be_cores", 2), (130.0, "set_llc_split", 3),
                 (160.0, "set_be_net_ceil", 2.5)),
}


def chaos_events(action):
    from repro.sim.chaos import ChaosEvent
    return [ChaosEvent(at_s, name, value)
            for at_s, name, value in CHAOS_EVENT_SETS[action]]


class TestChaosEquivalence:
    """Chaos actions under the scalar-vs-batch equivalence contract.

    Every engine-level fault action — crash/restart, straggler, power
    cap, partition, and the legacy actuator pokes — must degrade the
    batched member exactly as it degrades the scalar engine, through a
    Heracles controller reacting to the fault in both.
    """

    DURATION = 220.0

    @pytest.mark.parametrize("action", sorted(CHAOS_EVENT_SETS))
    def test_action_matches_scalar(self, action):
        events = chaos_events(action)

        def factory(events):
            def attach(sim):
                HeraclesController.for_sim(sim)
                # Target member 0 explicitly on the batch engine; the
                # scalar engine only accepts whole-membership targets.
                owner = getattr(sim, "batch", sim)
                if owner is sim:
                    owner.set_chaos_events(events)
                else:
                    owner.set_chaos_events(
                        [e.retarget((0,)) for e in events])
            return attach

        a = scalar_run("websearch", "brain", make_trace(), 11,
                       factory(events), self.DURATION)
        b = batch_run("websearch", "brain", make_trace(), 11,
                      factory(events), self.DURATION)
        assert_histories_match(a, b)

    @pytest.mark.parametrize("action", sorted(CHAOS_EVENT_SETS))
    def test_action_changes_the_run(self, action):
        """Every schedule must observably perturb the history (guards
        against events silently never firing)."""
        plain = scalar_run("websearch", "brain", make_trace(), 11,
                           HeraclesController.for_sim, self.DURATION)

        def attach(sim):
            HeraclesController.for_sim(sim)
            sim.set_chaos_events(chaos_events(action))

        chaos = scalar_run("websearch", "brain", make_trace(), 11,
                           attach, self.DURATION)
        a = np.asarray(plain.column("tail_latency_ms"))
        b = np.asarray(chaos.column("tail_latency_ms"))
        assert not np.array_equal(a, b), (
            f"chaos[{action}] left the run untouched")

    def test_untargeted_member_is_bit_identical(self):
        """A chaos schedule aimed at member 0 must leave member 1's
        history bitwise equal to a chaos-free twin (the x1.0-identity
        contract for healthy members)."""
        from repro.sim.chaos import ChaosEvent
        spec = default_machine_spec()

        def run(with_chaos):
            lc = make_lc_workload("websearch", spec)
            bes = [make_be_workload("brain", spec),
                   make_be_workload("streetview", spec)]
            batch = BatchColocationSim(lc=lc, trace=make_trace(17),
                                       bes=bes, spec=spec, seeds=[41, 42])
            for member in batch.members:
                HeraclesController.for_sim(member)
            if with_chaos:
                batch.set_chaos_events(
                    [ChaosEvent(30.0, "leaf_crash", members=(0,)),
                     ChaosEvent(70.0, "straggler", 0.5, members=(0,)),
                     ChaosEvent(110.0, "leaf_restart", members=(0,))])
            batch.run(180.0)
            return batch

        plain, chaos = run(False), run(True)
        for name in FLOAT_FIELDS:
            a = np.asarray(plain.members[1].history.column(name))
            b = np.asarray(chaos.members[1].history.column(name))
            assert np.array_equal(a, b, equal_nan=True), (
                f"member 1 field {name!r} perturbed by member 0's chaos")
        # ... while member 0 itself was visibly degraded.
        a = np.asarray(plain.members[0].history.column("tail_latency_ms"))
        b = np.asarray(chaos.members[0].history.column("tail_latency_ms"))
        assert not np.array_equal(a, b)

    def test_rejects_bad_targets_and_values(self):
        from repro.sim.chaos import ChaosEvent
        spec = default_machine_spec()
        lc = make_lc_workload("websearch", spec)
        batch = BatchColocationSim(lc=lc, trace=ConstantLoad(0.5),
                                   bes=make_be_workload("brain", spec),
                                   spec=spec, seeds=[1, 2])
        with pytest.raises(ValueError, match="member"):
            batch.set_chaos_events(
                [ChaosEvent(10.0, "leaf_crash", members=(5,))])
        with pytest.raises(ValueError, match="value"):
            batch.set_chaos_events([ChaosEvent(10.0, "straggler")])
        sim = ColocationSim(lc=make_lc_workload("websearch", spec),
                            trace=ConstantLoad(0.5), spec=spec, seed=1)
        with pytest.raises(ValueError, match="member"):
            sim.set_chaos_events(
                [ChaosEvent(10.0, "leaf_crash", members=(1,))])


class TestHeterogeneousBatch:
    def test_mixed_members_match_scalar_twins(self):
        """brain + streetview + no-BE members in one batch, all exact."""
        spec = default_machine_spec()
        lc = make_lc_workload("websearch", spec)
        trace = make_trace(21)
        bes = [make_be_workload("brain", spec),
               make_be_workload("streetview", spec),
               None]
        seeds = [31, 32, 33]
        batch = BatchColocationSim(lc=lc, trace=trace, bes=bes, spec=spec,
                                   seeds=seeds)
        for member in batch.members[:2]:
            HeraclesController.for_sim(member)
        batch.run(240.0)

        for i, (be, seed) in enumerate(zip(bes, seeds)):
            sim = ColocationSim(lc=make_lc_workload("websearch", spec),
                                trace=make_trace(21), be=be, spec=spec,
                                seed=seed)
            if be is not None:
                HeraclesController.for_sim(sim)
            sim.run(240.0)
            assert_histories_match(sim.history, batch.members[i].history)

    def test_batch_history_columns(self):
        spec = default_machine_spec()
        lc = make_lc_workload("websearch", spec)
        batch = BatchColocationSim(lc=lc, trace=ConstantLoad(0.5),
                                   bes=make_be_workload("brain", spec),
                                   spec=spec, seeds=[1, 2])
        batch.run(30.0)
        col = batch.history.column("tail_latency_ms")
        assert col.shape == (30, 2)
        assert (col > 0).all()
        assert len(batch.history.times()) == 30

    def test_member_counter_view_tracks_resolution(self):
        spec = default_machine_spec()
        lc = make_lc_workload("websearch", spec)
        batch = BatchColocationSim(lc=lc, trace=ConstantLoad(0.6),
                                   bes=make_be_workload("brain", spec),
                                   spec=spec, seeds=[0])
        member = batch.members[0]
        HeraclesController.for_sim(member)
        batch.run(20.0)
        record = member.history.last()
        counters = member.counters
        assert counters.dram_total_bw_gbps() == pytest.approx(
            record.dram_bw_gbps)
        assert counters.freq_of("websearch") > 0
        assert counters.tx_gbps_of("websearch") == pytest.approx(
            record.lc_net_gbps)
        assert counters.link_rate_gbps() == spec.nic.link_gbps
        assert 0 < counters.max_power_fraction_of_tdp() <= 1.5

    def test_seed_validation_and_shapes(self):
        spec = default_machine_spec()
        lc = make_lc_workload("websearch", spec)
        with pytest.raises(ValueError):
            BatchColocationSim(lc=lc, trace=ConstantLoad(0.5),
                               bes=[None, None], spec=spec, seeds=[1])
        with pytest.raises(ValueError):
            BatchColocationSim(lc=lc, trace=ConstantLoad(0.5),
                               spec=spec).tick(0.0)
