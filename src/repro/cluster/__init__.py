"""Websearch fan-out cluster for the §5.3 evaluation."""

from .cluster import (ClusterHistory, ClusterRecord, WebsearchCluster,
                      run_cluster_arm)
from .coordinator import ClusterCoordinator, CoordinatedWebsearchCluster
from .leaf import Leaf, LeafConfig
from .root import RootAggregator, RootSample

__all__ = [
    "ClusterHistory", "ClusterRecord", "WebsearchCluster",
    "run_cluster_arm",
    "ClusterCoordinator", "CoordinatedWebsearchCluster",
    "Leaf", "LeafConfig",
    "RootAggregator", "RootSample",
]
