"""Tests for repro.workloads.best_effort and antagonists."""

import pytest

from repro.hardware.server import Server
from repro.hardware.spec import default_machine_spec
from repro.workloads.antagonists import (Placement, antagonist_by_label,
                                         figure1_antagonists, make_antagonist)
from repro.workloads.base import Allocation, spread_cores
from repro.workloads.best_effort import (BE_PROFILES, BestEffortWorkload,
                                         BeWorkloadProfile, make_be_workload,
                                         reference_throughput_units)


@pytest.fixture(scope="module")
def spec():
    return default_machine_spec()


class TestProfiles:
    def test_all_paper_tasks_present(self):
        assert set(BE_PROFILES) == {"brain", "streetview", "stream-LLC",
                                    "stream-DRAM", "cpu_pwr", "iperf"}

    def test_brain_is_compute_and_cache_hungry(self):
        brain = BE_PROFILES["brain"]
        assert brain.activity > 0.8
        assert brain.cache_benefit > 0.2

    def test_streetview_is_dram_heavy(self):
        sv = BE_PROFILES["streetview"]
        assert sv.uncached_dram_gbps_per_core >= 2.0
        assert sv.mem_bound_fraction >= 0.5

    def test_cpu_pwr_is_a_power_virus(self):
        virus = BE_PROFILES["cpu_pwr"]
        assert virus.activity == pytest.approx(1.0)
        assert virus.power_weight > 1.5

    def test_iperf_saturates_link(self, spec):
        iperf = BE_PROFILES["iperf"]
        assert iperf.net_demand_gbps >= spec.nic.link_gbps
        assert iperf.net_flows > 100  # many mice flows

    def test_stream_llc_sized_to_half_llc(self, spec):
        assert BE_PROFILES["stream-LLC"].bulk_mb == pytest.approx(
            0.5 * spec.total_llc_mb)

    def test_stream_dram_never_fits(self, spec):
        assert BE_PROFILES["stream-DRAM"].bulk_mb > 10 * spec.total_llc_mb

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            make_be_workload("nope")

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            BeWorkloadProfile(name="x", activity=2.0).validate()
        with pytest.raises(ValueError):
            BeWorkloadProfile(name="x", activity=1.0,
                              power_weight=5.0).validate()
        with pytest.raises(ValueError):
            BeWorkloadProfile(name="x", activity=0.5,
                              bulk_mb=-1.0).validate()


class TestDemand:
    def test_elastic_cores(self, spec):
        be = make_be_workload("brain", spec)
        demand = be.demand(Allocation(cores_by_socket={0: 4, 1: 4}))
        assert demand.total_cores() == 8
        assert demand.activity > 1.0  # brain's power weight

    def test_no_cores_no_network(self, spec):
        be = make_be_workload("iperf", spec)
        demand = be.demand(Allocation(cores_by_socket={}))
        assert demand.net_demand_gbps == 0.0

    def test_dram_scales_with_cores(self, spec):
        be = make_be_workload("streetview", spec)
        small = be.demand(Allocation(cores_by_socket={0: 2}))
        large = be.demand(Allocation(cores_by_socket={0: 8}))
        assert (sum(large.uncached_dram_gbps_by_socket.values())
                == pytest.approx(
                    4 * sum(small.uncached_dram_gbps_by_socket.values())))


class TestThroughput:
    def test_zero_without_cores(self, spec):
        be = make_be_workload("brain", spec)
        server = Server(spec)
        alloc = Allocation(cores_by_socket={0: 4})
        usages = server.resolve([be.demand(alloc)])
        import dataclasses
        no_cores = dataclasses.replace(usages["brain"], cores=0)
        assert be.throughput_units(no_cores) == 0.0

    def test_scales_with_cores_when_unconstrained(self, spec):
        be = make_be_workload("cpu_pwr", spec)
        server = Server(spec)
        u4 = server.resolve([be.demand(
            Allocation(cores_by_socket={0: 2, 1: 2}))])["cpu_pwr"]
        server2 = Server(spec)
        u8 = server2.resolve([be.demand(
            Allocation(cores_by_socket={0: 4, 1: 4}))])["cpu_pwr"]
        ratio = be.throughput_units(u8) / be.throughput_units(u4)
        assert 1.6 < ratio <= 2.1

    def test_reference_throughput_positive(self, spec):
        for name in BE_PROFILES:
            be = make_be_workload(name, spec)
            assert reference_throughput_units(be) > 0

    def test_dram_bound_reference_is_starved(self, spec):
        # stream-DRAM alone on the whole machine oversubscribes DRAM, so
        # its per-core efficiency at full allocation is well below 1.
        be = make_be_workload("stream-DRAM", spec)
        reference = reference_throughput_units(be)
        assert reference < 0.8 * spec.total_cores

    def test_network_bound_throughput(self, spec):
        be = make_be_workload("iperf", spec)
        server = Server(spec)
        alloc = Allocation(cores_by_socket={0: 2}, net_ceil_gbps=1.0)
        usages = server.resolve([be.demand(alloc)])
        capped = be.throughput_units(usages["iperf"])
        server2 = Server(spec)
        alloc2 = Allocation(cores_by_socket={0: 2})
        usages2 = server2.resolve([be.demand(alloc2)])
        uncapped = be.throughput_units(usages2["iperf"])
        assert capped < 0.2 * uncapped


class TestAntagonists:
    def test_eight_rows(self, spec):
        rows = figure1_antagonists(spec)
        assert len(rows) == 8
        labels = [r.label for r in rows]
        assert labels == ["LLC (small)", "LLC (med)", "LLC (big)", "DRAM",
                          "HyperThread", "CPU power", "Network", "brain"]

    def test_llc_footprints_ordered(self, spec):
        rows = {r.label: r for r in figure1_antagonists(spec)}
        assert (rows["LLC (small)"].profile.bulk_mb
                < rows["LLC (med)"].profile.bulk_mb
                < rows["LLC (big)"].profile.bulk_mb)
        assert rows["LLC (small)"].profile.bulk_mb == pytest.approx(
            0.25 * spec.total_llc_mb)

    def test_placements(self, spec):
        rows = {r.label: r for r in figure1_antagonists(spec)}
        assert rows["HyperThread"].placement is Placement.SIBLING_THREADS
        assert rows["Network"].placement is Placement.ONE_CORE
        assert rows["brain"].placement is Placement.SHARED_CORES
        assert rows["DRAM"].placement is Placement.REMAINING_CORES

    def test_spinloop_touches_no_memory(self, spec):
        row = antagonist_by_label("HyperThread", spec)
        assert row.profile.access_gbps_per_core == 0.0
        assert row.profile.bulk_mb == 0.0

    def test_lookup_by_label(self, spec):
        assert antagonist_by_label("DRAM", spec).label == "DRAM"
        with pytest.raises(KeyError):
            antagonist_by_label("nope", spec)

    def test_make_antagonist(self, spec):
        row = antagonist_by_label("CPU power", spec)
        workload = make_antagonist(row, spec)
        assert isinstance(workload, BestEffortWorkload)
        assert workload.profile.power_weight > 1.5
