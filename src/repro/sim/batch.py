"""Batched multi-server simulation backend.

:class:`BatchColocationSim` advances N homogeneous-hardware servers —
each hosting one LC workload and (optionally) one BE task group — in a
single vectorized step per tick.  The contention physics that
:class:`~repro.sim.engine.ColocationSim` resolves object-by-object
(power/frequency equilibrium, CAT cache occupancy, DRAM channel
sharing, egress max-min fairness, M/M/k tail latency) is expressed here
as NumPy array math over all servers at once, following the
resource-model philosophy of summing costs analytically instead of
event-stepping them.

Equivalence contract
--------------------

The batch backend is a *drop-in numerical replica* of the scalar
engine, not an approximation: every formula is evaluated with the same
operation ordering the scalar code uses (the same left-associated
products, the same 40-iteration power bisection, the same Erlang-B
recurrence), and tail-latency noise is drawn from one independently
seeded :class:`numpy.random.Generator` per server, in server order —
so a batch of N servers produces tick-for-tick the same
:class:`~repro.sim.engine.TickRecord` stream as N scalar
``ColocationSim`` instances with the same seeds.  The equivalence is
enforced by ``tests/test_batch_equivalence.py`` and by the cluster
benchmark (``benchmarks/test_bench_batch.py``).

Controllers are *not* vectorized: each member server keeps a real
:class:`~repro.sim.actuators.Actuators`, latency/throughput monitors,
and (optionally) a real :class:`~repro.core.controller.
HeraclesController` — attached with the unmodified
``HeraclesController.for_sim`` — observing the batch-resolved state
through a :class:`CounterBank`-compatible view.  Controller logic is a
few comparisons per server per period; the physics was the hot path,
and it is the part that vectorizes.

Typical use::

    from repro.sim.batch import BatchColocationSim
    from repro.core.controller import HeraclesController

    batch = BatchColocationSim(lc=lc, trace=trace, bes=[be] * 16,
                               spec=spec, seeds=range(16))
    for m in batch.members:
        HeraclesController.for_sim(m, dram_model=shared_model)
    batch.run(3600.0)
"""

from __future__ import annotations

from dataclasses import dataclass, replace as _dc_replace
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..hardware.cache import CatController
from ..hardware.counters import CounterBank
from ..hardware.server import Server
from ..hardware.spec import MachineSpec
from ..metrics.columns import BatchColumnStore
from ..metrics.history import BatchMemberSeries
from ..obs.profile import make_profiler
from ..obs.trace import make_sink
from ..workloads.best_effort import (BestEffortWorkload,
                                     reference_throughput_units)
from ..workloads.latency_critical import LatencyCriticalWorkload
from ..workloads.traces import LoadTrace
from .actuators import BE_COS, Actuators
from .chaos import PARTITION_TAIL_SLO_MULT, sort_events, trace_chaos_event
from .engine import Controller, SimHistory, TickRecord, TickSeriesMixin
from .monitors import LatencyMonitor, ThroughputMonitor


class BatchCounterView(CounterBank):
    """Per-member :class:`CounterBank` backed by the batch tick arrays.

    Controllers read hardware telemetry through this view exactly as
    they would through a scalar server's counter bank; every override
    returns the batch-resolved value for this member's server.
    """

    def __init__(self, batch: "BatchColocationSim", index: int,
                 server: Server):
        super().__init__(server)
        self._batch = batch
        self._i = index

    # -- DRAM ----------------------------------------------------------

    def dram_total_bw_gbps(self) -> float:
        """Total achieved DRAM bandwidth across sockets (GB/s)."""
        return float(self._batch._tick["dram_total_gbps"][self._i])

    def dram_utilization(self) -> float:
        """Worst per-socket DRAM channel utilization, in [0, 1]."""
        return float(self._batch._tick["dram_max_util"][self._i])

    def worst_socket_dram_bw_gbps(self) -> float:
        """Achieved DRAM bandwidth of the busiest socket (GB/s)."""
        return float(self._batch._tick["worst_socket_dram_gbps"][self._i])

    def dram_bw_of(self, task: str) -> float:
        """Achieved DRAM bandwidth of one task by name (GB/s)."""
        batch, i = self._batch, self._i
        if task == batch.members[i].lc.name:
            return float(batch._tick["lc_dram_ach"][i])
        be = batch.members[i].be
        if be is not None and task == be.name:
            if batch._tick["be_running"][i]:
                return float(batch._tick["be_dram_ach"][i])
        return 0.0

    def per_task_dram_gbps(self) -> Dict[str, float]:
        """Achieved DRAM bandwidth of every running task (GB/s)."""
        batch, i = self._batch, self._i
        out = {batch.members[i].lc.name: float(batch._tick["lc_dram_ach"][i])}
        be = batch.members[i].be
        if be is not None and batch._tick["be_running"][i]:
            out[be.name] = float(batch._tick["be_dram_ach"][i])
        return out

    # -- Power / frequency ----------------------------------------------

    def socket_power_watts(self, socket: int) -> float:
        """RAPL-smoothed package power of one socket (W)."""
        return float(self._batch._rapl_watts[self._i, socket])

    def power_fraction_of_tdp(self, socket: int) -> float:
        """One socket's RAPL power as a fraction of its TDP."""
        return (self._batch._rapl_watts[self._i, socket]
                / self._server.spec.socket.tdp_watts)

    def max_power_fraction_of_tdp(self) -> float:
        """The hottest socket's power as a fraction of TDP."""
        return float(max(
            self.power_fraction_of_tdp(s)
            for s in range(self._server.spec.sockets)))

    def freq_of(self, task: str) -> Optional[float]:
        """Core-weighted achieved frequency of a task (GHz), if running."""
        batch, i = self._batch, self._i
        if task == batch.members[i].lc.name:
            return float(batch._tick["lc_freq_ghz"][i])
        be = batch.members[i].be
        if be is not None and task == be.name:
            if batch._tick["be_running"][i]:
                return float(batch._tick["be_freq_ghz"][i])
        return None

    # -- Network ---------------------------------------------------------

    def tx_gbps_of(self, task: str) -> float:
        """Achieved egress bandwidth of one task by name (Gb/s)."""
        batch, i = self._batch, self._i
        if task == batch.members[i].lc.name:
            # Plain-float list view: the network subcontroller polls
            # this every simulated second on every member.
            return batch._lc_net_of(i)
        be = batch.members[i].be
        if be is not None and task == be.name:
            if batch._tick["be_running"][i]:
                return float(batch._tick["be_net_ach"][i])
        return 0.0

    def link_tx_gbps(self) -> float:
        """Total achieved egress on the NIC link (Gb/s)."""
        return float(self._batch._tick["link_tx_gbps"][self._i])

    # -- CPU -------------------------------------------------------------

    def cpu_utilization(self) -> float:
        """Fraction of physical cores in use, in [0, 1]."""
        return float(self._batch._tick["cpu_utilization"][self._i])


class _PassiveCat(CatController):
    """CAT mirror for batch members: state without re-validation.

    The batch physics reads partition sizes straight from the
    actuators, so the member server's CAT controllers only mirror
    state for introspection.  :class:`Actuators` clamps every split to
    a valid configuration before writing (LC + BE ways always sum to
    the cache), which makes the scalar ``set_partition`` overflow check
    pure per-tick overhead on the controllers' LLC-probe hot path.
    """

    def set_partition(self, cos: str, ways: int) -> None:
        """Record the partition size for ``cos`` without validation."""
        if ways == 0:
            self._classes.pop(cos, None)
        else:
            self._classes[cos] = ways


class BatchMember:
    """One server of a batch, presented with the scalar-sim surface.

    Exposes exactly the attributes :meth:`HeraclesController.for_sim`
    and the baseline controller factories consume — ``lc``, ``be``,
    ``actuators``, ``counters``, ``latency_monitor``, ``be_monitor``,
    ``history``, ``rng`` — so any controller written against
    :class:`~repro.sim.engine.ColocationSim` attaches unchanged.
    """

    def __init__(self, batch: "BatchColocationSim", index: int,
                 lc: LatencyCriticalWorkload, trace: LoadTrace,
                 be: Optional[BestEffortWorkload], seed: int,
                 min_lc_cores: int):
        self.batch = batch
        self.index = index
        self.lc = lc
        self.be = be
        self.trace = trace
        self.server = Server(batch.spec)
        self.server.cat = {
            s: _PassiveCat(batch.spec.socket.llc_mb,
                           batch.spec.socket.llc_ways)
            for s in range(batch.spec.sockets)
        }
        self.counters = BatchCounterView(batch, index, self.server)
        self.actuators = Actuators(self.server, min_lc_cores=min_lc_cores)
        self.latency_monitor = LatencyMonitor()
        self.rng = np.random.default_rng(seed)
        if batch.record_history:
            # Zero-copy member slice of the batch's (T, N) columns.
            self.history = BatchMemberHistory(batch._store, index)
        else:
            # The scalar format stays available (and simply empty), as
            # it was when the batch skipped per-member recording.
            self.history = SimHistory()
        self.controller: Optional[Controller] = None
        if be is not None:
            reference = reference_throughput_units(be)
            self.be_monitor: Optional[ThroughputMonitor] = ThroughputMonitor(
                reference)
        else:
            self.be_monitor = None

    @property
    def time_s(self) -> float:
        """The batch clock (shared by every member)."""
        return self.batch.time_s

    @property
    def spec(self) -> MachineSpec:
        """The batch's (homogeneous) machine description."""
        return self.batch.spec

    def attach_controller(self, controller: Controller) -> None:
        """Install the member's per-tick controller."""
        self.controller = controller

    @property
    def last_tail_ms(self) -> float:
        """This member's tail latency at the latest tick (ms)."""
        return float(self.batch._tick["tail_ms"][self.index])

    @property
    def last_emu(self) -> float:
        """This member's EMU at the latest tick."""
        return float(self.batch._tick["emu"][self.index])


@dataclass
class BatchTickResult:
    """Per-tick observables for every member, as arrays of shape (N,)."""

    t_s: float
    load: np.ndarray
    tail_latency_ms: np.ndarray
    slo_fraction: np.ndarray
    be_throughput_norm: np.ndarray
    emu: np.ndarray
    be_running: np.ndarray


class BatchMemberHistory(TickSeriesMixin, BatchMemberSeries):
    """One member's scalar-history view of the shared batch store.

    Presents the exact :class:`~repro.sim.engine.SimHistory` surface —
    ``records``, ``last()``, ``column()``, the windowed metrics — as a
    zero-copy slice of the batch's (T, N) columns, so the equivalence
    contract ("a batch member's history matches its scalar twin
    tick-for-tick") is checkable without materializing N dataclasses
    per tick.
    """

    RECORD_TYPE = TickRecord
    INT_FIELDS = SimHistory.INT_FIELDS
    BOOL_FIELDS = SimHistory.BOOL_FIELDS
    OPTIONAL_FIELDS = SimHistory.OPTIONAL_FIELDS


class BatchHistory:
    """Column-oriented record of a whole batched run.

    Rows are ticks, columns are members: every observable is a (T, N)
    member-major array inside one :class:`~repro.metrics.columns.
    BatchColumnStore` (timestamps are stored once — all members share
    the batch clock), so the cluster and sweep layers aggregate with
    array math and never materialize a ``TickRecord`` per
    (tick, server).

    A standalone ``BatchHistory()`` (as the public :meth:`append` API
    expects) records the compact observable set of
    :class:`BatchTickResult`; the batched engine instead hands its
    history a store that may carry the full ``TickRecord`` field set,
    shared zero-copy with the per-member
    :class:`BatchMemberHistory` views.
    """

    _FIELDS = ("load", "tail_latency_ms", "slo_fraction",
               "be_throughput_norm", "emu")

    def __init__(self, n: Optional[int] = None,
                 store: Optional[BatchColumnStore] = None):
        self._n = n
        self._store = store

    @property
    def store(self) -> Optional[BatchColumnStore]:
        """The backing store (None until the first append sizes it)."""
        return self._store

    def _ensure_store(self, n: int) -> BatchColumnStore:
        """Create the compact store on first use (N known at append)."""
        if self._store is None:
            fields = [("t_s", np.float64)]
            fields += [(name, np.float64) for name in self._FIELDS]
            self._store = BatchColumnStore(fields, n=n, shared=("t_s",))
        return self._store

    def append(self, result: BatchTickResult) -> None:
        """Record one tick's member-wide observable arrays.

        On an engine-owned history whose store carries the full
        ``TickRecord`` field set, the fields a :class:`BatchTickResult`
        does not provide are recorded as absent (NaN for float columns,
        zero/False for counts and flags) rather than rejected — the
        compact append API keeps working against either layout.
        """
        store = self._ensure_store(self._n or len(result.load))
        row = {name: getattr(result, name) for name in self._FIELDS}
        row["t_s"] = result.t_s
        for name in store.fields:
            if name not in row:
                dtype = np.dtype(store.raw_column(name).dtype)
                row[name] = np.nan if dtype.kind == "f" else 0
        store.append_tick(row)

    def column(self, name: str) -> np.ndarray:
        """(T, N) zero-copy view of one observable across the run."""
        if self._store is None or not len(self._store):
            return np.zeros((0, 0))
        return self._store.column(name)

    def times(self) -> np.ndarray:
        """Tick timestamps of the recorded run, shape (T,)."""
        if self._store is None:
            return np.zeros(0)
        return self._store.column("t_s")

    def __len__(self) -> int:
        """Number of recorded ticks."""
        return len(self._store) if self._store is not None else 0


def _as_list(value, n: int, what: str) -> list:
    """Broadcast a scalar-or-sequence argument to a list of length n."""
    if isinstance(value, (list, tuple)):
        if len(value) != n:
            raise ValueError(f"{what}: expected {n} entries, got {len(value)}")
        return list(value)
    return [value] * n


class BatchColocationSim:
    """N servers, each one LC workload + one optional BE task group.

    Args:
        lc: one shared LC workload instance, or a sequence of N (all
            built against the same :class:`MachineSpec` — the batch is
            homogeneous in hardware, not necessarily in workload).
        trace: one shared load trace or a sequence of N.
        bes: None (no BE anywhere), one shared BE workload, or a
            sequence of N entries each ``BestEffortWorkload`` or None.
        spec: machine spec (defaults to the LC workload's).
        seeds: per-server tail-noise seeds (defaults to 0..N-1).
        n: batch size; inferred from the longest sequence argument
            when omitted.
        record_history: keep a per-member :class:`SimHistory` of full
            :class:`TickRecord` objects (the scalar engine's format).
            Disable for large fleets — the compact :class:`BatchHistory`
            columns are always recorded.
    """

    def __init__(self,
                 lc: Union[LatencyCriticalWorkload,
                           Sequence[LatencyCriticalWorkload]],
                 trace: Union[LoadTrace, Sequence[LoadTrace]],
                 bes: Union[None, BestEffortWorkload,
                            Sequence[Optional[BestEffortWorkload]]] = None,
                 spec: Optional[MachineSpec] = None,
                 seeds: Optional[Sequence[int]] = None,
                 n: Optional[int] = None,
                 min_lc_cores: int = 1,
                 record_history: bool = True,
                 specs: Optional[Sequence[MachineSpec]] = None,
                 spill_dir: Optional[str] = None):
        if seeds is not None:
            seeds = list(seeds)
        if n is None:
            n = 1
            for value in (lc, trace, bes, seeds):
                if isinstance(value, (list, tuple)):
                    n = max(n, len(value))
        self.n = n
        lcs = _as_list(lc, n, "lc")
        traces = _as_list(trace, n, "trace")
        be_list = _as_list(bes, n, "bes") if bes is not None else [None] * n
        seed_list = list(seeds) if seeds is not None else list(range(n))
        if len(seed_list) != n:
            raise ValueError(f"seeds: expected {n} entries")

        self.spec = spec or lcs[0].spec
        self.spec.validate()
        for w in lcs:
            if w.spec.total_cores != self.spec.total_cores:
                raise ValueError("batch members must share one hardware spec")
        self._dram_cap, self._nic_link = self._hardware_columns(specs)
        self.record_history = record_history
        self.time_s = 0.0
        # One columnar store for the whole batch: always the compact
        # BatchTickResult observables, plus the rest of the TickRecord
        # fields when per-member histories are kept.  Members' history
        # views read the same arrays — nothing is stored twice.
        if record_history:
            fields = SimHistory.field_dtypes()
        else:
            fields = [("t_s", np.float64)] + [
                (name, np.float64) for name in BatchHistory._FIELDS]
        # spill_dir bounds resident history memory by chunked
        # spill-to-disk (see repro.metrics.columns); each batch needs
        # its own directory.
        self._store = BatchColumnStore(fields, n=n, shared=("t_s",),
                                       spill_dir=spill_dir)
        self.history = BatchHistory(n=n, store=self._store)

        self.members: List[BatchMember] = self._build_members(
            lcs, traces, be_list, seed_list, min_lc_cores)

        self._shared_trace = traces[0] if all(
            t is traces[0] for t in traces) else None
        self._build_static_arrays(lcs, be_list)

        # Mutable telemetry state (RAPL-style smoothed power).
        S = self.spec.sockets
        self._rapl_watts = np.zeros((n, S))
        self._rapl_started = False
        self._rapl_smoothing = 0.5
        # Tail-noise bookkeeping (a no-draw member keeps factor 1.0).
        self._noise_sigmas = [float(x) for x in self._lc["noise_sigma"]]
        self._any_noise = any(s > 0 for s in self._noise_sigmas)
        self._noise_draws = np.ones(n)
        self._lc_net_list: Optional[List[float]] = [0.0] * n
        self._gathered_be_cores = np.zeros(n, dtype=np.int64)
        self._tick: Dict[str, np.ndarray] = self._empty_tick()
        # Tick-loop constants, hoisted so the hot path spends no
        # dispatches rebuilding run-invariant values.
        self._srange = np.arange(S, dtype=np.int64)
        self._total_cores_i64 = np.int64(self.spec.total_cores)
        # Engines that collect their own telemetry (the mega fleet
        # engine) clear this to skip the per-tick column-store append.
        self._record_ticks = True
        # Observability (off by default: both stay None unless the
        # REPRO_TRACE / REPRO_PROFILE env toggles are set; the whole
        # disabled path is these attributes' None checks).
        self._obs_trace = make_sink()
        self._obs_prof = make_profiler()
        self._obs_map: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Member-surface hooks
    # ------------------------------------------------------------------
    #
    # Everything that touches per-member Python objects goes through
    # these overridable hooks; the vectorized physics in :meth:`tick`
    # never does.  The mega fleet engine (:mod:`repro.sim.megabatch`)
    # subclasses them with pure array-state implementations, sharing
    # this class's physics code path outright — which is what makes its
    # bit-identity to the sharded reference hold by construction.

    def _build_members(self, lcs, traces, be_list, seed_list,
                       min_lc_cores) -> List[BatchMember]:
        """Construct the per-member controller surface."""
        return [
            BatchMember(self, i, lcs[i], traces[i], be_list[i],
                        seed_list[i], min_lc_cores)
            for i in range(self.n)
        ]

    def _offered_load(self) -> np.ndarray:
        """Offered load of every member at the current clock, shape (N,)."""
        if self._shared_trace is not None:
            return np.full(self.n, self._shared_trace.clipped(self.time_s))
        return np.array([m.trace.clipped(self.time_s)
                         for m in self.members])

    def _gather_actuator_state(self):
        """Placement state of every member, as 7 parallel (N,) arrays.

        Returns ``(be_enabled, be_eff, lc_ways, be_ways, dvfs_cap,
        throttle, be_ceil)`` where ``be_eff`` is the ``be_cores``
        property view (0 while disabled) and uncapped DVFS/ceil values
        are ``inf``.
        """
        n = self.n
        be_eff = np.empty(n, dtype=np.int64)       # property view (0 if off)
        lc_ways = np.empty(n, dtype=np.int64)      # raw CAT split
        be_ways = np.empty(n, dtype=np.int64)
        be_enabled = np.empty(n, dtype=bool)
        dvfs_cap = np.empty(n)
        throttle = np.empty(n)
        be_ceil = np.empty(n)
        for i, m in enumerate(self.members):
            a = m.actuators
            be_enabled[i] = a._be_enabled
            be_eff[i] = a._be_cores if a._be_enabled else 0
            lc_ways[i] = a._lc_ways
            be_ways[i] = a._be_ways
            cap = a._be_dvfs_cap
            dvfs_cap[i] = np.inf if cap is None else cap
            throttle[i] = a._be_dram_throttle
            ceil = a.htb.ceil_of(BE_COS)
            be_ceil[i] = np.inf if ceil is None else ceil
        return (be_enabled, be_eff, lc_ways, be_ways, dvfs_cap, throttle,
                be_ceil)

    def _tail_noise_factors(self) -> Optional[np.ndarray]:
        """Per-member tail-noise multipliers for this tick, or None.

        Draws are taken per member in member order (a no-draw member —
        sigma <= 0 — never consumes its stream), so the sequence
        matches the scalar engine's single-server draws.
        """
        if not self._any_noise:
            return None
        draws = self._noise_draws
        for i, sigma in enumerate(self._noise_sigmas):
            if sigma > 0:
                draws[i] = self.members[i].rng.lognormal(mean=0.0,
                                                         sigma=sigma)
        return draws

    def _record_members(self, load, tail, be_units, be_running,
                        dt_s) -> np.ndarray:
        """Feed the per-member monitors; returns be_norm, shape (N,)."""
        be_norm = np.zeros(self.n)
        t = self.time_s
        for i, m in enumerate(self.members):
            m.latency_monitor.record(t, float(tail[i]), float(load[i]))
            if be_running[i]:
                m.be_monitor.record(float(be_units[i]) * dt_s, dt_s)
                be_norm[i] = m.be_monitor.last_normalized
        return be_norm

    def _step_controllers(self) -> None:
        """Run every member's controller at the current clock."""
        for m in self.members:
            if m.controller is not None:
                m.controller.step(self.time_s)

    def be_cores_now(self) -> np.ndarray:
        """Every member's current ``be_cores`` property view, shape (N,).

        Unlike the per-tick gather (step 2 of :meth:`tick`, cached in
        ``_gathered_be_cores``), this reads the actuators *now* —
        including any controller mutations from the current tick's
        step — which is what a cluster scheduler polls after a tick.
        """
        return np.array([m.actuators.be_cores for m in self.members],
                        dtype=np.int64)

    # ------------------------------------------------------------------
    # Observability (decision tracing / phase profiling)
    # ------------------------------------------------------------------
    #
    # Off by default: ``_obs_trace`` / ``_obs_prof`` stay None unless
    # the REPRO_TRACE / REPRO_PROFILE toggles are set, and every hook
    # below is gated on one ``is None`` check.  Tracing never mutates
    # engine state — the post-controller gather restores the
    # ``_gathered_be_cores`` cache the fleet drivers read.

    #: Class-level observability defaults (pre-observability pickles
    #: restore with everything off).
    _obs_trace = None
    _obs_prof = None
    _obs_map = None

    def obs_set_members(self, members) -> None:
        """Set the *global* (fleet-wide) index of every local member.

        Trace events carry global member indices so merged traces are
        invariant under any shard partition; a standalone batch keeps
        the identity mapping.
        """
        members = np.asarray(members, dtype=np.int64)
        if members.shape != (self.n,):
            raise ValueError(f"expected {self.n} member indices, got "
                             f"shape {members.shape}")
        self._obs_map = members

    def _obs_members(self) -> np.ndarray:
        """Local→global member index map (identity unless re-based)."""
        if self._obs_map is None:
            self._obs_map = np.arange(self.n, dtype=np.int64)
        return self._obs_map

    def _obs_actuator_state(self):
        """The traced actuator columns ``(gate, cores, llc, dvfs, ceil)``.

        A pure re-gather through the member-surface hook (so the mega
        engine's array state reads through its own override), with the
        ``_gathered_be_cores`` cache restored — the fleet drivers
        record that cache as the tick's ``be_cores`` row, and tracing
        must never perturb it.
        """
        saved = self._gathered_be_cores
        (be_enabled, be_eff, _lc_ways, be_ways, dvfs_cap, _throttle,
         be_ceil) = self._gather_actuator_state()
        self._gathered_be_cores = saved
        return (be_enabled, be_eff, np.where(be_enabled, be_ways, 0),
                dvfs_cap, be_ceil)

    def _obs_emit_decisions(self, pre, slo_fraction, load) -> None:
        """Emit one event per actuator a controller changed this tick.

        ``pre`` is the traced actuator tuple derived from the tick's
        step-2 gather (post-chaos, pre-controller — chaos mutations
        carry their own events); attached triggering signals are the
        tick's observed SLO fraction and offered load.  Uncapped
        DVFS/ceiling values (``inf``) are emitted as null.  The whole
        tick goes out as one fused ``(5, N)`` delta append (see
        :meth:`TraceSink.emit_actuator_deltas`) — array-shaped cost,
        no per-event Python calls.
        """
        post = self._obs_actuator_state()
        old = np.stack([np.asarray(column, dtype=np.float64)
                        for column in pre])
        new = np.stack([np.asarray(column, dtype=np.float64)
                        for column in post])
        self._obs_trace.emit_actuator_deltas(
            self.time_s, self._obs_members(), old, new,
            slo_fraction, load)

    # ------------------------------------------------------------------
    # Chaos events (fault injection)
    # ------------------------------------------------------------------
    #
    # Chaos is resolved as masked column updates over the same physics
    # the scalar engine runs member-by-member; the semantics contract
    # lives in :mod:`repro.sim.chaos`.  Every branch below is gated on
    # ``self._chaos is None`` so a schedule-free run executes the exact
    # instruction stream it always did (bit-identity by construction),
    # and healthy members of a chaotic run multiply by exactly 1.0 —
    # a bitwise identity — wherever a derate column touches them.

    #: No chaos schedule attached (class default keeps the gate free).
    _chaos = None

    def set_chaos_events(self, events) -> None:
        """Attach a chaos schedule (:class:`~repro.sim.chaos.ChaosEvent`).

        Must be called before the first tick; member indices are local
        to this engine (``None`` targets every member).
        """
        events = sort_events(events)
        for event in events:
            if event.members is None:
                continue
            for m in event.members:
                if not 0 <= m < self.n:
                    raise ValueError(
                        f"chaos event targets member {m} of a "
                        f"{self.n}-member batch")
        n = self.n
        self._chaos = events
        self._chaos_pos = 0
        self._chaos_alive = np.ones(n, dtype=bool)
        self._chaos_derate = np.ones(n)
        self._chaos_tdp = np.ones(n)
        self._chaos_part_until = np.full(n, -np.inf)

    def _chaos_apply(self) -> None:
        """Fire due events, then re-pin the BE-off state of dead members."""
        events = self._chaos
        pos = self._chaos_pos
        while pos < len(events) and events[pos].at_s <= self.time_s:
            ev = events[pos]
            pos += 1
            idx = (list(range(self.n)) if ev.members is None
                   else list(ev.members))
            if not idx:
                continue
            if self._obs_trace is not None:
                trace_chaos_event(self._obs_trace, self.time_s, ev,
                                  self._obs_members()[idx])
            if ev.action == "leaf_crash":
                self._chaos_alive[idx] = False
            elif ev.action == "leaf_restart":
                self._chaos_alive[idx] = True
                self._chaos_disable_be(idx)   # rejoin cold
            elif ev.action == "straggler":
                self._chaos_derate[idx] = float(ev.value)
            elif ev.action == "power_cap":
                self._chaos_tdp[idx] = float(ev.value)
            elif ev.action == "partition":
                self._chaos_part_until[idx] = np.maximum(
                    self._chaos_part_until[idx], ev.at_s + float(ev.value))
            elif ev.action == "enable_be":
                self._chaos_enable_be(idx)
            elif ev.action == "disable_be":
                self._chaos_disable_be(idx)
            elif ev.action == "set_be_cores":
                self._chaos_set_be_cores(idx, int(ev.value))
            elif ev.action == "set_llc_split":
                self._chaos_set_llc_split(idx, int(ev.value))
            else:  # set_be_net_ceil
                self._chaos_set_net_ceil(idx, float(ev.value))
        self._chaos_pos = pos
        dead = ~self._chaos_alive
        if dead.any():
            # Forced off every tick while down: a controller that turns
            # BE back on mid-crash is overridden at the next tick start,
            # exactly as the scalar engine re-pins its single member.
            self._chaos_disable_be(np.nonzero(dead)[0])

    # Chaos actuator hooks — the member-surface seam.  The mega engine
    # overrides these with masked array transcriptions of the same
    # Actuators methods.

    def _chaos_disable_be(self, indices) -> None:
        for i in indices:
            self.members[i].actuators.disable_be()

    def _chaos_enable_be(self, indices) -> None:
        for i in indices:
            self.members[i].actuators.enable_be()

    def _chaos_set_be_cores(self, indices, value: int) -> None:
        for i in indices:
            self.members[i].actuators.set_be_cores(value)

    def _chaos_set_llc_split(self, indices, value: int) -> None:
        for i in indices:
            self.members[i].actuators.set_llc_split(value)

    def _chaos_set_net_ceil(self, indices, value: float) -> None:
        for i in indices:
            self.members[i].actuators.set_be_net_ceil(value)

    # ------------------------------------------------------------------
    # Static per-member parameter arrays
    # ------------------------------------------------------------------

    def _hardware_columns(self, specs):
        """Per-member DRAM/NIC capacities: scalars unless ``specs`` vary.

        A heterogeneous batch (the mega fleet engine merging several
        clusters into one array program) passes one
        :class:`MachineSpec` per member.  The specs must agree on every
        field the physics reads as a shared scalar — core counts, cache
        geometry, turbo ladder, power envelope — and the two capacity
        fields the physics applies per member, DRAM bandwidth and NIC
        link rate, become broadcast columns: ``(N, 1)`` against the
        per-socket demand matrices and ``(N,)`` against the egress
        vectors.  With no ``specs`` (every existing caller) the columns
        are the plain ``self.spec`` scalars and the arithmetic is
        unchanged bit for bit.
        """
        base = self.spec
        if specs is None:
            return base.socket.dram_bw_gbps, base.nic.link_gbps
        specs = list(specs)
        if len(specs) != self.n:
            raise ValueError(f"specs: expected {self.n} entries")
        norm = _dc_replace(
            base, socket=_dc_replace(base.socket, dram_bw_gbps=1.0),
            nic=_dc_replace(base.nic, link_gbps=1.0))
        for s in specs:
            if _dc_replace(
                    s, socket=_dc_replace(s.socket, dram_bw_gbps=1.0),
                    nic=_dc_replace(s.nic, link_gbps=1.0)) != norm:
                raise ValueError(
                    "specs may differ only in DRAM bandwidth and NIC "
                    "link rate; every structural field (cores, cache, "
                    "turbo, power) must match the batch spec")
        dram = np.array([s.socket.dram_bw_gbps for s in specs])
        link = np.array([s.nic.link_gbps for s in specs])
        dram_col = (base.socket.dram_bw_gbps
                    if (dram == base.socket.dram_bw_gbps).all()
                    else dram[:, None])
        link_col = (base.nic.link_gbps
                    if (link == base.nic.link_gbps).all() else link)
        return dram_col, link_col

    def _build_static_arrays(self, lcs, bes) -> None:
        def arr(fn, dtype=float):
            return np.array([fn(w) for w in lcs], dtype=dtype)

        p = lambda w: w.profile
        s = lambda w: w.profile.sensitivity
        self._lc = {
            "peak_qps": arr(lambda w: w.peak_qps),
            "base_service_ms": arr(lambda w: w.base_service_ms),
            "slo_ms": arr(lambda w: p(w).slo_latency_ms),
            "percentile": arr(lambda w: p(w).slo_percentile),
            "tail_mult": arr(lambda w: p(w).service_tail_mult),
            "pool_size": arr(lambda w: p(w).pool_size or 0, dtype=np.int64),
            "noise_sigma": arr(lambda w: p(w).noise_sigma),
            "compute_activity": arr(lambda w: p(w).compute_activity),
            "dram_peak_gbps": arr(lambda w: w._dram_peak_gbps),
            "dram_exponent": arr(lambda w: p(w).dram_load_exponent),
            "uncached_share": arr(lambda w: w._uncached_share),
            "baseline_hit": arr(lambda w: w._baseline_hit),
            "hot_mb": arr(lambda w: p(w).hot_mb),
            "bulk_peak_mb": arr(lambda w: p(w).bulk_mb_at_peak),
            "bulk_reuse": arr(lambda w: p(w).bulk_reuse),
            "hot_frac": arr(lambda w: p(w).hot_access_fraction),
            "net_frac": arr(lambda w: p(w).net_frac_at_peak),
            "net_flows": arr(lambda w: p(w).net_flows),
            "freq_exp": arr(lambda w: s(w).freq_exponent),
            "hot_w": arr(lambda w: s(w).hot_miss_weight),
            "bulk_w": arr(lambda w: s(w).bulk_miss_weight),
            "mem_frac": arr(lambda w: s(w).mem_time_fraction),
            "net_gain": arr(lambda w: s(w).net_tail_gain),
        }

        # Static derived quantities, precomputed once so the tick loop
        # spends no dispatches on run-constant arithmetic.  Each matches
        # the subexpression the scalar code evaluates per call.
        self._lc["cached_share"] = 1.0 - self._lc["uncached_share"]
        self._lc["miss_frac"] = np.maximum(1e-3,
                                           1.0 - self._lc["baseline_hit"])
        self._lc["net_peak"] = self._lc["net_frac"] * self._nic_link
        self._lc["tail_mass"] = 1.0 - self._lc["percentile"]
        # Queueing pool structure depends only on the integer core count:
        # table[i, servers] is servers_per_pool for member i.
        total = self.spec.total_cores
        table = np.ones((len(lcs), total + 1), dtype=np.int64)
        for i, w in enumerate(lcs):
            ps = w.profile.pool_size
            for servers in range(1, total + 1):
                pools = max(1, round(servers / ps)) if ps else 1
                table[i, servers] = max(1, round(servers / pools))
        self._k_table = table
        self._member_index = np.arange(len(lcs))

        def barr(fn, default=0.0):
            return np.array([fn(w.profile) if w is not None else default
                             for w in bes], dtype=float)

        self._has_be = np.array([w is not None for w in bes], dtype=bool)
        self._be = {
            # min(3, activity * power_weight) — the scalar demand() value.
            "activity": barr(lambda q: min(3.0, q.activity * q.power_weight)),
            "hot_mb": barr(lambda q: q.hot_mb),
            "bulk_mb": barr(lambda q: q.bulk_mb),
            "bulk_reuse": barr(lambda q: q.bulk_reuse, 1.0),
            "access_per_core": barr(lambda q: q.access_gbps_per_core),
            "hot_frac": barr(lambda q: q.hot_access_fraction),
            "uncached_per_core": barr(lambda q: q.uncached_dram_gbps_per_core),
            "net_demand": barr(lambda q: q.net_demand_gbps),
            "net_flows": barr(lambda q: q.net_flows, 1.0),
            "mem_bound": barr(lambda q: q.mem_bound_fraction),
            "cache_benefit": barr(lambda q: q.cache_benefit),
        }
        # Concatenated LC+BE statics for the stacked cache resolution.
        self._hot_frac_cat = np.concatenate([self._lc["hot_frac"],
                                             self._be["hot_frac"]])
        self._bulk_reuse_cat = np.concatenate([self._lc["bulk_reuse"],
                                               self._be["bulk_reuse"]])

    def _lc_net_of(self, i: int) -> float:
        """Member ``i``'s achieved LC egress as a plain float.

        The per-member float list is materialized from the tick's
        ``lc_net_ach`` column on first poll and cached for the rest of
        the tick — engines with no member objects never pay for it.
        """
        lst = self._lc_net_list
        if lst is None:
            lst = self._lc_net_list = self._tick["lc_net_ach"].tolist()
        return lst[i]

    def _empty_tick(self) -> Dict[str, np.ndarray]:
        n, zeros = self.n, np.zeros(self.n)
        return {
            "load": zeros.copy(), "tail_ms": zeros.copy(),
            "slo_fraction": zeros.copy(), "be_norm": zeros.copy(),
            "emu": zeros.copy(),
            "be_running": np.zeros(n, dtype=bool),
            "lc_freq_ghz": zeros.copy(), "be_freq_ghz": zeros.copy(),
            "lc_dram_ach": zeros.copy(), "be_dram_ach": zeros.copy(),
            "lc_net_ach": zeros.copy(), "be_net_ach": zeros.copy(),
            "dram_total_gbps": zeros.copy(), "dram_max_util": zeros.copy(),
            "worst_socket_dram_gbps": zeros.copy(),
            "link_tx_gbps": zeros.copy(), "cpu_utilization": zeros.copy(),
        }

    # ------------------------------------------------------------------
    # The vectorized tick
    # ------------------------------------------------------------------

    def tick(self, dt_s: float = 1.0) -> BatchTickResult:
        """Advance all members by one interval (vectorized physics)."""
        if dt_s <= 0:
            raise ValueError("dt must be positive")
        n, S = self.n, self.spec.sockets
        spec = self.spec
        socket = spec.socket

        # -- 0. Chaos events (fire at tick start, before load eval) ---------
        prof = self._obs_prof
        mark = perf_counter() if prof is not None else 0.0
        if self._chaos is not None:
            self._chaos_apply()
            chaos_dead = ~self._chaos_alive
            chaos_parted = self._chaos_alive & (self.time_s
                                                < self._chaos_part_until)
        else:
            chaos_dead = chaos_parted = None
        if prof is not None:
            now = perf_counter()
            prof.add("chaos", now - mark)
            mark = now

        # -- 1. Offered load ------------------------------------------------
        load = self._offered_load()
        if self._chaos is not None:
            # Crashed leaves serve nothing; partitioned leaves have
            # their load held at the root (reads as zero here).
            load = np.where(chaos_dead | chaos_parted, 0.0, load)

        # -- 2. Gather placement state from the actuators -------------------
        (be_enabled, be_eff, lc_ways, be_ways, dvfs_cap, throttle,
         be_ceil) = self._gather_actuator_state()
        # The gathered be_cores view is the post-step state of the
        # *previous* tick (controllers mutate actuators after physics);
        # keep it readable so callers can collect controller grants
        # without a per-member property loop.
        self._gathered_be_cores = be_eff
        pre_act = None
        if self._obs_trace is not None:
            # Copies, not views: the mega engine's gather returns its
            # live actuator arrays, which controllers mutate in place —
            # the pre-controller snapshot must not follow them.
            pre_act = (np.array(be_enabled), np.array(be_eff),
                       np.where(be_enabled, be_ways, 0),
                       np.array(dvfs_cap), np.array(be_ceil))

        be_running = self._has_be & be_enabled & (be_eff > 0)

        # Per-socket core splits (the actuators' round-robin policy).
        be_s = (be_eff[:, None] // S
                + (self._srange[None, :] < (be_eff[:, None] % S)))
        lc_s = socket.cores - be_s
        lc_total = self._total_cores_i64 - be_eff
        be_total = np.where(be_running, be_eff, 0)
        be_s = np.where(be_running[:, None], be_s, 0)

        # -- 3. Workload demands -------------------------------------------
        L = self._lc
        rho_lc = np.minimum(
            1.0, ((load * L["peak_qps"]) * L["base_service_ms"]
                  / 1000.0) / lc_total)
        act_lc = L["compute_activity"] * rho_lc
        dram_target = L["dram_peak_gbps"] * load ** L["dram_exponent"]
        uncached_lc = L["uncached_share"] * dram_target
        access_lc = (L["cached_share"] * dram_target) / L["miss_frac"]
        bulk_lc = L["bulk_peak_mb"] * load
        net_lc = L["net_peak"] * load

        # Per-socket splits, matching the two scalar helpers' operation
        # order: cache_demand_for normalizes the weight first
        # (w = cores/total), split_across_sockets divides last.
        lc_mask_s = lc_s > 0
        w_lc = np.where(lc_mask_s, lc_s / lc_total[:, None], 0.0)
        hot_lc_s = L["hot_mb"][:, None] * w_lc
        bulk_lc_s = bulk_lc[:, None] * w_lc
        access_lc_s = access_lc[:, None] * w_lc
        uncached_lc_s = np.where(
            lc_mask_s,
            (uncached_lc[:, None] * lc_s) / lc_total[:, None], 0.0)

        B = self._be
        be_mask_s = be_s > 0
        safe_be_total = np.where(be_total > 0, be_total, 1)
        w_be = np.where(be_mask_s, be_s / safe_be_total[:, None], 0.0)
        hot_be_s = B["hot_mb"][:, None] * w_be
        bulk_be_s = B["bulk_mb"][:, None] * w_be
        access_be = B["access_per_core"] * be_total
        access_be_s = access_be[:, None] * w_be
        uncached_be = B["uncached_per_core"] * be_total
        uncached_be_s = np.where(
            be_mask_s,
            (uncached_be[:, None] * be_s) / safe_be_total[:, None], 0.0)
        act_be = B["activity"]
        net_be = np.where(be_running, B["net_demand"], 0.0)

        # -- 4. Power / frequency equilibrium -------------------------------
        lc_freq_s, be_freq_s, power_s = self._resolve_power(
            lc_s, act_lc, be_s, act_be, be_running, dvfs_cap)
        # RAPL metering (exponentially smoothed, as the real counters).
        a = self._rapl_smoothing
        if self._rapl_started:
            self._rapl_watts = a * power_s + (1 - a) * self._rapl_watts
        else:
            self._rapl_watts = power_s.copy()
            self._rapl_started = True
        # Core-weighted achieved frequency per task.
        lc_freq = _weighted_freq(lc_freq_s, lc_s)
        be_freq = _weighted_freq(be_freq_s, be_s)
        if self._chaos is not None:
            # Straggler derate on the achieved frequencies (healthy
            # members multiply by exactly 1.0 — a bitwise identity).
            lc_freq = lc_freq * self._chaos_derate
            be_freq = be_freq * self._chaos_derate

        # -- 5. LLC occupancy within each CAT partition ---------------------
        # LC and BE resolve in separate partitions with identical math,
        # so both stacks go through one vectorized resolution.
        mb_per_way = socket.llc_mb / socket.llc_ways
        hit2, hot_cov2, bulk_cov2, miss2 = _resolve_partition(
            np.concatenate([lc_ways * mb_per_way, be_ways * mb_per_way]),
            np.concatenate([lc_mask_s, be_mask_s]),
            np.concatenate([hot_lc_s, hot_be_s]),
            np.concatenate([bulk_lc_s, bulk_be_s]),
            np.concatenate([access_lc_s, access_be_s]),
            self._hot_frac_cat, self._bulk_reuse_cat)
        lc_hit, be_hit = hit2[:n], hit2[n:]
        lc_hot_cov, lc_bulk_cov = hot_cov2[:n], bulk_cov2[:n]
        be_hot_cov, be_bulk_cov = hot_cov2[n:], bulk_cov2[n:]
        lc_miss_s, be_miss_s = miss2[:n], miss2[n:]

        # -- 6. DRAM channels ----------------------------------------------
        dram = self._resolve_memory(
            lc_s, be_s, uncached_lc_s, lc_miss_s, uncached_be_s, be_miss_s,
            throttle, be_running)

        # -- 7. Egress link -------------------------------------------------
        net = self._resolve_network(
            net_lc, L["net_flows"], net_be, B["net_flows"], be_ceil,
            be_running)

        # -- 8. LC tail latency --------------------------------------------
        nominal = socket.turbo.nominal_ghz
        freq_factor = (nominal / lc_freq) ** L["freq_exp"]
        hot_loss = 1.0 - lc_hot_cov
        cache_factor = (1.0
                        + L["hot_w"] * hot_loss * (0.3 + 0.7 * hot_loss)
                        + L["bulk_w"] * (1.0 - lc_bulk_cov))
        mem_factor = 1.0 + L["mem_frac"] * (dram["lc_delay"] - 1.0)
        # Heracles pins LC and BE to disjoint physical cores, so the
        # HyperThread share is identically zero on this path (factor 1).
        inflation = freq_factor * cache_factor * mem_factor * 1.0
        service_ms = L["base_service_ms"] * inflation
        qps = load * L["peak_qps"]
        k_pool = self._k_table[self._member_index, lc_total]
        tail = _queue_tail_ms(lc_total, service_ms, qps, L["tail_mult"],
                              L["tail_mass"], k_pool)
        lc_sat = np.where(net_lc > 0,
                          np.minimum(1.0, net["lc_ach"] / np.where(
                              net_lc > 0, net_lc, 1.0)), 1.0)
        tail = tail * _net_latency_factor(net_lc, lc_sat, L["net_gain"])

        # Per-member seeded noise streams, drawn in member order so the
        # sequence matches the scalar engine's single-server draws.
        draws = self._tail_noise_factors()
        if draws is not None:
            tail = tail * draws
        if self._chaos is not None:
            # Noise streams above still advanced for every member (so
            # healthy members' draws are unaffected); the overrides
            # replace the computed tail afterwards.
            tail = np.where(chaos_parted,
                            L["slo_ms"] * PARTITION_TAIL_SLO_MULT, tail)
            tail = np.where(chaos_dead, 0.0, tail)
        slo_fraction = tail / L["slo_ms"]

        # -- 9. BE throughput ----------------------------------------------
        freq_scale = be_freq / nominal
        mem_sat = np.where(dram["be_dem"] > 1e-9,
                           np.minimum(1.0, dram["be_ach"] / np.where(
                               dram["be_dem"] > 1e-9, dram["be_dem"], 1.0)),
                           1.0)
        mem_scale = (1.0 - B["mem_bound"]) + B["mem_bound"] * mem_sat
        cache_scale = 1.0 + B["cache_benefit"] * (be_hit - 1.0)
        eff = np.maximum(1e-3, freq_scale * mem_scale * cache_scale * 1.0)
        be_sat = np.where(net_be > 0,
                          np.minimum(1.0, net["be_ach"] / np.where(
                              net_be > 0, net_be, 1.0)), 1.0)
        eff = np.where(B["net_demand"] > 0, eff * be_sat, eff)
        be_units = np.where(be_running, be_total * eff, 0.0)

        # -- 10. Telemetry / counters ---------------------------------------
        cores_in_use = lc_total + np.where(be_running, be_total, 0)
        self._tick = {
            "load": load, "tail_ms": tail, "slo_fraction": slo_fraction,
            "be_running": be_running,
            "lc_freq_ghz": lc_freq, "be_freq_ghz": be_freq,
            "lc_dram_ach": dram["lc_ach"], "be_dram_ach": dram["be_ach"],
            "lc_net_ach": net["lc_ach"], "be_net_ach": net["be_ach"],
            "dram_total_gbps": dram["total_gbps"],
            "dram_max_util": dram["max_util"],
            "worst_socket_dram_gbps": dram["worst_socket_gbps"],
            "link_tx_gbps": net["total_ach"],
            "cpu_utilization": (np.minimum(cores_in_use, spec.total_cores)
                                / spec.total_cores),
        }
        # Invalidate the members' plain-float egress view; it is
        # materialized lazily on first poll (never, for engines with no
        # member objects).
        self._lc_net_list = None

        # -- 11. Member bookkeeping: monitors, history, controllers ---------
        if prof is not None:
            now = perf_counter()
            prof.add("physics", now - mark)
            mark = now
        be_norm = self._record_members(load, tail, be_units, be_running,
                                       dt_s)
        emu = load + be_norm
        self._tick["be_norm"] = be_norm
        self._tick["emu"] = emu

        result = BatchTickResult(
            t_s=self.time_s, load=load, tail_latency_ms=tail,
            slo_fraction=slo_fraction, be_throughput_norm=be_norm,
            emu=emu, be_running=be_running)

        # One vectorized row write records the whole tick for every
        # member (the per-member dataclass loop this replaces built N
        # TickRecords per tick).  The actuator-state columns reuse the
        # arrays gathered in step 2: controllers only mutate actuators
        # *after* this point in the tick, so the gathered values are
        # exactly what the per-member properties would report here.
        row = {
            "t_s": self.time_s, "load": load, "tail_latency_ms": tail,
            "slo_fraction": slo_fraction, "be_throughput_norm": be_norm,
            "emu": emu,
        } if self._record_ticks else None
        if row is not None and self.record_history:
            row.update(
                be_cores=be_eff,
                be_llc_ways=np.where(be_enabled, be_ways, 0),
                be_dvfs_cap_ghz=np.where(np.isinf(dvfs_cap), np.nan,
                                         dvfs_cap),
                be_net_ceil_gbps=np.where(np.isinf(be_ceil), np.nan,
                                          be_ceil),
                be_enabled=be_enabled,
                dram_bw_gbps=dram["total_gbps"],
                dram_utilization=dram["max_util"],
                cpu_utilization=self._tick["cpu_utilization"],
                power_fraction_of_tdp=(power_s.sum(axis=1)
                                       / (socket.tdp_watts * S)),
                lc_net_gbps=net["lc_ach"],
                be_net_gbps=net["be_ach"],
                link_utilization=np.minimum(
                    1.0, net["total_ach"] / self._nic_link),
            )
        if row is not None:
            self._store.append_tick(row)
        if prof is not None:
            now = perf_counter()
            prof.add("telemetry", now - mark)
            mark = now

        self._step_controllers()
        if pre_act is not None:
            self._obs_emit_decisions(pre_act, slo_fraction, load)
        if prof is not None:
            prof.add("controllers", perf_counter() - mark)

        self.time_s += dt_s
        return result

    def run(self, duration_s: float, dt_s: float = 1.0) -> BatchHistory:
        """Run all members for ``duration_s`` simulated seconds."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        steps = int(round(duration_s / dt_s))
        for _ in range(steps):
            self.tick(dt_s)
        return self.history

    # ------------------------------------------------------------------
    # Physics stages
    # ------------------------------------------------------------------

    #: Grid resolution of the scalar power bisection: 40 halvings of
    #: [0, 1] land every lo/hi bound on an exact multiple of 2**-40
    #: (dyadic rationals are exact doubles), so the bisection's result
    #: is *characterized* — not approximated — as the largest grid
    #: point whose power check passes.
    _BISECT_SCALE = 2.0 ** 40

    def _resolve_power(self, lc_s, act_lc, be_s, act_be, be_running,
                       dvfs_cap):
        """Per-socket frequency/power equilibrium, (N, S) vectorized.

        Mirrors :meth:`SocketPowerModel.resolve`: turbo ceiling from the
        active-core count, per-task DVFS targets, and — when the socket
        would exceed TDP — the same frequency-scale clamp the scalar
        model finds by 40-step bisection.

        The clamp is computed without the 40 vectorized iterations: the
        scalar bisection's bounds always sit on the exact 2**-40 dyadic
        grid, so its outcome equals the largest grid point ``k/2**40``
        whose recomputed power does not exceed TDP.  We locate ``k``
        with an analytic piecewise-cubic root estimate and confirm it
        with a handful of exact grid probes (the probes evaluate the
        *same* expression, in the same operation order, as the scalar
        loop); any socket the probes cannot pin down — possible only if
        libm rounding makes power locally non-monotone — falls back to
        the literal 40-iteration bisection.
        """
        socket = self.spec.socket
        turbo = socket.turbo
        nominal = turbo.nominal_ghz
        floor = turbo.min_ghz
        span = turbo.max_turbo_ghz - turbo.all_core_turbo_ghz
        k = socket.core_dynamic_watts
        tdp = socket.tdp_watts
        if self._chaos is not None:
            # Timed power caps scale the TDP limit per member; (N, 1)
            # broadcasts across sockets.  Every use of ``tdp`` below is
            # elementwise, so the array substitutes for the scalar.
            tdp = tdp * self._chaos_tdp[:, None]
        idle = socket.idle_watts

        lc_present = lc_s > 0
        be_present = (be_s > 0) & be_running[:, None]
        active = (np.where(lc_present & (act_lc[:, None] > 0), lc_s, 0)
                  + np.where(be_present & (act_be[:, None] > 0), be_s, 0))
        if socket.cores > 1:
            fraction = np.clip((active - 1) / (socket.cores - 1), 0.0, 1.0)
        else:
            fraction = np.zeros(active.shape)
        ceiling = np.where(active <= 0, turbo.max_turbo_ghz,
                           turbo.max_turbo_ghz - span * fraction)
        t_lc = np.maximum(floor, ceiling)
        t_be = np.maximum(floor, np.minimum(dvfs_cap[:, None], ceiling))

        coef_lc = np.where(lc_present, (lc_s * act_lc[:, None]) * k, 0.0)
        coef_be = np.where(be_present, (be_s * act_be[:, None]) * k, 0.0)

        power = idle + (coef_lc * (t_lc / nominal) ** 3
                        + coef_be * (t_be / nominal) ** 3)
        throttled = power > tdp
        f_lc, f_be = t_lc, t_be
        if throttled.any():
            idx = np.nonzero(throttled)
            T = np.stack([t_lc[idx], t_be[idx]])    # (2, M)
            C = np.stack([coef_lc[idx], coef_be[idx]])
            # Subset the per-member TDP column to the throttled sockets
            # (tdp is per member, so the socket column is immaterial).
            tdp_t = tdp[idx[0], 0] if isinstance(tdp, np.ndarray) else tdp
            lo = self._throttle_scale(T, C, idle, tdp_t, nominal, floor)
            f_thr = np.maximum(floor, T * lo)
            p_thr = idle + (C[0] * (f_thr[0] / nominal) ** 3
                            + C[1] * (f_thr[1] / nominal) ** 3)
            f_lc = t_lc.copy()
            f_be = t_be.copy()
            power = power.copy()
            f_lc[idx] = f_thr[0]
            f_be[idx] = f_thr[1]
            power[idx] = p_thr
        return (np.where(lc_present, f_lc, 0.0),
                np.where(be_present, f_be, 0.0),
                power)

    def _throttle_scale(self, T, C, idle, tdp, nominal, floor):
        """Frequency scale factor ``lo`` for TDP-throttled sockets.

        Args:
            T: (2, M) per-task target frequencies of the throttled
               sockets (LC row 0, BE row 1).
            C: (2, M) matching dynamic-power coefficients
               (``cores * activity * core_dynamic_watts``).

        Returns the exact value the scalar bisection produces.
        """
        scale = self._BISECT_SCALE
        budget = tdp - idle
        floor_cube = (floor / nominal) ** 3

        def over_at(kk):
            """The scalar loop's TDP check at grid point kk / 2**40."""
            f = np.maximum(floor, T * (kk / scale))
            p = idle + (C[0] * (f[0] / nominal) ** 3
                        + C[1] * (f[1] / nominal) ** 3)
            return p > tdp

        # Analytic root estimate of idle + sum C*(max(floor, T*m)/nom)^3
        # = tdp over its three clamp pieces (estimate only; exactness
        # comes from the grid probes below).
        R3 = C * (T / nominal) ** 3
        mb = np.where(C > 0, floor / T, 0.0)   # per-task clamp threshold
        m_hi = np.maximum(mb[0], mb[1])
        m_lo = np.minimum(mb[0], mb[1])
        with np.errstate(divide="ignore", invalid="ignore"):
            r1 = np.cbrt(budget / (R3[0] + R3[1]))      # no task clamped
            big0 = mb[0] >= mb[1]
            const = np.where(big0, C[0], C[1]) * floor_cube
            r2 = np.cbrt((budget - const)
                         / np.where(big0, R3[1], R3[0]))  # one clamped
        flat = (C[0] + C[1]) * floor_cube              # both clamped
        m_est = np.where(
            r1 >= m_hi, r1,
            np.where(r2 >= m_lo, np.minimum(r2, m_hi),
                     np.where(flat > budget, 0.0, m_lo)))
        m_est = np.nan_to_num(m_est, nan=0.0, posinf=1.0, neginf=0.0)

        k0 = np.clip(np.floor(np.clip(m_est, 0.0, 1.0) * scale),
                     0.0, scale - 1.0)
        # Probe the grid around the estimate; the answer is the k with
        # over(k) false and over(k+1) true (flip point), or 0 when even
        # a zero scale exceeds TDP.  The estimate is almost always
        # exact, so the two extra probes run only when it is not.
        p0 = over_at(k0)
        p1 = over_at(k0 + 1.0)
        kk = np.where(~p0 & p1, k0, -1.0)
        kk = np.where((k0 == 0.0) & p0, 0.0, kk)
        if (kk < 0).any():
            pm1 = over_at(k0 - 1.0)
            p2 = over_at(k0 + 2.0)
            kk = np.where(kk < 0,
                          np.where(~pm1 & p0, k0 - 1.0,
                                   np.where(~p1 & p2, k0 + 1.0, -1.0)),
                          kk)
            unresolved = kk < 0
            if unresolved.any():
                kk = np.where(unresolved,
                              self._bisect_scale_exact(T, C, idle, tdp,
                                                       nominal, floor), kk)
        return kk / scale

    @staticmethod
    def _bisect_scale_exact(T, C, idle, tdp, nominal, floor):
        """The literal 40-iteration scalar bisection (fallback path)."""
        m = T.shape[1]
        lo = np.zeros(m)
        hi = np.ones(m)
        for _ in range(40):
            mid = (lo + hi) / 2.0
            f = np.maximum(floor, T * mid)
            p = idle + (C[0] * (f[0] / nominal) ** 3
                        + C[1] * (f[1] / nominal) ** 3)
            over = p > tdp
            hi = np.where(over, mid, hi)
            lo = np.where(over, lo, mid)
        return lo * BatchColocationSim._BISECT_SCALE

    def _resolve_memory(self, lc_s, be_s, uncached_lc_s, lc_miss_s,
                        uncached_be_s, be_miss_s, throttle, be_running):
        """Per-socket DRAM sharing, saturation delay, and counters."""
        cap = self._dram_cap  # scalar, or (N, 1) on a heterogeneous batch
        if self._chaos is not None:
            # Straggler derate on the per-member channel capacity (the
            # scalar engine sets MemoryController.capacity_gbps to the
            # same ``stock * derate`` product).
            cap = cap * self._chaos_derate[:, None]
        knee, gain = 0.88, 0.10  # MemoryController defaults

        bw_lc = uncached_lc_s + lc_miss_s
        bw_be = uncached_be_s + be_miss_s
        inc_lc = (bw_lc > 0) | (lc_s > 0)
        inc_be = ((bw_be > 0) | (be_s > 0)) & be_running[:, None]
        # (The scalar path multiplies the LC demand by its 1.0
        # throttle; multiplication by exactly 1.0 is the identity, so
        # it is dropped here.)
        dem_lc = np.where(inc_lc, bw_lc, 0.0)
        dem_be = np.where(inc_be, bw_be * throttle[:, None], 0.0)
        total = dem_lc + dem_be
        fits = total <= cap
        scale = np.where(fits, 1.0, cap / np.where(fits, 1.0, total))
        achieved_total = np.where(fits, total, cap)
        util = np.minimum(1.0, achieved_total / cap)

        rho = np.minimum(util, 0.995)
        below = rho <= knee
        excess = (rho - knee) / (1.0 - knee)
        queueing = np.minimum(5.0, gain * excess / (1.0 - rho))
        delay = np.where(below, 1.0 + 0.05 * (rho / knee), 1.05 + queueing)
        oversub = np.maximum(0.0, total / cap - 1.0)
        delay = delay + 6.0 * oversub

        # Accumulate across sockets (offered demand is unthrottled; the
        # delay factor is the per-task max).  Socket-axis sums add in
        # socket order and excluded sockets contribute exact zeros, so
        # this reproduces the scalar per-socket accumulation loop.
        lc_dem = dem_lc.sum(axis=1)  # dem_lc is exactly the LC demand
        lc_ach = (dem_lc * scale).sum(axis=1)
        lc_delay = np.maximum(1.0, np.where(inc_lc, delay, 1.0).max(axis=1))
        be_dem = np.where(inc_be, bw_be, 0.0).sum(axis=1)
        be_ach = (dem_be * scale).sum(axis=1)
        be_delay = np.maximum(1.0, np.where(inc_be, delay, 1.0).max(axis=1))
        return {
            "lc_dem": lc_dem, "lc_ach": lc_ach, "lc_delay": lc_delay,
            "be_dem": be_dem, "be_ach": be_ach, "be_delay": be_delay,
            "total_gbps": achieved_total.sum(axis=1),
            "max_util": util.max(axis=1),
            "worst_socket_gbps": achieved_total.max(axis=1),
        }

    def _resolve_network(self, net_lc, flows_lc, net_be, flows_be, be_ceil,
                         be_running):
        """Weighted max-min egress sharing with per-class HTB ceilings.

        A faithful vector transcription of :meth:`EgressLink.resolve`
        for the two-flow case: flow counts are the weights, allocations
        are capped at min(demand, ceil), leftover capacity redistributes
        until the link is full or every active flow is satisfied.
        """
        link = self._nic_link  # scalar, or (N,) on a heterogeneous batch
        lim_lc = net_lc  # the LC class is never ceiled
        lim_be = np.where(be_running, np.minimum(net_be, be_ceil), 0.0)
        present_be = be_running

        alloc_lc = np.zeros(self.n)
        alloc_be = np.zeros(self.n)
        capacity = np.full(self.n, link)
        a_lc = lim_lc > 0
        a_be = present_be & (lim_be > 0)
        live = np.ones(self.n, dtype=bool)
        for _ in range(3):  # len(demands) + 1 rounds, as the scalar loop
            live = live & (a_lc | a_be) & (capacity > 1e-12)
            if not live.any():
                break
            wsum = np.where(live, flows_lc * a_lc + flows_be * a_be, 1.0)
            g_lc = (capacity * flows_lc) / wsum
            take_lc = np.where(live & a_lc,
                               np.minimum(g_lc, lim_lc - alloc_lc), 0.0)
            alloc_lc = alloc_lc + take_lc
            g_be = (capacity * flows_be) / wsum
            take_be = np.where(live & a_be,
                               np.minimum(g_be, lim_be - alloc_be), 0.0)
            alloc_be = alloc_be + take_be
            spent = take_lc + take_be
            capacity = np.where(live, capacity - spent, capacity)
            a_lc = a_lc & ((lim_lc - alloc_lc) > 1e-12)
            a_be = a_be & ((lim_be - alloc_be) > 1e-12)
            live = live & (spent > 1e-12)
        return {
            "lc_ach": alloc_lc,
            "be_ach": alloc_be,
            "total_ach": alloc_lc + alloc_be,
        }


# ----------------------------------------------------------------------
# Vectorized physics helpers
# ----------------------------------------------------------------------


def _weighted_freq(freq_s: np.ndarray, cores_s: np.ndarray) -> np.ndarray:
    """Core-weighted mean frequency across sockets, in socket order.

    The accumulation starts from socket 0's product instead of a zero
    array — identical bits (frequencies and core counts are
    non-negative, so ``0.0 + x == x`` exactly), two fewer allocations
    per call on the hot path.
    """
    acc = freq_s[:, 0] * cores_s[:, 0]
    cores = cores_s[:, 0]
    for s in range(1, freq_s.shape[1]):
        acc = acc + freq_s[:, s] * cores_s[:, s]
        cores = cores + cores_s[:, s]
    return np.where(cores > 0, acc / np.where(cores > 0, cores, 1), 0.0)


def _resolve_partition(part_mb, mask_s, hot_s, bulk_s, access_s,
                       hot_frac, bulk_reuse):
    """Steady-state occupancy of one task alone in one CAT partition.

    With a single resident task the scalar waterfill reduces to
    ``occupancy = min(partition, footprint)``; coverage and hit fraction
    follow :func:`repro.hardware.cache.resolve_occupancy` exactly.
    Cross-socket merging replicates the scalar engine's sequential
    rule: first socket sets the values, later sockets average coverage
    and sum occupancy.

    Returns (hit, hot_cov, bulk_cov, miss_gbps_per_socket).
    """
    n, S = mask_s.shape
    occ_s = np.minimum(part_mb[:, None], hot_s + bulk_s)
    hot_cov_s = np.where(hot_s > 0,
                         np.minimum(1.0, occ_s / np.where(hot_s > 0, hot_s,
                                                          1.0)), 1.0)
    left_s = np.maximum(0.0, occ_s - hot_s)
    bulk_cov_s = np.where(bulk_s > 0,
                          np.minimum(1.0, left_s / np.where(bulk_s > 0,
                                                            bulk_s, 1.0)),
                          1.0)
    hit_s = np.minimum(1.0, hot_frac[:, None] * hot_cov_s
                       + (1.0 - hot_frac[:, None]) * bulk_cov_s
                       * bulk_reuse[:, None])
    miss_s = np.where(mask_s, access_s * (1.0 - hit_s), 0.0)

    if S == 2:
        # Closed form of the sequential merge below for the ubiquitous
        # two-socket case: socket 0 sets the value, socket 1 either
        # sets it (socket 0 excluded) or averages in — identical
        # arithmetic, about a third of the dispatches.
        m0, m1 = mask_s[:, 0], mask_s[:, 1]
        both = m0 & m1

        def merge(v_s):
            v0, v1 = v_s[:, 0], v_s[:, 1]
            out = np.where(m0, v0, np.where(m1, v1, 1.0))
            return np.where(both, (v0 + v1) / 2, out)

        return merge(hit_s), merge(hot_cov_s), merge(bulk_cov_s), miss_s

    hit = np.ones(n)
    hot_cov = np.ones(n)
    bulk_cov = np.ones(n)
    seen = np.zeros(n, dtype=bool)
    for s in range(S):
        m = mask_s[:, s]
        first = m & ~seen
        again = m & seen
        hit = np.where(first, hit_s[:, s],
                       np.where(again, (hit + hit_s[:, s]) / 2, hit))
        hot_cov = np.where(first, hot_cov_s[:, s],
                           np.where(again, (hot_cov + hot_cov_s[:, s]) / 2,
                                    hot_cov))
        bulk_cov = np.where(first, bulk_cov_s[:, s],
                            np.where(again,
                                     (bulk_cov + bulk_cov_s[:, s]) / 2,
                                     bulk_cov))
        seen = seen | m
    return hit, hot_cov, bulk_cov, miss_s


def _queue_tail_ms(servers, service_ms, qps, tail_mult, tail_mass, k):
    """Vectorized :meth:`QueueModel.tail_latency_ms` (M/M/k + pools).

    ``k`` is the per-pool server count (precomputed from the integer
    core count, see ``_k_table``).  The Erlang-B recurrence runs to the
    largest ``k`` in the batch, masked per element, reproducing the
    scalar iteration.
    """
    rho = (qps * (service_ms / 1000.0)) / servers
    service_tail = tail_mult * service_ms

    stable = np.minimum(rho, 0.995)
    offered = stable * k
    # Erlang-B recurrence, then Erlang-C.
    b = np.ones_like(offered)
    k_max = int(k.max())
    # When every member shares one pool size (the common homogeneous
    # case) the per-iteration mask is all-true and can be skipped —
    # identical recurrence, one dispatch instead of three per step.
    uniform_k = int(k.min()) == k_max
    for i in range(1, k_max + 1):
        t = offered * b
        b = t / (i + t) if uniform_k else np.where(i <= k, t / (i + t), b)
    rho_e = offered / k
    c = b / ((1.0 - rho_e) + rho_e * b)
    p_wait = np.where(offered == 0, 0.0,
                      np.minimum(1.0, np.maximum(0.0, c)))
    log_arg = np.where(p_wait > tail_mass, p_wait / tail_mass, 1.0)
    wait = np.where(p_wait > tail_mass,
                    service_ms / (k * (1.0 - stable)) * np.log(log_arg),
                    0.0)
    overload = np.where(rho > 0.995,
                        service_ms * k * 40.0 * (rho - 0.995), 0.0)
    return np.where(rho <= 0, service_tail, service_tail + wait + overload)


def _net_latency_factor(net_demand, satisfaction, net_gain):
    """Vectorized :func:`repro.perf.interference.network_latency_factor`."""
    shortfall = 1.0 - satisfaction
    ratio = 1.0 / np.maximum(1e-3, satisfaction)
    factor = np.minimum(
        1.0 + net_gain * (ratio - 1.0) + 25.0 * (ratio - 1.0) ** 2, 60.0)
    return np.where((net_demand <= 0) | (shortfall <= 1e-9), 1.0, factor)
