"""Scheduler reporting: goodput and TCO roll-ups, policy comparisons.

Turns a :class:`~repro.sched.scheduler.ScheduleOutcome` (plus the
fleet run it metered) into the numbers the paper's cluster study
reports: BE core-hours harvested, the utilization they add on top of
the latency-critical load, and the throughput/TCO gain of that uplift
through :class:`~repro.analysis.tco.TcoModel` — versus the ``static``
provisioning baseline, which is replayed over the *same* fleet slack
view so the comparison holds SLO attainment exactly equal by
construction.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

import numpy as np

from ..analysis.tco import TcoModel, TcoParameters
from ..fleet.aggregate import FleetSlackView
from ..fleet.simulator import FleetResult
from .jobs import BeJob
from .policies import Policy
from .scheduler import ScheduleOutcome, run_schedule


def fleet_core_seconds(slack: FleetSlackView, skip_s: float = 0.0) -> float:
    """Physical core-seconds the fleet offered from ``skip_s`` on."""
    if not slack.epochs:
        return 0.0
    keep = slack.epoch_t_s >= skip_s
    duration = float(slack.epoch_len_s[keep].sum())
    return float(slack.leaf_cores.sum()) * duration


def credited_core_seconds(outcome: ScheduleOutcome,
                          skip_s: float = 0.0) -> float:
    """Credited core-seconds earned in epochs starting at ``skip_s``+.

    Reads the outcome's per-epoch accounting columns so the credit can
    be windowed consistently with the other TCO inputs; an outcome with
    no store (empty job list) credited nothing.
    """
    if outcome.store is None or not len(outcome.store):
        return 0.0
    t = outcome.store.column("t_s")
    credited = outcome.store.column("credited_core_s")
    return float(credited[t >= skip_s].sum())


def lc_utilization(fleet: FleetResult, skip_s: float = 0.0) -> float:
    """Leaf-weighted mean LC load across the fleet (the TCO baseline).

    The offered LC load *is* the utilization a no-colocation fleet
    runs at (§5.3's 20-90% band) — what the servers would do with
    their cores if no best-effort work were scheduled onto them.
    """
    telemetry = fleet.telemetry
    t = telemetry.times()
    if not len(t):
        return 0.0
    keep = t >= skip_s
    if not keep.any():
        return 0.0
    loads = telemetry.column("load")[keep]
    weights = np.asarray(telemetry.cluster_leaves, dtype=float)
    return float((loads @ weights).mean() / weights.sum())


def tco_summary(outcome: ScheduleOutcome, fleet: FleetResult,
                skip_s: float = 0.0,
                params: TcoParameters = TcoParameters()) -> Dict[str, float]:
    """The scheduler's feed into the §5.3 cost model.

    Returns the LC-only baseline utilization, the utilization the
    scheduler's *credited* BE work adds on top of it, and the
    throughput/TCO gain of that uplift (power cost of the extra
    utilization included).  All three utilizations are measured over
    the same post-``skip_s`` window, so a warm-up prefix excluded from
    the LC baseline is excluded from the harvested credit too.
    """
    if fleet.slack is None:
        raise ValueError("the fleet run carries no slack view; run it "
                         "with slack_epoch_s to schedule over it")
    total = fleet_core_seconds(fleet.slack, skip_s=skip_s)
    credited = credited_core_seconds(outcome, skip_s=skip_s)
    harvested_util = credited / total if total else 0.0
    base_util = lc_utilization(fleet, skip_s=skip_s)
    model = TcoModel(params)
    gain = model.harvest_gain(base_util, harvested_util) if base_util > 0 \
        else 0.0
    return {
        "lc_utilization": base_util,
        "harvested_utilization": harvested_util,
        "goodput_core_h": outcome.goodput_core_s / 3600.0,
        "credited_core_h": outcome.credited_core_s / 3600.0,
        "tco_gain": gain,
    }


def compare_policies(slack: FleetSlackView, jobs: Sequence[BeJob],
                     policies: Sequence[Union[str, Policy]] = (
                         "slack-greedy", "static"),
                     queue_limit: int = 0) -> Dict[str, ScheduleOutcome]:
    """Replay several policies over one fleet's slack view.

    The fleet is simulated once; each policy is pure accounting over
    the same signals, so per-cluster SLO attainment is *identical*
    across the compared outcomes — the "equal SLO" leg of the PR-5
    gate holds by construction, and the goodput ratios isolate the
    placement decision itself.
    """
    out: Dict[str, ScheduleOutcome] = {}
    for policy in policies:
        outcome = run_schedule(slack, jobs, policy=policy,
                               queue_limit=queue_limit)
        out[outcome.policy] = outcome
    return out


def render_comparison(outcomes: Dict[str, ScheduleOutcome],
                      fleet: Optional[FleetResult] = None,
                      skip_s: float = 0.0,
                      baseline: str = "static") -> str:
    """Human-readable policy comparison table (what the CLI prints)."""
    lines = []
    header = (f"{'policy':<14} {'done':>5} {'rej':>4} {'evict':>6} "
              f"{'goodput':>10} {'credited':>10} {'wasted':>9} {'vs-static':>10}")
    lines.append(header)
    lines.append("-" * len(header))
    base = outcomes.get(baseline)
    for name, outcome in outcomes.items():
        s = outcome.summary()
        if base is not None and name != baseline \
                and base.goodput_core_s > 0:
            vs = f"{outcome.goodput_core_s / base.goodput_core_s:>9.2f}x"
        else:
            vs = f"{'-':>10}"
        lines.append(
            f"{name:<14} {s['completed']:>5} {s['rejected']:>4} "
            f"{s['evictions']:>6} {s['goodput_core_h']:>8.1f}ch "
            f"{s['credited_core_h']:>8.1f}ch {s['wasted_core_h']:>7.1f}ch "
            f"{vs}")
    if fleet is not None and fleet.slack is not None:
        for name, outcome in outcomes.items():
            tco = tco_summary(outcome, fleet, skip_s=skip_s)
            lines.append(
                f"{name}: +{tco['harvested_utilization']:.1%} fleet "
                f"utilization from scheduled BE (LC baseline "
                f"{tco['lc_utilization']:.1%}) -> "
                f"{tco['tco_gain']:+.1%} throughput/TCO")
    return "\n".join(lines) + "\n"
