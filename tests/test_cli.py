"""CLI argument hardening: bad inputs fail fast with clear errors.

Every failure mode here used to (or plausibly could) surface as a deep
traceback from inside the engine stack; the contract pinned by this
module is that they all exit through :class:`SystemExit` with a
message naming the offending argument — a non-zero exit code and no
stack trace for the operator to dig through.
"""

import json

import pytest

from repro.cli import SCHED_POLICIES, build_parser, main
from repro.sim.runner import JOBS_ENV


class TestJobsArgument:
    @pytest.mark.parametrize("command", ["scenario", "fleet", "sched",
                                         "fig4", "all"])
    @pytest.mark.parametrize("jobs", ["0", "-2"])
    def test_non_positive_jobs_rejected(self, command, jobs):
        with pytest.raises(SystemExit, match="--jobs must be >= 1"):
            main([command, "--jobs", jobs])

    def test_jobs_warns_on_serial_commands(self):
        import argparse

        from repro.cli import _apply_jobs
        with pytest.warns(UserWarning, match="no effect"):
            _apply_jobs(argparse.Namespace(experiment="fig1", jobs=2))

    def test_sched_counts_as_a_sweep_command(self, monkeypatch):
        import argparse
        import warnings

        from repro.cli import _apply_jobs
        monkeypatch.delenv(JOBS_ENV, raising=False)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            _apply_jobs(argparse.Namespace(experiment="sched", jobs=3))
        import os
        assert os.environ[JOBS_ENV] == "3"


class TestShardLeavesArgument:
    @pytest.mark.parametrize("command", ["fleet", "sched"])
    @pytest.mark.parametrize("value", ["0", "-4"])
    def test_non_positive_shard_leaves_rejected(self, command, value):
        scenario = "mixed-fleet-1k" if command == "fleet" \
            else "batch-backlog-1k"
        with pytest.raises(SystemExit, match="positive leaf count"):
            main([command, scenario, "--shard-leaves", value])

    def test_error_is_raised_before_any_simulation(self):
        # A bad shard size on a nonexistent scenario still reports the
        # shard size first: validation is eager, nothing was resolved
        # or run.
        with pytest.raises(SystemExit, match="positive leaf count"):
            main(["fleet", "no-such-scenario", "--shard-leaves", "0"])


class TestUnknownScenarios:
    @pytest.mark.parametrize("command", ["scenario", "fleet", "sched"])
    def test_unknown_name_lists_registered_scenarios(self, command):
        with pytest.raises(SystemExit,
                           match="unknown scenario 'no-such-scenario'"):
            main([command, "no-such-scenario"])

    @pytest.mark.parametrize("command", ["scenario", "fleet", "sched"])
    def test_missing_spec_file_is_a_clean_error(self, command, tmp_path):
        path = tmp_path / "nope.yaml"
        with pytest.raises(SystemExit, match="cannot read spec file"):
            main([command, str(path)])

    def test_unsupported_extension_is_a_clean_error(self, tmp_path):
        path = tmp_path / "spec.toml"
        path.write_text("x = 1\n")
        with pytest.raises(SystemExit, match="unsupported spec file"):
            main(["scenario", str(path)])

    @pytest.mark.parametrize("command", ["scenario", "fleet", "sched"])
    def test_no_argument_asks_for_one(self, command):
        with pytest.raises(SystemExit, match="registered"):
            main([command])


class TestShapeMismatches:
    def test_sched_rejects_member_scenarios(self):
        with pytest.raises(SystemExit, match="not schedule-shaped"):
            main(["sched", "diurnal-spike"])

    def test_sched_hints_fleet_command_for_fleet_scenarios(self):
        with pytest.raises(SystemExit, match="'fleet' command"):
            main(["sched", "follow-the-sun"])

    def test_fleet_hints_sched_command_for_schedule_scenarios(self):
        with pytest.raises(SystemExit, match="'sched' command"):
            main(["fleet", "diurnal-scavenger"])

    def test_sched_policy_choices_are_enforced_by_argparse(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["sched", "batch-backlog-1k",
                                       "--policy", "fifo"])
        assert excinfo.value.code == 2
        assert "slack-greedy" in capsys.readouterr().err
        # The CLI mirrors the policy tuple to keep parser construction
        # import-light; this pin fails if the mirror ever drifts.
        from repro.sched.policies import POLICIES
        assert SCHED_POLICIES == POLICIES


class TestBadSpecFiles:
    def test_invalid_spec_content_is_a_clean_error(self, tmp_path,
                                                   monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "1")
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"name": "bad", "members": [
            {"lc": "websearch", "be": "no-such-task"}]}))
        with pytest.raises(SystemExit, match="unknown BE workload"):
            main(["scenario", str(path)])

    def test_schedule_spec_errors_name_the_field(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "1")
        path = tmp_path / "bad_sched.json"
        path.write_text(json.dumps({
            "name": "bad", "duration_s": 60, "warmup_s": 10,
            "schedule": {
                "fleet": {"clusters": [
                    {"name": "only", "leaves": 2, "managed": False,
                     "trace": {"kind": "constant", "load": 0.4}}]},
                "jobs": [{"name": "j", "demand_core_s": -1}],
            }}))
        with pytest.raises(SystemExit, match="demand_core_s"):
            main(["sched", str(path)])
