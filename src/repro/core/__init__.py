"""Heracles: the paper's contribution — a feedback controller that
coordinates four isolation mechanisms to colocate BE tasks with an LC
service without SLO violations."""

from .config import HeraclesConfig
from .controller import HeraclesController
from .core_memory import CoreMemoryController
from .dram_model import LcDramBandwidthModel, profile_lc_dram_model
from .hw_dram import (HardwareCountedCoreMemoryController,
                      attach_hardware_counted_heracles)
from .mba import MbaCoreMemoryController, attach_mba_heracles
from .network import NetworkController
from .power import PowerController, guaranteed_frequency_ghz
from .state import ControlState, GrowthPhase
from .top_level import TopLevelController

__all__ = [
    "HeraclesConfig", "HeraclesController",
    "CoreMemoryController",
    "LcDramBandwidthModel", "profile_lc_dram_model",
    "HardwareCountedCoreMemoryController",
    "attach_hardware_counted_heracles",
    "MbaCoreMemoryController", "attach_mba_heracles",
    "NetworkController",
    "PowerController", "guaranteed_frequency_ghz",
    "ControlState", "GrowthPhase",
    "TopLevelController",
]
