"""Load traces: the time-varying demand offered to LC services.

The paper drives its workloads with anonymized production traces; those
are not available, so we generate synthetic traces with the properties
the paper states: pronounced diurnal swings (websearch load varies
between 20% and 90% in the 12-hour cluster trace of §5.3) plus short-term
noise and occasional spikes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np


class LoadTrace:
    """Base class: a deterministic mapping from time to offered load."""

    def load_at(self, t_s: float) -> float:
        raise NotImplementedError

    def clipped(self, t_s: float) -> float:
        return min(1.0, max(0.0, self.load_at(t_s)))


@dataclass
class ConstantLoad(LoadTrace):
    """Fixed load fraction (single-server experiments, Figs. 4-7)."""

    load: float

    def __post_init__(self):
        if not 0.0 <= self.load <= 1.0:
            raise ValueError("load must be in [0, 1]")

    def load_at(self, t_s: float) -> float:
        return self.load


@dataclass
class StepLoad(LoadTrace):
    """Load that steps between levels at given times (spike testing)."""

    times_s: Sequence[float]
    loads: Sequence[float]

    def __post_init__(self):
        if len(self.times_s) != len(self.loads):
            raise ValueError("times and loads must have equal length")
        if not self.times_s:
            raise ValueError("need at least one step")
        if list(self.times_s) != sorted(self.times_s):
            raise ValueError("step times must be non-decreasing")
        for load in self.loads:
            if not 0.0 <= load <= 1.0:
                raise ValueError("loads must be in [0, 1]")

    def load_at(self, t_s: float) -> float:
        current = self.loads[0]
        for time, load in zip(self.times_s, self.loads):
            if t_s >= time:
                current = load
            else:
                break
        return current


@dataclass
class DiurnalTrace(LoadTrace):
    """Smooth diurnal swing with optional noise.

    ``load(t) = low + (high - low) * (1 - cos(2 pi t / period)) / 2``
    starting at ``low``, peaking at ``period/2``.  A 12-hour window of a
    daily pattern (trough to peak and back) matches the §5.3 trace shape.
    """

    low: float = 0.20
    high: float = 0.90
    period_s: float = 12 * 3600.0
    noise_sigma: float = 0.0
    seed: int = 0

    def __post_init__(self):
        if not 0.0 <= self.low <= self.high <= 1.0:
            raise ValueError("need 0 <= low <= high <= 1")
        if self.period_s <= 0:
            raise ValueError("period must be positive")
        self._rng = np.random.default_rng(self.seed)
        self._noise_cache = {}

    def load_at(self, t_s: float) -> float:
        phase = 2.0 * math.pi * (t_s / self.period_s)
        base = self.low + (self.high - self.low) * (1.0 - math.cos(phase)) / 2.0
        if self.noise_sigma <= 0:
            return min(self.high, max(0.0, base))
        # Deterministic per-minute AR(1) noise: real traffic noise is
        # autocorrelated (users arrive and leave over minutes, not in
        # one-minute i.i.d. jumps), so each minute's deviation decays
        # from the previous one with a small innovation.  Computed
        # recursively and cached so the trace is reproducible regardless
        # of query order.
        bucket = int(t_s // 60)
        noise = self._noise_for_bucket(bucket)
        # `high` is the observed peak of the trace, noise included: the
        # cluster SLO is defined at that load, so by construction the
        # trace never exceeds it.
        return min(self.high, max(0.0, base + noise))

    _AR_COEFF = 0.9

    def _noise_for_bucket(self, bucket: int) -> float:
        if bucket <= 0:
            return 0.0
        if bucket in self._noise_cache:
            return self._noise_cache[bucket]
        # Innovation variance chosen so the stationary std is noise_sigma.
        innovation = self.noise_sigma * math.sqrt(1.0 - self._AR_COEFF ** 2)
        start = bucket
        while start > 1 and (start - 1) not in self._noise_cache:
            start -= 1
        value = self._noise_cache.get(start - 1, 0.0)
        for b in range(start, bucket + 1):
            rng = np.random.default_rng((self.seed, b))
            value = self._AR_COEFF * value + float(
                rng.normal(0.0, innovation))
            self._noise_cache[b] = value
        return value


@dataclass
class ReplayTrace(LoadTrace):
    """Replay an explicit sequence of load samples at a fixed interval.

    Holds the last value beyond the end — useful for feeding recorded or
    externally generated traces into the simulator.
    """

    samples: Sequence[float]
    interval_s: float = 1.0

    def __post_init__(self):
        if not self.samples:
            raise ValueError("need at least one sample")
        if self.interval_s <= 0:
            raise ValueError("interval must be positive")
        for s in self.samples:
            if not 0.0 <= s <= 1.0:
                raise ValueError("samples must be in [0, 1]")

    def load_at(self, t_s: float) -> float:
        idx = int(max(0.0, t_s) / self.interval_s)
        idx = min(idx, len(self.samples) - 1)
        return self.samples[idx]


@dataclass(frozen=True)
class LoadSpike:
    """One injected load spike: hold ``load`` for ``duration_s`` seconds.

    Args:
        at_s: spike start time (simulated seconds).
        duration_s: how long the spike holds.
        load: offered load during the spike, in [0, 1].
    """

    at_s: float
    duration_s: float
    load: float

    def __post_init__(self):
        if self.at_s < 0:
            raise ValueError("spike start must be >= 0")
        if self.duration_s <= 0:
            raise ValueError("spike duration must be positive")
        if not 0.0 <= self.load <= 1.0:
            raise ValueError("spike load must be in [0, 1]")

    def active(self, t_s: float) -> bool:
        """True while the spike holds at time ``t_s``."""
        return self.at_s <= t_s < self.at_s + self.duration_s


@dataclass
class PhasedTrace(LoadTrace):
    """A base trace evaluated with a fixed time offset.

    ``load(t) = base.load(t + phase_s)`` — the trace's own clock runs
    ``phase_s`` seconds ahead of the simulation clock.  This is the
    fleet layer's follow-the-sun primitive: clusters in different
    regions share one diurnal shape but peak at different simulated
    times (a cluster with ``phase_s = period / 3`` is eight hours ahead
    of an unshifted one on a 24-hour trace).  Negative offsets delay
    the trace instead.
    """

    base: LoadTrace
    phase_s: float

    def load_at(self, t_s: float) -> float:
        """Base load at the phase-shifted time ``t_s + phase_s``."""
        return self.base.load_at(t_s + self.phase_s)


@dataclass
class SpikeOverlay(LoadTrace):
    """A base trace with load spikes injected at fixed timestamps.

    During a spike the offered load is ``max(base, spike.load)`` — a
    traffic surge lifts demand, it never sheds it.  Overlapping spikes
    take the highest spike load.  This is the scenario layer's
    load-spike injection primitive; any :class:`LoadTrace` can be the
    base.
    """

    base: LoadTrace
    spikes: Sequence[LoadSpike]

    def __post_init__(self):
        if not self.spikes:
            raise ValueError("need at least one spike (or drop the overlay)")
        self.spikes = tuple(self.spikes)

    def load_at(self, t_s: float) -> float:
        """Base load lifted to the highest spike active at ``t_s``."""
        load = self.base.load_at(t_s)
        for spike in self.spikes:
            if spike.active(t_s):
                load = max(load, spike.load)
        return load


def websearch_cluster_trace(seed: int = 7,
                            noise_sigma: float = 0.02) -> DiurnalTrace:
    """The §5.3 12-hour cluster trace: diurnal 20%-90% swing."""
    return DiurnalTrace(low=0.20, high=0.90, period_s=12 * 3600.0,
                        noise_sigma=noise_sigma, seed=seed)


def load_sweep(points: int = 19, low: float = 0.05,
               high: float = 0.95) -> List[float]:
    """The 19-point load axis used throughout the evaluation (5%..95%)."""
    if points < 2:
        raise ValueError("need at least two points")
    step = (high - low) / (points - 1)
    return [round(low + i * step, 10) for i in range(points)]
