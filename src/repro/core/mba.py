"""DRAM bandwidth *isolation* — the hardware the paper asks for.

The paper's final contribution is to "establish the need for hardware
mechanisms to monitor and isolate DRAM bandwidth, which can improve
Heracles' accuracy and eliminate the need for offline information"
(§1), and §2 notes that "the lack of hardware support for memory
bandwidth isolation complicates and constrains the efficiency of any
system that dynamically manages workload colocation".  Intel later
shipped exactly this as Memory Bandwidth Allocation (MBA): per-core
request-rate throttles that cap a task's DRAM traffic.

This module adds the mechanism to the simulated hardware (a per-task
``dram_throttle`` fraction, applied to the task's channel demand) and a
core & memory subcontroller variant that uses it: when DRAM nears
saturation it *throttles BE bandwidth* instead of *removing BE cores*,
so compute-bound phases of the BE task keep running.  When headroom
returns, the throttle relaxes before any core is granted.

The bench (`benchmarks/test_bench_mba.py`) quantifies the paper's
claim: against a DRAM-heavy BE task, bandwidth isolation preserves more
BE cores — and therefore more EMU — than core removal, at equal safety.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..hardware.counters import CounterBank
from ..sim.actuators import Actuators
from ..sim.engine import ColocationSim
from ..sim.monitors import LatencyMonitor
from .config import HeraclesConfig
from .core_memory import CoreMemoryController
from .state import ControlState

#: Lowest throttle MBA can apply (Intel MBA bottoms out around 10-20%).
MIN_THROTTLE = 0.10
#: Multiplicative step per 2-second control action.
THROTTLE_STEP = 0.85


class MbaCoreMemoryController(CoreMemoryController):
    """Algorithm 2 with bandwidth throttling in both directions.

    * **Saturation response**: tighten the BE throttle (cheap,
      reversible, leaves cores running); only when the throttle is
      exhausted fall back to removing cores, as the paper's controller
      must on 2015 hardware.
    * **Growth**: when one more BE core would saturate the channels,
      tighten the throttle and grant the core anyway — for BE tasks with
      any compute component, more cores at lower per-core bandwidth is
      strictly more progress at the same channel load.
    """

    def _on_core_growth_dram_blocked(self) -> None:
        if self.actuators.be_dram_throttle > MIN_THROTTLE:
            # Tighten-for-core is an atomic trade: if the slack/budget
            # gates refuse the core anyway, restore the throttle —
            # otherwise a compute-bound BE task pays bandwidth for
            # nothing.
            before = self.actuators.be_dram_throttle
            cores_before = self.actuators.be_cores
            self.actuators.lower_be_dram_throttle()
            self._try_grant_core()
            if self.actuators.be_cores == cores_before:
                # The slack/budget gates refused the core: undo the
                # throttle and hand the round to cache growth instead,
                # exactly as the 2015 controller would.
                self.actuators.set_be_dram_throttle(before)
                super()._on_core_growth_dram_blocked()
        else:
            super()._on_core_growth_dram_blocked()

    def step(self, now_s: float) -> None:
        if not self.due(now_s):
            return
        # Relax the throttle before anything else when there is clear
        # headroom; the control loop then handles growth normally.
        bw = self.counters.worst_socket_dram_bw_gbps()
        throttle = self.actuators.be_dram_throttle
        if (throttle < 1.0
                and bw + self.be_bw_per_core_gbps() < 0.9 * self.dram_limit_gbps):
            self.actuators.raise_be_dram_throttle()
        self._mba_step(now_s)

    def _mba_step(self, now_s: float) -> None:
        """Parent control loop with the overage branch replaced."""
        self._last_step_s = now_s
        self._now_s = now_s
        total_bw = self.measure_dram_bw()

        if total_bw > self.dram_limit_gbps and self.actuators.be_cores > 0:
            if self.actuators.be_dram_throttle > MIN_THROTTLE:
                self.actuators.lower_be_dram_throttle()
            else:
                # Throttle exhausted: the 2015 fallback.
                import math
                overage = total_bw - self.dram_limit_gbps
                to_remove = max(1, math.ceil(
                    overage / self.be_bw_per_core_gbps()))
                self.actuators.remove_be_cores(to_remove)
            self._pending = None
            return

        if self._pending is not None:
            self._finish_llc_check()
        else:
            self._last_slack_drop *= 0.8
            self._llc_slack_drop *= 0.8

        over_budget = self.actuators.be_cores - self.be_core_budget()
        if over_budget > 0:
            self.actuators.remove_be_cores(over_budget)
            self._pending = None
            return

        if not self.state.can_grow_be(now_s, self.actuators.be_enabled):
            return
        from .state import GrowthPhase
        if self.state.phase is GrowthPhase.GROW_LLC:
            self._grow_llc_step()
        else:
            self._grow_cores_step()


def attach_mba_heracles(sim: ColocationSim,
                        config: Optional[HeraclesConfig] = None):
    """Heracles with MBA-style DRAM bandwidth isolation.

    Combines the per-core counters of :mod:`repro.core.hw_dram` (MBM)
    with the bandwidth throttle (MBA) — the full RDT feature set the
    paper anticipates.
    """
    from .hw_dram import attach_hardware_counted_heracles
    controller = attach_hardware_counted_heracles(sim, config=config)
    base = controller.core_memory
    controller.core_memory = MbaCoreMemoryController(
        base.config, controller.state, sim.actuators, sim.counters,
        dram_model=None,  # type: ignore[arg-type]
        lc_task=sim.lc.name, be_task=sim.be.name,
        be_throughput_fn=base.be_throughput_fn,
        monitor=sim.latency_monitor,
        slo_target_ms=sim.lc.profile.slo_latency_ms)
    # Reuse the counter-based LC bandwidth estimate.
    controller.core_memory.lc_bw_model_gbps = base.lc_bw_model_gbps
    return controller
