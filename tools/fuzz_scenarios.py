#!/usr/bin/env python
"""Seeded scenario-fuzz soak: the open-ended version of the CI fuzzer.

Usage: ``python tools/fuzz_scenarios.py [--examples 1000] [--seed 0]
[--shape all|fleet|members]``

Generates random valid :class:`ScenarioSpec` trees (fleet and schedule
shapes with chaos/actuator injections, plus member scenarios) from one
``random.Random(seed)`` stream and checks the engine equivalence
contracts on every one:

* fleet-like: bit-identical fleet summaries and per-cluster history
  columns across engine ∈ {sharded, mega} × shard_leaves ∈ {1, 3,
  as-drawn} × ``REPRO_JOBS`` ∈ {1, 4};
* members: bitwise rerun determinism, and (single member) the batch
  backend vs the scalar reference under the ``rtol=1e-9`` contract.

The pinned 200-example matrix runs in CI via
``tests/test_scenario_fuzz.py``; this tool exists for long soaks
(``--examples 1000`` in the manual-dispatch workflow) and for
reproducing a failure.  On the first divergence the offending spec is
written verbatim (via :meth:`ScenarioSpec.to_data`) to a
``fuzz-fail-seed<S>-ex<K>.json`` replay file and the tool prints the
one command that re-checks exactly that scenario::

    python tools/fuzz_scenarios.py --replay fuzz-fail-seed0-ex37.json

``--replay`` accepts any scenario file ``load_scenario`` can read, so
a hand-minimised copy of the replay file works too.

Exits non-zero on the first divergence.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import random
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

import numpy as np  # noqa: E402

from repro.scenarios import run_scenario  # noqa: E402
from repro.scenarios.spec import (CONTROLLERS, INJECTION_ACTIONS,  # noqa: E402
                                  FleetSpec, InjectionSpec, JobSpec,
                                  ScenarioSpec, ScheduleSpec, ShardSpec,
                                  TraceSpec, WorkloadSpec)
from repro.sim.runner import JOBS_ENV  # noqa: E402
from repro.workloads.best_effort import BE_PROFILES  # noqa: E402
from repro.workloads.latency_critical import LC_PROFILES  # noqa: E402

LCS = tuple(sorted(LC_PROFILES))
BES = tuple(sorted(BE_PROFILES))

VALUE_GRIDS = {
    "set_be_cores": (1, 2, 4),
    "set_llc_split": (1, 3, 6),
    "set_be_net_ceil": (0.5, 2.0, 9.0),
    "straggler": (0.25, 0.5, 0.75, 1.0),
    "power_cap": (0.4, 0.7, 1.0),
    "partition": (5.0, 15.0, 30.0),
}

CLUSTER_FIELDS = ("t_s", "load", "root_latency_ms", "root_slo_fraction",
                  "emu")
MEMBER_FLOAT_FIELDS = (
    "t_s", "load", "tail_latency_ms", "slo_fraction", "be_throughput_norm",
    "emu", "dram_bw_gbps", "dram_utilization", "cpu_utilization",
    "power_fraction_of_tdp", "lc_net_gbps", "be_net_gbps",
    "link_utilization",
)


class Divergence(AssertionError):
    """Two runs of the same spec disagreed."""


def gen_trace(rng: random.Random) -> TraceSpec:
    if rng.random() < 0.5:
        return TraceSpec(kind="constant",
                         load=rng.choice((0.3, 0.5, 0.7)))
    return TraceSpec(kind="diurnal", low=0.2,
                     high=rng.choice((0.6, 0.85)), period_s=120.0,
                     noise_sigma=0.0)


def gen_injection(rng: random.Random, duration: float,
                  cluster_leaves=None, n_members=None) -> InjectionSpec:
    action = rng.choice(INJECTION_ACTIONS)
    value = (rng.choice(VALUE_GRIDS[action])
             if action in VALUE_GRIDS else None)
    at_s = float(rng.randrange(int(duration)))
    cluster = None
    leaf = None
    if cluster_leaves is not None:
        if rng.random() < 0.5:
            cluster = rng.choice(sorted(cluster_leaves))
            if rng.random() < 0.5:
                leaf = rng.randrange(cluster_leaves[cluster])
    elif rng.random() < 0.5:
        leaf = rng.randrange(n_members)
    return InjectionSpec(at_s=at_s, action=action, value=value,
                         cluster=cluster, leaf=leaf)


def gen_fleet_like(rng: random.Random) -> ScenarioSpec:
    clusters = tuple(
        ShardSpec(name=f"c{i}", leaves=rng.randint(2, 4),
                  lc=rng.choice(LCS),
                  be_mix=tuple(rng.sample(BES, rng.randint(1, 2))),
                  trace=gen_trace(rng),
                  managed=rng.random() < 0.5)
        for i in range(rng.randint(1, 2)))
    fleet = FleetSpec(clusters=clusters,
                      shard_leaves=rng.choice((2, 8)),
                      record_period_s=5.0)
    duration = float(rng.choice((40, 60)))
    cluster_leaves = {c.name: c.leaves for c in clusters}
    kwargs = dict(
        name="fuzz-fleet", duration_s=duration,
        dt_s=rng.choice((0.5, 1.0)),
        warmup_s=float(rng.choice((0, 10))),
        seed=rng.randint(0, 5),
        injections=tuple(gen_injection(rng, duration,
                                       cluster_leaves=cluster_leaves)
                         for _ in range(rng.randint(0, 5))))
    if rng.random() < 0.5:
        jobs = tuple(
            JobSpec(name=f"job{j}",
                    demand_core_s=float(rng.choice((40, 160))),
                    max_cores=rng.choice((1, 4)),
                    priority=rng.choice((0, 1)),
                    arrival_s=float(rng.choice((0, 15))),
                    count=rng.choice((1, 2)))
            for j in range(rng.randint(0, 2)))
        return ScenarioSpec(schedule=ScheduleSpec(fleet=fleet, jobs=jobs,
                                                  epoch_s=20.0),
                            **kwargs)
    return ScenarioSpec(fleet=fleet, **kwargs)


def gen_members(rng: random.Random) -> ScenarioSpec:
    n = rng.randint(1, 3)
    duration = 60.0
    members = tuple(
        WorkloadSpec(lc=rng.choice(LCS), be=rng.choice(BES),
                     trace=gen_trace(rng),
                     controller=rng.choice(CONTROLLERS))
        for _ in range(n))
    return ScenarioSpec(
        name="fuzz-members", duration_s=duration, warmup_s=15.0,
        seed=rng.randint(0, 5), members=members,
        injections=tuple(gen_injection(rng, duration, n_members=n)
                         for _ in range(rng.randint(0, 4))))


def run_with_jobs(spec: ScenarioSpec, jobs: int):
    saved = os.environ.get(JOBS_ENV)
    os.environ[JOBS_ENV] = str(jobs)
    try:
        return run_scenario(spec, processes=None)
    finally:
        if saved is None:
            os.environ.pop(JOBS_ENV, None)
        else:
            os.environ[JOBS_ENV] = saved


def with_fleet(spec: ScenarioSpec, **overrides) -> ScenarioSpec:
    if spec.schedule is not None:
        fleet = dataclasses.replace(spec.schedule.fleet, **overrides)
        return dataclasses.replace(
            spec, schedule=dataclasses.replace(spec.schedule, fleet=fleet))
    return dataclasses.replace(
        spec, fleet=dataclasses.replace(spec.fleet, **overrides))


def check_fleet_like(spec: ScenarioSpec) -> None:
    base = run_with_jobs(spec, 1)
    variants = (
        ("sharded shard=1 jobs=1",
         with_fleet(spec, engine="sharded", shard_leaves=1), 1),
        ("sharded shard=3 jobs=4",
         with_fleet(spec, engine="sharded", shard_leaves=3), 4),
        ("mega jobs=1", with_fleet(spec, engine="mega"), 1),
    )
    for what, variant, jobs in variants:
        got = run_with_jobs(variant, jobs)
        if got.fleet.summary(skip_s=spec.warmup_s) != \
                base.fleet.summary(skip_s=spec.warmup_s):
            raise Divergence(f"{what}: fleet summary diverged")
        for outcome in base.fleet.clusters:
            other = got.fleet.cluster(outcome.name)
            for name in CLUSTER_FIELDS:
                if not np.array_equal(other.history.column(name),
                                      outcome.history.column(name)):
                    raise Divergence(f"{what}: cluster {outcome.name!r} "
                                     f"column {name!r} diverged")
        if base.schedule is not None and \
                got.schedule.summary() != base.schedule.summary():
            raise Divergence(f"{what}: schedule summary diverged")


def check_members(spec: ScenarioSpec) -> None:
    batch_spec = dataclasses.replace(spec, engine="batch")
    first = run_scenario(batch_spec)
    second = run_scenario(batch_spec)
    for i, (a, b) in enumerate(zip(first.members, second.members)):
        for name in MEMBER_FLOAT_FIELDS:
            if not np.array_equal(a.history.column(name),
                                  b.history.column(name)):
                raise Divergence(f"member {i}: rerun column {name!r} "
                                 f"diverged")
    if len(spec.members) == 1:
        scalar = run_scenario(dataclasses.replace(spec, engine="scalar"))
        a = scalar.members[0].history
        b = first.members[0].history
        for name in MEMBER_FLOAT_FIELDS:
            try:
                np.testing.assert_allclose(a.column(name), b.column(name),
                                           rtol=1e-9, atol=1e-12)
            except AssertionError as exc:
                raise Divergence(f"scalar vs batch: column {name!r} "
                                 f"diverged") from exc


def check_spec(spec) -> None:
    """Dispatch one spec to the check its shape belongs to."""
    spec.validate()
    if spec.members:
        check_members(spec)
    else:
        check_fleet_like(spec)


def write_fail_file(spec, seed: int, index: int) -> str:
    """Persist a failing spec as a replayable scenario file.

    The file is plain ``ScenarioSpec.to_data()`` JSON — loadable by
    ``load_scenario`` and therefore by ``--replay`` — so a soak failure
    survives as an artifact instead of a scrollback ``repr``.
    """
    import json

    path = f"fuzz-fail-seed{seed}-ex{index}.json"
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(spec.to_data(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def replay(path: str) -> int:
    """Re-check one saved scenario file; 0 on pass, 1 on divergence."""
    from repro.scenarios import load_scenario

    spec = load_scenario(path)
    try:
        check_spec(spec)
    except Exception as exc:
        print(f"FAIL replaying {path}: {exc}", file=sys.stderr)
        print(f"spec: {spec!r}", file=sys.stderr)
        return 1
    print(f"OK: {path} replayed clean")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="seeded scenario-fuzz soak (engine bit-identity)")
    parser.add_argument("--examples", type=int, default=200,
                        help="scenarios to generate (default 200)")
    parser.add_argument("--seed", type=int, default=0,
                        help="base RNG seed (default 0)")
    parser.add_argument("--shape", choices=("all", "fleet", "members"),
                        default="all",
                        help="restrict the generated scenario shapes")
    parser.add_argument("--replay", metavar="FILE", default=None,
                        help="re-check one saved scenario file instead "
                             "of generating new ones")
    args = parser.parse_args(argv)
    if args.replay is not None:
        return replay(args.replay)

    rng = random.Random(args.seed)
    started = time.time()
    for index in range(args.examples):
        if args.shape == "fleet":
            fleet_like = True
        elif args.shape == "members":
            fleet_like = False
        else:
            fleet_like = rng.random() < 0.7
        spec = gen_fleet_like(rng) if fleet_like else gen_members(rng)
        try:
            check_spec(spec)
        except Exception as exc:
            print(f"FAIL at example {index} (seed {args.seed}): {exc}",
                  file=sys.stderr)
            fail_path = write_fail_file(spec, args.seed, index)
            print(f"spec saved to {fail_path}; reproduce with:\n"
                  f"  python tools/fuzz_scenarios.py --replay {fail_path}",
                  file=sys.stderr)
            return 1
        if (index + 1) % 25 == 0 or index + 1 == args.examples:
            rate = (index + 1) / (time.time() - started)
            print(f"  {index + 1}/{args.examples} scenarios ok "
                  f"({rate:.1f}/s)", flush=True)
    print(f"OK: {args.examples} scenarios, seed {args.seed}, "
          f"{time.time() - started:.0f} s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
