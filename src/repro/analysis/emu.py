"""Effective Machine Utilization (EMU).

§5.1: "we compute the throughput rate of the batch workload with
Heracles and normalize it to the throughput of the batch workload
running alone on a single server.  We then define the Effective Machine
Utilization (EMU) = LC Throughput + BE Throughput.  Note that Effective
Machine Utilization can be above 100% due to better binpacking of
shared resources."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..metrics.windows import sample_mean


def effective_machine_utilization(lc_throughput: float,
                                  be_throughput: float) -> float:
    """EMU for one server at one instant.

    Args:
        lc_throughput: LC load as a fraction of the server's peak.
        be_throughput: BE progress normalized to the BE task alone on
            one server.
    """
    if lc_throughput < 0 or be_throughput < 0:
        raise ValueError("throughputs must be non-negative")
    return lc_throughput + be_throughput


@dataclass
class EmuSummary:
    """Aggregate EMU statistics over a run or a cluster."""

    mean: float
    minimum: float
    maximum: float

    @classmethod
    def from_series(cls, values: Sequence[float]) -> "EmuSummary":
        """Summarize an EMU series (any sequence, NumPy columns included).

        Columnar histories hand their ``column("emu")`` views straight
        in; the values are materialized once and summarized through the
        shared metric helpers.
        """
        values = [float(v) for v in values]
        if not values:
            raise ValueError("need at least one EMU sample")
        return cls(mean=sample_mean(values),
                   minimum=min(values),
                   maximum=max(values))


def cluster_emu(per_leaf_emu: Iterable[float]) -> float:
    """Cluster-level EMU: the average across leaves (each leaf is one
    server; the cluster's effective utilization is the mean)."""
    values = [float(v) for v in per_leaf_emu]
    if not values:
        raise ValueError("need at least one leaf")
    return sample_mean(values)
