"""Baseline policies Heracles is compared against."""

from .energy_prop import EnergyProportionalController, tco_comparison
from .os_isolation import (OsIsolationPoint, os_isolation_sweep,
                           violates_everywhere)
from .static import (StaticPartitionController, conservative_static,
                     optimistic_static)

__all__ = [
    "EnergyProportionalController", "tco_comparison",
    "OsIsolationPoint", "os_isolation_sweep", "violates_everywhere",
    "StaticPartitionController", "conservative_static", "optimistic_static",
]
