"""The decision-epoch scheduling engine ("Borg-lite").

:func:`run_schedule` replays a fleet run's per-leaf slack signals
(:class:`~repro.fleet.aggregate.FleetSlackView`) epoch by epoch and
manages a queue of typed :class:`~repro.sched.jobs.BeJob` work:
admission control, policy-driven placement, SLO-latch eviction, and
per-job completion/goodput accounting.

Decision loop (one iteration per epoch ``e``)::

    signals  <- slack view of epoch e-1        (reactive, like Borg:
                                                decisions see only
                                                observed telemetry)
    admit    <- arrivals with arrival_s <= t_e (queue_limit bounces)
    place    <- policy(signals, queue)         (caps: Heracles grant)
    credit   <- epoch e's actual harvest, split over placed slots
    evict    <- leaves that latched the SLO in epoch e forfeit the
                epoch's credit (jobs on them count an eviction)
    complete <- jobs whose credited progress covers their demand

Scheduling is a *metering* layer: leaf-local isolation (how many
cores BE may hold, when BE must be disabled) remains entirely
Heracles' job, exactly as in the paper's deployment where Heracles
runs under an unmodified cluster scheduler.  Placement therefore
decides which jobs the harvested headroom is credited to — and how
much of it is wasted for want of placed work — never the physics of
the leaves themselves.  That separation is what makes a scheduled run
with an empty queue *bit-identical* to the plain fleet run (the PR-5
differential gate), and every decision a pure function of the slack
view, so results are reproducible across shard counts and worker
pools.

Accounting lands in a jobs-on-the-member-axis
:class:`~repro.metrics.columns.BatchColumnStore`: per-epoch assigned
slots and credited core-seconds per job, plus shared fleet-level
columns (queue length, placed slots, harvested/credited/wasted
core-seconds, evictions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..fleet.aggregate import FleetSlackView
from ..metrics.columns import BatchColumnStore
from ..obs.trace import concat_payloads, make_sink
from .jobs import BeJob, JobRecord, JobState, expand_jobs
from .policies import PlacementContext, Policy, make_policy

#: Numerical slop when deciding a job's demand is fully retired.
_COMPLETION_EPS = 1e-9


@dataclass
class ScheduleOutcome:
    """Everything one scheduling run produced.

    ``jobs`` holds the per-job records in queue (accounting) order —
    the same order as the job axis of ``store``.  ``store`` is the
    epoch-by-epoch accounting column store (``None`` when the job list
    was empty: nothing to account).  The scalar totals are the
    headline numbers the benchmark gates.

    ``trace`` is the run's decision-trace payload (``place``/``evict``
    events: ``member`` = fleet-global leaf, ``a`` = slot cores, ``b`` =
    job index on the ``jobs`` axis), populated only under
    ``REPRO_TRACE`` — the scheduler is a pure function of the slack
    view, so the trace is identical across shard plans and pools.
    """

    policy: str
    epoch_s: float
    jobs: List[JobRecord]
    store: Optional[BatchColumnStore]
    trace: Optional[Dict[str, np.ndarray]] = None
    goodput_core_s: float = 0.0
    credited_core_s: float = 0.0
    harvested_core_s: float = 0.0
    wasted_core_s: float = 0.0
    evictions: int = 0
    rejected: int = 0

    @property
    def completed(self) -> int:
        """Number of jobs that retired their full demand."""
        return sum(1 for r in self.jobs if r.state == JobState.COMPLETED)

    @property
    def goodput_core_h(self) -> float:
        """Completed-job demand in core-hours (the TCO currency)."""
        return self.goodput_core_s / 3600.0

    def job(self, name: str) -> JobRecord:
        """Look up one job's record by name."""
        for record in self.jobs:
            if record.job.name == name:
                return record
        raise KeyError(f"no job named {name!r} in this schedule")

    def summary(self) -> Dict[str, float]:
        """Deterministic plain-float summary (the comparison contract)."""
        return {
            "policy": self.policy,
            "jobs": len(self.jobs),
            "completed": self.completed,
            "rejected": self.rejected,
            "evictions": self.evictions,
            "goodput_core_h": self.goodput_core_s / 3600.0,
            "credited_core_h": self.credited_core_s / 3600.0,
            "harvested_core_h": self.harvested_core_s / 3600.0,
            "wasted_core_h": self.wasted_core_s / 3600.0,
        }


def _check_placement(placement, records, cap, policy_name):
    """Enforce the placement invariants whatever the policy did.

    Slots per leaf must stay within the Heracles grant and slots per
    job within its parallelism limit — a buggy policy fails loudly
    here instead of silently over-crediting.
    """
    per_leaf: Dict[int, int] = {}
    for record, slots in zip(records, placement):
        total = 0
        for leaf, cores in slots.items():
            if cores < 0:
                raise ValueError(f"policy {policy_name!r} assigned negative "
                                 f"cores to leaf {leaf}")
            per_leaf[leaf] = per_leaf.get(leaf, 0) + cores
            total += cores
        if total > record.job.max_cores:
            raise ValueError(
                f"policy {policy_name!r} gave job {record.job.name!r} "
                f"{total} slots, over its max_cores="
                f"{record.job.max_cores}")
    for leaf, used in per_leaf.items():
        if used > cap[leaf]:
            raise ValueError(
                f"policy {policy_name!r} packed {used} slots onto leaf "
                f"{leaf}, over its grant of {int(cap[leaf])}")


def run_schedule(slack: FleetSlackView, jobs: Sequence[BeJob],
                 policy: Union[str, Policy] = "slack-greedy",
                 queue_limit: int = 0) -> ScheduleOutcome:
    """Schedule a job list over a fleet run's slack view.

    Args:
        slack: the per-epoch per-leaf slack signals of a fleet run
            (``ShardedFleetSim.run(..., slack_epoch_s=...)``).
        jobs: the typed BE jobs to place (unique names).
        policy: a :data:`~repro.sched.policies.POLICIES` name or a
            :class:`Policy` instance.
        queue_limit: admission control — arrivals that would push the
            number of waiting-or-running jobs past this bound are
            rejected (0 = unlimited).

    Returns:
        The populated :class:`ScheduleOutcome`.  Replaying different
        policies over the *same* slack view is how policies are
        compared: the fleet is simulated once, the scheduler is pure
        accounting over its signals.
    """
    if queue_limit < 0:
        raise ValueError("queue_limit must be >= 0 (0 = unlimited)")
    chosen = make_policy(policy)
    records = expand_jobs(jobs)
    epochs = slack.epochs
    epoch_s = float(slack.epoch_len_s[0]) if epochs else 0.0
    outcome = ScheduleOutcome(policy=chosen.name, epoch_s=epoch_s,
                              jobs=records, store=None)
    outcome.harvested_core_s = float(slack.harvest_core_s.sum())
    sink = make_sink()
    job_index = {id(record): j for j, record in enumerate(records)}
    if not records or not epochs:
        # Nothing to place (or nothing to place on): all harvest that
        # existed went unmetered.
        outcome.wasted_core_s = outcome.harvested_core_s
        if sink is not None:
            outcome.trace = concat_payloads([sink.payload()])
        return outcome

    store = BatchColumnStore(
        [("t_s", np.float64), ("assigned_cores", np.float64),
         ("credit_core_s", np.float64), ("queued_jobs", np.int64),
         ("running_jobs", np.int64), ("placed_cores", np.int64),
         ("harvest_core_s", np.float64), ("credited_core_s", np.float64),
         ("wasted_core_s", np.float64), ("evictions", np.int64)],
        n=len(records),
        shared=("t_s", "queued_jobs", "running_jobs", "placed_cores",
                "harvest_core_s", "credited_core_s", "wasted_core_s",
                "evictions"))
    outcome.store = store

    zero = np.zeros(slack.leaves)
    admitted = 0
    pending = list(records)  # queue order (expand_jobs sorted them)
    for e in range(epochs):
        t = float(slack.epoch_t_s[e])
        length = float(slack.epoch_len_s[e])

        # -- admission: arrivals whose time has come, in queue order --
        still_pending = []
        for record in pending:
            if record.job.arrival_s <= t:
                waiting = sum(1 for r in records if r.runnable) \
                    if queue_limit else 0
                if queue_limit and waiting >= queue_limit:
                    record.state = JobState.REJECTED
                    outcome.rejected += 1
                else:
                    record.state = JobState.QUEUED
                    record.pinned_leaf = admitted % slack.leaves
                    admitted += 1
            else:
                still_pending.append(record)
        pending = still_pending

        # -- placement: previous epoch's signals, current queue -------
        runnable = [r for r in records if r.runnable]
        if e > 0:
            grant_prev = slack.grant_cores[e - 1]
            rate_prev = slack.harvest_core_s[e - 1] \
                / (np.maximum(grant_prev, 1.0)
                   * float(slack.epoch_len_s[e - 1]))
            ctx = PlacementContext(
                epoch=e, epoch_len_s=length, rate_per_core=rate_prev,
                cap=grant_prev, latched=slack.latched[e - 1],
                jobs=runnable)
        else:
            # No telemetry yet: every policy sees an empty fleet.
            ctx = PlacementContext(
                epoch=0, epoch_len_s=length, rate_per_core=zero,
                cap=zero, latched=zero.astype(bool), jobs=runnable)
        placement = chosen.place(ctx)
        if len(placement) != len(runnable):
            raise ValueError(f"policy {chosen.name!r} returned "
                             f"{len(placement)} placements for "
                             f"{len(runnable)} jobs")
        _check_placement(placement, runnable, ctx.cap, chosen.name)
        for record, slots in zip(runnable, placement):
            record.assigned = dict(slots)
            if sink is not None:
                for leaf, cores in sorted(slots.items()):
                    if cores > 0:
                        sink.emit(t, int(leaf), "sched", "place",
                                  a=float(cores),
                                  b=float(job_index[id(record)]))

        # -- crediting: epoch e's actual harvest over placed slots ----
        by_leaf: Dict[int, List[JobRecord]] = {}
        for record in runnable:
            for leaf, cores in record.assigned.items():
                if cores > 0:
                    by_leaf.setdefault(leaf, []).append(record)
        harvest_e = slack.harvest_core_s[e]
        latched_e = slack.latched[e]
        grant_e = slack.grant_cores[e]
        credit_per_job = {id(r): 0.0 for r in runnable}
        credited = 0.0
        evictions = 0
        for leaf, occupants in sorted(by_leaf.items()):
            placed = sum(r.assigned[leaf] for r in occupants)
            if latched_e[leaf]:
                # The leaf hit its SLO this epoch: Heracles latched,
                # the epoch's work on it is forfeited, and every
                # occupant counts an eviction.
                for record in occupants:
                    record.evictions += 1
                    if sink is not None:
                        sink.emit(t, int(leaf), "sched", "evict",
                                  a=float(record.assigned[leaf]),
                                  b=float(job_index[id(record)]))
                evictions += len(occupants)
                continue
            unit = float(harvest_e[leaf]) / max(placed, float(grant_e[leaf]),
                                                1.0)
            for record in occupants:
                earn = min(record.assigned[leaf] * unit,
                           record.remaining_core_s
                           - credit_per_job[id(record)])
                earn = max(0.0, earn)
                credit_per_job[id(record)] += earn
                credited += earn

        # -- completion + accounting ----------------------------------
        for record in runnable:
            record.progress_core_s += credit_per_job[id(record)]
            if record.remaining_core_s <= _COMPLETION_EPS:
                record.state = JobState.COMPLETED
                record.completed_at_s = t + length
        harvested = float(harvest_e.sum())
        outcome.credited_core_s += credited
        outcome.wasted_core_s += harvested - credited
        outcome.evictions += evictions
        assigned_row = np.array([sum(r.assigned.values())
                                 for r in records], dtype=float)
        credit_row = np.zeros(len(records))
        for j, record in enumerate(records):
            credit_row[j] = credit_per_job.get(id(record), 0.0)
        store.append_tick({
            "t_s": t,
            "assigned_cores": assigned_row,
            "credit_core_s": credit_row,
            "queued_jobs": sum(1 for r in records if r.runnable),
            "running_jobs": sum(1 for r in runnable
                                if sum(r.assigned.values()) > 0),
            "placed_cores": int(sum(sum(r.assigned.values())
                                    for r in runnable)),
            "harvest_core_s": harvested,
            "credited_core_s": credited,
            "wasted_core_s": harvested - credited,
            "evictions": evictions,
        })
        for record in runnable:
            record.assigned = {}

    outcome.goodput_core_s = sum(r.job.demand_core_s for r in records
                                 if r.state == JobState.COMPLETED)
    if sink is not None:
        outcome.trace = concat_payloads([sink.payload()])
    return outcome
