"""Regression tests for the perf-report tool (``tools/bench_report.py``).

Pinned here: the perf trajectory is *discovered* from the committed
``BENCH_PR<N>.json`` snapshots, ordered by PR number.  The tool used to
carry a hardcoded filename tuple, which silently dropped every snapshot
newer than the tuple — BENCH_PR6 and onward would simply never appear
in any report's trajectory.
"""

import json
import os
import sys

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
sys.path.insert(0, os.path.join(ROOT, "tools"))

import bench_report  # noqa: E402


class TestTrajectorySnapshots:
    def test_sorted_by_pr_number_not_lexically(self, tmp_path):
        """PR 10 sorts after PR 9 (numeric, not string, order)."""
        for name in ("BENCH_PR10.json", "BENCH_PR9.json",
                     "BENCH_PR3.json"):
            (tmp_path / name).write_text("{}\n")
        assert bench_report.trajectory_snapshots(str(tmp_path)) == [
            "BENCH_PR3.json", "BENCH_PR9.json", "BENCH_PR10.json"]

    def test_future_snapshots_are_discovered(self, tmp_path):
        """The hardcoded-tuple regression: new snapshots must join."""
        for pr in (3, 4, 5, 6, 7, 123):
            (tmp_path / f"BENCH_PR{pr}.json").write_text("{}\n")
        names = bench_report.trajectory_snapshots(str(tmp_path))
        assert names == [f"BENCH_PR{pr}.json"
                         for pr in (3, 4, 5, 6, 7, 123)]

    def test_non_snapshot_names_are_ignored(self, tmp_path):
        (tmp_path / "BENCH_PR4.json").write_text("{}\n")
        for name in ("BENCH_PRx.json", "BENCH_PR5_old.json",
                     "BENCH_PR.json", "bench_pr4.json"):
            (tmp_path / name).write_text("{}\n")
        assert bench_report.trajectory_snapshots(str(tmp_path)) == [
            "BENCH_PR4.json"]

    def test_empty_root_yields_empty_trajectory(self, tmp_path):
        assert bench_report.trajectory_snapshots(str(tmp_path)) == []

    def test_repo_snapshots_all_present(self):
        """Every committed snapshot is picked up from the repo root."""
        committed = sorted(
            name for name in os.listdir(ROOT)
            if name.startswith("BENCH_PR") and name.endswith(".json"))
        names = bench_report.trajectory_snapshots()
        for name in committed:
            assert name in names or not name[8:-5].isdigit()


class TestLoadTrajectory:
    def _write(self, path, payload):
        path.write_text(json.dumps(payload) + "\n")

    def test_loads_all_snapshots(self, tmp_path):
        self._write(tmp_path / "BENCH_PR3.json", {"report": "BENCH_PR3"})
        self._write(tmp_path / "BENCH_PR6.json", {"report": "BENCH_PR6"})
        trajectory = bench_report.load_trajectory(str(tmp_path))
        assert set(trajectory) == {"BENCH_PR3.json", "BENCH_PR6.json"}
        assert trajectory["BENCH_PR6.json"] == {"report": "BENCH_PR6"}

    def test_excludes_own_output(self, tmp_path):
        self._write(tmp_path / "BENCH_PR5.json", {})
        self._write(tmp_path / "BENCH_PR6.json", {})
        trajectory = bench_report.load_trajectory(
            str(tmp_path), exclude=str(tmp_path / "BENCH_PR6.json"))
        assert set(trajectory) == {"BENCH_PR5.json"}

    def test_unparsable_snapshot_warns_and_skips(self, tmp_path, capsys):
        self._write(tmp_path / "BENCH_PR3.json", {"ok": True})
        (tmp_path / "BENCH_PR4.json").write_text("{not json")
        trajectory = bench_report.load_trajectory(str(tmp_path))
        assert set(trajectory) == {"BENCH_PR3.json"}
        assert "BENCH_PR4.json" in capsys.readouterr().err


class TestResolveOut:
    """The cwd-relative --out regression.

    A relative report path used to resolve against the caller's cwd:
    run from a subdirectory, the report landed outside the repo root,
    and the newest committed snapshot (same filename, different
    directory) escaped the report's self-exclusion and was folded into
    the report about to overwrite it.  The path must anchor at the
    repo root regardless of cwd.
    """

    def test_relative_out_anchors_at_root(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)  # a cwd that is NOT the root
        resolved = bench_report.resolve_out("BENCH_PR9.json", "/some/root")
        assert resolved == os.path.join("/some/root", "BENCH_PR9.json")

    def test_absolute_out_is_untouched(self):
        out = os.path.join(os.sep, "elsewhere", "report.json")
        assert bench_report.resolve_out(out, "/some/root") == out

    def test_anchored_out_self_excludes_from_trajectory(self, tmp_path,
                                                        monkeypatch):
        """End to end: same-name snapshot at root is excluded even when
        cwd is a different directory containing a decoy."""
        root = tmp_path / "repo"
        root.mkdir()
        (root / "BENCH_PR5.json").write_text("{}\n")
        (root / "BENCH_PR9.json").write_text("{}\n")
        elsewhere = tmp_path / "elsewhere"
        elsewhere.mkdir()
        monkeypatch.chdir(elsewhere)
        out = bench_report.resolve_out("BENCH_PR9.json", str(root))
        trajectory = bench_report.load_trajectory(str(root), exclude=out)
        assert set(trajectory) == {"BENCH_PR5.json"}

    def test_checkpoint_bench_registered(self):
        """The PR 9 benchmark is wired into the report run."""
        names = [name for name, _, _ in bench_report.BENCHES]
        assert "checkpoint" in names
        assert "checkpoint" in bench_report.DETAIL_ENVS

    def test_obs_bench_registered(self):
        """The PR 10 observability benchmark is wired into the report."""
        names = [name for name, _, _ in bench_report.BENCHES]
        assert "obs" in names
        assert bench_report.DETAIL_ENVS["obs"] == "REPRO_BENCH_OBS_OUT"
