"""Tests for repro.sim: monitors, actuators, and the engine."""

import pytest

from repro.hardware.server import Server
from repro.hardware.spec import default_machine_spec
from repro.sim.actuators import BE_COS, LC_COS, Actuators
from repro.sim.engine import ColocationSim
from repro.sim.monitors import LatencyMonitor, ThroughputMonitor
from repro.workloads.best_effort import make_be_workload
from repro.workloads.latency_critical import make_lc_workload
from repro.workloads.traces import ConstantLoad


class TestLatencyMonitor:
    def test_empty_polls_none(self):
        m = LatencyMonitor()
        assert m.poll_latency_ms(0.0) is None
        assert m.poll_load(0.0) is None
        assert m.worst_window_ms(0.0) is None

    def test_windowed_mean(self):
        m = LatencyMonitor(window_s=10)
        for t in range(20):
            m.record(float(t), 10.0 if t < 15 else 20.0, 0.5)
        # Window (9, 19]: five samples at 20, five at 10.
        assert m.poll_latency_ms(19.0) == pytest.approx(15.0)

    def test_load_poll(self):
        m = LatencyMonitor(window_s=10)
        for t in range(10):
            m.record(float(t), 5.0, 0.25)
        assert m.poll_load(9.0) == pytest.approx(0.25)

    def test_worst_window(self):
        m = LatencyMonitor(window_s=15, slo_window_s=60)
        for t in range(60):
            m.record(float(t), 30.0 if t == 30 else 5.0, 0.5)
        assert m.worst_window_ms(59.0) == pytest.approx(30.0)

    def test_recent_latency_short_span(self):
        m = LatencyMonitor()
        m.record(0.0, 10.0, 0.5)
        m.record(1.0, 30.0, 0.5)
        assert m.recent_latency_ms(1.0, span_s=1.0) == pytest.approx(30.0)

    def test_recent_latency_falls_back_to_last(self):
        m = LatencyMonitor()
        m.record(0.0, 12.0, 0.5)
        assert m.recent_latency_ms(100.0, span_s=2.0) == pytest.approx(12.0)

    def test_recent_latency_coarse_tick_averages_full_interval(self):
        """dt_s=5 regression: the 2 s subcontroller span must average
        one full sample interval, not degenerate to the latest sample."""
        m = LatencyMonitor()
        for t, tail in ((0.0, 10.0), (5.0, 20.0), (10.0, 40.0)):
            m.record(t, tail, 0.5)
        assert m.observed_spacing_s() == pytest.approx(5.0)
        # span (2 s) < tick (5 s): the last two samples are averaged.
        assert m.recent_latency_ms(10.0, span_s=2.0) == pytest.approx(30.0)

    def test_recent_latency_stale_poll_keeps_latest_fallback(self):
        """The coarse-tick stretch must not fire for stale polls: a
        poll long after the last sample still returns the freshest
        sample, not an average reaching further into the past."""
        m = LatencyMonitor()
        m.record(0.0, 10.0, 0.5)
        m.record(5.0, 40.0, 0.5)
        assert m.recent_latency_ms(100.0, span_s=2.0) == pytest.approx(40.0)

    def test_recent_latency_fine_tick_unchanged(self):
        """At the historical 1 s tick the 2 s span behaviour is pinned:
        exactly the two freshest samples are averaged."""
        m = LatencyMonitor()
        for t in range(5):
            m.record(float(t), 10.0 * (t + 1), 0.5)
        assert m.recent_latency_ms(4.0, span_s=2.0) == pytest.approx(45.0)

    def test_time_ordering_enforced(self):
        m = LatencyMonitor()
        m.record(10.0, 5.0, 0.5)
        with pytest.raises(ValueError):
            m.record(5.0, 5.0, 0.5)

    def test_old_samples_evicted(self):
        m = LatencyMonitor(window_s=5, slo_window_s=10)
        for t in range(100):
            m.record(float(t), 1.0, 0.5)
        assert m.sample_count() <= 12


class TestThroughputMonitor:
    def test_normalization(self):
        m = ThroughputMonitor(reference_units_per_s=20.0)
        m.record(units=10.0, dt_s=1.0)
        assert m.last_normalized == pytest.approx(0.5)

    def test_average(self):
        m = ThroughputMonitor(reference_units_per_s=10.0)
        m.record(5.0, 1.0)
        m.record(15.0, 1.0)
        assert m.average_normalized() == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ThroughputMonitor(0.0)
        m = ThroughputMonitor(1.0)
        with pytest.raises(ValueError):
            m.record(1.0, 0.0)
        with pytest.raises(ValueError):
            m.record(-1.0, 1.0)


@pytest.fixture
def actuators():
    return Actuators(Server(default_machine_spec()))


class TestActuatorsCores:
    def test_initial_state(self, actuators):
        assert actuators.be_cores == 0
        assert not actuators.be_enabled
        assert actuators.lc_cores == 36

    def test_enable_grants_one_core_and_cache(self, actuators):
        actuators.enable_be()
        assert actuators.be_enabled
        assert actuators.be_cores == 1
        assert actuators.be_llc_ways == 2  # 10% of 20 ways

    def test_enable_is_idempotent(self, actuators):
        actuators.enable_be()
        actuators.set_be_cores(5)
        actuators.enable_be()
        assert actuators.be_cores == 5

    def test_add_remove(self, actuators):
        actuators.enable_be()
        assert actuators.add_be_core()
        assert actuators.be_cores == 2
        assert actuators.remove_be_cores(1) == 1
        assert actuators.be_cores == 1

    def test_lc_minimum_respected(self, actuators):
        actuators.enable_be()
        actuators.set_be_cores(99)
        assert actuators.lc_cores >= 1
        assert not actuators.add_be_core()

    def test_disable_returns_everything(self, actuators):
        actuators.enable_be()
        actuators.set_be_cores(10)
        actuators.lower_be_frequency()
        actuators.set_be_net_ceil(1.0)
        actuators.disable_be()
        assert actuators.be_cores == 0
        assert actuators.be_llc_ways == 0
        assert actuators.be_dvfs_cap_ghz is None
        assert actuators.be_net_ceil_gbps is None

    def test_core_split_disjoint_and_spread(self, actuators):
        actuators.enable_be()
        actuators.set_be_cores(7)
        lc_alloc = actuators.lc_allocation()
        be_alloc = actuators.be_allocation()
        spec = actuators.spec
        for s in range(spec.sockets):
            total = (lc_alloc.cores_by_socket.get(s, 0)
                     + be_alloc.cores_by_socket.get(s, 0))
            assert total == spec.socket.cores
        # BE spreads across sockets, one job per socket.
        counts = sorted(be_alloc.cores_by_socket.values())
        assert counts == [3, 4]


class TestActuatorsLlc:
    def test_split_updates_cat(self, actuators):
        actuators.enable_be()
        actuators.set_llc_split(5)
        for cat in actuators.server.cat.values():
            assert cat.partition_ways(BE_COS) == 5
            assert cat.partition_ways(LC_COS) == 15

    def test_grow_shrink(self, actuators):
        actuators.enable_be()
        before = actuators.be_llc_ways
        assert actuators.grow_be_llc()
        assert actuators.be_llc_ways == before + 1
        assert actuators.shrink_be_llc()
        assert actuators.be_llc_ways == before

    def test_lc_way_floor(self, actuators):
        actuators.min_lc_llc_ways = 6
        actuators.enable_be()
        actuators.set_llc_split(19)
        assert actuators.lc_llc_ways >= 6

    def test_floor_validation(self):
        with pytest.raises(ValueError):
            Actuators(Server(default_machine_spec()), min_lc_llc_ways=25)


class TestActuatorsDvfsAndNet:
    def test_frequency_steps(self, actuators):
        turbo = actuators.spec.socket.turbo
        cap = actuators.lower_be_frequency()
        assert cap == pytest.approx(turbo.max_turbo_ghz - turbo.step_ghz)
        assert actuators.raise_be_frequency() is None  # back to uncapped

    def test_frequency_floor(self, actuators):
        actuators.lower_be_frequency(steps=100)
        assert actuators.be_dvfs_cap_ghz == pytest.approx(
            actuators.spec.socket.turbo.min_ghz)

    def test_net_ceil(self, actuators):
        actuators.set_be_net_ceil(3.0)
        assert actuators.be_net_ceil_gbps == pytest.approx(3.0)
        assert actuators.be_allocation().net_ceil_gbps is None  # BE off
        actuators.enable_be()
        assert actuators.be_allocation().net_ceil_gbps == pytest.approx(3.0)


class TestColocationSim:
    def test_tick_records(self):
        sim = ColocationSim(lc=make_lc_workload("websearch"),
                            trace=ConstantLoad(0.3),
                            be=make_be_workload("brain"), seed=1)
        record = sim.tick()
        assert record.t_s == 0.0
        assert record.load == pytest.approx(0.3)
        assert record.tail_latency_ms > 0
        assert record.emu == pytest.approx(0.3)  # BE not enabled

    def test_run_length(self):
        sim = ColocationSim(lc=make_lc_workload("websearch"),
                            trace=ConstantLoad(0.3), seed=1)
        history = sim.run(30)
        assert len(history) == 30
        assert history.last().t_s == pytest.approx(29.0)

    def test_no_be_sim(self):
        sim = ColocationSim(lc=make_lc_workload("memkeyval"),
                            trace=ConstantLoad(0.5), seed=1)
        history = sim.run(10)
        assert all(r.be_throughput_norm == 0.0 for r in history.records)

    def test_history_columns(self):
        sim = ColocationSim(lc=make_lc_workload("websearch"),
                            trace=ConstantLoad(0.3), seed=1)
        history = sim.run(10)
        col = history.column("slo_fraction")
        assert len(col) == 10
        assert history.max_slo_fraction() == pytest.approx(col.max())

    def test_worst_window_slo(self):
        sim = ColocationSim(lc=make_lc_workload("websearch"),
                            trace=ConstantLoad(0.3), seed=1)
        history = sim.run(120)
        worst = history.worst_window_slo(window_s=60)
        assert worst <= history.max_slo_fraction()
        assert worst >= history.mean("slo_fraction") - 1e-9

    def test_controller_hook_called(self):
        calls = []

        class Probe:
            def step(self, now_s):
                calls.append(now_s)

        sim = ColocationSim(lc=make_lc_workload("websearch"),
                            trace=ConstantLoad(0.3), seed=1)
        sim.attach_controller(Probe())
        sim.run(5)
        assert calls == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_determinism(self):
        def run():
            sim = ColocationSim(lc=make_lc_workload("websearch"),
                                trace=ConstantLoad(0.4),
                                be=make_be_workload("brain"), seed=9)
            from repro.core import HeraclesController
            HeraclesController.for_sim(sim)
            return sim.run(120).column("slo_fraction")

        a, b = run(), run()
        assert a.tolist() == b.tolist()

    def test_bad_durations(self):
        sim = ColocationSim(lc=make_lc_workload("websearch"),
                            trace=ConstantLoad(0.3), seed=1)
        with pytest.raises(ValueError):
            sim.tick(dt_s=0.0)
        with pytest.raises(ValueError):
            sim.run(0.0)
