"""Documentation health: doctests in the docs run, links resolve.

The CI ``docs`` job runs the same two checks standalone
(``python -m doctest`` + ``tools/check_doc_links.py``); keeping them in
the tier-1 suite means a doc-breaking change fails locally too.
"""

import doctest
import glob
import os
import sys

import pytest

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
DOC_FILES = [os.path.join(ROOT, "README.md")] + sorted(
    glob.glob(os.path.join(ROOT, "docs", "*.md")))

sys.path.insert(0, os.path.join(ROOT, "tools"))
import check_doc_links  # noqa: E402


def test_docs_exist():
    """The documented docs tree is present and linked material exists."""
    names = {os.path.basename(p) for p in DOC_FILES}
    assert {"README.md", "architecture.md", "scenarios.md"} <= names


@pytest.mark.parametrize("path", DOC_FILES,
                         ids=[os.path.basename(p) for p in DOC_FILES])
def test_doc_doctests_pass(path):
    """Every ``>>>`` example in the docs executes and matches."""
    result = doctest.testfile(path, module_relative=False, verbose=False)
    assert result.failed == 0, f"{path}: {result.failed} doctest failure(s)"


@pytest.mark.parametrize("path", DOC_FILES,
                         ids=[os.path.basename(p) for p in DOC_FILES])
def test_doc_links_resolve(path):
    """Every relative markdown link points at an existing file."""
    assert check_doc_links.broken_links(path) == []


def test_link_checker_catches_breakage(tmp_path):
    """The checker itself flags a dangling link (meta-test)."""
    bad = tmp_path / "bad.md"
    bad.write_text("see [here](missing_file.md) and "
                   "[ok](https://example.com)\n")
    broken = check_doc_links.broken_links(str(bad))
    assert broken == [(1, "missing_file.md")]
