"""Plain-text rendering of result tables and series.

The paper's artefacts are figures; a terminal reproduction renders the
same data as aligned text tables and simple sparkline-style series so
EXPERIMENTS.md can embed paper-vs-measured comparisons directly.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_percent(value: float, saturate_at: float = 3.0) -> str:
    """Format an SLO fraction the way Figure 1 prints cells."""
    if value > saturate_at:
        return f">{saturate_at * 100:.0f}%"
    return f"{value * 100:.0f}%"


def render_table(headers: Sequence[str],
                 rows: Sequence[Sequence[str]],
                 title: str = "") -> str:
    """Align a list of string rows under headers."""
    if not headers:
        raise ValueError("need at least one column")
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(c).ljust(widths[i])
                               for i, c in enumerate(row)))
    return "\n".join(lines)


def render_series(name: str, xs: Sequence[float], ys: Sequence[float],
                  x_format: str = "{:.0%}", y_format: str = "{:.2f}") -> str:
    """One labelled (x, y) series as two aligned rows."""
    if len(xs) != len(ys):
        raise ValueError("x and y lengths differ")
    x_cells = [x_format.format(x) for x in xs]
    y_cells = [y_format.format(y) for y in ys]
    width = max((max(len(a), len(b)) for a, b in zip(x_cells, y_cells)),
                default=1)
    header = " ".join(c.rjust(width) for c in x_cells)
    values = " ".join(c.rjust(width) for c in y_cells)
    return f"{name}\n  x: {header}\n  y: {values}"


def render_load_series_table(series_by_name: Dict[str, Sequence[float]],
                             loads: Sequence[float],
                             title: str = "",
                             y_format: str = "{:.2f}") -> str:
    """Many series sharing one load axis (the Fig. 4-7 layout)."""
    headers = ["series"] + [f"{int(round(l * 100))}%" for l in loads]
    rows: List[List[str]] = []
    for name, values in series_by_name.items():
        if len(values) != len(loads):
            raise ValueError(f"series {name!r} length mismatch")
        rows.append([name] + [y_format.format(v) for v in values])
    return render_table(headers, rows, title=title)
