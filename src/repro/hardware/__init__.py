"""Simulated server hardware: CPU, LLC/CAT, DRAM, power, and NIC.

This subpackage stands in for the production Google servers of the paper
(dual-socket Haswell Xeons with Cache Allocation Technology).  It exposes
the same observable counters and actuation knobs the real hardware does,
with the contention physics needed to reproduce the paper's interference
behaviour.
"""

from .cache import CacheDemand, CacheShare, CatController, resolve_occupancy
from .counters import CounterBank
from .cpu import CoreId, CpuTopology, DvfsState
from .memory import MemoryController, MemoryDemand, MemoryGrant, MemoryResolution
from .network import EgressLink, FlowDemand, FlowGrant, LinkResolution
from .power import CorePowerRequest, PowerResolution, RaplMeter, SocketPowerModel
from .server import (DEFAULT_COS, Server, ServerTelemetry, SocketTelemetry,
                     TaskTickDemand, TaskUsage)
from .spec import MachineSpec, NicSpec, SocketSpec, TurboSpec, default_machine_spec

__all__ = [
    "CacheDemand", "CacheShare", "CatController", "resolve_occupancy",
    "CounterBank",
    "CoreId", "CpuTopology", "DvfsState",
    "MemoryController", "MemoryDemand", "MemoryGrant", "MemoryResolution",
    "EgressLink", "FlowDemand", "FlowGrant", "LinkResolution",
    "CorePowerRequest", "PowerResolution", "RaplMeter", "SocketPowerModel",
    "DEFAULT_COS", "Server", "ServerTelemetry", "SocketTelemetry",
    "TaskTickDemand", "TaskUsage",
    "MachineSpec", "NicSpec", "SocketSpec", "TurboSpec",
    "default_machine_spec",
]
