"""The simulated server: composes CPU, LLC, DRAM, power, and NIC models.

A :class:`Server` is the physical substrate everything else runs on.  Each
simulation tick, the engine collects a :class:`TaskTickDemand` from every
running task (what the task *wants* given its load and current resource
allocation) and calls :meth:`Server.resolve`.  The server then settles the
contention physics in dependency order:

1. **Power/frequency** — per-socket equilibrium given activity and DVFS
   caps (Turbo headroom is a shared resource).
2. **LLC** — steady-state occupancy within each CAT partition.
3. **DRAM** — cache misses plus uncached traffic become channel demand;
   saturation produces an access-delay factor for everyone on the socket.
4. **Network** — egress link shared per-flow, bounded by HTB ceilings.

The result is a :class:`TaskUsage` per task: achieved frequency, cache
coverage, memory delay, and network satisfaction — the raw ingredients
the perf layer turns into tail latency and throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .cache import CacheDemand, CatController, resolve_occupancy
from .cpu import CpuTopology
from .memory import MemoryController, MemoryDemand
from .network import EgressLink, FlowDemand
from .power import CorePowerRequest, RaplMeter, SocketPowerModel
from .spec import MachineSpec, default_machine_spec

#: Name of the implicit CAT class used by tasks with no explicit partition.
DEFAULT_COS = "default"


@dataclass
class TaskTickDemand:
    """Everything one task asks of the server for one tick."""

    task: str
    cores_by_socket: Dict[int, int] = field(default_factory=dict)
    activity: float = 0.0
    dvfs_cap_ghz: Optional[float] = None
    cache_by_socket: Dict[int, CacheDemand] = field(default_factory=dict)
    cache_cos: str = DEFAULT_COS
    # DRAM traffic that bypasses the LLC model (e.g. huge streaming) —
    # cache-miss traffic is added automatically from the LLC resolution.
    uncached_dram_gbps_by_socket: Dict[int, float] = field(default_factory=dict)
    net_demand_gbps: float = 0.0
    net_flows: int = 1
    net_ceil_gbps: Optional[float] = None
    # Fraction of this task's hardware threads whose sibling HyperThread
    # is running a different task (computed by the placement layer).
    ht_share_fraction: float = 0.0
    # MBA-style DRAM request-rate throttle: scales the task's channel
    # demand (1.0 = unthrottled).  See repro.core.mba.
    dram_throttle: float = 1.0

    def total_cores(self) -> int:
        return sum(self.cores_by_socket.values())

    def validate(self, spec: MachineSpec) -> None:
        for s, n in self.cores_by_socket.items():
            if not 0 <= s < spec.sockets:
                raise ValueError(f"socket {s} out of range")
            if n < 0 or n > spec.socket.cores:
                raise ValueError(f"core count {n} out of range on socket {s}")
        if not 0.0 <= self.activity <= 3.0:
            raise ValueError("activity must be in [0, 3] "
                             "(values above 1 model power viruses)")
        if not 0.0 <= self.ht_share_fraction <= 1.0:
            raise ValueError("ht_share_fraction must be in [0, 1]")
        if self.net_demand_gbps < 0:
            raise ValueError("net demand must be non-negative")
        if not 0.0 < self.dram_throttle <= 1.0:
            raise ValueError("dram_throttle must be in (0, 1]")


@dataclass
class TaskUsage:
    """Resolved per-task resource outcome for one tick."""

    task: str
    cores: int
    freq_ghz: float
    cache_hit_fraction: float
    hot_coverage: float
    bulk_coverage: float
    cache_occupancy_mb: float
    dram_demand_gbps: float
    dram_achieved_gbps: float
    mem_delay_factor: float
    net_demand_gbps: float
    net_achieved_gbps: float
    net_satisfaction: float
    ht_share_fraction: float


@dataclass
class SocketTelemetry:
    """Per-socket observable state after a tick."""

    power_watts: float
    tdp_watts: float
    dram_demand_gbps: float
    dram_achieved_gbps: float
    dram_utilization: float
    throttled: bool


@dataclass
class ServerTelemetry:
    """Server-wide observable state after a tick."""

    sockets: List[SocketTelemetry]
    link_tx_gbps: float
    link_utilization: float
    cores_in_use: int
    total_cores: int

    @property
    def cpu_utilization(self) -> float:
        return self.cores_in_use / self.total_cores

    @property
    def total_power_watts(self) -> float:
        return sum(s.power_watts for s in self.sockets)

    @property
    def power_fraction_of_tdp(self) -> float:
        tdp = sum(s.tdp_watts for s in self.sockets)
        return self.total_power_watts / tdp

    @property
    def total_dram_gbps(self) -> float:
        return sum(s.dram_achieved_gbps for s in self.sockets)

    @property
    def max_dram_utilization(self) -> float:
        return max((s.dram_utilization for s in self.sockets), default=0.0)


class Server:
    """One simulated machine."""

    def __init__(self, spec: Optional[MachineSpec] = None):
        self.spec = spec or default_machine_spec()
        self.spec.validate()
        self.topology = CpuTopology(self.spec)
        self.cat: Dict[int, CatController] = {
            s: CatController(self.spec.socket.llc_mb, self.spec.socket.llc_ways)
            for s in range(self.spec.sockets)
        }
        self.memory: Dict[int, MemoryController] = {
            s: MemoryController(self.spec.socket.dram_bw_gbps)
            for s in range(self.spec.sockets)
        }
        self.power_model = SocketPowerModel(self.spec.socket)
        self.rapl: Dict[int, RaplMeter] = {
            s: RaplMeter(self.spec.socket.tdp_watts)
            for s in range(self.spec.sockets)
        }
        self.link = EgressLink(self.spec.nic.link_gbps)
        self._usages: Dict[str, TaskUsage] = {}
        self._telemetry = ServerTelemetry(
            sockets=[SocketTelemetry(0.0, self.spec.socket.tdp_watts,
                                     0.0, 0.0, 0.0, False)
                     for _ in range(self.spec.sockets)],
            link_tx_gbps=0.0, link_utilization=0.0,
            cores_in_use=0, total_cores=self.spec.total_cores)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------

    def resolve(self, demands: List[TaskTickDemand]) -> Dict[str, TaskUsage]:
        """Settle all shared-resource contention for one tick."""
        for d in demands:
            d.validate(self.spec)
        names = [d.task for d in demands]
        if len(set(names)) != len(names):
            raise ValueError("duplicate task names in demands")

        freqs = self._resolve_power(demands)
        cache_results = self._resolve_cache(demands)
        mem_results = self._resolve_memory(demands, cache_results)
        net_results = self._resolve_network(demands)

        self._usages = {}
        for d in demands:
            hit, hot_cov, bulk_cov, occ = cache_results["per_task"].get(
                d.task, (1.0, 1.0, 1.0, 0.0))
            dram_dem, dram_ach, delay = mem_results["per_task"].get(
                d.task, (0.0, 0.0, 1.0))
            net = net_results.grant_for(d.task)
            self._usages[d.task] = TaskUsage(
                task=d.task,
                cores=d.total_cores(),
                freq_ghz=freqs.get(d.task, self.spec.socket.turbo.nominal_ghz),
                cache_hit_fraction=hit,
                hot_coverage=hot_cov,
                bulk_coverage=bulk_cov,
                cache_occupancy_mb=occ,
                dram_demand_gbps=dram_dem,
                dram_achieved_gbps=dram_ach,
                mem_delay_factor=delay,
                net_demand_gbps=d.net_demand_gbps,
                net_achieved_gbps=net.achieved_gbps,
                net_satisfaction=net.satisfaction,
                ht_share_fraction=d.ht_share_fraction,
            )

        self._update_telemetry(demands, mem_results, net_results)
        return dict(self._usages)

    def _resolve_power(self, demands: List[TaskTickDemand]) -> Dict[str, float]:
        """Per-socket power equilibrium; returns core-weighted frequency."""
        freq_acc: Dict[str, float] = {}
        core_acc: Dict[str, int] = {}
        self._socket_power: List = []
        for s in range(self.spec.sockets):
            requests = []
            for d in demands:
                cores = d.cores_by_socket.get(s, 0)
                if cores > 0:
                    requests.append(CorePowerRequest(
                        task=d.task, cores=cores, activity=d.activity,
                        dvfs_cap_ghz=d.dvfs_cap_ghz))
            resolution = self.power_model.resolve(requests)
            self.rapl[s].record(resolution.socket_power_watts)
            self._socket_power.append(resolution)
            for g in resolution.grants:
                cores = next(r.cores for r in requests if r.task == g.task)
                freq_acc[g.task] = freq_acc.get(g.task, 0.0) + g.freq_ghz * cores
                core_acc[g.task] = core_acc.get(g.task, 0) + cores
        return {t: freq_acc[t] / core_acc[t] for t in freq_acc if core_acc[t]}

    def _resolve_cache(self, demands: List[TaskTickDemand]) -> Dict:
        """Per-socket, per-COS occupancy resolution.

        The default class gets all ways not claimed by named classes, so a
        machine with no CAT configuration behaves as a fully shared LLC.
        """
        per_task: Dict[str, tuple] = {}
        miss_by_task_socket: Dict[tuple, float] = {}
        for s in range(self.spec.sockets):
            cat = self.cat[s]
            groups: Dict[str, List[CacheDemand]] = {}
            owner: Dict[str, str] = {}
            for d in demands:
                cd = d.cache_by_socket.get(s)
                if cd is None:
                    continue
                groups.setdefault(d.cache_cos, []).append(cd)
                owner[cd.task] = d.task
            for cos, cds in groups.items():
                if cos == DEFAULT_COS:
                    partition_mb = cat.unallocated_ways() * cat.mb_per_way
                    if not cat.classes():
                        partition_mb = cat.llc_mb
                else:
                    partition_mb = cat.partition_mb(cos)
                for share in resolve_occupancy(partition_mb, cds):
                    task = owner[share.task]
                    miss_by_task_socket[(task, s)] = share.miss_gbps
                    prev = per_task.get(task)
                    if prev is None:
                        per_task[task] = (share.hit_fraction,
                                          share.hot_coverage,
                                          share.bulk_coverage,
                                          share.occupancy_mb)
                    else:
                        # Task spans sockets: average coverage, sum occupancy.
                        per_task[task] = (
                            (prev[0] + share.hit_fraction) / 2,
                            (prev[1] + share.hot_coverage) / 2,
                            (prev[2] + share.bulk_coverage) / 2,
                            prev[3] + share.occupancy_mb)
        return {"per_task": per_task, "miss": miss_by_task_socket}

    def _resolve_memory(self, demands: List[TaskTickDemand],
                        cache_results: Dict) -> Dict:
        miss = cache_results["miss"]
        per_task: Dict[str, tuple] = {}
        self._mem_resolutions = []
        socket_demands: Dict[int, List[MemoryDemand]] = {
            s: [] for s in range(self.spec.sockets)}
        # Channel demand is throttled (MBA limits the request rate), but
        # the *offered* demand recorded per task stays unthrottled so a
        # throttled task reads as memory-starved, not as satisfied.
        offered: Dict[tuple, float] = {}
        for d in demands:
            for s in range(self.spec.sockets):
                bw = d.uncached_dram_gbps_by_socket.get(s, 0.0)
                bw += miss.get((d.task, s), 0.0)
                if bw > 0 or d.cores_by_socket.get(s, 0) > 0:
                    offered[(d.task, s)] = bw
                    socket_demands[s].append(
                        MemoryDemand(d.task, bw * d.dram_throttle))
        for s in range(self.spec.sockets):
            resolution = self.memory[s].resolve(socket_demands[s])
            self._mem_resolutions.append(resolution)
            for g in resolution.grants:
                prev = per_task.get(g.task, (0.0, 0.0, 1.0))
                per_task[g.task] = (prev[0] + offered[(g.task, s)],
                                    prev[1] + g.achieved_gbps,
                                    max(prev[2], g.access_delay_factor))
        return {"per_task": per_task}

    def _resolve_network(self, demands: List[TaskTickDemand]):
        flow_demands = [FlowDemand(task=d.task,
                                   demand_gbps=d.net_demand_gbps,
                                   flows=d.net_flows,
                                   ceil_gbps=d.net_ceil_gbps)
                        for d in demands]
        return self.link.resolve(flow_demands)

    def _update_telemetry(self, demands, mem_results, net_results) -> None:
        sockets = []
        for s in range(self.spec.sockets):
            p = self._socket_power[s]
            m = self._mem_resolutions[s]
            sockets.append(SocketTelemetry(
                power_watts=p.socket_power_watts,
                tdp_watts=p.tdp_watts,
                dram_demand_gbps=m.total_demand_gbps,
                dram_achieved_gbps=m.total_achieved_gbps,
                dram_utilization=m.utilization,
                throttled=p.throttled,
            ))
        cores_in_use = sum(d.total_cores() for d in demands)
        self._telemetry = ServerTelemetry(
            sockets=sockets,
            link_tx_gbps=net_results.total_achieved_gbps,
            link_utilization=net_results.utilization,
            cores_in_use=min(cores_in_use, self.spec.total_cores),
            total_cores=self.spec.total_cores,
        )

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    @property
    def telemetry(self) -> ServerTelemetry:
        return self._telemetry

    def usage_of(self, task: str) -> TaskUsage:
        return self._usages[task]

    def usages(self) -> Dict[str, TaskUsage]:
        return dict(self._usages)
