"""Figure 5: Effective Machine Utilization achieved by Heracles.

"In all cases, we achieve significant EMU increases.  When the two most
CPU-intensive and power-hungry workloads are combined, websearch and
brain, Heracles still achieves an EMU of at least 75%.  When websearch
is combined with the DRAM bandwidth intensive streetview, Heracles can
extract sufficient resources for a total EMU above 100% at websearch
loads between 25% and 70%" (§5.2).

Projection of the Figure 4 sweep onto mean EMU vs load, against the
no-colocation baseline (EMU = load).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from .fig4_latency_slo import (DEFAULT_LOADS, ColocationSweep, run_fig4,
                               run_sweep)

#: The production-batch pairings Figure 5 plots.
FIG5_BE_TASKS = ("brain", "streetview")


def run_fig5(lc_names: Optional[Sequence[str]] = None,
             loads: Sequence[float] = DEFAULT_LOADS,
             duration_s: float = 900.0) -> Dict[str, ColocationSweep]:
    """EMU sweep for the LC x {brain, streetview} pairs."""
    lc_names = lc_names or ("websearch", "ml_cluster", "memkeyval")
    return {name: run_sweep(name, be_tasks=FIG5_BE_TASKS, loads=loads,
                            duration_s=duration_s)
            for name in lc_names}


def emu_table(sweeps: Dict[str, ColocationSweep]) -> Dict[str, list]:
    """Series dict for rendering: '<lc>+<be>' -> EMU-vs-load values."""
    series = {}
    for lc_name, sweep in sweeps.items():
        for be_name in sweep.results:
            series[f"{lc_name}+{be_name}"] = sweep.emu_series(be_name)
    return series


def main() -> None:
    from ..analysis.tables import render_load_series_table
    sweeps = run_fig5()
    loads = next(iter(sweeps.values())).loads
    series = {"baseline (EMU=load)": list(loads)}
    series.update(emu_table(sweeps))
    print(render_load_series_table(series, loads,
                                   title="Effective machine utilization"))


if __name__ == "__main__":
    main()
