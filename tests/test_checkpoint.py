"""Engine-level checkpoint/restore: the bit-identity gate.

The contract under test (``repro.sim.checkpoint``): run-to-T is
**bit-identical** to run-to-T/2 + ``save_engine`` + ``load_engine`` +
resume — for the scalar engine and the batched engine, with chaos
schedules straddling the snapshot tick and with chunked spill-to-disk
active on either side of the round trip.  Equality is asserted with
``np.array_equal`` (no tolerance): a checkpoint is a point on the same
trajectory, not an approximation of it.

The fleet-level round trip (sharded + mega engines, worker pools,
manifest validation) lives in ``tests/test_fleet.py``; the scenario /
CLI plumbing in ``tests/test_scenarios.py`` and the fuzzer's resume
axis in ``tests/test_scenario_fuzz.py``.
"""

import numpy as np
import pytest

from repro.core.controller import HeraclesController
from repro.hardware.spec import default_machine_spec
from repro.metrics.columns import SPILL_CHUNK_ENV
from repro.sim.batch import BatchColocationSim
from repro.sim.chaos import ChaosEvent
from repro.sim.checkpoint import (CHECKPOINT_VERSION, CheckpointError,
                                  checkpoint_step, completed_steps,
                                  load_engine, run_ticks, save_engine)
from repro.sim.engine import ColocationSim, SimHistory
from repro.workloads.best_effort import make_be_workload
from repro.workloads.latency_critical import make_lc_workload
from repro.workloads.traces import DiurnalTrace

DURATION = 180.0
SNAPSHOT_AT = 90.0
SEED = 4

#: Chaos schedule that *straddles* the snapshot tick: the engine is
#: saved mid-degradation (straggler active, one event still pending),
#: so the schedule cursor and the degraded state must both survive the
#: pickle round trip.
STRADDLING_EVENTS = (
    ChaosEvent(40.0, "straggler", 0.6),
    ChaosEvent(60.0, "power_cap", 0.7),
    ChaosEvent(130.0, "straggler", 1.0),
    ChaosEvent(150.0, "power_cap", 1.0),
)


def make_trace(seed=SEED):
    return DiurnalTrace(low=0.15, high=0.90, period_s=600.0,
                        noise_sigma=0.03, seed=seed)


def make_scalar(spill_dir=None, events=()):
    """One managed websearch+brain server under Heracles."""
    spec = default_machine_spec()
    sim = ColocationSim(lc=make_lc_workload("websearch", spec),
                        trace=make_trace(), be=make_be_workload(
                            "brain", spec),
                        spec=spec, seed=SEED, spill_dir=spill_dir)
    HeraclesController.for_sim(sim)
    if events:
        sim.set_chaos_events(events)
    return sim


def make_batch(spill_dir=None, events=()):
    """A 3-member managed batch (full per-member history)."""
    spec = default_machine_spec()
    lc = make_lc_workload("websearch", spec)
    bes = [make_be_workload(name, spec)
           for name in ("brain", "streetview", "brain")]
    batch = BatchColocationSim(
        lc=lc, trace=make_trace(), bes=bes, spec=spec,
        seeds=[SEED * 100 + i for i in range(3)],
        record_history=True, spill_dir=spill_dir)
    for member in batch.members:
        HeraclesController.for_sim(member)
    if events:
        batch.set_chaos_events(events)
    return batch


def assert_sim_histories_identical(got, want, what):
    """Bitwise equality across the full TickRecord field set."""
    assert len(got) == len(want), f"{what}: lengths differ"
    for name in SimHistory.field_names():
        a, b = got.column(name), want.column(name)
        assert np.array_equal(a, b, equal_nan=True), (
            f"{what}: column {name!r} diverged")


def round_trip(factory, path, kind, at_s=SNAPSHOT_AT, duration=DURATION,
               dt_s=1.0):
    """Run to ``at_s``, save, load, resume to ``duration``."""
    total = int(round(duration / dt_s))
    k = checkpoint_step(at_s, duration, dt_s)
    sim = factory()
    run_ticks(sim, k, dt_s)
    save_engine(sim, path, kind=kind)
    restored = load_engine(path, expect_kind=kind)
    assert restored.time_s == pytest.approx(at_s)
    assert completed_steps(restored.sim, dt_s) == k
    run_ticks(restored.sim, total - k, dt_s)
    return restored.sim


class TestScalarRoundTrip:
    def test_resume_is_bit_identical(self, tmp_path):
        straight = make_scalar()
        straight.run(DURATION)
        resumed = round_trip(make_scalar, str(tmp_path / "ckpt.npz"),
                             "single")
        assert_sim_histories_identical(resumed.history, straight.history,
                                       "scalar resume vs straight")
        assert resumed.time_s == straight.time_s

    def test_resume_under_straddling_chaos(self, tmp_path):
        """Snapshot taken mid-degradation: the chaos cursor, the
        degraded actuator state, and the pending events all ride."""
        straight = make_scalar(events=STRADDLING_EVENTS)
        straight.run(DURATION)
        resumed = round_trip(
            lambda: make_scalar(events=STRADDLING_EVENTS),
            str(tmp_path / "chaos.npz"), "single")
        assert_sim_histories_identical(resumed.history, straight.history,
                                       "chaos resume vs straight")
        # The schedule must actually bite (guards a silently dropped
        # cursor producing a trivially-equal no-chaos pair).
        plain = make_scalar()
        plain.run(DURATION)
        assert not np.array_equal(resumed.history.column(
            "tail_latency_ms"), plain.history.column("tail_latency_ms"))

    def test_branching_forks_are_deterministic(self, tmp_path):
        """Warm-started what-if: two branches restored from one
        snapshot replay the same future, bit for bit."""
        path = str(tmp_path / "fork.npz")
        sim = make_scalar()
        run_ticks(sim, int(SNAPSHOT_AT), 1.0)
        save_engine(sim, path, kind="single")
        branches = []
        for _ in range(2):
            restored = load_engine(path, expect_kind="single").sim
            run_ticks(restored, int(DURATION - SNAPSHOT_AT), 1.0)
            branches.append(restored)
        assert_sim_histories_identical(branches[0].history,
                                       branches[1].history,
                                       "fork A vs fork B")

    def test_spill_round_trip_matches_in_ram(self, tmp_path, monkeypatch):
        """Chunked spill on both sides of the snapshot: the restored
        engine re-flushes its folded columns and stays on trajectory."""
        monkeypatch.setenv(SPILL_CHUNK_ENV, "32")  # force real chunking
        straight = make_scalar()
        straight.run(DURATION)
        resumed = round_trip(
            lambda: make_scalar(spill_dir=str(tmp_path / "spill")),
            str(tmp_path / "ckpt.npz"), "single")
        assert_sim_histories_identical(resumed.history, straight.history,
                                       "spilled resume vs in-RAM")


class TestBatchRoundTrip:
    def test_resume_is_bit_identical(self, tmp_path):
        straight = make_batch()
        straight.run(DURATION)
        resumed = round_trip(make_batch, str(tmp_path / "batch.npz"),
                             "batch")
        for i in range(3):
            assert_sim_histories_identical(
                resumed.members[i].history, straight.members[i].history,
                f"batch member {i} resume vs straight")

    def test_resume_under_member_targeted_chaos(self, tmp_path):
        """Per-member events straddling the snapshot (member 1 crashed
        and still down at save time; member 2's straggler pending)."""
        events = (ChaosEvent(30.0, "leaf_crash", members=(1,)),
                  ChaosEvent(50.0, "straggler", 0.5, members=(2,)),
                  ChaosEvent(110.0, "leaf_restart", members=(1,)),
                  ChaosEvent(140.0, "straggler", 1.0, members=(2,)))
        straight = make_batch(events=events)
        straight.run(DURATION)
        resumed = round_trip(lambda: make_batch(events=events),
                             str(tmp_path / "chaos.npz"), "batch")
        for i in range(3):
            assert_sim_histories_identical(
                resumed.members[i].history, straight.members[i].history,
                f"chaos batch member {i}")

    def test_meta_records_engine_clock(self, tmp_path):
        path = str(tmp_path / "meta.npz")
        batch = make_batch()
        run_ticks(batch, 90, 1.0)
        save_engine(batch, path, kind="batch",
                    extra_meta={"leaves": batch.n})
        restored = load_engine(path)
        assert restored.meta["version"] == CHECKPOINT_VERSION
        assert restored.meta["kind"] == "batch"
        assert restored.meta["leaves"] == 3
        assert restored.time_s == pytest.approx(90.0)


class TestArchiveValidation:
    def _saved(self, tmp_path, name="ok"):
        sim = make_scalar()
        run_ticks(sim, 5, 1.0)
        return save_engine(sim, str(tmp_path / name), kind="single")

    def test_kind_mismatch_is_rejected_before_unpickling(self, tmp_path):
        path = self._saved(tmp_path)
        with pytest.raises(CheckpointError,
                           match="holds a 'single'.*expected 'batch'"):
            load_engine(path, expect_kind="batch")

    def test_version_mismatch_is_rejected(self, tmp_path):
        import json
        path = str(tmp_path / "future.npz")
        meta = json.dumps({"version": 99, "kind": "single",
                           "time_s": 0.0}).encode("utf-8")
        np.savez(path,
                 __meta__=np.frombuffer(meta, dtype=np.uint8),
                 __pickle__=np.zeros(4, dtype=np.uint8))
        with pytest.raises(CheckpointError, match="version 99"):
            load_engine(path)

    def test_foreign_npz_is_rejected(self, tmp_path):
        path = str(tmp_path / "foreign.npz")
        np.savez(path, data=np.arange(8))
        with pytest.raises(CheckpointError,
                           match="not an engine checkpoint"):
            load_engine(path)

    def test_missing_and_corrupt_files(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_engine(str(tmp_path / "nope.npz"))
        bad = tmp_path / "trunc.npz"
        bad.write_bytes(b"PK\x03\x04 not a zipfile")
        with pytest.raises(CheckpointError, match="cannot read"):
            load_engine(str(bad))

    def test_suffix_is_appended_and_resolved(self, tmp_path):
        path = self._saved(tmp_path, name="bare")
        assert path.endswith("bare.npz")
        # Loading by the suffixless name the caller gave also works.
        assert load_engine(str(tmp_path / "bare")).time_s \
            == pytest.approx(5.0)

    def test_extra_meta_cannot_shadow_core_keys(self, tmp_path):
        sim = make_scalar()
        with pytest.raises(CheckpointError, match="may not override"):
            save_engine(sim, str(tmp_path / "x"), kind="single",
                        extra_meta={"kind": "impostor"})

    def test_side_arrays_round_trip_exactly(self, tmp_path):
        sim = make_scalar()
        tails = np.linspace(0.0, 1.0, 7)[:, None] * np.arange(3.0)
        path = save_engine(sim, str(tmp_path / "arr"), kind="single",
                           arrays={"tails": tails})
        restored = load_engine(path)
        assert np.array_equal(restored.arrays["tails"], tails)

    def test_checkpoint_step_bounds(self):
        assert checkpoint_step(90.0, 180.0, 1.0) == 90
        assert checkpoint_step(180.0, 180.0, 1.0) == 180
        with pytest.raises(CheckpointError, match="land in"):
            checkpoint_step(0.0, 180.0, 1.0)
        with pytest.raises(CheckpointError, match="land in"):
            checkpoint_step(200.0, 180.0, 1.0)
        with pytest.raises(CheckpointError, match="dt must be positive"):
            checkpoint_step(10.0, 180.0, 0.0)
        with pytest.raises(CheckpointError, match="dt must be positive"):
            completed_steps(make_scalar(), -1.0)

    def test_tick_split_never_loses_a_tick(self):
        """The round-vs-round trap: segment boundaries are integer
        ticks, so prefix + remainder always tile the straight run."""
        for duration, dt in ((3.0, 1.0), (1.5, 0.4), (240.0, 7.0)):
            total = int(round(duration / dt))
            for step in range(1, total + 1):
                at_s = step * dt
                k = checkpoint_step(at_s, duration, dt)
                assert k + (total - k) == total
