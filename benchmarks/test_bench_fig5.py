"""Regenerates Figure 5: effective machine utilization under Heracles."""

from conftest import regenerate

from repro.analysis.tables import render_load_series_table
from repro.experiments.fig5_emu import emu_table, run_fig5

LOADS = (0.10, 0.25, 0.40, 0.55, 0.70, 0.85)


def test_bench_fig5_emu(benchmark):
    sweeps = regenerate(benchmark, run_fig5, loads=LOADS, duration_s=700.0)
    series = {"baseline (EMU=load)": list(LOADS)}
    series.update(emu_table(sweeps))
    print()
    print(render_load_series_table(series, list(LOADS),
                                   title="Effective machine utilization"))
    # Significant EMU increases in all cases (paper: +~x1.3 to x4 over
    # baseline at low loads).
    for lc_name, sweep in sweeps.items():
        for be_name in sweep.results:
            emu = sweep.emu_series(be_name)
            assert max(e - l for e, l in zip(emu, LOADS)) > 0.15, (
                lc_name, be_name)
