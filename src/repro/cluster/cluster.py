"""The websearch minicluster experiment (§5.3, Figure 8).

Tens of leaf servers behind one fan-out root, driven by a 12-hour
diurnal trace (load 20%-90%).  Heracles runs on every leaf; brain runs
on half the leaves and streetview on the other half.  The experiment
reports, over the trace: root latency vs the cluster SLO, and
cluster-wide EMU (average ~90%, minimum ~80% in the paper).

Execution backends
------------------

``engine="batch"`` (default) advances all leaves per tick in one
vectorized step through :class:`~repro.sim.batch.BatchColocationSim` —
the leaves are homogeneous hardware, so their contention physics
resolves as array math, which is what makes large clusters and long
diurnal traces tractable.  ``engine="scalar"`` keeps the original
one-``ColocationSim``-per-leaf loop as the reference implementation;
both produce numerically identical cluster metrics for the same seed
(enforced by ``benchmarks/test_bench_batch.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.config import HeraclesConfig
from ..metrics.history import ColumnarHistory
from ..core.controller import HeraclesController
from ..core.dram_model import profile_lc_dram_model
from ..hardware.spec import MachineSpec, default_machine_spec
from ..sim.batch import BatchColocationSim
from ..workloads.best_effort import make_be_workload
from ..workloads.latency_critical import make_lc_workload
from ..workloads.traces import LoadTrace, websearch_cluster_trace
from .leaf import Leaf, LeafConfig, make_leaf_lc
from .root import RootAggregator


@dataclass
class ClusterRecord:
    """Cluster-level observables at one instant."""

    t_s: float
    load: float
    root_latency_ms: float
    root_slo_fraction: float
    emu: float


class ClusterHistory(ColumnarHistory):
    """Columnar record of cluster-level observables over a run.

    Same storage and metric stack as the per-server histories (see
    :mod:`repro.metrics`): one NumPy column per :class:`ClusterRecord`
    field, record materialization on demand, and the cluster's
    reporting aggregates routed through the shared
    :class:`~repro.metrics.windows.WindowedMetrics` implementation —
    which derives cadence from the records' explicit timestamps, never
    from an assumed 1-second tick.
    """

    RECORD_TYPE = ClusterRecord

    def max_root_slo_fraction(self, skip_s: float = 0.0) -> float:
        """Worst recorded root SLO fraction after ``skip_s`` seconds."""
        return self.metrics.maximum("root_slo_fraction", skip_s=skip_s)

    def mean_emu(self, skip_s: float = 0.0) -> float:
        """Mean cluster EMU after ``skip_s`` seconds."""
        return self.metrics.mean("emu", skip_s=skip_s)

    def min_emu(self, skip_s: float = 0.0) -> float:
        """Minimum cluster EMU after ``skip_s`` seconds."""
        return self.metrics.minimum("emu", skip_s=skip_s)


def baseline_tail_ms(lc, load: float) -> float:
    """Tail latency of ``lc`` alone on its machine at ``load``.

    The no-colocation operating point the cluster SLO targets are
    calibrated from (§5.3): one server, the LC workload's full
    allocation, no BE anywhere.
    """
    from ..hardware.server import Server
    from ..workloads.base import Allocation, spread_cores
    server = Server(lc.spec)
    alloc = Allocation(cores_by_socket=spread_cores(
        lc.spec.total_cores, lc.spec))
    usages = server.resolve([lc.demand(load, alloc)])
    return lc.tail_latency_ms(
        load, usages[lc.name],
        link_utilization=server.telemetry.link_utilization)


def cluster_slo_targets(spec: MachineSpec, leaves: int,
                        lc_name: str = "websearch") -> tuple:
    """(leaf SLO, root SLO) in ms for a fan-out cluster of ``leaves``.

    The root SLO is the baseline's µ/30s at 90% load without
    colocation (§5.3) — which, through the fan-out, already includes
    the straggler amplification of the worst leaf and its measurement
    noise.  The uniform leaf target is the per-leaf tail at that
    operating point.  One definition shared by
    :class:`WebsearchCluster` and the fleet's shard workers, so a
    sharded cluster can never calibrate different targets than the
    monolithic run it partitions.
    """
    reference = make_lc_workload(lc_name, spec)
    leaf_slo_ms = baseline_tail_ms(reference, load=0.90)
    noise_sigma = reference.profile.noise_sigma
    # E[max of n lognormal noise draws] grows ~ sigma * sqrt(2 ln n).
    straggler_noise = float(np.exp(
        noise_sigma * np.sqrt(2.0 * np.log(max(2, leaves)))))
    return leaf_slo_ms, leaf_slo_ms * straggler_noise


class WebsearchCluster:
    """A managed (or baseline) websearch minicluster."""

    def __init__(self,
                 leaves: int = 20,
                 spec: Optional[MachineSpec] = None,
                 trace: Optional[LoadTrace] = None,
                 heracles_config: Optional[HeraclesConfig] = None,
                 managed: bool = True,
                 record_period_s: float = 30.0,
                 seed: int = 0,
                 engine: str = "batch"):
        if leaves < 2:
            raise ValueError("a cluster needs at least two leaves")
        if engine not in ("batch", "scalar"):
            raise ValueError(f"unknown engine {engine!r}")
        self.spec = spec or default_machine_spec()
        self.trace = trace or websearch_cluster_trace(seed=seed)
        self.record_period_s = record_period_s
        self.managed = managed
        self.engine = engine

        # SLO targets (see cluster_slo_targets for the calibration).
        self.leaf_slo_ms, self.root_slo_ms = cluster_slo_targets(
            self.spec, leaves)

        # "Heracles shares the same offline model ... across all leaves."
        shared_model = profile_lc_dram_model(
            make_lc_workload("websearch", self.spec)) if managed else None

        self.batch: Optional[BatchColocationSim] = None
        self.leaves: List[Leaf] = []
        configs = [
            LeafConfig(index=i,
                       be_name="brain" if i % 2 == 0 else "streetview",
                       leaf_slo_ms=self.leaf_slo_ms,
                       seed=seed * 1000 + i)
            for i in range(leaves)
        ]
        if engine == "batch":
            # One shared LC instance (the leaves are homogeneous and the
            # workload model is stateless) and one BE instance per task.
            lc = make_leaf_lc(self.spec, self.leaf_slo_ms)
            be_by_name = {name: make_be_workload(name, self.spec)
                          for name in ("brain", "streetview")}
            self.batch = BatchColocationSim(
                lc=lc, trace=self.trace,
                bes=[be_by_name[c.be_name] for c in configs],
                spec=self.spec, seeds=[c.seed for c in configs],
                record_history=False)
            for member in self.batch.members:
                if managed:
                    HeraclesController.for_sim(
                        member, config=heracles_config,
                        dram_model=shared_model)
            self.leaves = [
                Leaf(config, trace=self.trace, spec=self.spec,
                     managed=managed, member=member)
                for config, member in zip(configs, self.batch.members)
            ]
        else:
            self.leaves = [
                Leaf(config, trace=self.trace, spec=self.spec,
                     shared_dram_model=shared_model,
                     heracles_config=heracles_config,
                     managed=managed, engine="scalar")
                for config in configs
            ]

        self.root = RootAggregator()
        self.history = ClusterHistory()
        self.time_s = 0.0
        self._tick_index = 0

    # ------------------------------------------------------------------

    def tick(self, dt_s: float = 1.0) -> None:
        """Advance the whole cluster by one interval.

        Cluster records are appended every ``record_period_s`` of
        simulated time, derived from the actual tick size (the cadence
        is tick-counted, so it stays correct for any ``dt_s``, not just
        the historical 1-second tick).
        """
        if dt_s <= 0:
            raise ValueError("dt must be positive")
        if self.batch is not None:
            result = self.batch.tick(dt_s)
            tails = result.tail_latency_ms.tolist()
            emus = result.emu.tolist()
        else:
            tails = []
            emus = []
            for leaf in self.leaves:
                record = leaf.sim.tick(dt_s)
                tails.append(record.tail_latency_ms)
                emus.append(record.emu)
        self.root.record(self.time_s, tails)
        record_every = max(1, int(round(self.record_period_s / dt_s)))
        if self._tick_index % record_every == 0:
            windowed = self.root.windowed_latency_ms()
            self.history.append(ClusterRecord(
                t_s=self.time_s,
                load=self.trace.clipped(self.time_s),
                root_latency_ms=windowed,
                root_slo_fraction=windowed / self.root_slo_ms,
                emu=float(np.mean(emus)),
            ))
        self.time_s += dt_s
        self._tick_index += 1

    def run(self, duration_s: float, dt_s: float = 1.0) -> ClusterHistory:
        steps = int(round(duration_s / dt_s))
        for _ in range(steps):
            self.tick(dt_s)
        return self.history


def run_cluster_arm(kwargs: dict):
    """Run one independent cluster simulation from a kwargs dict.

    A module-level (picklable) helper for fanning managed/baseline arms
    across :func:`repro.sim.runner.run_sweep`: ``kwargs`` holds the
    :class:`WebsearchCluster` constructor arguments plus ``duration``
    (and optionally ``dt_s``).

    Returns:
        ``(history, root_slo_ms)`` for the arm.
    """
    kwargs = dict(kwargs)
    duration = kwargs.pop("duration")
    dt_s = kwargs.pop("dt_s", 1.0)
    cluster = WebsearchCluster(**kwargs)
    return cluster.run(duration, dt_s=dt_s), cluster.root_slo_ms
