"""Tests for repro.hardware.counters: the controller's observation API."""

import pytest

from repro.hardware.counters import CounterBank
from repro.hardware.server import Server, TaskTickDemand
from repro.hardware.spec import default_machine_spec


@pytest.fixture
def server():
    return Server(default_machine_spec())


@pytest.fixture
def counters(server):
    return CounterBank(server)


def resolve_two_tasks(server):
    lc = TaskTickDemand(task="lc", cores_by_socket={0: 9, 1: 9},
                        activity=0.6,
                        uncached_dram_gbps_by_socket={0: 10.0, 1: 10.0},
                        net_demand_gbps=2.0)
    be = TaskTickDemand(task="be", cores_by_socket={0: 4, 1: 4},
                        activity=0.9,
                        uncached_dram_gbps_by_socket={0: 8.0, 1: 4.0},
                        net_demand_gbps=1.0)
    server.resolve([lc, be])


class TestDramCounters:
    def test_total_bw(self, server, counters):
        resolve_two_tasks(server)
        assert counters.dram_total_bw_gbps() == pytest.approx(32.0)

    def test_capacities(self, counters):
        assert counters.dram_capacity_gbps() == pytest.approx(120.0)
        assert counters.socket_dram_capacity_gbps() == pytest.approx(60.0)

    def test_worst_socket(self, server, counters):
        resolve_two_tasks(server)
        assert counters.worst_socket_dram_bw_gbps() == pytest.approx(18.0)

    def test_per_task_bw(self, server, counters):
        resolve_two_tasks(server)
        assert counters.dram_bw_of("be") == pytest.approx(12.0)
        assert counters.dram_bw_of("missing") == 0.0

    def test_utilization(self, server, counters):
        resolve_two_tasks(server)
        assert counters.dram_utilization() == pytest.approx(18.0 / 60.0)


class TestPowerCounters:
    def test_socket_power_positive(self, server, counters):
        resolve_two_tasks(server)
        assert counters.socket_power_watts(0) > 0
        assert 0 < counters.power_fraction_of_tdp(0) <= 1.0

    def test_max_fraction(self, server, counters):
        resolve_two_tasks(server)
        per_socket = [counters.power_fraction_of_tdp(s) for s in (0, 1)]
        assert counters.max_power_fraction_of_tdp() == pytest.approx(
            max(per_socket))

    def test_freq_of(self, server, counters):
        resolve_two_tasks(server)
        assert counters.freq_of("lc") > 1.0
        assert counters.freq_of("missing") is None


class TestNetworkCounters:
    def test_link_rate(self, counters):
        assert counters.link_rate_gbps() == pytest.approx(10.0)

    def test_tx_per_task(self, server, counters):
        resolve_two_tasks(server)
        assert counters.tx_gbps_of("lc") == pytest.approx(2.0)
        assert counters.tx_gbps_of("missing") == 0.0

    def test_total_tx(self, server, counters):
        resolve_two_tasks(server)
        assert counters.link_tx_gbps() == pytest.approx(3.0)


class TestCpuCounters:
    def test_utilization(self, server, counters):
        resolve_two_tasks(server)
        assert counters.cpu_utilization() == pytest.approx(26 / 36)

    def test_per_task_dram_map(self, server, counters):
        resolve_two_tasks(server)
        per_task = counters.per_task_dram_gbps()
        assert set(per_task) == {"lc", "be"}
