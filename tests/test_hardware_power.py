"""Tests for repro.hardware.power: RAPL, Turbo headroom, throttling."""

import pytest

from repro.hardware.power import (CorePowerRequest, RaplMeter,
                                  SocketPowerModel)
from repro.hardware.spec import SocketSpec


@pytest.fixture
def model():
    return SocketPowerModel(SocketSpec())


class TestFrequencyEquilibrium:
    def test_few_idleish_cores_reach_high_turbo(self, model):
        res = model.resolve([CorePowerRequest("lc", cores=2, activity=0.3)])
        assert res.freq_of("lc") > 2.9
        assert not res.throttled

    def test_all_cores_full_activity_throttles(self, model):
        res = model.resolve([CorePowerRequest("lc", cores=18, activity=1.0)])
        assert res.throttled
        assert res.freq_of("lc") < SocketSpec().turbo.all_core_turbo_ghz
        assert res.socket_power_watts <= SocketSpec().tdp_watts + 1e-6

    def test_power_virus_throttles_harder(self, model):
        normal = model.resolve([CorePowerRequest("a", 18, activity=1.0)])
        virus = model.resolve([CorePowerRequest("a", 18, activity=2.2)])
        assert virus.freq_of("a") < normal.freq_of("a")

    def test_dvfs_cap_respected(self, model):
        res = model.resolve([CorePowerRequest("be", cores=4, activity=0.8,
                                              dvfs_cap_ghz=1.5)])
        assert res.freq_of("be") == pytest.approx(1.5)

    def test_capping_be_frees_headroom_for_lc(self, model):
        together = model.resolve([
            CorePowerRequest("lc", cores=9, activity=0.9),
            CorePowerRequest("be", cores=9, activity=2.0),
        ])
        be_capped = model.resolve([
            CorePowerRequest("lc", cores=9, activity=0.9),
            CorePowerRequest("be", cores=9, activity=2.0,
                             dvfs_cap_ghz=1.2),
        ])
        assert be_capped.freq_of("lc") > together.freq_of("lc")

    def test_frequency_never_below_floor(self, model):
        res = model.resolve([CorePowerRequest("virus", 18, activity=3.0)])
        assert res.freq_of("virus") >= SocketSpec().turbo.min_ghz - 1e-9

    def test_idle_socket_power_is_idle_watts(self, model):
        res = model.resolve([])
        assert res.socket_power_watts == pytest.approx(
            SocketSpec().idle_watts)

    def test_power_grows_with_activity(self, model):
        low = model.resolve([CorePowerRequest("a", 9, activity=0.3)])
        high = model.resolve([CorePowerRequest("a", 9, activity=0.9)])
        assert high.socket_power_watts > low.socket_power_watts

    def test_unknown_task_raises(self, model):
        res = model.resolve([CorePowerRequest("a", 2, activity=0.5)])
        with pytest.raises(KeyError):
            res.freq_of("b")

    def test_power_fraction(self, model):
        res = model.resolve([CorePowerRequest("a", 18, activity=1.0)])
        assert res.power_fraction_of_tdp == pytest.approx(
            res.socket_power_watts / SocketSpec().tdp_watts)


class TestRequestValidation:
    def test_negative_cores(self):
        with pytest.raises(ValueError):
            CorePowerRequest("a", -1, 0.5).validate()

    def test_activity_range_allows_viruses(self):
        CorePowerRequest("a", 1, 2.5).validate()
        with pytest.raises(ValueError):
            CorePowerRequest("a", 1, 3.5).validate()

    def test_bad_cap(self):
        with pytest.raises(ValueError):
            CorePowerRequest("a", 1, 0.5, dvfs_cap_ghz=0.0).validate()


class TestRaplMeter:
    def test_first_reading(self):
        meter = RaplMeter(tdp_watts=120.0)
        meter.record(60.0)
        assert meter.read_watts() == pytest.approx(60.0)
        assert meter.read_fraction_of_tdp() == pytest.approx(0.5)

    def test_smoothing(self):
        meter = RaplMeter(tdp_watts=120.0, smoothing=0.5)
        meter.record(100.0)
        meter.record(50.0)
        assert meter.read_watts() == pytest.approx(75.0)

    def test_negative_power_rejected(self):
        meter = RaplMeter(120.0)
        with pytest.raises(ValueError):
            meter.record(-1.0)

    def test_bad_smoothing(self):
        with pytest.raises(ValueError):
            RaplMeter(120.0, smoothing=0.0)
