"""Tests for repro.perf.queueing: Erlang-C and the pooled tail model."""

import math

import pytest

from repro.perf.queueing import (QueueModel, erlang_c, solve_peak_qps,
                                 solve_service_time_ms)


class TestErlangC:
    def test_zero_load(self):
        assert erlang_c(4, 0.0) == 0.0

    def test_saturated(self):
        assert erlang_c(4, 4.0) == 1.0
        assert erlang_c(4, 10.0) == 1.0

    def test_single_server_equals_rho(self):
        # For M/M/1, P(wait) = rho.
        assert erlang_c(1, 0.3) == pytest.approx(0.3, rel=1e-9)
        assert erlang_c(1, 0.8) == pytest.approx(0.8, rel=1e-9)

    def test_known_value(self):
        # Classic tabulated value: k=2, a=1 -> C = 1/3.
        assert erlang_c(2, 1.0) == pytest.approx(1.0 / 3.0, rel=1e-9)

    def test_monotone_in_load(self):
        values = [erlang_c(8, a) for a in (1.0, 3.0, 5.0, 7.0, 7.9)]
        assert values == sorted(values)

    def test_pooling_reduces_waiting(self):
        # Same rho, more servers -> less waiting (statistical multiplexing).
        assert erlang_c(16, 12.8) < erlang_c(4, 3.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            erlang_c(0, 1.0)
        with pytest.raises(ValueError):
            erlang_c(4, -1.0)


class TestQueueModel:
    def test_unloaded_tail_is_service_tail(self):
        m = QueueModel(servers=36, service_ms=2.0, service_tail_mult=3.0)
        assert m.tail_latency_ms(0.0) == pytest.approx(6.0)

    def test_monotone_in_qps(self):
        m = QueueModel(servers=36, service_ms=2.0, pool_size=6)
        qps_values = [i * 400.0 for i in range(1, 50)]
        tails = [m.tail_latency_ms(q) for q in qps_values]
        assert all(b >= a - 1e-9 for a, b in zip(tails, tails[1:]))

    def test_continuous_at_saturation(self):
        # The overload branch must not undercut the stable branch.
        m = QueueModel(servers=12, service_ms=2.0, pool_size=6)
        sat = m.saturation_qps()
        below = m.tail_latency_ms(sat * 0.994)
        above = m.tail_latency_ms(sat * 1.01)
        assert above >= below

    def test_deep_overload_is_enormous(self):
        m = QueueModel(servers=12, service_ms=2.0)
        sat = m.saturation_qps()
        assert m.tail_latency_ms(2 * sat) > 20 * m.tail_latency_ms(0.0)

    def test_pool_structure(self):
        m = QueueModel(servers=36, service_ms=2.0, pool_size=6)
        assert m.pools == 6
        assert m.servers_per_pool == 6

    def test_no_pooling_default(self):
        m = QueueModel(servers=36, service_ms=2.0)
        assert m.pools == 1
        assert m.servers_per_pool == 36

    def test_small_server_counts(self):
        m = QueueModel(servers=2, service_ms=2.0, pool_size=6)
        assert m.pools == 1
        assert m.servers_per_pool == 2

    def test_smaller_pools_steeper_curve(self):
        pooled = QueueModel(servers=36, service_ms=2.0, pool_size=None)
        sharded = QueueModel(servers=36, service_ms=2.0, pool_size=4)
        qps = 0.9 * pooled.saturation_qps()
        assert sharded.tail_latency_ms(qps) > pooled.tail_latency_ms(qps)

    def test_utilization(self):
        m = QueueModel(servers=10, service_ms=5.0)
        assert m.utilization(1000.0) == pytest.approx(0.5)

    def test_percentile_affects_tail(self):
        hi = QueueModel(servers=8, service_ms=2.0, percentile=0.99)
        lo = QueueModel(servers=8, service_ms=2.0, percentile=0.95)
        qps = 0.85 * hi.saturation_qps()
        assert hi.tail_latency_ms(qps) > lo.tail_latency_ms(qps)

    def test_validation(self):
        with pytest.raises(ValueError):
            QueueModel(servers=0, service_ms=1.0)
        with pytest.raises(ValueError):
            QueueModel(servers=1, service_ms=0.0)
        with pytest.raises(ValueError):
            QueueModel(servers=1, service_ms=1.0, percentile=0.3)
        with pytest.raises(ValueError):
            QueueModel(servers=1, service_ms=1.0, service_tail_mult=0.5)
        with pytest.raises(ValueError):
            QueueModel(servers=1, service_ms=1.0, pool_size=0)
        m = QueueModel(servers=1, service_ms=1.0)
        with pytest.raises(ValueError):
            m.utilization(-1.0)


class TestSolvers:
    def test_solve_peak_qps_hits_target(self):
        target = 20.0
        peak = solve_peak_qps(servers=36, service_ms=2.0,
                              target_tail_ms=target, pool_size=6)
        m = QueueModel(servers=36, service_ms=2.0, pool_size=6)
        assert m.tail_latency_ms(peak) == pytest.approx(target, rel=1e-3)

    def test_solve_peak_rejects_infeasible(self):
        # Unloaded tail already exceeds the target.
        with pytest.raises(ValueError):
            solve_peak_qps(servers=4, service_ms=10.0, target_tail_ms=5.0)

    def test_solve_service_time_roundtrip(self):
        service = solve_service_time_ms(servers=36, qps=5000.0,
                                        target_tail_ms=20.0, pool_size=6)
        m = QueueModel(servers=36, service_ms=service, pool_size=6)
        assert m.tail_latency_ms(5000.0) == pytest.approx(20.0, rel=1e-3)

    def test_solver_validation(self):
        with pytest.raises(ValueError):
            solve_peak_qps(4, 1.0, -1.0)
        with pytest.raises(ValueError):
            solve_service_time_ms(4, 0.0, 5.0)
        with pytest.raises(ValueError):
            solve_service_time_ms(4, 10.0, 0.0)
