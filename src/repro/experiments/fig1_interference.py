"""Figure 1: impact of interference on shared resources.

Regenerates the paper's characterization table: for each of the three LC
workloads, each of the eight antagonist rows, and nineteen load points
(5%..95%), the tail latency normalized to the SLO.  Cells are
color-coded the way the paper does:

* **severe** (red): >= 120% of the SLO,
* **mild** (yellow): 100-120%,
* **ok** (green): <= 100%.

The paper's headline observations, all of which this experiment checks:

1. OS isolation alone (the ``brain`` row) violates the SLO at nearly
   every load for every workload.
2. LLC (big) and DRAM antagonists are catastrophic at low/mid load and
   fade as the LC workload grows to defend its resources.
3. HyperThread interference is modest until high load, then severe.
4. The power virus hurts most at low load (many antagonist cores).
5. Network antagonists crush memkeyval from ~35% load but leave
   websearch and ml_cluster untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..hardware.spec import MachineSpec, default_machine_spec
from ..workloads.antagonists import figure1_antagonists
from ..workloads.latency_critical import LC_PROFILES, make_lc_workload
from ..workloads.traces import load_sweep
from .common import characterization_cell


def classify(slo_fraction: float) -> str:
    """The paper's three-way color coding."""
    if slo_fraction >= 1.20:
        return "severe"
    if slo_fraction > 1.00:
        return "mild"
    return "ok"


@dataclass
class InterferenceTable:
    """One workload's block of Figure 1."""

    lc_name: str
    loads: List[float]
    rows: Dict[str, List[float]] = field(default_factory=dict)

    def cell(self, antagonist: str, load: float) -> float:
        return self.rows[antagonist][self.loads.index(load)]

    def category(self, antagonist: str, load: float) -> str:
        return classify(self.cell(antagonist, load))

    def render(self) -> str:
        """Plain-text rendering in the paper's layout."""
        width = max(len(name) for name in self.rows) + 2
        header = " " * width + " ".join(f"{int(l * 100):>5d}%"
                                        for l in self.loads)
        lines = [self.lc_name, header]
        for name, values in self.rows.items():
            cells = " ".join(_format_cell(v) for v in values)
            lines.append(f"{name:<{width}}" + cells)
        return "\n".join(lines)


def _format_cell(slo_fraction: float) -> str:
    if slo_fraction > 3.0:
        return " >300%"
    return f"{slo_fraction * 100:>5.0f}%"


def run_fig1(lc_names: Optional[List[float]] = None,
             loads: Optional[List[float]] = None,
             spec: Optional[MachineSpec] = None) -> Dict[str, InterferenceTable]:
    """Compute the full Figure 1 grid (or a subset)."""
    spec = spec or default_machine_spec()
    lc_names = lc_names or sorted(LC_PROFILES)
    loads = loads or load_sweep()
    antagonists = figure1_antagonists(spec)
    tables = {}
    for lc_name in lc_names:
        lc = make_lc_workload(lc_name, spec)
        table = InterferenceTable(lc_name=lc_name, loads=list(loads))
        for antagonist in antagonists:
            values = []
            for load in loads:
                result = characterization_cell(lc, antagonist, load, spec)
                values.append(result.slo_fraction)
            table.rows[antagonist.label] = values
        tables[lc_name] = table
    return tables


def main() -> None:
    tables = run_fig1()
    for table in tables.values():
        print(table.render())
        print()


if __name__ == "__main__":
    main()
