"""Configuration constants of the Heracles controller.

Every number here comes from §4.3 of the paper ("The constants used here
were determined through empirical tuning"):

* top-level poll period 15 s (enough queries for a meaningful tail);
* BE execution disabled above 85% load, re-enabled below 80% (hysteresis);
* a cooldown (~5 minutes) after an SLO violation before retrying
  colocation;
* slack bands: growth disallowed below 10% slack, BE cores cut to at
  most 2 below 5% slack;
* DRAM limit at 90% of peak streaming bandwidth;
* power action threshold at 90% of TDP;
* subcontroller periods: cores & memory 2 s, power 2 s, network 1 s;
* network headroom max(5% of link, 10% of LC bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HeraclesConfig:
    """All tunables of the controller, defaulting to the paper's values."""

    # Top-level controller (Algorithm 1).
    poll_period_s: float = 15.0
    load_disable_threshold: float = 0.85
    load_enable_threshold: float = 0.80
    cooldown_s: float = 300.0
    slack_no_growth: float = 0.10
    slack_cut_cores: float = 0.05
    be_cores_floor: int = 2  # "be_cores.Remove(be_cores.Size()-2)"

    # Core & memory subcontroller (Algorithm 2).
    core_mem_period_s: float = 2.0
    dram_limit_fraction: float = 0.90
    be_benefit_epsilon: float = 0.01  # min relative gain to count as benefit
    initial_be_llc_fraction: float = 0.10
    # Extra slack required before *growing* BE, on top of the no-growth
    # band: "Heracles maintains a small latency slack as a guard band to
    # avoid spikes and control instability" (§5.2).  Growth stops at
    # slack_no_growth + growth_guard so that measurement noise around
    # the equilibrium cannot push the tail across the SLO.
    growth_guard: float = 0.15

    # Power subcontroller (Algorithm 3).
    power_period_s: float = 2.0
    power_tdp_threshold: float = 0.90

    # Network subcontroller (Algorithm 4).
    network_period_s: float = 1.0
    net_link_headroom: float = 0.05
    net_lc_headroom: float = 0.10

    def validate(self) -> None:
        if self.poll_period_s <= 0:
            raise ValueError("poll period must be positive")
        if not (0.0 < self.load_enable_threshold
                <= self.load_disable_threshold <= 1.0):
            raise ValueError("need 0 < enable <= disable <= 1 for load "
                             "hysteresis")
        if self.cooldown_s < 0:
            raise ValueError("cooldown cannot be negative")
        if not (0.0 <= self.slack_cut_cores
                <= self.slack_no_growth <= 1.0):
            raise ValueError("slack bands must satisfy 0 <= cut <= "
                             "no-growth <= 1")
        if self.be_cores_floor < 0:
            raise ValueError("BE core floor cannot be negative")
        if self.growth_guard < 0:
            raise ValueError("growth guard cannot be negative")
        if not 0.0 < self.dram_limit_fraction <= 1.0:
            raise ValueError("DRAM limit must be a fraction of peak")
        if not 0.0 < self.power_tdp_threshold <= 1.0:
            raise ValueError("power threshold must be a fraction of TDP")
        for period in (self.core_mem_period_s, self.power_period_s,
                       self.network_period_s):
            if period <= 0:
                raise ValueError("subcontroller periods must be positive")
        if self.net_link_headroom < 0 or self.net_lc_headroom < 0:
            raise ValueError("network headroom must be non-negative")
