"""Regenerates Figure 8: the 12-hour websearch cluster under Heracles.

The benchmark runs a time-compressed trace (12 h -> 1.5 h) on 6 leaves
so it completes in seconds; run ``python -m repro.experiments.fig8_cluster``
for the full-fidelity 12-hour experiment (the numbers quoted in
EXPERIMENTS.md come from that run).
"""

from conftest import regenerate

from repro.experiments.fig8_cluster import run_fig8


def test_bench_fig8_cluster(benchmark):
    result = regenerate(benchmark, run_fig8, leaves=6,
                        time_compression=8.0)
    print()
    print(f"root SLO: {result.root_slo_ms:.1f} ms")
    print(f"Heracles: max latency {result.heracles_max_slo * 100:.0f}% of "
          f"SLO, mean EMU {result.heracles_mean_emu * 100:.0f}%")
    print(f"baseline: max latency {result.baseline_max_slo * 100:.0f}% of "
          f"SLO, mean EMU {result.baseline_mean_emu * 100:.0f}%")
    # Heracles raises EMU far above the baseline without breaking the
    # root SLO (compression makes the controller relatively slower, so
    # allow a small transient margin here; the uncompressed run in
    # EXPERIMENTS.md is violation-free).
    assert result.heracles_mean_emu > result.baseline_mean_emu + 0.15
    assert result.heracles_max_slo <= 1.15
    assert result.baseline_max_slo <= 1.05
