"""Tests for the declarative scenario subsystem.

Covers the load → validate → compile round trip, unknown-field and
invalid-value rejection, the YAML-subset parser (including equivalence
with PyYAML where available), injection/spike semantics, the example
spec files, and the golden-parity guarantee that the fig4 scenario
reproduces the hand-wired sweep numbers.
"""

import dataclasses
import glob
import os

import pytest

from repro.scenarios import (ClusterSpec, ScenarioError, ScenarioSpec,
                             ServerSpec, SweepSpec, TraceSpec, WorkloadSpec,
                             compile_scenario, load_scenario, loads_scenario,
                             parse_simple_yaml, registry, run_scenario)
from repro.scenarios.library import fig4_scenario, fig8_scenario
from repro.sim.batch import BatchColocationSim
from repro.sim.engine import ColocationSim

EXAMPLES = os.path.join(os.path.dirname(__file__), os.pardir, "examples",
                        "scenarios")


class TestSpecRoundTrip:
    def test_minimal_member_scenario(self):
        spec = load_scenario({
            "name": "t", "members": [{"lc": "websearch", "be": "brain"}]})
        assert spec.controller == "heracles"
        assert spec.members[0].trace.kind == "constant"
        assert spec.member_seed(0) == 0

    def test_member_seed_derivation(self):
        spec = load_scenario({
            "name": "t", "seed": 10,
            "members": [{"lc": "websearch"},
                        {"lc": "websearch", "seed": 99}]})
        assert spec.member_seed(0) == 10
        assert spec.member_seed(1) == 99

    def test_member_controller_override(self):
        spec = load_scenario({
            "name": "t", "controller": "none",
            "members": [{"lc": "websearch", "be": "brain",
                         "controller": "static-conservative"},
                        {"lc": "memkeyval"}]})
        assert spec.member_controller(0) == "static-conservative"
        assert spec.member_controller(1) == "none"

    def test_server_overrides_compose(self):
        spec = load_scenario({
            "name": "t", "server": {"sockets": 1, "link_gbps": 40.0},
            "members": [{"lc": "websearch"}]})
        machine = spec.server.to_machine_spec()
        assert machine.sockets == 1
        assert machine.nic.link_gbps == 40.0
        # Untouched fields keep the paper's defaults.
        assert machine.socket.cores == 18

    def test_full_tree_from_dict(self):
        spec = load_scenario({
            "name": "t", "duration_s": 120, "warmup_s": 30, "seed": 2,
            "members": [{
                "lc": "websearch", "be": "stream-DRAM",
                "trace": {"kind": "diurnal", "low": 0.1, "high": 0.9,
                          "period_s": 600,
                          "spikes": [{"at_s": 60, "duration_s": 30,
                                      "load": 0.95}]}}],
            "injections": [{"at_s": 10, "action": "enable_be"},
                           {"at_s": 10, "action": "set_be_cores",
                            "value": 4}]})
        assert spec.members[0].trace.spikes[0].load == 0.95
        assert spec.injections[1].value == 4


class TestSpecRejection:
    def test_unknown_scenario_field(self):
        with pytest.raises(ScenarioError, match="unknown field.*'colour'"):
            load_scenario({"name": "t", "colour": "red",
                           "members": [{"lc": "websearch"}]})

    def test_unknown_member_field(self):
        with pytest.raises(ScenarioError, match=r"members\[0\].*'cpus'"):
            load_scenario({"name": "t",
                           "members": [{"lc": "websearch", "cpus": 4}]})

    def test_unknown_trace_field_for_kind(self):
        # 'low' belongs to diurnal traces, not constant ones.
        with pytest.raises(ScenarioError, match="'low'"):
            load_scenario({"name": "t", "members": [
                {"lc": "websearch",
                 "trace": {"kind": "constant", "low": 0.2}}]})

    def test_unknown_trace_kind(self):
        with pytest.raises(ScenarioError, match="unknown trace kind"):
            load_scenario({"name": "t", "members": [
                {"lc": "websearch", "trace": {"kind": "sawtooth"}}]})

    def test_unknown_lc_and_be(self):
        with pytest.raises(ScenarioError, match="unknown LC workload"):
            load_scenario({"name": "t", "members": [{"lc": "nope"}]})
        with pytest.raises(ScenarioError, match="unknown BE workload"):
            load_scenario({"name": "t", "members": [
                {"lc": "websearch", "be": "nope"}]})

    def test_invalid_load_value(self):
        with pytest.raises(ScenarioError, match="load must be in"):
            load_scenario({"name": "t", "members": [
                {"lc": "websearch",
                 "trace": {"kind": "constant", "load": 1.5}}]})

    def test_invalid_controller_and_engine(self):
        with pytest.raises(ScenarioError, match="unknown controller"):
            load_scenario({"name": "t", "controller": "magic",
                           "members": [{"lc": "websearch"}]})
        with pytest.raises(ScenarioError, match="unknown engine"):
            load_scenario({"name": "t", "engine": "gpu",
                           "members": [{"lc": "websearch"}]})

    def test_shape_must_be_unique(self):
        with pytest.raises(ScenarioError, match="exactly one of"):
            load_scenario({"name": "t"})
        with pytest.raises(ScenarioError, match="exactly one of"):
            load_scenario({"name": "t",
                           "members": [{"lc": "websearch"}],
                           "sweep": {"lc_tasks": ["websearch"]}})

    def test_warmup_must_fit_duration(self):
        with pytest.raises(ScenarioError, match="warmup_s"):
            load_scenario({"name": "t", "duration_s": 100, "warmup_s": 100,
                           "members": [{"lc": "websearch"}]})

    def test_scalar_engine_rejects_multiple_members(self):
        with pytest.raises(ScenarioError, match="scalar engine"):
            load_scenario({"name": "t", "engine": "scalar",
                           "members": [{"lc": "websearch"},
                                       {"lc": "websearch"}]})

    def test_injection_validation(self):
        with pytest.raises(ScenarioError, match="requires a 'value'"):
            load_scenario({"name": "t", "members": [{"lc": "websearch"}],
                           "injections": [{"at_s": 1,
                                           "action": "set_be_cores"}]})
        with pytest.raises(ScenarioError, match="takes no 'value'"):
            load_scenario({"name": "t", "members": [{"lc": "websearch"}],
                           "injections": [{"at_s": 1, "action": "enable_be",
                                           "value": 2}]})
        with pytest.raises(ScenarioError, match="unknown action"):
            load_scenario({"name": "t", "members": [{"lc": "websearch"}],
                           "injections": [{"at_s": 1, "action": "explode"}]})

    def test_bad_server_override(self):
        with pytest.raises(ScenarioError, match="invalid hardware"):
            load_scenario({"name": "t", "server": {"llc_ways": 1},
                           "members": [{"lc": "websearch"}]})

    def test_sweep_rejects_ignored_fields(self):
        # dt_s and a top-level engine would be silently ignored by the
        # sweep/cluster lowering paths — the spec rejects them instead.
        with pytest.raises(ScenarioError, match="dt_s"):
            load_scenario({"name": "t", "dt_s": 0.25,
                           "sweep": {"lc_tasks": ["websearch"]}})
        with pytest.raises(ScenarioError, match="engine"):
            load_scenario({"name": "t", "engine": "batch",
                           "sweep": {"lc_tasks": ["websearch"]}})
        with pytest.raises(ScenarioError, match="cluster.engine"):
            load_scenario({"name": "t", "engine": "scalar",
                           "cluster": {"leaves": 2}})

    def test_type_errors(self):
        with pytest.raises(ScenarioError, match="expected an integer"):
            load_scenario({"name": "t", "seed": 1.5,
                           "members": [{"lc": "websearch"}]})
        with pytest.raises(ScenarioError, match="expected a number"):
            load_scenario({"name": "t", "duration_s": "long",
                           "members": [{"lc": "websearch"}]})


SAMPLE_YAML = """
# comment
name: sample            # trailing comment
engine: batch
duration_s: 120
warmup_s: 30
server:
  link_gbps: 40.0
members:
  - lc: websearch
    be: brain
    trace:
      kind: diurnal
      low: 0.2
      high: 0.8
      period_s: 600
      spikes:
        - {at_s: 20, duration_s: 10, load: 0.95}
  - lc: memkeyval
    be: iperf
    trace: {kind: constant, load: 0.4}
injections:
  - at_s: 15
    action: enable_be
"""


class TestYamlSubsetParser:
    def test_structures(self):
        data = parse_simple_yaml(SAMPLE_YAML)
        assert data["name"] == "sample"
        assert data["server"] == {"link_gbps": 40.0}
        assert data["members"][0]["trace"]["spikes"] == [
            {"at_s": 20, "duration_s": 10, "load": 0.95}]
        assert data["members"][1]["trace"] == {"kind": "constant",
                                               "load": 0.4}
        assert data["injections"] == [{"at_s": 15, "action": "enable_be"}]

    def test_scalars(self):
        data = parse_simple_yaml(
            "a: true\nb: false\nc: null\nd: 3\ne: 3.5\nf: 'x y'\ng: plain\n"
            "h: [1, 2.5, yes]\n")
        assert data == {"a": True, "b": False, "c": None, "d": 3, "e": 3.5,
                        "f": "x y", "g": "plain", "h": [1, 2.5, "yes"]}

    def test_matches_pyyaml(self):
        yaml = pytest.importorskip("yaml")
        for path in sorted(glob.glob(os.path.join(EXAMPLES, "*.yaml"))):
            with open(path) as handle:
                text = handle.read()
            assert parse_simple_yaml(text) == yaml.safe_load(text), path
        assert parse_simple_yaml(SAMPLE_YAML) == yaml.safe_load(SAMPLE_YAML)

    def test_rejects_tabs_and_mixed_levels(self):
        with pytest.raises(ScenarioError, match="tabs"):
            parse_simple_yaml("a:\n\tb: 1\n")
        with pytest.raises(ScenarioError, match="cannot mix"):
            parse_simple_yaml("- a\nb: 1\n")

    def test_rejects_unterminated_flow(self):
        with pytest.raises(ScenarioError, match="unterminated"):
            parse_simple_yaml("a: [1, 2\n")


class TestLoader:
    def test_yaml_and_json_files(self, tmp_path):
        yml = tmp_path / "s.yaml"
        yml.write_text("name: y\nmembers:\n  - lc: websearch\n")
        assert load_scenario(yml).name == "y"
        jsn = tmp_path / "s.json"
        jsn.write_text('{"name": "j", "members": [{"lc": "websearch"}]}')
        assert load_scenario(jsn).name == "j"

    def test_bad_extension_and_missing_file(self, tmp_path):
        with pytest.raises(ScenarioError, match="extension"):
            load_scenario(tmp_path / "s.toml")
        with pytest.raises(ScenarioError, match="cannot read"):
            load_scenario(tmp_path / "absent.yaml")

    def test_invalid_json(self):
        with pytest.raises(ScenarioError, match="invalid JSON"):
            loads_scenario("{nope", fmt="json")


class TestRegistry:
    def test_shipped_scenarios_present(self):
        names = registry.names()
        for expected in ("fig4", "fig8", "mixed-fleet", "diurnal-spike"):
            assert expected in names
        for name in names:
            spec = registry.get(name)
            spec.validate()
            assert registry.description(name)

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ScenarioError, match="registered scenarios"):
            registry.get("nope")

    def test_description_falls_back_to_spec(self):
        from repro.scenarios.registry import (_DESCRIPTIONS, _REGISTRY,
                                              register)
        from repro.scenarios.spec import ScenarioSpec, WorkloadSpec
        register("tmp-desc-test", lambda: ScenarioSpec(
            name="tmp-desc-test", description="from the spec",
            members=(WorkloadSpec(lc="websearch"),)))
        try:
            assert registry.description("tmp-desc-test") == "from the spec"
        finally:
            _REGISTRY.pop("tmp-desc-test")
            _DESCRIPTIONS.pop("tmp-desc-test")


class TestCompiler:
    def test_single_member_lowers_to_scalar(self):
        spec = load_scenario({
            "name": "t", "duration_s": 60, "warmup_s": 10,
            "members": [{"lc": "websearch", "be": "brain"}]})
        compiled = compile_scenario(spec)
        assert compiled.kind == "single"
        sim = compiled.build()
        assert isinstance(sim, ColocationSim)
        assert sim.controller is not None  # Heracles attached

    def test_multi_member_lowers_to_batch(self):
        spec = registry.get("mixed-fleet")
        spec = dataclasses.replace(spec, duration_s=60.0, warmup_s=20.0)
        compiled = compile_scenario(spec)
        assert compiled.kind == "batch"
        sim = compiled.build()
        assert isinstance(sim, BatchColocationSim)
        assert sim.n == 3
        result = compiled.run()
        assert len(result.members) == 3
        assert all(len(m.history) == 60 for m in result.members)
        assert "memkeyval" in result.render()

    def test_sweep_scenario_rejects_build(self):
        compiled = compile_scenario(fig4_scenario(loads=(0.5,)))
        assert compiled.kind == "sweep"
        with pytest.raises(ScenarioError, match="runner grid"):
            compiled.build()

    def test_controller_none_leaves_be_disabled(self):
        spec = load_scenario({
            "name": "t", "controller": "none", "duration_s": 30,
            "warmup_s": 0,
            "members": [{"lc": "websearch", "be": "brain"}]})
        result = run_scenario(spec)
        assert result.members[0].mean_be_throughput() == 0.0

    def test_static_baseline_controller(self):
        spec = load_scenario({
            "name": "t", "controller": "static-conservative",
            "duration_s": 30, "warmup_s": 0,
            "members": [{"lc": "websearch", "be": "brain"}]})
        sim = compile_scenario(spec).build()
        sim.run(30)
        assert sim.actuators.be_cores == 2  # the conservative grant

    def test_injections_fire_at_time(self):
        spec = load_scenario({
            "name": "t", "controller": "none", "duration_s": 40,
            "warmup_s": 0,
            "members": [{"lc": "memkeyval", "be": "stream-DRAM"}],
            "injections": [{"at_s": 20, "action": "enable_be"},
                           {"at_s": 20, "action": "set_be_cores",
                            "value": 6}]})
        compiled = compile_scenario(spec)
        sim = compiled.build()
        history = sim.run(40)
        cores = history.column("be_cores")
        assert all(c == 0 for c in cores[:20])
        # Actuation lands after the controller step at t=20.
        assert all(c == 6 for c in cores[22:])

    def test_spike_overlay_changes_offered_load(self):
        spec = load_scenario({
            "name": "t", "controller": "none", "duration_s": 30,
            "warmup_s": 0,
            "members": [{
                "lc": "websearch",
                "trace": {"kind": "constant", "load": 0.3,
                          "spikes": [{"at_s": 10, "duration_s": 5,
                                      "load": 0.9}]}}]})
        history = run_scenario(spec).members[0].history
        loads = history.column("load")
        assert loads[5] == pytest.approx(0.3)
        assert loads[12] == pytest.approx(0.9)
        assert loads[20] == pytest.approx(0.3)

    def test_seed_override_changes_trajectory(self):
        base = load_scenario({
            "name": "t", "duration_s": 60, "warmup_s": 0,
            "members": [{"lc": "websearch", "be": "brain"}]})
        a = run_scenario(base).members[0].history
        b = run_scenario(dataclasses.replace(base, seed=123)).members[0]\
            .history
        assert a.column("tail_latency_ms")[5] != \
            b.column("tail_latency_ms")[5]


class TestGoldenParity:
    """The fig4 scenario reproduces the hand-wired fig4 numbers."""

    def test_fig4_scenario_matches_hand_wired(self):
        from repro.experiments.common import baseline_cell, colocation_sweep
        from repro.hardware.spec import default_machine_spec
        from repro.workloads.latency_critical import make_lc_workload

        loads = (0.3, 0.7)
        scenario = fig4_scenario(lc_tasks=("websearch",),
                                 be_tasks=("brain",), loads=loads,
                                 duration_s=300.0)
        grid = compile_scenario(scenario).run(processes=1).sweeps[
            "websearch"]

        machine = default_machine_spec()
        hand = colocation_sweep("websearch", ("brain",), loads,
                                duration_s=300.0, spec=machine, seed=0,
                                processes=1)
        lc = make_lc_workload("websearch", machine)
        hand_baseline = [baseline_cell(lc, load, machine) for load in loads]

        for ours, theirs in zip(grid.results["brain"], hand["brain"]):
            assert ours.max_slo_fraction == pytest.approx(
                theirs.max_slo_fraction, abs=1e-6)
            assert ours.mean_emu == pytest.approx(theirs.mean_emu, abs=1e-6)
            assert ours.history.worst_window_slo(skip_s=240.0) == \
                pytest.approx(theirs.history.worst_window_slo(skip_s=240.0),
                              abs=1e-6)
        for ours, theirs in zip(grid.baseline_slo, hand_baseline):
            assert ours == pytest.approx(theirs, abs=1e-6)

    def test_fig8_scenario_matches_hand_wired_arm(self):
        from repro.cluster.cluster import WebsearchCluster
        from repro.workloads.traces import DiurnalTrace

        scenario = fig8_scenario(leaves=2, duration_s=600.0 * 72,
                                 time_compression=72.0, seed=3)
        result = compile_scenario(scenario).run(processes=1)
        trace = DiurnalTrace(low=0.20, high=0.90, period_s=600.0,
                             noise_sigma=0.02, seed=3)
        cluster = WebsearchCluster(leaves=2, trace=trace, seed=3,
                                   engine="batch")
        history = cluster.run(600.0)
        assert result.cluster_arms["managed"].mean_emu() == pytest.approx(
            history.mean_emu(), abs=1e-6)
        assert result.root_slo_ms == pytest.approx(cluster.root_slo_ms,
                                                   abs=1e-6)


class TestExampleSpecs:
    def test_all_examples_load_and_validate(self):
        paths = sorted(glob.glob(os.path.join(EXAMPLES, "*")))
        assert len(paths) >= 3
        for path in paths:
            spec = load_scenario(path)
            spec.validate()

    def test_novel_mix_runs_through_batched_backend(self):
        spec = load_scenario(os.path.join(EXAMPLES,
                                          "three_way_be_mix.yaml"))
        spec = dataclasses.replace(spec, duration_s=60.0, warmup_s=20.0)
        compiled = compile_scenario(spec)
        assert compiled.kind == "batch"
        result = compiled.run()
        assert {m.lc for m in result.members} == {"websearch", "memkeyval"}
        assert all(m.mean_emu() > 0 for m in result.members)

    def test_injection_example_runs(self):
        spec = load_scenario(os.path.join(EXAMPLES, "late_antagonist.json"))
        # Shortening the run must also drop the injections that now
        # fall outside it: at_s >= duration_s is a validation error.
        spec = dataclasses.replace(
            spec, duration_s=400.0, warmup_s=50.0,
            injections=tuple(i for i in spec.injections if i.at_s < 400.0))
        history = run_scenario(spec).members[0].history
        cores = history.column("be_cores")
        assert cores[100] == 0 and cores[320] == 8


class TestCliScenario:
    def test_list(self, capsys):
        from repro.cli import main
        assert main(["scenario", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "mixed-fleet" in out

    def test_run_spec_file(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "mini.yaml"
        path.write_text(
            "name: mini\nduration_s: 30\nwarmup_s: 5\n"
            "members:\n  - lc: websearch\n    be: brain\n"
            "    trace: {kind: constant, load: 0.4}\n")
        assert main(["scenario", str(path)]) == 0
        out = capsys.readouterr().out
        assert "scenario mini" in out and "websearch" in out

    def test_registry_name_wins_over_cwd_entry(self, tmp_path,
                                               monkeypatch, capsys):
        # A stray directory named like a registered scenario must not
        # shadow the registry lookup (it previously made the CLI exit
        # with "unsupported spec file extension").
        from repro.cli import main
        from repro.scenarios.registry import (_DESCRIPTIONS, _REGISTRY,
                                              register)
        from repro.scenarios.spec import ScenarioSpec, TraceSpec, \
            WorkloadSpec
        register("tmp-cli-test", lambda: ScenarioSpec(
            name="tmp-cli-test", duration_s=20.0, warmup_s=5.0,
            controller="none",
            members=(WorkloadSpec(lc="websearch",
                                  trace=TraceSpec(load=0.3)),)),
            "cli shadow test")
        (tmp_path / "tmp-cli-test").mkdir()
        monkeypatch.chdir(tmp_path)
        try:
            assert main(["scenario", "tmp-cli-test"]) == 0
            assert "tmp-cli-test" in capsys.readouterr().out
        finally:
            _REGISTRY.pop("tmp-cli-test")
            _DESCRIPTIONS.pop("tmp-cli-test")

    def test_unknown_scenario_exits(self):
        from repro.cli import main
        with pytest.raises(SystemExit, match="registered scenarios"):
            main(["scenario", "nope"])

    def test_missing_argument_exits(self):
        from repro.cli import main
        with pytest.raises(SystemExit, match="registered name"):
            main(["scenario"])

    def test_seed_override(self, capsys):
        from repro.cli import main
        spec_dict = ("name: s\nduration_s: 30\nwarmup_s: 5\n"
                     "members:\n  - lc: websearch\n    be: brain\n")
        import tempfile
        with tempfile.NamedTemporaryFile("w", suffix=".yaml",
                                         delete=False) as handle:
            handle.write(spec_dict)
            path = handle.name
        try:
            assert main(["scenario", path, "--seed", "9"]) == 0
        finally:
            os.unlink(path)
