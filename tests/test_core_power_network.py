"""Tests for the power (Algorithm 3) and network (Algorithm 4)
subcontrollers."""

import pytest

from repro.core.config import HeraclesConfig
from repro.core.network import NetworkController
from repro.core.power import PowerController, guaranteed_frequency_ghz
from repro.hardware.counters import CounterBank
from repro.hardware.server import Server, TaskTickDemand
from repro.hardware.spec import default_machine_spec
from repro.sim.actuators import Actuators
from repro.workloads.latency_critical import make_lc_workload


@pytest.fixture
def rig():
    spec = default_machine_spec()
    server = Server(spec)
    actuators = Actuators(server)
    counters = CounterBank(server)
    return server, actuators, counters


def resolve(server, lc_activity=0.5, be_cores=8, be_activity=2.2,
            lc_net=0.0, be_net=0.0, be_cap=None):
    demands = [TaskTickDemand(task="lc",
                              cores_by_socket={0: 9, 1: 9},
                              activity=lc_activity,
                              net_demand_gbps=lc_net)]
    if be_cores:
        demands.append(TaskTickDemand(
            task="be",
            cores_by_socket={0: be_cores // 2, 1: be_cores - be_cores // 2},
            activity=be_activity, dvfs_cap_ghz=be_cap,
            net_demand_gbps=be_net, net_flows=200))
    server.resolve(demands)


class TestGuaranteedFrequency:
    def test_full_load_frequency_is_realistic(self):
        lc = make_lc_workload("websearch")
        freq = guaranteed_frequency_ghz(lc)
        turbo = lc.spec.socket.turbo
        assert turbo.min_ghz < freq <= turbo.max_turbo_ghz

    def test_compute_bound_workloads_guarantee_less(self):
        # Higher activity -> less turbo headroom at full load.
        ws = guaranteed_frequency_ghz(make_lc_workload("websearch"))
        ml = guaranteed_frequency_ghz(make_lc_workload("ml_cluster"))
        assert ws <= ml


class TestAlgorithm3:
    def test_lowers_be_frequency_when_hot_and_slow(self, rig):
        server, actuators, counters = rig
        actuators.enable_be()
        actuators.set_be_cores(8)
        controller = PowerController(HeraclesConfig(), actuators, counters,
                                     lc_task="lc", guaranteed_ghz=2.5)
        # Power virus drives the socket to TDP; LC frequency sags.
        resolve(server, lc_activity=0.9, be_cores=8, be_activity=2.2)
        assert counters.max_power_fraction_of_tdp() > 0.9
        assert counters.freq_of("lc") < 2.5
        controller.step(0.0)
        assert actuators.be_dvfs_cap_ghz is not None

    def test_raises_be_frequency_when_cool_and_fast(self, rig):
        server, actuators, counters = rig
        actuators.enable_be()
        actuators.set_be_cores(2)
        actuators.lower_be_frequency(steps=5)
        cap_before = actuators.be_dvfs_cap_ghz
        controller = PowerController(HeraclesConfig(), actuators, counters,
                                     lc_task="lc", guaranteed_ghz=2.0)
        resolve(server, lc_activity=0.2, be_cores=2, be_activity=0.3,
                be_cap=cap_before)
        assert counters.max_power_fraction_of_tdp() <= 0.9
        assert counters.freq_of("lc") >= 2.0
        controller.step(0.0)
        assert (actuators.be_dvfs_cap_ghz is None
                or actuators.be_dvfs_cap_ghz > cap_before)

    def test_both_conditions_required(self, rig):
        # "Both conditions must be met to avoid confusion when the LC
        # cores enter active-idle modes" (§4.3): high power alone, with
        # LC still fast, must NOT lower BE frequency.
        server, actuators, counters = rig
        actuators.enable_be()
        actuators.set_be_cores(8)
        controller = PowerController(HeraclesConfig(), actuators, counters,
                                     lc_task="lc", guaranteed_ghz=1.3)
        resolve(server, lc_activity=0.9, be_cores=8, be_activity=2.2)
        assert counters.freq_of("lc") >= 1.3  # above the guarantee
        controller.step(0.0)
        assert actuators.be_dvfs_cap_ghz is None

    def test_period(self, rig):
        server, actuators, counters = rig
        actuators.enable_be()
        actuators.set_be_cores(8)
        controller = PowerController(HeraclesConfig(), actuators, counters,
                                     lc_task="lc", guaranteed_ghz=2.5)
        resolve(server, lc_activity=0.9, be_cores=8, be_activity=2.2)
        controller.step(0.0)
        cap = actuators.be_dvfs_cap_ghz
        controller.step(1.0)  # < 2 s: not due
        assert actuators.be_dvfs_cap_ghz == cap
        controller.step(2.0)
        assert actuators.be_dvfs_cap_ghz < cap

    def test_validation(self, rig):
        _, actuators, counters = rig
        with pytest.raises(ValueError):
            PowerController(HeraclesConfig(), actuators, counters,
                            lc_task="lc", guaranteed_ghz=0.0)


class TestAlgorithm4:
    def test_budget_formula(self, rig):
        server, actuators, counters = rig
        controller = NetworkController(HeraclesConfig(), actuators, counters,
                                       lc_task="lc")
        # be = LINK - ls - max(0.05*LINK, 0.10*ls)
        assert controller.be_budget_gbps(2.0) == pytest.approx(
            10.0 - 2.0 - 0.5)
        assert controller.be_budget_gbps(8.0) == pytest.approx(
            10.0 - 8.0 - 0.8)

    def test_headroom_switches_at_crossover(self, rig):
        server, actuators, counters = rig
        controller = NetworkController(HeraclesConfig(), actuators, counters,
                                       lc_task="lc")
        # Below 5 Gbps of LC traffic the 5%-of-link floor dominates.
        assert controller.be_budget_gbps(4.0) == pytest.approx(10 - 4 - 0.5)
        # Above it, 10% of the LC bandwidth dominates.
        assert controller.be_budget_gbps(6.0) == pytest.approx(10 - 6 - 0.6)

    def test_sets_ceiling_from_measured_lc_traffic(self, rig):
        server, actuators, counters = rig
        controller = NetworkController(HeraclesConfig(), actuators, counters,
                                       lc_task="lc")
        resolve(server, lc_net=4.0, be_net=5.0, be_cores=2)
        assert counters.tx_gbps_of("lc") == pytest.approx(4.0)
        controller.step(0.0)
        assert actuators.be_net_ceil_gbps == pytest.approx(10 - 4 - 0.5)

    def test_negative_budget_clamped(self, rig):
        server, actuators, counters = rig
        controller = NetworkController(HeraclesConfig(), actuators, counters,
                                       lc_task="lc")
        resolve(server, lc_net=9.9, be_cores=0)
        controller.step(0.0)
        assert actuators.be_net_ceil_gbps == pytest.approx(0.0)

    def test_one_second_period(self, rig):
        server, actuators, counters = rig
        controller = NetworkController(HeraclesConfig(), actuators, counters,
                                       lc_task="lc")
        resolve(server, lc_net=2.0, be_cores=0)
        controller.step(0.0)
        first = actuators.be_net_ceil_gbps
        resolve(server, lc_net=6.0, be_cores=0)
        controller.step(0.5)  # not due
        assert actuators.be_net_ceil_gbps == pytest.approx(first)
        controller.step(1.0)
        assert actuators.be_net_ceil_gbps == pytest.approx(10 - 6 - 0.6)

    def test_protects_lc_under_mice_flood(self, rig):
        # End to end: the 1 Hz loop converges to a ceiling that fully
        # delivers the LC task's traffic despite an 800-flow flood
        # ("provides sufficient time for the bandwidth enforcer to
        # settle", §4.3).  Each round: measure LC bandwidth, set the
        # ceiling, re-resolve the link.
        server, actuators, counters = rig
        controller = NetworkController(HeraclesConfig(), actuators, counters,
                                       lc_task="lc")
        actuators.enable_be()
        satisfaction = 0.0
        for second in range(15):
            demands = [
                TaskTickDemand(task="lc", cores_by_socket={0: 9, 1: 9},
                               activity=0.5, net_demand_gbps=6.0,
                               net_flows=64),
                TaskTickDemand(task="be", cores_by_socket={0: 1, 1: 1},
                               activity=0.2, net_demand_gbps=10.0,
                               net_flows=800,
                               net_ceil_gbps=actuators.be_net_ceil_gbps),
            ]
            usages = server.resolve(demands)
            satisfaction = usages["lc"].net_satisfaction
            controller.step(float(second))
        assert satisfaction == pytest.approx(1.0)
        # BE still gets the leftover, not zero.
        assert usages["be"].net_achieved_gbps > 2.0
