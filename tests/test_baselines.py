"""Tests for repro.baselines: OS isolation, static splits, energy prop."""

import pytest

import repro
from repro.baselines.energy_prop import (EnergyProportionalController,
                                         tco_comparison)
from repro.baselines.os_isolation import (os_isolation_sweep,
                                          violates_everywhere)
from repro.baselines.static import (StaticPartitionController,
                                    conservative_static, optimistic_static)
from repro.sim.engine import ColocationSim
from repro.workloads.latency_critical import make_lc_workload
from repro.workloads.traces import ConstantLoad


class TestOsIsolation:
    @pytest.fixture(scope="class")
    def sweep(self):
        return os_isolation_sweep("websearch", loads=[0.1, 0.3, 0.5, 0.7])

    def test_violates_at_every_load(self, sweep):
        # Figure 1's brain rows: OS isolation is never enough.
        assert violates_everywhere(sweep)

    def test_be_throughput_is_nonzero(self, sweep):
        # CFS is work-conserving: the BE task gets the idle cycles.
        assert all(p.be_throughput > 0.3 for p in sweep)

    def test_memkeyval_is_worst(self):
        ws = os_isolation_sweep("websearch", loads=[0.3])
        kv = os_isolation_sweep("memkeyval", loads=[0.3])
        assert kv[0].slo_fraction > ws[0].slo_fraction

    def test_unknown_be_rejected(self):
        with pytest.raises(KeyError):
            os_isolation_sweep("websearch", be_name="nope")

    def test_violates_everywhere_validation(self):
        with pytest.raises(ValueError):
            violates_everywhere([])


class TestStaticPartition:
    def run_static(self, factory, load, seed=0):
        sim = repro.build_colocation("websearch", "brain", load=load,
                                     seed=seed)
        sim.attach_controller(factory(sim.actuators))
        return sim.run(600)

    def test_conservative_is_safe_everywhere(self):
        for load in (0.2, 0.6, 0.8):
            history = self.run_static(conservative_static, load)
            assert history.worst_window_slo(skip_s=120) <= 1.0

    def test_conservative_leaves_emu_on_the_table(self):
        history = self.run_static(conservative_static, 0.2)
        from repro.experiments.common import run_colocation
        heracles = run_colocation("websearch", "brain", 0.2,
                                  duration_s=600)
        assert (history.mean("be_throughput_norm", skip_s=120)
                < heracles.mean_be_throughput)

    def test_optimistic_violates_at_high_load(self):
        history = self.run_static(optimistic_static, 0.75)
        assert history.worst_window_slo(skip_s=120) > 1.0

    def test_optimistic_fine_at_low_load(self):
        history = self.run_static(optimistic_static, 0.15)
        assert history.worst_window_slo(skip_s=120) <= 1.0

    def test_static_configures_once(self):
        sim = repro.build_colocation("websearch", "brain", load=0.3)
        controller = StaticPartitionController(sim.actuators, be_cores=4,
                                               be_llc_ways=4)
        sim.attach_controller(controller)
        sim.run(30)
        assert sim.actuators.be_cores == 4
        assert sim.actuators.be_llc_ways == 4

    def test_validation(self):
        sim = repro.build_colocation("websearch", "brain", load=0.3)
        with pytest.raises(ValueError):
            StaticPartitionController(sim.actuators, be_cores=-1,
                                      be_llc_ways=0)


class TestEnergyProportional:
    def test_lowers_frequency_at_low_load(self):
        sim = ColocationSim(lc=make_lc_workload("websearch"),
                            trace=ConstantLoad(0.2), seed=1)
        controller = EnergyProportionalController(
            sim.actuators, sim.latency_monitor,
            slo_target_ms=sim.lc.profile.slo_latency_ms)
        sim.attach_controller(controller)
        sim.run(300)
        assert controller.lc_cap_ghz is not None
        assert controller.lc_cap_ghz < sim.lc.spec.socket.turbo.max_turbo_ghz

    def test_never_enables_be(self):
        sim = repro.build_colocation("websearch", "brain", load=0.2, seed=1)
        controller = EnergyProportionalController(
            sim.actuators, sim.latency_monitor,
            slo_target_ms=sim.lc.profile.slo_latency_ms)
        sim.attach_controller(controller)
        history = sim.run(300)
        assert all(not r.be_enabled for r in history.records)

    def test_validation(self):
        sim = repro.build_colocation("websearch", "brain", load=0.2)
        with pytest.raises(ValueError):
            EnergyProportionalController(sim.actuators, sim.latency_monitor,
                                         slo_target_ms=0.0)
        with pytest.raises(ValueError):
            EnergyProportionalController(sim.actuators, sim.latency_monitor,
                                         slo_target_ms=10.0,
                                         lower_slack=0.1, raise_slack=0.2)

    def test_tco_comparison_matches_paper(self):
        low = tco_comparison(0.20)
        assert low["heracles_gain"] == pytest.approx(3.06, abs=0.25)
        assert low["energy_proportionality_gain"] < 0.07
        high = tco_comparison(0.75)
        assert high["heracles_gain"] == pytest.approx(0.15, abs=0.05)
        assert high["energy_proportionality_gain"] < 0.05
