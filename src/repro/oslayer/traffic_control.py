"""Linux traffic control: HTB qdisc classes for egress shaping.

Heracles' network-isolation mechanism is the ``qdisc`` scheduler with
hierarchical token bucket (HTB) queueing: bandwidth limits for outgoing
BE traffic are set through the ``ceil`` parameter, the LC job gets no
limit, and updates take effect in under hundreds of milliseconds (§4.1).

:class:`HtbQdisc` keeps the class configuration and translates it into
the per-task ceilings consumed by :class:`~repro.hardware.network.EgressLink`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass
class HtbClass:
    """One HTB class.

    Attributes:
        name: class label (one per task group).
        rate_gbps: guaranteed rate (informational in this model).
        ceil_gbps: maximum burst rate; None means uncapped (LC class).
    """

    name: str
    rate_gbps: float = 0.0
    ceil_gbps: Optional[float] = None

    def validate(self, link_gbps: float) -> None:
        if self.rate_gbps < 0:
            raise ValueError("rate must be non-negative")
        if self.ceil_gbps is not None:
            if self.ceil_gbps < 0:
                raise ValueError("ceil must be non-negative")
            if self.rate_gbps > self.ceil_gbps:
                raise ValueError("rate cannot exceed ceil")
            if self.ceil_gbps > link_gbps + 1e-9:
                raise ValueError("ceil cannot exceed the link rate")


class HtbQdisc:
    """Egress qdisc for one NIC."""

    def __init__(self, link_gbps: float):
        if link_gbps <= 0:
            raise ValueError("link rate must be positive")
        self.link_gbps = link_gbps
        self._classes: Dict[str, HtbClass] = {}

    def add_class(self, name: str, rate_gbps: float = 0.0,
                  ceil_gbps: Optional[float] = None) -> HtbClass:
        cls = HtbClass(name=name, rate_gbps=rate_gbps, ceil_gbps=ceil_gbps)
        cls.validate(self.link_gbps)
        self._classes[name] = cls
        return cls

    def set_ceil(self, name: str, ceil_gbps: Optional[float]) -> None:
        """Update a class ceiling (a ``tc class change`` in the real OS).

        Negative requests are clamped to zero: Algorithm 4 can compute a
        negative BE budget when the LC workload is consuming nearly the
        whole link, which in practice means "BE gets nothing".
        """
        if name not in self._classes:
            raise KeyError(name)
        if ceil_gbps is not None:
            ceil_gbps = min(max(0.0, ceil_gbps), self.link_gbps)
        old = self._classes[name]
        if ceil_gbps == old.ceil_gbps:
            return  # no-op change; skip the class rebuild
        rate = min(old.rate_gbps, ceil_gbps) if ceil_gbps is not None else old.rate_gbps
        self._classes[name] = HtbClass(name=name, rate_gbps=rate,
                                       ceil_gbps=ceil_gbps)

    def remove_class(self, name: str) -> None:
        if name not in self._classes:
            raise KeyError(name)
        del self._classes[name]

    def ceil_of(self, name: str) -> Optional[float]:
        """Ceiling applied to ``name``; None when unknown or uncapped."""
        cls = self._classes.get(name)
        return None if cls is None else cls.ceil_gbps

    def classes(self) -> Dict[str, HtbClass]:
        return dict(self._classes)
