"""One leaf of the websearch cluster (§5.3).

Each leaf is a full server running websearch on its own shard plus BE
tasks under a local Heracles instance.  "Heracles runs on every leaf
node with a uniform 99%-ile latency target set such that the latency at
the root satisfies the SLO", and "shares the same offline model for the
DRAM bandwidth needs of websearch across all leaves, even though each
leaf has a different shard" — we reproduce the shared-model detail by
profiling once and handing every leaf the same (slightly stale for any
given shard) model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.config import HeraclesConfig
from ..core.controller import HeraclesController
from ..core.dram_model import LcDramBandwidthModel
from ..hardware.spec import MachineSpec
from ..sim.engine import ColocationSim, TickRecord
from ..workloads.best_effort import make_be_workload
from ..workloads.latency_critical import make_lc_workload
from ..workloads.traces import LoadTrace


@dataclass
class LeafConfig:
    """Static description of one leaf."""

    index: int
    be_name: str
    leaf_slo_ms: float
    seed: int


class Leaf:
    """One managed leaf server."""

    def __init__(self, config: LeafConfig, trace: LoadTrace,
                 spec: MachineSpec,
                 shared_dram_model: Optional[LcDramBandwidthModel] = None,
                 heracles_config: Optional[HeraclesConfig] = None,
                 managed: bool = True):
        self.config = config
        lc = make_lc_workload("websearch", spec)
        # Per-leaf SLO target: the uniform leaf-level 99%-ile target.
        lc.profile = _with_slo(lc.profile, config.leaf_slo_ms)
        be = make_be_workload(config.be_name, spec)
        self.sim = ColocationSim(lc=lc, trace=trace, be=be, spec=spec,
                                 seed=config.seed)
        self.controller = None
        if managed:
            self.controller = HeraclesController.for_sim(
                self.sim, config=heracles_config,
                dram_model=shared_dram_model)

    def tick(self) -> TickRecord:
        return self.sim.tick()

    @property
    def last_tail_ms(self) -> float:
        return self.sim.history.last().tail_latency_ms

    @property
    def last_emu(self) -> float:
        return self.sim.history.last().emu


def _with_slo(profile, slo_ms: float):
    """Copy an LC profile with a different SLO target.

    The leaf target only moves the controller's goalposts; the service
    time calibration (derived from the *service's* SLO) is already baked
    into the workload instance, so we adjust only the target the
    controller chases and the normalization used in reporting.
    """
    import dataclasses
    return dataclasses.replace(profile, slo_latency_ms=slo_ms)
