"""Regenerates Figure 6: DRAM bandwidth, CPU utilization, and CPU power
under Heracles."""

from conftest import regenerate

from repro.analysis.tables import render_load_series_table
from repro.experiments.fig6_shared_resources import (FIG6_METRICS,
                                                     energy_efficiency_gain,
                                                     metric_fraction_series,
                                                     run_fig6)

LOADS = (0.20, 0.50, 0.80)
BE_TASKS = ("brain", "streetview", "stream-DRAM", "cpu_pwr")


def test_bench_fig6_shared_resources(benchmark):
    sweeps = regenerate(benchmark, run_fig6, be_tasks=BE_TASKS,
                        loads=LOADS, duration_s=700.0)
    for lc_name, sweep in sweeps.items():
        for metric in FIG6_METRICS:
            series = {be: metric_fraction_series(sweep, be, metric)
                      for be in sweep.results}
            print()
            print(render_load_series_table(
                series, sweep.loads, title=f"{lc_name} {metric}"))
    ws = sweeps["websearch"]
    # DRAM-hungry BE tasks keep DRAM below the 90% controller limit.
    for be in BE_TASKS:
        assert max(metric_fraction_series(ws, be, "dram")) <= 0.95
    # The 20%-load energy-efficiency claim (§5.2: 2.3-3.4x): colocation
    # multiplies EMU far faster than it multiplies power.
    gain = energy_efficiency_gain(ws, "brain", 0.20)
    print(f"\nwebsearch+brain @20% load: energy-efficiency gain {gain:.2f}x")
    assert gain > 1.5
