"""Tick-phase profiling: where does a fleet tick's wall-clock go?

A :class:`PhaseProfiler` is a dict of wall-clock accumulators keyed by
phase name.  Engines consult theirs with one ``is None`` check per
tick; when enabled they bracket the tick's phases with
``perf_counter`` reads.  Shards ship their totals back through
:class:`~repro.fleet.shard.ShardResult`; the fleet layer sums them and
adds its own ``rollup`` (telemetry re-assembly) and ``ipc``
(process-pool dispatch residual) phases, so ``--profile`` can print
one fleet-wide breakdown that tells the next perf PR exactly where
1000-leaf tick time goes.

The phase set is fixed (:data:`PHASES`) so breakdowns from different
shards and runs merge by plain key-wise addition:

* ``chaos`` — resolving injected fault/actuator events at tick start;
* ``physics`` — load evaluation + the vectorized server physics;
* ``telemetry`` — appending the tick's rows into the column stores;
* ``controllers`` — stepping Heracles/baseline controllers;
* ``rollup`` — fleet-level history re-assembly and stacking;
* ``ipc`` — pool wall-clock not accounted inside any shard (dispatch,
  pickling, result transport); with a parallel pool shard time
  overlaps, so this residual is clamped at zero and is only an
  *upper-bound-free* hint, exact at ``REPRO_JOBS=1``.

Wall-clock is inherently nondeterministic, so profiling carries no
bit-identity contract of its own — the contract is that *enabling it
never changes a simulated number* (``tests/test_obs.py``).
"""

from __future__ import annotations

import os
from typing import Dict, Mapping, Optional

#: Environment toggle: any non-empty value other than ``"0"`` enables
#: phase profiling process-wide (pool workers inherit it).
PROFILE_ENV = "REPRO_PROFILE"

#: The fixed phase vocabulary; merges are key-wise sums over this set.
PHASES = ("chaos", "physics", "telemetry", "controllers", "rollup",
          "ipc")


def profile_enabled() -> bool:
    """True when :data:`PROFILE_ENV` requests tick-phase profiling."""
    return os.environ.get(PROFILE_ENV, "") not in ("", "0")


def make_profiler() -> Optional["PhaseProfiler"]:
    """A fresh :class:`PhaseProfiler` when enabled, else None."""
    return PhaseProfiler() if profile_enabled() else None


class PhaseProfiler:
    """Wall-clock accumulators for the fixed tick-phase vocabulary."""

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {phase: 0.0 for phase in PHASES}

    def add(self, phase: str, dt: float) -> None:
        """Accumulate ``dt`` wall-clock seconds into ``phase``.

        Unknown phases raise ``KeyError`` eagerly — a typo'd phase
        would silently vanish from every merged breakdown.
        """
        self.seconds[phase] += dt

    def merge(self, other: Optional[Mapping[str, float]]) -> None:
        """Key-wise add another breakdown (dict or profiler ``seconds``)."""
        if other is None:
            return
        if isinstance(other, PhaseProfiler):
            other = other.seconds
        for phase, value in other.items():
            self.seconds[phase] = self.seconds.get(phase, 0.0) + value

    def as_dict(self) -> Dict[str, float]:
        """A plain ``{phase: seconds}`` copy (pool/pickle friendly)."""
        return dict(self.seconds)


def merge_profiles(profiles) -> Dict[str, float]:
    """Sum an iterable of breakdown dicts (Nones skipped)."""
    total = PhaseProfiler()
    for profile in profiles:
        total.merge(profile)
    return total.as_dict()


def render_profile(totals: Mapping[str, float]) -> str:
    """A phase-breakdown table: seconds and share per phase.

    >>> print(render_profile({"physics": 3.0, "controllers": 1.0}),
    ...       end="")
    phase          seconds   share
    physics          3.000  75.0%
    controllers      1.000  25.0%
    total            4.000 100.0%
    """
    rows = [(phase, totals[phase]) for phase in PHASES
            if totals.get(phase, 0.0) > 0.0]
    for phase in sorted(set(totals) - set(PHASES)):
        if totals[phase] > 0.0:
            rows.append((phase, totals[phase]))
    grand = sum(seconds for _, seconds in rows)
    lines = [f"{'phase':<12} {'seconds':>9} {'share':>7}"]
    for phase, seconds in rows:
        share = seconds / grand if grand > 0 else 0.0
        lines.append(f"{phase:<12} {seconds:>9.3f} {share:>6.1%}")
    lines.append(f"{'total':<12} {grand:>9.3f} {1.0 if grand else 0.0:>6.1%}")
    return "".join(line + "\n" for line in lines)
