"""Centralized cluster coordinator — the paper's §5.3 future work.

"We believe we can further reduce the slack in larger websearch
clusters by introducing a centralized controller that dynamically sets
the per-leaf tail latency targets based on slack at the root [47].
This will allow a future version of Heracles to take advantage of
slack in higher layers of the fan-out tree."

:class:`ClusterCoordinator` implements exactly that: it watches the
root's windowed latency against the cluster SLO and scales every leaf's
latency target up when the root has spare slack (letting leaf Heracles
instances colocate more aggressively) and back down when root slack
thins.  Targets are clamped to a safe band around the uniform baseline
target.
"""

from __future__ import annotations

from typing import List, Optional


class ClusterCoordinator:
    """Dynamic per-leaf latency targets driven by root slack."""

    def __init__(self, root_slo_ms: float, base_leaf_slo_ms: float,
                 period_s: float = 30.0,
                 raise_slack: float = 0.25,
                 lower_slack: float = 0.10,
                 step: float = 0.05,
                 min_scale: float = 0.85,
                 max_scale: float = 1.10):
        if root_slo_ms <= 0 or base_leaf_slo_ms <= 0:
            raise ValueError("SLO targets must be positive")
        if not 0.0 <= lower_slack < raise_slack <= 1.0:
            raise ValueError("need lower_slack < raise_slack in [0, 1]")
        if not 0.0 < min_scale <= 1.0 <= max_scale:
            raise ValueError("scale band must bracket 1.0")
        if step <= 0:
            raise ValueError("step must be positive")
        self.root_slo_ms = root_slo_ms
        self.base_leaf_slo_ms = base_leaf_slo_ms
        self.period_s = period_s
        self.raise_slack = raise_slack
        self.lower_slack = lower_slack
        self.step = step
        self.min_scale = min_scale
        self.max_scale = max_scale
        self._scale = 1.0
        self._last_step_s: Optional[float] = None

    @property
    def scale(self) -> float:
        return self._scale

    @property
    def leaf_target_ms(self) -> float:
        return self.base_leaf_slo_ms * self._scale

    def step_targets(self, now_s: float, root_latency_ms: float) -> float:
        """Update the per-leaf target from the root's windowed latency.

        Returns the (possibly unchanged) leaf target.
        """
        if (self._last_step_s is not None
                and now_s - self._last_step_s < self.period_s):
            return self.leaf_target_ms
        self._last_step_s = now_s
        slack = (self.root_slo_ms - root_latency_ms) / self.root_slo_ms
        if slack > self.raise_slack:
            self._scale = min(self.max_scale, self._scale + self.step)
        elif slack < self.lower_slack:
            self._scale = max(self.min_scale, self._scale - self.step)
        return self.leaf_target_ms

    def apply_to_leaves(self, leaves: List) -> None:
        """Push the current target into each leaf's Heracles instance."""
        target = self.leaf_target_ms
        for leaf in leaves:
            if leaf.controller is None:
                continue
            leaf.controller.top_level.slo_target_ms = target
            leaf.controller.core_memory.slo_target_ms = target


class CoordinatedWebsearchCluster:
    """A websearch cluster with the centralized coordinator enabled."""

    def __init__(self, leaves: int = 12, **cluster_kwargs):
        from .cluster import WebsearchCluster
        self.cluster = WebsearchCluster(leaves=leaves, **cluster_kwargs)
        self.coordinator = ClusterCoordinator(
            root_slo_ms=self.cluster.root_slo_ms,
            base_leaf_slo_ms=self.cluster.leaf_slo_ms)

    def run(self, duration_s: float, dt_s: float = 1.0):
        """Run the coordinated cluster for ``duration_s`` seconds.

        The step count derives from the tick size — ``duration_s /
        dt_s`` ticks, like every other ``run()`` — so coordinated runs
        simulate the requested duration and step targets at the right
        cadence for any ``dt_s`` (the historical loop hardcoded
        1-second ticks and truncated fractional durations).
        """
        if dt_s <= 0:
            raise ValueError("dt must be positive")
        cluster = self.cluster
        steps = int(round(duration_s / dt_s))
        for _ in range(steps):
            cluster.tick(dt_s)
            try:
                root_latency = cluster.root.windowed_latency_ms()
            except ValueError:
                continue
            before = self.coordinator.leaf_target_ms
            after = self.coordinator.step_targets(cluster.time_s,
                                                  root_latency)
            if after != before:
                self.coordinator.apply_to_leaves(cluster.leaves)
        return cluster.history
