"""Registered scenarios shipped with the package.

The paper's fig4 and fig8 evaluations are expressed here as scenario
specs — the experiment modules under :mod:`repro.experiments` are thin
consumers of these factories — alongside scenarios the paper never ran
(a heterogeneous three-way BE mix, a diurnal spike stress test with a
mid-run antagonist arrival).  ``python -m repro.cli scenario --list``
shows everything registered here.

The canonical Figure 4 axes (``FIG4_BE_TASKS``, ``DEFAULT_LOADS``)
live in this module; :mod:`repro.experiments.fig4_latency_slo`
re-exports them for backward compatibility.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..workloads.latency_critical import LC_PROFILES
from .registry import register
from .spec import (ClusterSpec, ScenarioSpec, SpikeSpec, SweepSpec,
                   TraceSpec, WorkloadSpec)

#: BE tasks shown in Figure 4 (iperf omitted for websearch/ml_cluster in
#: the paper's plot because they are network-insensitive; we compute it
#: anyway).
FIG4_BE_TASKS = ("stream-LLC", "stream-DRAM", "cpu_pwr", "brain",
                 "streetview", "iperf")

#: A lighter load axis than the paper's 19 points, dense enough to show
#: the shape; pass ``loads=load_sweep()`` for the full grid.
DEFAULT_LOADS = (0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.75, 0.85, 0.95)


def fig4_scenario(lc_tasks: Optional[Sequence[str]] = None,
                  be_tasks: Sequence[str] = FIG4_BE_TASKS,
                  loads: Sequence[float] = DEFAULT_LOADS,
                  duration_s: float = 900.0,
                  warmup_s: float = 240.0,
                  seed: int = 0) -> ScenarioSpec:
    """The Figure 4-7 colocation grid as a scenario spec.

    Args:
        lc_tasks: LC workloads to sweep (default: all three, sorted).
        be_tasks / loads: the grid axes.
        duration_s / warmup_s / seed: per-cell run parameters.

    Returns:
        A ``sweep``-shaped :class:`ScenarioSpec` whose compiled run is
        numerically identical to the hand-wired
        :func:`repro.experiments.fig4_latency_slo.run_sweep` grid.
    """
    return ScenarioSpec(
        name="fig4",
        description="Paper Figure 4: LC tail latency under Heracles "
                    "across loads and BE colocations",
        controller="heracles",
        duration_s=duration_s,
        warmup_s=warmup_s,
        seed=seed,
        sweep=SweepSpec(
            lc_tasks=tuple(lc_tasks) if lc_tasks
            else tuple(sorted(LC_PROFILES)),
            be_tasks=tuple(be_tasks),
            loads=tuple(loads)))


def fig8_scenario(leaves: int = 8,
                  duration_s: float = 12 * 3600.0,
                  time_compression: float = 1.0,
                  seed: int = 7,
                  engine: str = "batch") -> ScenarioSpec:
    """The §5.3 websearch cluster (Figure 8) as a scenario spec.

    Args:
        leaves: leaf servers behind the fan-out root.
        duration_s: simulated wall-clock before compression.
        time_compression: shrink factor for quick looks (the trace
            period and duration shrink together; controller dynamics
            stay at real speed).
        seed / engine: forwarded to the cluster driver.

    Returns:
        A ``cluster``-shaped :class:`ScenarioSpec` with managed and
        baseline arms, numerically identical to the hand-wired
        :func:`repro.experiments.fig8_cluster.run_fig8`.
    """
    if time_compression < 1.0:
        raise ValueError("compression must be >= 1")
    period = 12 * 3600.0 / time_compression
    duration = duration_s / time_compression
    return ScenarioSpec(
        name="fig8",
        description="Paper Figure 8: 12-hour diurnal websearch cluster, "
                    "Heracles vs baseline",
        duration_s=duration,
        # The paper skips the first 10 minutes; compressed quick looks
        # skip half the (shortened) run instead.
        warmup_s=min(600.0, 0.5 * duration),
        seed=seed,
        cluster=ClusterSpec(
            leaves=leaves,
            arms=("managed", "baseline"),
            trace=TraceSpec(kind="diurnal", low=0.20, high=0.90,
                            period_s=period, noise_sigma=0.02),
            engine=engine))


def mixed_fleet_scenario() -> ScenarioSpec:
    """A colocation mix the paper never ran: three heterogeneous servers.

    websearch+brain, websearch+streetview and memkeyval+iperf advance
    together through the batched backend, each member under its own
    Heracles instance with a distinct constant load and seed.
    """
    return ScenarioSpec(
        name="mixed-fleet",
        description="Three-way heterogeneous LC x BE mix on the batched "
                    "backend",
        engine="batch",
        duration_s=600.0,
        warmup_s=180.0,
        members=(
            WorkloadSpec(lc="websearch", be="brain",
                         trace=TraceSpec(kind="constant", load=0.60)),
            WorkloadSpec(lc="websearch", be="streetview",
                         trace=TraceSpec(kind="constant", load=0.40)),
            WorkloadSpec(lc="memkeyval", be="iperf",
                         trace=TraceSpec(kind="constant", load=0.50)),
        ))


def diurnal_spike_scenario() -> ScenarioSpec:
    """A stress test: diurnal swing, lunchtime spike, late antagonist.

    One websearch+stream-DRAM server rides a one-hour diurnal trace
    with a 95% load spike injected at t=1500 s; Heracles must shed the
    BE task through the spike and re-grow it afterwards.
    """
    return ScenarioSpec(
        name="diurnal-spike",
        description="Diurnal websearch with a 95% load spike under "
                    "Heracles + stream-DRAM",
        duration_s=3600.0,
        warmup_s=300.0,
        members=(
            WorkloadSpec(
                lc="websearch", be="stream-DRAM",
                trace=TraceSpec(
                    kind="diurnal", low=0.20, high=0.80, period_s=3600.0,
                    spikes=(SpikeSpec(at_s=1500.0, duration_s=180.0,
                                      load=0.95),))),
        ))


register("fig4", fig4_scenario,
         "Figure 4 grid: 3 LC x 6 BE x 10 loads under Heracles")
register("fig8", fig8_scenario,
         "Figure 8 cluster: 8 leaves, 12 h diurnal trace, both arms")
register("mixed-fleet", mixed_fleet_scenario,
         "Three heterogeneous LC x BE servers on the batched backend")
register("diurnal-spike", diurnal_spike_scenario,
         "Diurnal websearch + stream-DRAM with a 95% load spike")
