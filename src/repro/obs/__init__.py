"""Off-by-default observability: decision tracing, phase profiling,
progress heartbeats.

Heracles is a *feedback* system — the paper's controllers act on
monitored signals every epoch — and the telemetry layer records only
the *outcome* of those decisions.  This package records the decisions
themselves, without ever perturbing them:

* :mod:`repro.obs.trace` — a :class:`~repro.obs.trace.TraceSink`
  receiving structured events (controller actuations with triggering
  signals, chaos resolutions, scheduler placements, checkpoint saves)
  from instrumentation points inside every engine, merged across the
  process pool into one deterministic, tick-ordered JSONL export;
* :mod:`repro.obs.profile` — wall-clock tick-phase counters (physics /
  controllers / chaos / telemetry / rollup / pool IPC) aggregated per
  shard and rolled up fleet-wide;
* :mod:`repro.obs.progress` — a throttled tick/ETA heartbeat on stderr
  for long fleet runs, pool-safe.

Everything is opt-in via environment toggles (``REPRO_TRACE``,
``REPRO_PROFILE``, ``REPRO_PROGRESS``) that the CLI flags
(``--trace`` / ``--profile`` / ``--progress``) set before any worker
process forks, so the whole pool observes one switch.  The contract —
enforced by ``tests/test_obs.py``, the fuzzer's trace axis, and
``benchmarks/test_bench_obs.py`` — is that observability never changes
a simulated number: every engine × shard plan × worker count × chaos
schedule is bit-identical with tracing on or off, and the disabled
path costs ≤2%.
"""

from repro.obs.profile import (PHASES, PROFILE_ENV, PhaseProfiler,
                               make_profiler,
                               merge_profiles, profile_enabled,
                               render_profile)
from repro.obs.progress import (PROGRESS_ENV, Heartbeat, make_heartbeat,
                                progress_enabled)
from repro.obs.trace import (FIELDS, KINDS, SOURCES, TRACE_ENV, TraceSink,
                             concat_payloads, empty_payload,
                             events_to_jsonl, iter_events, make_sink,
                             merge_payloads, read_jsonl, trace_enabled,
                             write_jsonl)

__all__ = [
    "FIELDS", "KINDS", "SOURCES", "TRACE_ENV", "TraceSink",
    "concat_payloads", "empty_payload", "events_to_jsonl", "iter_events",
    "make_sink", "merge_payloads", "read_jsonl", "trace_enabled",
    "write_jsonl",
    "PHASES", "PROFILE_ENV", "PhaseProfiler", "make_profiler", "merge_profiles",
    "profile_enabled", "render_profile",
    "PROGRESS_ENV", "Heartbeat", "make_heartbeat", "progress_enabled",
]
