"""Benches for the paper's anticipated extensions.

1. **Per-core DRAM accounting vs offline model** (§4.2): the paper
   predicts that hardware bandwidth attribution eliminates the offline
   model; this bench compares safety and EMU of the two controller
   variants, including a stale-model arm.
2. **Centralized cluster coordinator** (§5.3 future work): dynamic
   per-leaf latency targets driven by root slack vs the uniform-target
   baseline.
"""

from conftest import regenerate

import repro
from repro.cluster.cluster import WebsearchCluster
from repro.cluster.coordinator import CoordinatedWebsearchCluster
from repro.core import HeraclesController
from repro.core.dram_model import profile_lc_dram_model
from repro.core.hw_dram import attach_hardware_counted_heracles
from repro.workloads.latency_critical import make_lc_workload
from repro.workloads.traces import DiurnalTrace


def test_bench_hw_dram_accounting(benchmark):
    def sweep():
        out = {}
        for be in ("streetview", "stream-DRAM"):
            for mode in ("offline model", "stale model x1.5",
                         "hw counters"):
                sim = repro.build_colocation("websearch", be, load=0.45,
                                             seed=3)
                if mode == "hw counters":
                    attach_hardware_counted_heracles(sim)
                elif mode == "stale model x1.5":
                    model = profile_lc_dram_model(
                        make_lc_workload("websearch")).perturbed(1.5)
                    HeraclesController.for_sim(sim, dram_model=model)
                else:
                    HeraclesController.for_sim(sim)
                history = sim.run(700)
                out[(be, mode)] = (
                    history.worst_window_slo(skip_s=240),
                    history.mean_emu(skip_s=240))
        return out

    results = regenerate(benchmark, sweep)
    print()
    for (be, mode), (slo, emu) in results.items():
        print(f"{be:<12} {mode:<18} worst tail {slo * 100:>4.0f}% of SLO, "
              f"EMU {emu * 100:>4.0f}%")
    # Every variant is safe; the counter-based controller matches the
    # fresh model's EMU without any profiling step.
    assert all(slo <= 1.0 for slo, _ in results.values())
    for be in ("streetview", "stream-DRAM"):
        fresh = results[(be, "offline model")][1]
        counted = results[(be, "hw counters")][1]
        assert counted >= fresh - 0.10


def test_bench_cluster_coordinator(benchmark):
    def sweep():
        def make_trace():
            return DiurnalTrace(low=0.2, high=0.9, period_s=5400,
                                noise_sigma=0.01, seed=11)

        uniform = WebsearchCluster(leaves=6, trace=make_trace(), seed=11)
        uniform_history = uniform.run(5400)
        coordinated = CoordinatedWebsearchCluster(leaves=6,
                                                  trace=make_trace(),
                                                  seed=11)
        coord_history = coordinated.run(5400)
        return {
            "uniform targets": (
                uniform_history.max_root_slo_fraction(skip_s=600),
                uniform_history.mean_emu(skip_s=600)),
            "coordinated targets": (
                coord_history.max_root_slo_fraction(skip_s=600),
                coord_history.mean_emu(skip_s=600)),
        }

    results = regenerate(benchmark, sweep)
    print()
    for name, (slo, emu) in results.items():
        print(f"{name:<22} max root latency {slo * 100:>4.0f}% of SLO, "
              f"mean EMU {emu * 100:>4.0f}%")
    # The coordinator must stay safe and not lose EMU; it typically
    # gains a little by spending root-level slack.
    assert results["coordinated targets"][0] <= 1.05
    assert (results["coordinated targets"][1]
            >= results["uniform targets"][1] - 0.03)
