"""Knee-shaped saturation penalty curves.

The central empirical observation of the paper (§4.2): "the antagonists
do not cause significant SLO violations until an inflection point, at
which point the tail latency degrades extremely rapidly".  Heracles'
whole decomposition strategy rests on shared resources having this
knee-then-cliff response.  This module provides the reusable curve shape
the resource models build that behaviour from.
"""

from __future__ import annotations


def knee_penalty(utilization: float, knee: float = 0.8,
                 gain: float = 1.0, exponent: float = 2.0,
                 ceiling: float = 50.0) -> float:
    """Multiplicative penalty that is ~1 below ``knee`` and grows
    super-linearly past it, diverging as utilization approaches 1.

    Args:
        utilization: resource utilization in [0, inf); values above 1
            indicate oversubscription and keep increasing the penalty.
        knee: utilization at which the penalty starts to climb.
        gain: scale of the penalty past the knee.
        exponent: sharpness of the climb.
        ceiling: cap to keep overloaded systems comparable and finite.

    Returns:
        Penalty factor >= 1.
    """
    if utilization < 0:
        raise ValueError("utilization must be non-negative")
    if not 0.0 < knee < 1.0:
        raise ValueError("knee must be in (0, 1)")
    if utilization <= knee:
        return 1.0
    capped = min(utilization, 0.999)
    progress = (capped - knee) / (1.0 - knee)
    penalty = min(ceiling, 1.0 + gain * progress ** exponent / (1.0 - capped))
    if utilization > 1.0:
        # Oversubscription term applied outside the ceiling so heavier
        # overloads always read as strictly worse.
        penalty += gain * 8.0 * (utilization - 1.0)
    return penalty


def soft_clip(value: float, limit: float) -> float:
    """Smoothly clamp ``value`` to at most ``limit`` (both positive)."""
    if limit <= 0:
        raise ValueError("limit must be positive")
    if value <= 0:
        return 0.0
    return limit * value / (value + limit)


def headroom_fraction(used: float, capacity: float) -> float:
    """Remaining fraction of a resource, clamped to [0, 1]."""
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    return min(1.0, max(0.0, 1.0 - used / capacity))
