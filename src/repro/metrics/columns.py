"""Columnar tick storage: preallocated, geometrically-grown arrays.

The recording layer used to keep one Python object per tick (lists of
dataclasses), which costs ~700 bytes per record and forces every
aggregate metric to rebuild a NumPy array with an O(T) attribute scan.
:class:`ColumnStore` inverts the layout: one preallocated NumPy array
per field, doubled in place when full, so appends are O(1) amortized
and :meth:`ColumnStore.column` hands back a zero-copy view that
vectorized metrics consume directly.

:class:`BatchColumnStore` extends the layout to batched engines: every
per-member field is a ``(capacity, N)`` member-major array, so a batch
of N servers records a whole tick with one vectorized row write instead
of N dataclass constructions.  Time is stored once (all members share
the batch clock), as an ordinary ``(capacity,)`` column.

Dtype policy: float-valued fields are stored as ``float64`` exactly as
produced (summaries stay bit-identical with the list-of-records
implementation they replaced); optional fields encode ``None`` as NaN
— float fields only, a ``None`` headed for an int/bool column is a
caller bug rejected eagerly with a :class:`TypeError` naming the field;
counts and flags may use narrow integer/bool dtypes to keep history
memory flat — :meth:`ColumnStore.column` up-casts those to ``float64``
on read, which is the dtype the old ``column()`` API always returned.

Spill-to-disk
-------------

Long-horizon runs (the paper's whole point is week-scale fleet
operation) cannot hold the full ``(T, N)`` history in RAM.  Passing
``spill_dir`` (or exporting :data:`SPILL_DIR_ENV`) turns a store into
a *chunked spill* store: whenever :data:`spill chunk <SPILL_CHUNK_ENV>`
rows accumulate, every column's full chunk is flushed to its own
``chunk_<index>_<field>.npy`` file and the in-RAM tail buffer is
recycled, so resident history memory is bounded by the chunk size —
never by T.  Reads are transparent: :meth:`ColumnStore.raw_column` and
friends materialize spilled chunks (memory-mapped) back into one
array, while :meth:`ColumnStore.column_chunks` iterates the mapped
chunks directly so the streaming aggregates in
:mod:`repro.metrics.windows` never materialize the run at all.

View staleness: zero-copy views alias the live recording buffer, and
both geometric growth and a spill flush recycle that buffer — a view
held across appends can silently freeze.  :attr:`ColumnStore.
generation` increments on every such invalidation; callers holding
views across appends compare generations and re-fetch.
"""

from __future__ import annotations

import os
import tempfile
from typing import Dict, Iterable, Iterator, Mapping, Tuple, Union

import numpy as np

#: Field specification: name -> NumPy dtype (anything np.dtype accepts).
FieldSpec = Union[Mapping[str, object], Iterable[Tuple[str, object]]]

#: Initial per-column capacity (rows) before the first geometric growth.
INITIAL_CAPACITY = 256

#: Environment toggle: when set (and no explicit ``spill_dir`` is
#: given), every store spills into a fresh subdirectory of this path —
#: the CI lever that runs the whole tier-1 suite over the spill path.
SPILL_DIR_ENV = "REPRO_SPILL_DIR"

#: Environment override for the spill chunk size (rows per chunk file).
SPILL_CHUNK_ENV = "REPRO_SPILL_CHUNK"

#: Default rows per spilled chunk: large enough that per-file overhead
#: amortizes, small enough that a (chunk, 1000)-leaf float64 tail stays
#: in the tens of megabytes.
DEFAULT_SPILL_CHUNK_ROWS = 1024


def _normalize_fields(fields: FieldSpec) -> Dict[str, np.dtype]:
    """Validate and normalize a field spec into ``{name: dtype}``."""
    if isinstance(fields, Mapping):
        pairs = list(fields.items())
    else:
        pairs = [(name, dtype) for name, dtype in fields]
    if not pairs:
        raise ValueError("a column store needs at least one field")
    out: Dict[str, np.dtype] = {}
    for name, dtype in pairs:
        if name in out:
            raise ValueError(f"duplicate field {name!r}")
        out[name] = np.dtype(dtype)
    return out


def _resolve_spill(spill_dir, spill_chunk_rows) -> Tuple[object, int]:
    """Resolve the spill configuration, honouring the env toggles.

    An explicit ``spill_dir`` wins; otherwise :data:`SPILL_DIR_ENV`
    (when set) gives every store a fresh private subdirectory, so many
    stores in one process (or across worker processes) never collide.
    """
    if spill_dir is None:
        env = os.environ.get(SPILL_DIR_ENV)
        if env:
            os.makedirs(env, exist_ok=True)
            spill_dir = tempfile.mkdtemp(prefix="store-", dir=env)
    if spill_dir is None:
        return None, 0
    if spill_chunk_rows is None:
        spill_chunk_rows = int(os.environ.get(SPILL_CHUNK_ENV,
                                              DEFAULT_SPILL_CHUNK_ROWS))
    if spill_chunk_rows <= 0:
        raise ValueError(
            f"spill_chunk_rows={spill_chunk_rows}: the spill chunk must "
            f"be a positive row count")
    os.makedirs(spill_dir, exist_ok=True)
    return str(spill_dir), int(spill_chunk_rows)


class ColumnStore:
    """One growable NumPy column per field; O(1) amortized row appends.

    Args:
        fields: mapping (or pairs) of field name to dtype.
        capacity: initial row capacity (grown geometrically as needed).
        spill_dir: when given, flush full chunks of rows to ``.npy``
            files under this directory (created if missing; each store
            needs its own directory) and keep only the in-RAM tail —
            resident memory is bounded by the chunk size, not T.
            Default ``None`` falls back to :data:`SPILL_DIR_ENV`.
        spill_chunk_rows: rows per spilled chunk file (default
            :data:`DEFAULT_SPILL_CHUNK_ROWS`, overridable via
            :data:`SPILL_CHUNK_ENV`).  Ignored without a spill dir.
    """

    def __init__(self, fields: FieldSpec,
                 capacity: int = INITIAL_CAPACITY,
                 spill_dir=None, spill_chunk_rows=None):
        self._dtypes = _normalize_fields(fields)
        self._spill_dir, self._spill_chunk = _resolve_spill(
            spill_dir, spill_chunk_rows)
        if self._spill_dir is not None:
            # The tail buffer is exactly one chunk; it never grows.
            capacity = self._spill_chunk
        self._capacity = max(1, int(capacity))
        self._length = 0      # total rows recorded (spilled + tail)
        self._base = 0        # rows flushed to disk
        self._chunks = 0      # chunk files written per field
        self._generation = 0  # bumps whenever live views go stale
        self._data: Dict[str, np.ndarray] = {
            name: np.empty(self._shape_of(name, self._capacity),
                           dtype=dtype)
            for name, dtype in self._dtypes.items()
        }

    # -- layout hooks (overridden by BatchColumnStore) -----------------

    def _shape_of(self, name: str, rows: int):
        """Allocation shape for ``rows`` of the named column."""
        return (rows,)

    # -- introspection --------------------------------------------------

    @property
    def fields(self) -> Tuple[str, ...]:
        """The stored field names, in declaration order."""
        return tuple(self._dtypes)

    @property
    def capacity(self) -> int:
        """Currently allocated row capacity (the tail when spilling)."""
        return self._capacity

    @property
    def generation(self) -> int:
        """Counter of view invalidations.

        Increments whenever previously returned zero-copy views may
        have gone stale: a geometric growth reallocated the backing
        buffer, or a spill flush recycled the tail.  A caller holding a
        :meth:`raw_column` / :meth:`member_column
        <BatchColumnStore.member_column>` view across appends should
        snapshot the generation at fetch time and re-fetch when it
        changes — the old view keeps the pre-growth buffer alive and
        silently stops seeing new rows.
        """
        return self._generation

    @property
    def spill_dir(self):
        """The spill directory, or ``None`` for a pure in-RAM store."""
        return self._spill_dir

    @property
    def spilled_rows(self) -> int:
        """Rows flushed to chunk files (0 for in-RAM stores)."""
        return self._base

    @property
    def spill_chunk_rows(self) -> int:
        """Rows per spilled chunk (0 for in-RAM stores)."""
        return self._spill_chunk

    def __len__(self) -> int:
        """Number of recorded rows."""
        return self._length

    def __contains__(self, name: str) -> bool:
        """True when ``name`` is a stored field."""
        return name in self._dtypes

    def nbytes(self, allocated: bool = False) -> int:
        """History bytes resident in RAM (the tail when spilling).

        Args:
            allocated: count the full preallocated capacity instead of
                only the rows recorded so far.
        """
        if allocated:
            return sum(a.nbytes for a in self._data.values())
        if self._capacity == 0:
            return 0
        tail = self._length - self._base
        return sum(a.nbytes * tail // self._capacity
                   for a in self._data.values())

    def spilled_nbytes(self) -> int:
        """History bytes held by the on-disk chunk files."""
        if self._capacity == 0 or not self._base:
            return 0
        return sum(a.nbytes * self._base // self._capacity
                   for a in self._data.values())

    # -- pickling / checkpoint ------------------------------------------

    def __getstate__(self):
        """Pickle the *recorded* history, not the allocation.

        The live buffers are preallocated (and, when spilling, most of
        the history lives in chunk files, not in ``_data`` at all), so
        the raw ``__dict__`` would pickle capacity garbage and lose the
        spilled rows.  Instead the state carries each column trimmed to
        its recorded length with spilled chunks folded back in — the
        checkpoint layer (:mod:`repro.sim.checkpoint`) relies on this
        to make whole-engine pickles exact and compact.
        """
        state = dict(self.__dict__)
        if self._data is not None:
            state["_data"] = {
                name: np.ascontiguousarray(self.raw_column(name))
                for name in self._dtypes}
        return state

    def __setstate__(self, state):
        """Rebuild live buffers (and spill chunks) from trimmed columns.

        A spilling store re-flushes its full chunks under its spill
        directory — recreated if the unpickling process no longer has
        it — so a restored engine continues exactly where the saved one
        stopped, chunk layout included.
        """
        columns = state.pop("_data")
        self.__dict__.update(state)
        if columns is None:
            self._data = None
            return
        total = self._length
        self._base = 0
        self._chunks = 0
        if self._spill_dir is not None:
            os.makedirs(self._spill_dir, exist_ok=True)
            self._capacity = self._spill_chunk
        else:
            self._capacity = max(1, total)
        self._data = {
            name: np.empty(self._shape_of(name, self._capacity),
                           dtype=dtype)
            for name, dtype in self._dtypes.items()
        }
        if self._spill_dir is not None:
            while total - self._base >= self._spill_chunk:
                lo = self._base
                hi = lo + self._spill_chunk
                for name in self._dtypes:
                    np.save(self._chunk_path(self._chunks, name),
                            columns[name][lo:hi])
                self._chunks += 1
                self._base = hi
        for name in self._dtypes:
            self._data[name][:total - self._base] = \
                columns[name][self._base:]

    # -- writes ---------------------------------------------------------

    def _grow_to(self, rows: int) -> None:
        """Ensure tail capacity for ``rows`` total rows.

        Geometric doubling; reallocation invalidates live views, so the
        :attr:`generation` is bumped.  Spilling stores never grow — the
        tail is flushed at exactly one chunk.
        """
        rows -= self._base
        if rows <= self._capacity:
            return
        new_cap = self._capacity
        while new_cap < rows:
            new_cap *= 2
        tail = self._length - self._base
        for name, array in self._data.items():
            grown = np.empty(self._shape_of(name, new_cap),
                             dtype=array.dtype)
            grown[:tail] = array[:tail]
            self._data[name] = grown
        self._capacity = new_cap
        self._generation += 1

    def _chunk_path(self, index: int, name: str) -> str:
        """Path of one field's ``index``-th spilled chunk file."""
        return os.path.join(self._spill_dir,
                            f"chunk_{index:06d}_{name}.npy")

    def _maybe_flush(self) -> None:
        """Flush the tail to chunk files when it reaches one chunk."""
        if self._spill_dir is None:
            return
        if self._length - self._base < self._spill_chunk:
            return
        for name in self._dtypes:
            np.save(self._chunk_path(self._chunks, name),
                    self._data[name][:self._spill_chunk])
        self._chunks += 1
        self._base += self._spill_chunk
        self._generation += 1

    def append_row(self, values: Mapping[str, object]) -> None:
        """Append one row; ``values`` must cover every field.

        ``None`` is encoded as NaN for float fields.  A ``None`` headed
        for a narrow (int/bool) column has no NaN encoding — assigning
        it would corrupt the count — so it is rejected eagerly with a
        :class:`TypeError` naming the offending field, instead of the
        opaque NumPy cast error the assignment would raise mid-run.
        """
        self._grow_to(self._length + 1)
        i = self._length - self._base
        for name, dtype in self._dtypes.items():
            value = values[name]
            if value is None:
                if dtype.kind != "f":
                    raise TypeError(
                        f"field {name!r} is stored as {dtype} and has no "
                        f"NaN encoding for None; record a real value or "
                        f"declare the field as a float column")
                value = np.nan
            self._data[name][i] = value
        self._length += 1
        self._maybe_flush()

    def append_rows(self, values: Mapping[str, np.ndarray]) -> None:
        """Append a block of rows; every field an equal-length array.

        The block counterpart of :meth:`append_row` for callers that
        produce many rows per tick (the decision-trace sink emits one
        block per changed actuator kind): one slice assignment per
        field instead of a Python loop per row.  ``None`` encoding is
        *not* applied — callers hand in arrays already in storage
        dtype (encode NaN yourself for float fields).  Spilling stores
        write the block in tail-capacity slices, flushing full chunks
        exactly as the row-at-a-time path would.
        """
        arrays = {}
        count = None
        for name in self._dtypes:
            array = np.asarray(values[name])
            if count is None:
                count = len(array)
            elif len(array) != count:
                raise ValueError(
                    f"field {name!r} has {len(array)} rows, expected "
                    f"{count}: append_rows needs equal-length columns")
            arrays[name] = array
        if not count:
            return
        if self._spill_dir is None:
            self._grow_to(self._length + count)
            lo = self._length - self._base
            for name, array in arrays.items():
                self._data[name][lo:lo + count] = array
            self._length += count
            return
        written = 0
        while written < count:
            room = self._capacity - (self._length - self._base)
            take = min(room, count - written)
            lo = self._length - self._base
            for name, array in arrays.items():
                self._data[name][lo:lo + take] = \
                    array[written:written + take]
            self._length += take
            written += take
            self._maybe_flush()

    # -- reads ----------------------------------------------------------

    def _assemble(self, name: str, member=None) -> np.ndarray:
        """One full column with spilled chunks mapped back in."""
        parts = []
        for index in range(self._chunks):
            chunk = np.load(self._chunk_path(index, name), mmap_mode="r")
            parts.append(chunk if member is None else chunk[:, member])
        tail = self._data[name][:self._length - self._base]
        parts.append(tail if member is None else tail[:, member])
        out = np.concatenate(parts, axis=0)
        out.flags.writeable = False
        return out

    def raw_column(self, name: str) -> np.ndarray:
        """One column in its storage dtype, shape (T,...).

        For in-RAM stores this is a zero-copy view of the live
        recording buffer, marked read-only (an in-place mutation would
        silently rewrite history).  The view goes stale when the buffer
        is reallocated by growth — watch :attr:`generation` and
        re-fetch.  For spilling stores the column is materialized from
        the memory-mapped chunk files plus the tail (a fresh array);
        use :meth:`column_chunks` to stream without materializing.
        """
        if self._base:
            return self._assemble(name)
        view = self._data[name][:self._length]
        view.flags.writeable = False
        return view

    def column(self, name: str) -> np.ndarray:
        """One column as ``float64``, shape (T,...).

        Zero-copy for in-RAM ``float64`` fields; narrow (int/bool)
        fields are up-cast on read, matching the dtype the
        records-based ``column()`` API historically returned.
        """
        raw = self.raw_column(name)
        if raw.dtype == np.float64:
            return raw
        return raw.astype(np.float64)

    def column_chunks(self, name: str) -> Iterator[np.ndarray]:
        """Stream one column as read-only chunks, spilled chunks first.

        Spilled chunks arrive memory-mapped (``np.load(mmap_mode='r')``)
        and the in-RAM tail last, so consumers — the streaming
        aggregates in :mod:`repro.metrics.windows` — touch one chunk of
        pages at a time and peak RSS stays bounded by the chunk size.
        In-RAM stores yield their single live view, so the same
        consumer code covers both layouts.
        """
        for index in range(self._chunks):
            yield np.load(self._chunk_path(index, name), mmap_mode="r")
        tail = self._data[name][:self._length - self._base]
        if len(tail):
            view = tail.view()
            view.flags.writeable = False
            yield view

    def value(self, name: str, index: int):
        """One cell, decoded: NaN-able float fields give NaN through."""
        if index < 0:
            index += self._length
        if index >= self._base:
            return self._data[name][index - self._base]
        chunk, offset = divmod(index, self._spill_chunk)
        return np.load(self._chunk_path(chunk, name),
                       mmap_mode="r")[offset]


class BatchColumnStore(ColumnStore):
    """(T, N) member-major columns for batched engines.

    Per-member fields allocate as ``(capacity, n)``; fields named in
    ``shared`` (by default just the time column) allocate as
    ``(capacity,)`` because every member shares the batch clock.  One
    :meth:`append_tick` call records a whole tick for all N members.
    Spill (see :class:`ColumnStore`) flushes per-member chunks as
    ``(chunk, n)`` files.
    """

    def __init__(self, fields: FieldSpec, n: int,
                 shared: Iterable[str] = ("t_s",),
                 capacity: int = INITIAL_CAPACITY,
                 spill_dir=None, spill_chunk_rows=None):
        if n < 1:
            raise ValueError("batch stores need at least one member")
        self.n = int(n)
        self._shared = frozenset(shared)
        super().__init__(fields, capacity=capacity, spill_dir=spill_dir,
                         spill_chunk_rows=spill_chunk_rows)
        unknown = self._shared - set(self._dtypes)
        if unknown:
            raise ValueError(f"shared fields not in spec: {sorted(unknown)}")

    def _shape_of(self, name: str, rows: int):
        """(rows,) for shared columns, (rows, N) for per-member ones."""
        return (rows,) if name in self._shared else (rows, self.n)

    def append_tick(self, values: Mapping[str, object]) -> None:
        """Record one tick: scalars for shared fields, (N,) arrays else."""
        self._grow_to(self._length + 1)
        i = self._length - self._base
        for name in self._dtypes:
            self._data[name][i] = values[name]
        self._length += 1
        self._maybe_flush()

    def member_column(self, name: str, index: int) -> np.ndarray:
        """One member's column in storage dtype, shape (T,).

        Zero-copy and read-only for in-RAM stores (stale after growth,
        like :meth:`ColumnStore.raw_column` — watch
        :attr:`ColumnStore.generation`); materialized from the mapped
        chunks for spilling stores.
        """
        if name in self._shared:
            return self.raw_column(name)
        if self._base:
            return self._assemble(name, member=index)
        view = self._data[name][:self._length, index]
        view.flags.writeable = False
        return view

    def member_column_chunks(self, name: str,
                             index: int) -> Iterator[np.ndarray]:
        """Stream one member's column as read-only chunks.

        The per-member slice of each mapped ``(chunk, n)`` file reads
        only that member's stride; shared columns stream whole.
        """
        if name in self._shared:
            yield from self.column_chunks(name)
            return
        for chunk_index in range(self._chunks):
            chunk = np.load(self._chunk_path(chunk_index, name),
                            mmap_mode="r")
            yield chunk[:, index]
        tail = self._data[name][:self._length - self._base, index]
        if len(tail):
            view = tail.view()
            view.flags.writeable = False
            yield view
