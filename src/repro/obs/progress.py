"""Progress heartbeats for long fleet runs: tick/ETA lines on stderr.

A :class:`Heartbeat` prints a throttled one-line progress report —
label, tick count, percentage, elapsed, and a linear ETA — to
**stderr**, so it composes with ``--json`` and ``--trace`` output on
stdout.  It is pool-safe by construction: each shard worker owns its
own heartbeat and writes whole lines to the stderr handle inherited
from the parent, which the POSIX pipe layer delivers atomically at
these sizes.

Enabled via :data:`PROGRESS_ENV` (the CLI ``--progress`` flag sets it
before workers fork).  Disabled cost is the usual single ``is None``
check per tick loop.
"""

from __future__ import annotations

import os
import sys
import time
from typing import Optional

#: Environment toggle: any non-empty value other than ``"0"`` enables
#: progress heartbeats process-wide (pool workers inherit it).
PROGRESS_ENV = "REPRO_PROGRESS"

#: Minimum wall-clock seconds between lines from one heartbeat.
DEFAULT_INTERVAL_S = 2.0


def progress_enabled() -> bool:
    """True when :data:`PROGRESS_ENV` requests progress heartbeats."""
    return os.environ.get(PROGRESS_ENV, "") not in ("", "0")


def make_heartbeat(label: str, total_ticks: int
                   ) -> Optional["Heartbeat"]:
    """A :class:`Heartbeat` when enabled (and the run is non-empty)."""
    if not progress_enabled() or total_ticks <= 0:
        return None
    return Heartbeat(label, total_ticks)


class Heartbeat:
    """Throttled tick/ETA reporter for one shard or engine loop."""

    def __init__(self, label: str, total_ticks: int,
                 min_interval_s: float = DEFAULT_INTERVAL_S,
                 stream=None) -> None:
        self.label = label
        self.total = int(total_ticks)
        self.min_interval_s = float(min_interval_s)
        self.stream = stream if stream is not None else sys.stderr
        self._started = time.perf_counter()
        self._last_emit = self._started

    def beat(self, ticks_done: int) -> None:
        """Report progress after ``ticks_done`` ticks (throttled).

        The final tick always reports, so every shard's 100% line
        lands even on runs shorter than the throttle interval.
        """
        now = time.perf_counter()
        done = int(ticks_done)
        if done < self.total and now - self._last_emit < self.min_interval_s:
            return
        self._last_emit = now
        elapsed = now - self._started
        share = done / self.total if self.total else 1.0
        if 0 < done < self.total:
            eta = elapsed * (self.total - done) / done
            tail = f"elapsed {elapsed:.1f}s eta {eta:.1f}s"
        else:
            tail = f"elapsed {elapsed:.1f}s"
        self.stream.write(
            f"[progress] {self.label}: tick {done}/{self.total} "
            f"({share:.0%}) {tail}\n")
        self.stream.flush()
