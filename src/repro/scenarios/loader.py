"""Load scenario specs from dicts, JSON files, or YAML-subset files.

The loader accepts three sources and funnels them all through
:meth:`ScenarioSpec.from_dict` (which rejects unknown fields and
validates values):

* a plain ``dict`` — the programmatic path;
* a ``.json`` file — always available;
* a ``.yaml``/``.yml`` file — parsed by :func:`parse_simple_yaml`, a
  built-in indentation-based parser for the subset of YAML the spec
  schema needs (nested mappings, lists of scalars or mappings, inline
  ``[...]`` lists and flat ``{...}`` mappings, JSON-style scalars, and
  ``#`` comments).  No third-party YAML dependency is required, so spec
  files load identically on minimal CI images; when PyYAML is
  installed the subset parses to the same structures (asserted by
  ``tests/test_scenarios.py``).
"""

from __future__ import annotations

import json
import os
from typing import Any, List, Mapping, Tuple, Union

from .spec import ScenarioError, ScenarioSpec


def _parse_scalar(text: str) -> Any:
    """Parse one YAML-subset scalar token (JSON-ish semantics)."""
    text = text.strip()
    if text in ("null", "~", ""):
        return None
    if text == "true":
        return True
    if text == "false":
        return False
    if (len(text) >= 2 and text[0] == text[-1] and text[0] in "'\""):
        return text[1:-1]
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _parse_flow(text: str, where: str) -> Any:
    """Parse an inline ``[...]`` list or flat ``{...}`` mapping."""
    text = text.strip()
    if text.startswith("["):
        if not text.endswith("]"):
            raise ScenarioError(f"{where}: unterminated inline list")
        body = text[1:-1].strip()
        if not body:
            return []
        return [_parse_scalar(part) for part in body.split(",")]
    if text.startswith("{"):
        if not text.endswith("}"):
            raise ScenarioError(f"{where}: unterminated inline mapping")
        body = text[1:-1].strip()
        out = {}
        if not body:
            return out
        for part in body.split(","):
            if ":" not in part:
                raise ScenarioError(f"{where}: expected 'key: value' in "
                                    f"inline mapping, got {part.strip()!r}")
            key, _, value = part.partition(":")
            key = key.strip()
            if key in out:
                raise ScenarioError(f"{where}: duplicate mapping key "
                                    f"{key!r}")
            out[key] = _parse_scalar(value)
        return out
    return _parse_scalar(text)


def _strip_comment(line: str) -> str:
    """Drop a ``#`` comment that is not inside a quoted string."""
    quote = None
    for i, ch in enumerate(line):
        if quote:
            if ch == quote:
                quote = None
        elif ch in "'\"":
            quote = ch
        elif ch == "#":
            return line[:i]
    return line


def _logical_lines(text: str) -> List[Tuple[int, str, int]]:
    """Split into (indent, content, line_number), skipping blanks."""
    out = []
    for number, raw in enumerate(text.splitlines(), start=1):
        if "\t" in raw[:len(raw) - len(raw.lstrip())]:
            raise ScenarioError(f"line {number}: tabs are not allowed in "
                                f"indentation")
        stripped = _strip_comment(raw).rstrip()
        if not stripped.strip():
            continue
        indent = len(stripped) - len(stripped.lstrip())
        out.append((indent, stripped.strip(), number))
    return out


def _parse_block(lines: List[Tuple[int, str, int]], pos: int,
                 indent: int) -> Tuple[Any, int]:
    """Parse one mapping or list block starting at ``lines[pos]``.

    Returns the parsed value and the index of the first line *after*
    the block.
    """
    is_list = lines[pos][1].startswith("- ") or lines[pos][1] == "-"
    result: Any = [] if is_list else {}
    while pos < len(lines):
        line_indent, content, number = lines[pos]
        if line_indent < indent:
            break
        if line_indent > indent:
            raise ScenarioError(f"line {number}: unexpected indentation")
        item_is_list = content.startswith("- ") or content == "-"
        if item_is_list != is_list:
            raise ScenarioError(f"line {number}: cannot mix list items and "
                                f"mapping keys at one indentation level")
        if is_list:
            body = content[2:].strip() if content.startswith("- ") else ""
            if not body:
                # A nested block forms the item.
                pos += 1
                if pos >= len(lines) or lines[pos][0] <= indent:
                    result.append(None)
                    continue
                value, pos = _parse_block(lines, pos, lines[pos][0])
                result.append(value)
            elif ":" in body and not body.startswith(("[", "{", "'", '"')):
                # "- key: value" starts a mapping item; its first key
                # sits at column indent+2, further keys of the same
                # item at that column on the following lines, and a
                # block value of the first key deeper still.
                item = {}
                key_col = indent + 2
                key, _, rest = body.partition(":")
                pos += 1
                if rest.strip():
                    item[key.strip()] = _parse_flow(rest, f"line {number}")
                elif pos < len(lines) and lines[pos][0] > key_col:
                    item[key.strip()], pos = _parse_block(lines, pos,
                                                          lines[pos][0])
                else:
                    item[key.strip()] = None
                if pos < len(lines) and indent < lines[pos][0] <= key_col:
                    more, pos = _parse_block(lines, pos, lines[pos][0])
                    if not isinstance(more, Mapping):
                        raise ScenarioError(
                            f"line {number}: expected mapping keys under "
                            f"the list item")
                    for extra in more:
                        if extra in item:
                            raise ScenarioError(
                                f"line {number}: duplicate mapping key "
                                f"{extra!r} in the list item")
                    item.update(more)
                result.append(item)
            else:
                result.append(_parse_flow(body, f"line {number}"))
                pos += 1
        else:
            if ":" not in content:
                raise ScenarioError(f"line {number}: expected 'key: value'")
            key, _, rest = content.partition(":")
            key = key.strip()
            rest = rest.strip()
            if key in result:
                raise ScenarioError(f"line {number}: duplicate mapping "
                                    f"key {key!r}")
            if rest:
                result[key] = _parse_flow(rest, f"line {number}")
                pos += 1
            else:
                pos += 1
                if pos >= len(lines) or lines[pos][0] <= indent:
                    result[key] = None
                else:
                    result[key], pos = _parse_block(lines, pos,
                                                    lines[pos][0])
    return result, pos


def parse_simple_yaml(text: str) -> Any:
    """Parse the YAML subset used by scenario spec files.

    Supports nested mappings, block lists (``- item``, including
    ``- key: value`` mapping items), inline ``[a, b]`` lists and flat
    ``{k: v}`` mappings, JSON-style scalars, and ``#`` comments.
    Raises :class:`ScenarioError` (with a line number) on anything
    outside the subset — anchors, multi-line strings, flow nesting.
    """
    lines = _logical_lines(text)
    if not lines:
        return {}
    value, pos = _parse_block(lines, 0, lines[0][0])
    if pos != len(lines):
        raise ScenarioError(f"line {lines[pos][2]}: trailing content "
                            f"outside the document block")
    return value


def loads_scenario(text: str, fmt: str = "yaml") -> ScenarioSpec:
    """Parse a scenario spec from a string (``fmt``: ``yaml``/``json``)."""
    if fmt == "json":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"invalid JSON: {exc}") from exc
    elif fmt == "yaml":
        data = parse_simple_yaml(text)
    else:
        raise ScenarioError(f"unknown spec format {fmt!r}; use 'yaml' or "
                            f"'json'")
    return ScenarioSpec.from_dict(data)


def load_scenario(source: Union[Mapping, str, os.PathLike]) -> ScenarioSpec:
    """Load and validate a scenario spec.

    Args:
        source: a mapping (used directly), or a path to a ``.json`` /
            ``.yaml`` / ``.yml`` spec file.

    Returns:
        The validated :class:`ScenarioSpec`.

    Raises:
        ScenarioError: on parse errors, unknown fields, or invalid
            values — always naming the offending field or line.
    """
    if isinstance(source, Mapping):
        return ScenarioSpec.from_dict(source)
    path = os.fspath(source)
    ext = os.path.splitext(path)[1].lower()
    if ext not in (".json", ".yaml", ".yml"):
        raise ScenarioError(f"unsupported spec file extension {ext!r} "
                            f"({path}); use .json, .yaml or .yml")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise ScenarioError(f"cannot read spec file {path}: {exc}") from exc
    return loads_scenario(text, fmt="json" if ext == ".json" else "yaml")
