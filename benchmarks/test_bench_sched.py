"""Scheduler gate: slack-greedy goodput vs static, at equal SLO.

Runs the registered 1000-leaf ``batch-backlog-1k`` scenario (four
managed diurnal clusters plus an unmanaged ``legacy`` cluster, a
~1000-job batch backlog; time-compressed so the gate completes in CI —
set ``REPRO_BENCH_SCHED_COMPRESSION=1`` for the full 12-hour run) and
gates the two contractual properties of the scheduler layer:

* **differential**: the scheduled fleet's per-cluster histories are
  bit-identical to the plain ``fleet:`` run of the same clusters —
  scheduling meters jobs over Heracles slack, it never perturbs leaf
  physics.  This is also what makes the policy comparison an
  *equal-SLO* comparison: every policy is replayed over the same
  slack view, so SLO-window violation counts are identical by
  construction (asserted anyway, not assumed);
* **goodput**: ``slack-greedy`` completes at least
  ``MIN_GOODPUT_RATIO`` (1.2x) the BE goodput of the ``static``
  provisioning baseline, with zero additional SLO-window violations.

Measurements land in ``BENCH_PR5.json`` (path overridable via
``REPRO_BENCH_SCHED_OUT``); ``tools/bench_report.py`` folds them into
the CI perf-trajectory artifact.
"""

import json
import os
import time

import numpy as np
from conftest import regenerate

from repro.scenarios import ScenarioSpec, compile_scenario
from repro.scenarios.library import batch_backlog_1k_scenario
from repro.sched import compare_policies, tco_summary

COMPRESSION = float(os.environ.get("REPRO_BENCH_SCHED_COMPRESSION", "72"))
MIN_GOODPUT_RATIO = 1.2
OUT_ENV = "REPRO_BENCH_SCHED_OUT"
DEFAULT_OUT = "BENCH_PR5.json"
CLUSTER_FIELDS = ("t_s", "load", "root_latency_ms", "root_slo_fraction",
                  "emu")


def _plain_fleet_spec(spec: ScenarioSpec) -> ScenarioSpec:
    """The same fleet as the schedule scenario, without the scheduler."""
    return ScenarioSpec(
        name=spec.name + "-plain",
        description="the scheduled fleet, as a plain fleet run",
        duration_s=spec.duration_s, dt_s=spec.dt_s,
        warmup_s=spec.warmup_s, seed=spec.seed,
        fleet=spec.schedule.fleet)


def _slo_violation_windows(fleet, warmup_s: float):
    """Per-cluster worst 60 s SLO windows (the attainment record)."""
    return {
        outcome.name: outcome.history.metrics.worst_window(
            "root_slo_fraction", window_s=60.0, skip_s=warmup_s)
        for outcome in fleet.clusters
    }


def test_bench_sched_goodput_and_equal_slo(benchmark):
    spec = batch_backlog_1k_scenario(time_compression=COMPRESSION)
    total_leaves = spec.schedule.fleet.total_leaves()
    jobs = spec.schedule.expand_jobs()

    # Plain fleet comparator: the same clusters with no scheduler.
    plain_start = time.perf_counter()
    plain = compile_scenario(_plain_fleet_spec(spec)).run()
    plain_wall = time.perf_counter() - plain_start

    # The scheduled run (the benchmark timer records this one).
    sched_start = time.perf_counter()
    scheduled = regenerate(
        benchmark, lambda: compile_scenario(spec).run())
    sched_wall = time.perf_counter() - sched_start

    # Policy replays over the same slack view.
    replay_start = time.perf_counter()
    outcomes = compare_policies(scheduled.fleet.slack, jobs,
                                policies=("slack-greedy", "static"),
                                queue_limit=spec.schedule.queue_limit)
    replay_wall = time.perf_counter() - replay_start
    greedy, static = outcomes["slack-greedy"], outcomes["static"]

    print()
    print(f"{total_leaves}-leaf fleet, {len(jobs)} jobs, "
          f"{spec.duration_s / 60:.0f} simulated minutes "
          f"(compression {COMPRESSION:.0f}x):")
    print(f"  plain fleet: {plain_wall:.2f}s wall; scheduled: "
          f"{sched_wall:.2f}s; policy replays: {replay_wall:.2f}s")

    # -- differential: scheduling never changes a leaf number -----------
    for plain_outcome in plain.fleet.clusters:
        sched_outcome = scheduled.fleet.cluster(plain_outcome.name)
        for name in CLUSTER_FIELDS:
            a = plain_outcome.history.column(name)
            b = sched_outcome.history.column(name)
            assert np.array_equal(a, b), (
                f"cluster {plain_outcome.name!r} column {name!r} diverged "
                f"between the plain fleet and the scheduled run")
    print("  scheduled fleet histories bit-identical to the plain run")

    # -- equal SLO attainment across policies ---------------------------
    windows = _slo_violation_windows(scheduled.fleet, spec.warmup_s)
    violations = sum(1 for w in windows.values() if w >= 1.0)
    plain_windows = _slo_violation_windows(plain.fleet, spec.warmup_s)
    assert windows == plain_windows, \
        "SLO attainment changed between plain and scheduled runs"
    # Both policies were replayed over one slack view of one fleet run:
    # the attainment record is shared, so static incurs exactly as many
    # violation windows as slack-greedy — zero additional.
    additional_violations = 0

    # -- goodput: slack-greedy must beat static provisioning ------------
    ratio = greedy.goodput_core_s / static.goodput_core_s \
        if static.goodput_core_s else float("inf")
    tco = tco_summary(greedy, scheduled.fleet, skip_s=spec.warmup_s)
    static_tco = tco_summary(static, scheduled.fleet, skip_s=spec.warmup_s)
    print(f"  slack-greedy: {greedy.completed}/{len(jobs)} jobs, "
          f"{greedy.goodput_core_h:.0f} core-h goodput, "
          f"TCO {tco['tco_gain']:+.1%}")
    print(f"  static:       {static.completed}/{len(jobs)} jobs, "
          f"{static.goodput_core_h:.0f} core-h goodput, "
          f"TCO {static_tco['tco_gain']:+.1%}")
    print(f"  goodput ratio {ratio:.2f}x (gate >= {MIN_GOODPUT_RATIO}x), "
          f"{violations} SLO-window violation(s), "
          f"{additional_violations} additional under slack-greedy")

    report = {
        "benchmark": "test_bench_sched",
        "leaves": total_leaves,
        "jobs": len(jobs),
        "time_compression": COMPRESSION,
        "duration_s": spec.duration_s,
        "epoch_s": spec.schedule.epoch_s,
        "wall_s_plain": round(plain_wall, 2),
        "wall_s_scheduled": round(sched_wall, 2),
        "wall_s_replays": round(replay_wall, 2),
        "goodput_core_h_slack_greedy": round(greedy.goodput_core_h, 2),
        "goodput_core_h_static": round(static.goodput_core_h, 2),
        "goodput_ratio": round(ratio, 3),
        "completed_slack_greedy": greedy.completed,
        "completed_static": static.completed,
        "harvested_core_h": round(greedy.harvested_core_s / 3600.0, 2),
        "credited_core_h_slack_greedy": round(
            greedy.credited_core_s / 3600.0, 2),
        "credited_core_h_static": round(static.credited_core_s / 3600.0, 2),
        "tco_gain_slack_greedy": round(tco["tco_gain"], 4),
        "tco_gain_static": round(static_tco["tco_gain"], 4),
        "slo_violation_windows": violations,
        "additional_slo_violations": additional_violations,
        "bit_identical": True,
    }
    out_path = os.environ.get(OUT_ENV, DEFAULT_OUT)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"  report: {out_path}")

    assert additional_violations == 0
    assert ratio >= MIN_GOODPUT_RATIO, (
        f"slack-greedy goodput only {ratio:.2f}x static provisioning "
        f"(need >= {MIN_GOODPUT_RATIO}x on {total_leaves} leaves)")
