"""One leaf of the websearch cluster (§5.3).

Each leaf is a full server running websearch on its own shard plus BE
tasks under a local Heracles instance.  "Heracles runs on every leaf
node with a uniform 99%-ile latency target set such that the latency at
the root satisfies the SLO", and "shares the same offline model for the
DRAM bandwidth needs of websearch across all leaves, even though each
leaf has a different shard" — we reproduce the shared-model detail by
profiling once and handing every leaf the same (slightly stale for any
given shard) model.

Two execution backends are supported:

* **batch** (default) — the leaf is one member of a
  :class:`~repro.sim.batch.BatchColocationSim`; the cluster advances
  every leaf in a single vectorized step.  A standalone ``Leaf`` (no
  ``member`` supplied) owns a private single-member batch so ``tick()``
  keeps working for direct use.
* **scalar** — the original per-leaf :class:`~repro.sim.engine.
  ColocationSim`, kept as the reference implementation the batched
  backend is verified against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.config import HeraclesConfig
from ..core.controller import HeraclesController
from ..core.dram_model import LcDramBandwidthModel
from ..hardware.spec import MachineSpec
from ..sim.batch import BatchColocationSim, BatchMember
from ..sim.engine import ColocationSim, TickRecord
from ..workloads.best_effort import make_be_workload
from ..workloads.latency_critical import make_lc_workload
from ..workloads.traces import LoadTrace


@dataclass
class LeafConfig:
    """Static description of one leaf."""

    index: int
    be_name: str
    leaf_slo_ms: float
    seed: int


class Leaf:
    """One managed leaf server.

    Args:
        config: leaf identity, BE assignment, SLO target, noise seed.
        trace: shared cluster load trace.
        spec: machine description.
        shared_dram_model: the one offline model all leaves share.
        heracles_config: controller tunables.
        managed: attach a Heracles instance (False = baseline leaf).
        engine: ``"batch"`` or ``"scalar"``.
        member: pre-built batch member owned by a cluster-wide
            :class:`BatchColocationSim`; when given, the cluster drives
            the simulation and ``tick()`` must not be called here.
    """

    def __init__(self, config: LeafConfig, trace: LoadTrace,
                 spec: MachineSpec,
                 shared_dram_model: Optional[LcDramBandwidthModel] = None,
                 heracles_config: Optional[HeraclesConfig] = None,
                 managed: bool = True,
                 engine: str = "batch",
                 member: Optional[BatchMember] = None):
        self.config = config
        self._own_batch: Optional[BatchColocationSim] = None
        if member is not None:
            self.sim = member
        elif engine == "scalar":
            lc = make_leaf_lc(spec, config.leaf_slo_ms)
            be = make_be_workload(config.be_name, spec)
            self.sim = ColocationSim(lc=lc, trace=trace, be=be, spec=spec,
                                     seed=config.seed)
        elif engine == "batch":
            lc = make_leaf_lc(spec, config.leaf_slo_ms)
            be = make_be_workload(config.be_name, spec)
            self._own_batch = BatchColocationSim(
                lc=lc, trace=trace, bes=be, spec=spec, seeds=[config.seed])
            self.sim = self._own_batch.members[0]
        else:
            raise ValueError(f"unknown engine {engine!r}")
        self.controller = None
        if managed and member is None:
            self.controller = HeraclesController.for_sim(
                self.sim, config=heracles_config,
                dram_model=shared_dram_model)
        elif member is not None:
            # The cluster attaches controllers; mirror whatever it set.
            self.controller = member.controller

    def tick(self) -> TickRecord:
        """Advance this leaf by one second (standalone leaves only)."""
        if self._own_batch is not None:
            self._own_batch.tick()
            return self.sim.history.last()
        if isinstance(self.sim, ColocationSim):
            return self.sim.tick()
        raise RuntimeError("cluster-owned leaves are advanced by the "
                           "cluster's batched tick, not leaf.tick()")

    @property
    def last_tail_ms(self) -> float:
        if isinstance(self.sim, BatchMember):
            return self.sim.last_tail_ms
        return self.sim.history.last().tail_latency_ms

    @property
    def last_emu(self) -> float:
        if isinstance(self.sim, BatchMember):
            return self.sim.last_emu
        return self.sim.history.last().emu


def make_leaf_lc(spec: MachineSpec, leaf_slo_ms: float,
                 lc_name: str = "websearch"):
    """The LC instance every leaf runs: uniform leaf SLO target.

    One definition shared by standalone leaves, the cluster's batch
    path, and the fleet shard workers, so the leaf-SLO override can
    never diverge between them.  ``lc_name`` defaults to the §5.3
    websearch service; fleet clusters may shard any registered LC
    workload.
    """
    lc = make_lc_workload(lc_name, spec)
    lc.profile = _with_slo(lc.profile, leaf_slo_ms)
    return lc


def _with_slo(profile, slo_ms: float):
    """Copy an LC profile with a different SLO target.

    The leaf target only moves the controller's goalposts; the service
    time calibration (derived from the *service's* SLO) is already baked
    into the workload instance, so we adjust only the target the
    controller chases and the normalization used in reporting.
    """
    import dataclasses
    return dataclasses.replace(profile, slo_latency_ms=slo_ms)
