"""Registered scenarios shipped with the package.

The paper's fig4 and fig8 evaluations are expressed here as scenario
specs — the experiment modules under :mod:`repro.experiments` are thin
consumers of these factories — alongside scenarios the paper never ran
(a heterogeneous three-way BE mix, a diurnal spike stress test with a
mid-run antagonist arrival).  ``python -m repro.cli scenario --list``
shows everything registered here.

The canonical Figure 4 axes (``FIG4_BE_TASKS``, ``DEFAULT_LOADS``)
live in this module; :mod:`repro.experiments.fig4_latency_slo`
re-exports them for backward compatibility.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..workloads.latency_critical import LC_PROFILES
from .registry import register
from .spec import (ClusterSpec, FleetSpec, InjectionSpec, JobSpec,
                   ScenarioSpec, ScheduleSpec, ServerSpec, ShardSpec,
                   SpikeSpec, SweepSpec, TraceSpec, WorkloadSpec)

#: BE tasks shown in Figure 4 (iperf omitted for websearch/ml_cluster in
#: the paper's plot because they are network-insensitive; we compute it
#: anyway).
FIG4_BE_TASKS = ("stream-LLC", "stream-DRAM", "cpu_pwr", "brain",
                 "streetview", "iperf")

#: A lighter load axis than the paper's 19 points, dense enough to show
#: the shape; pass ``loads=load_sweep()`` for the full grid.
DEFAULT_LOADS = (0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.75, 0.85, 0.95)


def fig4_scenario(lc_tasks: Optional[Sequence[str]] = None,
                  be_tasks: Sequence[str] = FIG4_BE_TASKS,
                  loads: Sequence[float] = DEFAULT_LOADS,
                  duration_s: float = 900.0,
                  warmup_s: float = 240.0,
                  seed: int = 0) -> ScenarioSpec:
    """The Figure 4-7 colocation grid as a scenario spec.

    Args:
        lc_tasks: LC workloads to sweep (default: all three, sorted).
        be_tasks / loads: the grid axes.
        duration_s / warmup_s / seed: per-cell run parameters.

    Returns:
        A ``sweep``-shaped :class:`ScenarioSpec` whose compiled run is
        numerically identical to the hand-wired
        :func:`repro.experiments.fig4_latency_slo.run_sweep` grid.
    """
    return ScenarioSpec(
        name="fig4",
        description="Paper Figure 4: LC tail latency under Heracles "
                    "across loads and BE colocations",
        controller="heracles",
        duration_s=duration_s,
        warmup_s=warmup_s,
        seed=seed,
        sweep=SweepSpec(
            lc_tasks=tuple(lc_tasks) if lc_tasks
            else tuple(sorted(LC_PROFILES)),
            be_tasks=tuple(be_tasks),
            loads=tuple(loads)))


def _compressed(seconds: float, time_compression: float) -> float:
    """Scale a duration/period by the quick-look compression factor.

    The single definition of the compression contract shared by the
    fig8 and fleet scenario factories: factors below 1 (slow motion)
    are rejected, everything else divides simulated time.
    """
    if time_compression < 1.0:
        raise ValueError("compression must be >= 1")
    return seconds / time_compression


def fig8_scenario(leaves: int = 8,
                  duration_s: float = 12 * 3600.0,
                  time_compression: float = 1.0,
                  seed: int = 7,
                  engine: str = "batch") -> ScenarioSpec:
    """The §5.3 websearch cluster (Figure 8) as a scenario spec.

    Args:
        leaves: leaf servers behind the fan-out root.
        duration_s: simulated wall-clock before compression.
        time_compression: shrink factor for quick looks (the trace
            period and duration shrink together; controller dynamics
            stay at real speed).
        seed / engine: forwarded to the cluster driver.

    Returns:
        A ``cluster``-shaped :class:`ScenarioSpec` with managed and
        baseline arms, numerically identical to the hand-wired
        :func:`repro.experiments.fig8_cluster.run_fig8`.
    """
    period = _compressed(12 * 3600.0, time_compression)
    duration = _compressed(duration_s, time_compression)
    return ScenarioSpec(
        name="fig8",
        description="Paper Figure 8: 12-hour diurnal websearch cluster, "
                    "Heracles vs baseline",
        duration_s=duration,
        # The paper skips the first 10 minutes; compressed quick looks
        # skip half the (shortened) run instead.
        warmup_s=min(600.0, 0.5 * duration),
        seed=seed,
        cluster=ClusterSpec(
            leaves=leaves,
            arms=("managed", "baseline"),
            trace=TraceSpec(kind="diurnal", low=0.20, high=0.90,
                            period_s=period, noise_sigma=0.02),
            engine=engine))


def mixed_fleet_scenario() -> ScenarioSpec:
    """A colocation mix the paper never ran: three heterogeneous servers.

    websearch+brain, websearch+streetview and memkeyval+iperf advance
    together through the batched backend, each member under its own
    Heracles instance with a distinct constant load and seed.
    """
    return ScenarioSpec(
        name="mixed-fleet",
        description="Three-way heterogeneous LC x BE mix on the batched "
                    "backend",
        engine="batch",
        duration_s=600.0,
        warmup_s=180.0,
        members=(
            WorkloadSpec(lc="websearch", be="brain",
                         trace=TraceSpec(kind="constant", load=0.60)),
            WorkloadSpec(lc="websearch", be="streetview",
                         trace=TraceSpec(kind="constant", load=0.40)),
            WorkloadSpec(lc="memkeyval", be="iperf",
                         trace=TraceSpec(kind="constant", load=0.50)),
        ))


def diurnal_spike_scenario() -> ScenarioSpec:
    """A stress test: diurnal swing, lunchtime spike, late antagonist.

    One websearch+stream-DRAM server rides a one-hour diurnal trace
    with a 95% load spike injected at t=1500 s; Heracles must shed the
    BE task through the spike and re-grow it afterwards.
    """
    return ScenarioSpec(
        name="diurnal-spike",
        description="Diurnal websearch with a 95% load spike under "
                    "Heracles + stream-DRAM",
        duration_s=3600.0,
        warmup_s=300.0,
        members=(
            WorkloadSpec(
                lc="websearch", be="stream-DRAM",
                trace=TraceSpec(
                    kind="diurnal", low=0.20, high=0.80, period_s=3600.0,
                    spikes=(SpikeSpec(at_s=1500.0, duration_s=180.0,
                                      load=0.95),))),
        ))


def mixed_fleet_1k_scenario(time_compression: float = 1.0,
                            leaves_scale: float = 1.0,
                            shard_leaves: int = 64,
                            seed: int = 7) -> ScenarioSpec:
    """A 1000-leaf heterogeneous fleet riding the 12-hour diurnal day.

    Four clusters, 1000 leaves total, all behind their own fan-out
    roots: a stock websearch estate, a memory-rich websearch cluster
    colocating DRAM-hungry BE work, a fat-NIC memkeyval edge tier with
    network-bound BE tasks, and a small ml_cluster batch pool — each
    with its own machine spec, BE mix, and trace seed.  This is the
    fleet the PR-4 benchmark shards (`benchmarks/test_bench_fleet.py`).

    Args:
        time_compression: shrink factor for quick looks (trace period
            and duration shrink together, like ``fig8``).
        leaves_scale: scale factor on every cluster's leaf count
            (quick looks again; 1.0 = the full 1000 leaves).
        shard_leaves: maximum leaves per execution shard.
        seed: base seed (cluster ``i`` defaults to ``seed + i``).
    """
    if not 0.0 < leaves_scale <= 1.0:
        raise ValueError("leaves_scale must be in (0, 1]")
    period = _compressed(12 * 3600.0, time_compression)
    duration = period

    def scaled(leaves: int) -> int:
        return max(2, int(round(leaves * leaves_scale)))

    def diurnal(phase_s: float = 0.0) -> TraceSpec:
        return TraceSpec(kind="diurnal", low=0.20, high=0.90,
                         period_s=period, noise_sigma=0.02,
                         phase_s=_compressed(phase_s, time_compression))

    return ScenarioSpec(
        name="mixed-fleet-1k",
        description="1000 leaves, four heterogeneous clusters, 12-hour "
                    "diurnal day on the sharded fleet backend",
        duration_s=duration,
        warmup_s=min(600.0, 0.5 * duration),
        seed=seed,
        fleet=FleetSpec(
            shard_leaves=shard_leaves,
            clusters=(
                ShardSpec(name="web-core", leaves=scaled(400),
                          lc="websearch", trace=diurnal()),
                ShardSpec(name="web-himem", leaves=scaled(250),
                          lc="websearch",
                          be_mix=("stream-DRAM", "brain"),
                          server=ServerSpec(dram_bw_gbps=80.0),
                          trace=diurnal(phase_s=1800.0)),
                ShardSpec(name="kv-edge", leaves=scaled(250),
                          lc="memkeyval", be_mix=("iperf", "stream-LLC"),
                          server=ServerSpec(link_gbps=40.0),
                          trace=diurnal(phase_s=3600.0)),
                ShardSpec(name="ml-batch", leaves=scaled(100),
                          lc="ml_cluster", be_mix=("brain", "cpu_pwr"),
                          trace=diurnal(phase_s=5400.0)),
            )))


def chaos_1k_scenario(time_compression: float = 1.0,
                      leaves_scale: float = 1.0,
                      shard_leaves: int = 64,
                      seed: int = 7) -> ScenarioSpec:
    """The mixed 1000-leaf fleet under rolling fault-injection waves.

    The :func:`mixed_fleet_1k_scenario` estate (four heterogeneous
    clusters on phase-shifted 12-hour diurnal days) hit by every chaos
    shape the engines support: two web-core leaves crash mid-morning
    and rejoin cold after lunch, a web-himem leaf straggles at 60%
    frequency through the peak, the whole kv-edge tier runs under a
    70% power cap for half the day, and the ml-batch cluster is
    partitioned from its fan-out root for a tenth of the day.  Event
    times are fractions of the (compressed) duration, so the schedule
    keeps its shape at any ``time_compression``, and leaf targets stay
    at most 1, so they remain valid at any ``leaves_scale``.

    Args:
        time_compression: shrink factor for quick looks (durations,
            trace periods, and event times shrink together).
        leaves_scale: scale factor on every cluster's leaf count.
        shard_leaves: maximum leaves per execution shard.
        seed: base seed (cluster ``i`` defaults to ``seed + i``).
    """
    base = mixed_fleet_1k_scenario(time_compression=time_compression,
                                   leaves_scale=leaves_scale,
                                   shard_leaves=shard_leaves, seed=seed)
    duration = base.duration_s
    return ScenarioSpec(
        name="chaos-1k",
        description="The mixed-fleet-1k estate under crash, straggler, "
                    "power-cap, and partition waves",
        duration_s=duration,
        warmup_s=base.warmup_s,
        seed=seed,
        fleet=base.fleet,
        injections=(
            # Morning crash wave: two web-core leaves drop out, rejoin
            # cold after half the day.
            InjectionSpec(at_s=0.20 * duration, action="leaf_crash",
                          cluster="web-core", leaf=0),
            InjectionSpec(at_s=0.22 * duration, action="leaf_crash",
                          cluster="web-core", leaf=1),
            InjectionSpec(at_s=0.50 * duration, action="leaf_restart",
                          cluster="web-core", leaf=0),
            InjectionSpec(at_s=0.52 * duration, action="leaf_restart",
                          cluster="web-core", leaf=1),
            # One memory-rich leaf straggles at 60% frequency through
            # the peak, then recovers to stock.
            InjectionSpec(at_s=0.25 * duration, action="straggler",
                          value=0.60, cluster="web-himem", leaf=1),
            InjectionSpec(at_s=0.60 * duration, action="straggler",
                          value=1.0, cluster="web-himem", leaf=1),
            # The whole edge tier rides a 70% power cap for half the
            # day (a facility-level capacity event).
            InjectionSpec(at_s=0.30 * duration, action="power_cap",
                          value=0.70, cluster="kv-edge"),
            InjectionSpec(at_s=0.80 * duration, action="power_cap",
                          value=1.0, cluster="kv-edge"),
            # The batch pool loses its root link for a tenth of the
            # day: load held at the root, tails pinned at the penalty.
            InjectionSpec(at_s=0.40 * duration, action="partition",
                          value=0.10 * duration, cluster="ml-batch"),
        ))


def follow_the_sun_scenario(time_compression: float = 1.0,
                            leaves_per_region: int = 60,
                            shard_leaves: int = 32,
                            seed: int = 11) -> ScenarioSpec:
    """Three regional clusters whose diurnal peaks chase each other.

    One websearch estate replicated across three regions on a 24-hour
    diurnal day, phase-shifted by eight hours each — as one region's
    traffic peaks, the next is climbing and the third is in its trough,
    so the *fleet* EMU stays flat while every per-cluster EMU swings.

    Args:
        time_compression: shrink factor for quick looks.
        leaves_per_region: leaf population of each regional cluster.
        shard_leaves: maximum leaves per execution shard.
        seed: base seed (region ``i`` defaults to ``seed + i``).
    """
    period = _compressed(24 * 3600.0, time_compression)
    duration = _compressed(12 * 3600.0, time_compression)
    regions = ("us-east", "eu-west", "ap-south")
    return ScenarioSpec(
        name="follow-the-sun",
        description="Three regions, 24-hour diurnal day phase-shifted "
                    "8 h apart, on the sharded fleet backend",
        duration_s=duration,
        warmup_s=min(600.0, 0.5 * duration),
        seed=seed,
        fleet=FleetSpec(
            shard_leaves=shard_leaves,
            clusters=tuple(
                ShardSpec(name=region, leaves=leaves_per_region,
                          lc="websearch",
                          trace=TraceSpec(kind="diurnal", low=0.20,
                                          high=0.90, period_s=period,
                                          noise_sigma=0.02,
                                          phase_s=i * period / 3.0))
                for i, region in enumerate(regions))))


def batch_backlog_1k_scenario(time_compression: float = 1.0,
                              leaves_scale: float = 1.0,
                              shard_leaves: int = 64,
                              seed: int = 7,
                              policy: str = "slack-greedy") -> ScenarioSpec:
    """A 1000-leaf diurnal fleet chewing through a deep batch backlog.

    The scheduler benchmark's scenario (`benchmarks/test_bench_sched.py`
    gates slack-greedy >= 1.2x static goodput on it): four managed
    clusters ride phase-shifted 12-hour diurnal days — so which leaves
    have slack keeps moving — while a fifth ``legacy`` cluster runs no
    Heracles at all (zero harvest; static pinning wastes every job it
    lands there).  The queue holds a backlog of ~1000 batch jobs, all
    present at t=0: image-crunch work (bulky, wide) plus
    higher-priority stitch jobs (small, narrow).

    Args:
        time_compression: shrink factor for quick looks — durations,
            trace periods, job demand, *and* the decision epoch shrink
            together, so the schedule's shape survives compression.
        leaves_scale: scale factor on every cluster's leaf count.
        shard_leaves: maximum leaves per execution shard.
        seed: base seed (cluster ``i`` defaults to ``seed + i``).
        policy: the placement policy the scenario runs under (the CLI's
            ``--policy`` and the benchmark's comparison override this).
    """
    if not 0.0 < leaves_scale <= 1.0:
        raise ValueError("leaves_scale must be in (0, 1]")
    period = _compressed(12 * 3600.0, time_compression)
    duration = period

    def scaled(leaves: int) -> int:
        return max(2, int(round(leaves * leaves_scale)))

    def diurnal(phase_s: float = 0.0) -> TraceSpec:
        return TraceSpec(kind="diurnal", low=0.20, high=0.90,
                         period_s=period, noise_sigma=0.02,
                         phase_s=_compressed(phase_s, time_compression))

    jobs_scale = max(1, int(round(40 * leaves_scale)))
    return ScenarioSpec(
        name="batch-backlog-1k",
        description="1000-leaf diurnal fleet + legacy cluster, ~1000-job "
                    "batch backlog scheduled over Heracles slack",
        duration_s=duration,
        warmup_s=min(600.0, 0.5 * duration),
        seed=seed,
        schedule=ScheduleSpec(
            policy=policy,
            epoch_s=_compressed(60.0, time_compression),
            fleet=FleetSpec(
                shard_leaves=shard_leaves,
                clusters=(
                    ShardSpec(name="web-core", leaves=scaled(350),
                              lc="websearch", trace=diurnal()),
                    ShardSpec(name="web-himem", leaves=scaled(250),
                              lc="websearch",
                              be_mix=("stream-DRAM", "brain"),
                              server=ServerSpec(dram_bw_gbps=80.0),
                              trace=diurnal(phase_s=1800.0)),
                    ShardSpec(name="kv-edge", leaves=scaled(200),
                              lc="memkeyval",
                              be_mix=("iperf", "stream-LLC"),
                              server=ServerSpec(link_gbps=40.0),
                              trace=diurnal(phase_s=3600.0)),
                    ShardSpec(name="ml-batch", leaves=scaled(100),
                              lc="ml_cluster", be_mix=("brain", "cpu_pwr"),
                              trace=diurnal(phase_s=5400.0)),
                    # No Heracles, no harvest: the share of the estate
                    # static provisioning wastes jobs on.
                    ShardSpec(name="legacy", leaves=scaled(100),
                              lc="websearch", managed=False,
                              trace=diurnal(phase_s=7200.0)),
                )),
            jobs=(
                JobSpec(name="crunch",
                        demand_core_s=_compressed(200_000.0,
                                                  time_compression),
                        max_cores=8, count=20 * jobs_scale),
                JobSpec(name="stitch", priority=1,
                        demand_core_s=_compressed(40_000.0,
                                                  time_compression),
                        max_cores=4, count=5 * jobs_scale),
            )))


def diurnal_scavenger_scenario(time_compression: float = 1.0,
                               leaves_per_region: int = 60,
                               shard_leaves: int = 32,
                               seed: int = 11) -> ScenarioSpec:
    """Follow-the-sun scavenging: jobs chase slack around the planet.

    The :func:`follow_the_sun_scenario` fleet (three regions,
    phase-shifted 24-hour diurnal days) with batch waves arriving every
    few simulated hours and a bounded queue — as each region's traffic
    peaks, the scheduler migrates the scavenging work to whichever
    region is in its trough, and admission control bounces waves that
    arrive while the queue is still digesting the previous one.

    Args:
        time_compression: shrink factor for quick looks (durations,
            periods, demand, arrivals and the epoch shrink together).
        leaves_per_region: leaf population of each regional cluster.
        shard_leaves: maximum leaves per execution shard.
        seed: base seed (region ``i`` defaults to ``seed + i``).
    """
    period = _compressed(24 * 3600.0, time_compression)
    duration = _compressed(12 * 3600.0, time_compression)
    regions = ("us-east", "eu-west", "ap-south")
    waves = tuple(
        JobSpec(name=f"wave{w}",
                demand_core_s=_compressed(30_000.0, time_compression),
                max_cores=6, count=3 * leaves_per_region,
                arrival_s=w * duration / 4.0)
        for w in range(4)
    )
    return ScenarioSpec(
        name="diurnal-scavenger",
        description="Three-region follow-the-sun fleet scavenged by "
                    "arriving batch waves under admission control",
        duration_s=duration,
        warmup_s=min(600.0, 0.5 * duration),
        seed=seed,
        schedule=ScheduleSpec(
            policy="slack-greedy",
            epoch_s=_compressed(120.0, time_compression),
            queue_limit=6 * leaves_per_region,
            fleet=FleetSpec(
                shard_leaves=shard_leaves,
                clusters=tuple(
                    ShardSpec(name=region, leaves=leaves_per_region,
                              lc="websearch",
                              trace=TraceSpec(kind="diurnal", low=0.20,
                                              high=0.90, period_s=period,
                                              noise_sigma=0.02,
                                              phase_s=i * period / 3.0))
                    for i, region in enumerate(regions))),
            jobs=waves))


register("fig4", fig4_scenario,
         "Figure 4 grid: 3 LC x 6 BE x 10 loads under Heracles")
register("fig8", fig8_scenario,
         "Figure 8 cluster: 8 leaves, 12 h diurnal trace, both arms")
register("mixed-fleet", mixed_fleet_scenario,
         "Three heterogeneous LC x BE servers on the batched backend")
register("diurnal-spike", diurnal_spike_scenario,
         "Diurnal websearch + stream-DRAM with a 95% load spike")
register("mixed-fleet-1k", mixed_fleet_1k_scenario,
         "1000-leaf, 4-cluster heterogeneous fleet, 12 h diurnal day")
register("chaos-1k", chaos_1k_scenario,
         "mixed-fleet-1k under crash / straggler / power-cap / "
         "partition waves")
register("follow-the-sun", follow_the_sun_scenario,
         "Three regions on an 8 h phase-shifted 24 h diurnal day")
register("batch-backlog-1k", batch_backlog_1k_scenario,
         "1000-leaf diurnal fleet scheduling a ~1000-job batch backlog")
register("diurnal-scavenger", diurnal_scavenger_scenario,
         "Follow-the-sun fleet scavenged by arriving batch job waves")
