"""Static partitioning baselines.

§3.3 concludes that "any static policy would be either too conservative
(missing opportunities for colocation) or overly optimistic (leading to
SLO violations)".  These controllers make that argument quantitative:
they configure the same four isolation mechanisms Heracles manages, but
once, at startup, and never react to load or slack.
"""

from __future__ import annotations

from typing import Optional

from ..sim.actuators import Actuators


class StaticPartitionController:
    """Fixed resource split between LC and BE, configured once.

    Implements the engine's Controller protocol; ``step`` is a no-op
    after the initial actuation, which is the whole point.
    """

    def __init__(self, actuators: Actuators,
                 be_cores: int,
                 be_llc_ways: int,
                 be_dvfs_cap_ghz: Optional[float] = None,
                 be_net_ceil_gbps: Optional[float] = None):
        if be_cores < 0 or be_llc_ways < 0:
            raise ValueError("static grants must be non-negative")
        self.actuators = actuators
        self._configured = False
        self._be_cores = be_cores
        self._be_llc_ways = be_llc_ways
        self._be_dvfs_cap_ghz = be_dvfs_cap_ghz
        self._be_net_ceil_gbps = be_net_ceil_gbps

    def step(self, now_s: float) -> None:
        if self._configured:
            return
        self._configured = True
        self.actuators.enable_be()
        self.actuators.set_be_cores(self._be_cores)
        self.actuators.set_llc_split(self._be_llc_ways)
        if self._be_dvfs_cap_ghz is not None:
            cap = self.actuators.be_dvfs_cap_ghz
            # Step the cap down from max turbo to the requested value.
            turbo = self.actuators.spec.socket.turbo
            steps = max(0, round((turbo.max_turbo_ghz
                                  - self._be_dvfs_cap_ghz)
                                 / turbo.step_ghz))
            if steps:
                self.actuators.lower_be_frequency(steps)
        self.actuators.set_be_net_ceil(self._be_net_ceil_gbps)


def conservative_static(actuators: Actuators) -> StaticPartitionController:
    """A split safe at *any* LC load: BE gets the scraps.

    Two cores, two LLC ways, minimum frequency, 5% of the link — safe
    everywhere, and therefore leaves most of the machine idle at low
    load (the "too conservative" arm of the paper's argument).
    """
    turbo = actuators.spec.socket.turbo
    return StaticPartitionController(
        actuators,
        be_cores=2,
        be_llc_ways=2,
        be_dvfs_cap_ghz=turbo.min_ghz,
        be_net_ceil_gbps=0.05 * actuators.spec.nic.link_gbps,
    )


def optimistic_static(actuators: Actuators) -> StaticPartitionController:
    """A split sized for *low* LC load: BE gets half the machine.

    Great EMU while load is low; violates the SLO as soon as load rises
    (the "overly optimistic" arm).
    """
    spec = actuators.spec
    return StaticPartitionController(
        actuators,
        be_cores=spec.total_cores // 2,
        be_llc_ways=spec.socket.llc_ways // 2,
        be_dvfs_cap_ghz=None,
        be_net_ceil_gbps=0.5 * spec.nic.link_gbps,
    )
