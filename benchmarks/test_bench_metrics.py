"""Columnar telemetry gate: history memory and summary-metric speed.

Runs the PR-3 reference workload — a 20-leaf diurnal colocation batch
(websearch + brain/streetview under Heracles, the Figure 8 shape) with
full per-member history recording — and gates the two contractual
properties of the columnar telemetry subsystem:

* **memory**: the recorded history must be at least 5x smaller than
  the list-of-``TickRecord``-dataclass layout it replaced.  The legacy
  cost is measured, not assumed: the benchmark materializes the same
  run as the old per-member record lists and deep-sizes them
  (``sys.getsizeof`` over instances, their ``__dict__``s, their boxed
  field values, and the list slots).
* **speed**: computing the reported aggregates (worst 60 s SLO window,
  mean EMU) over the columnar store must beat the legacy records scan
  (the old implementation's list-comprehension-then-ndarray path,
  reproduced verbatim below).

The measurements land in ``BENCH_PR3.json`` (path overridable via
``REPRO_BENCH_OUT``) so the perf trajectory of the telemetry layer is
recorded run over run; ``tools/bench_report.py`` wraps this benchmark
plus the batched-backend gate into the CI artifact.
"""

import json
import os
import sys
import time

import numpy as np
from conftest import regenerate

from repro.core.controller import HeraclesController
from repro.core.dram_model import profile_lc_dram_model
from repro.sim.batch import BatchColocationSim
from repro.workloads.best_effort import make_be_workload
from repro.workloads.latency_critical import make_lc_workload
from repro.workloads.traces import websearch_cluster_trace

LEAVES = 20
DURATION_S = 1800.0
SEED = 7
MIN_MEMORY_RATIO = 5.0
OUT_ENV = "REPRO_BENCH_OUT"
DEFAULT_OUT = "BENCH_PR3.json"


def _run_batch():
    """The 20-leaf diurnal managed run, full history recording on."""
    spec = make_lc_workload("websearch").spec
    lc = make_lc_workload("websearch", spec)
    be_by_name = {name: make_be_workload(name, spec)
                  for name in ("brain", "streetview")}
    bes = [be_by_name["brain" if i % 2 == 0 else "streetview"]
           for i in range(LEAVES)]
    batch = BatchColocationSim(
        lc=lc, trace=websearch_cluster_trace(seed=SEED), bes=bes,
        spec=spec, seeds=[SEED * 1000 + i for i in range(LEAVES)],
        record_history=True)
    shared_model = profile_lc_dram_model(lc)
    for member in batch.members:
        HeraclesController.for_sim(member, dram_model=shared_model)
    batch.run(DURATION_S)
    return batch


def _deep_record_bytes(records) -> int:
    """Bytes one legacy list-of-dataclass history actually held.

    Instance + per-instance ``__dict__`` + the boxed float field
    values + the list's pointer slot.  Interned values (small ints,
    bools, None) are free, exactly as they were in the legacy layout.
    """
    total = sys.getsizeof(records)
    for record in records:
        total += sys.getsizeof(record) + sys.getsizeof(record.__dict__)
        total += sum(sys.getsizeof(v) for v in record.__dict__.values()
                     if isinstance(v, float))
    return total


def _legacy_compact_bytes(ticks: int, n: int) -> int:
    """Bytes of the legacy compact ``BatchHistory`` for the same run.

    The old batch engine kept this *in addition* to the per-member
    record lists (the single columnar store replaces both): a Python
    list of timestamps plus, for each of the 5 observables, a list
    holding one freshly-allocated (N,) float64 array per tick.
    """
    per_array = sys.getsizeof(np.zeros(n))  # header + N float64
    per_tick = 5 * (per_array + 8) + (24 + 8)  # arrays+slots, boxed t_s
    return ticks * per_tick


def _legacy_worst_window_slo(records, window_s=60.0, skip_s=0.0):
    """The retired SimHistory.worst_window_slo, verbatim."""
    vals = [r.slo_fraction for r in records if r.t_s >= skip_s]
    if not vals:
        return 0.0
    span = records[-1].t_s - records[0].t_s
    dt_s = span / (len(records) - 1) if span > 0 else 1.0
    width = max(1, int(round(window_s / dt_s)))
    if len(vals) < width:
        return float(np.mean(vals))
    series = np.array(vals, dtype=float)
    csum = np.cumsum(np.insert(series, 0, 0.0))
    windows = (csum[width:] - csum[:-width]) / width
    return float(windows.max())


def _legacy_mean_emu(records, skip_s=0.0):
    """The retired SimHistory.mean_emu, verbatim."""
    vals = [r.emu for r in records if r.t_s >= skip_s]
    return float(np.mean(vals)) if vals else 0.0


def test_bench_metrics_memory_and_speed(benchmark):
    batch = regenerate(benchmark, _run_batch)
    ticks = len(batch.history)
    assert ticks == int(DURATION_S)

    # -- memory: columnar store vs the legacy dataclass lists ----------
    columnar_bytes = batch.history.store.nbytes()
    legacy_lists = [m.history.records for m in batch.members]
    legacy_bytes = (sum(_deep_record_bytes(records)
                        for records in legacy_lists)
                    + _legacy_compact_bytes(ticks, LEAVES))
    memory_ratio = legacy_bytes / columnar_bytes

    # -- speed: reported aggregates, columnar vs legacy records scan ---
    start = time.perf_counter()
    legacy_summaries = [
        (_legacy_worst_window_slo(records, skip_s=600.0),
         _legacy_mean_emu(records, skip_s=600.0))
        for records in legacy_lists
    ]
    legacy_metric_s = time.perf_counter() - start

    start = time.perf_counter()
    columnar_summaries = [
        (m.history.worst_window_slo(skip_s=600.0),
         m.history.mean_emu(skip_s=600.0))
        for m in batch.members
    ]
    columnar_metric_s = time.perf_counter() - start

    for (got_w, got_e), (want_w, want_e) in zip(columnar_summaries,
                                                legacy_summaries):
        assert abs(got_w - want_w) <= 1e-12
        assert abs(got_e - want_e) <= 1e-12

    report = {
        "benchmark": "test_bench_metrics",
        "leaves": LEAVES,
        "duration_s": DURATION_S,
        "ticks": ticks,
        "history_bytes_columnar": int(columnar_bytes),
        "history_bytes_legacy": int(legacy_bytes),
        "history_memory_ratio": round(memory_ratio, 2),
        "summary_metrics_s_columnar": round(columnar_metric_s, 6),
        "summary_metrics_s_legacy": round(legacy_metric_s, 6),
        "summary_metrics_speedup": round(
            legacy_metric_s / max(columnar_metric_s, 1e-9), 1),
    }
    out_path = os.environ.get(OUT_ENV, DEFAULT_OUT)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print()
    print(f"{LEAVES}-leaf, {DURATION_S / 60:.0f}-minute diurnal run "
          f"({ticks} ticks):")
    print(f"  history memory: columnar {columnar_bytes / 1e6:.1f} MB vs "
          f"legacy {legacy_bytes / 1e6:.1f} MB -> "
          f"{memory_ratio:.1f}x smaller")
    print(f"  summary metrics: columnar {columnar_metric_s * 1e3:.1f} ms "
          f"vs legacy {legacy_metric_s * 1e3:.1f} ms -> "
          f"{report['summary_metrics_speedup']:.0f}x faster")
    print(f"  report: {out_path}")

    assert memory_ratio >= MIN_MEMORY_RATIO, (
        f"columnar history only {memory_ratio:.2f}x smaller than the "
        f"legacy record lists (need >= {MIN_MEMORY_RATIO}x)")
    assert columnar_metric_s < legacy_metric_s, (
        f"columnar summaries ({columnar_metric_s:.4f}s) not faster than "
        f"the legacy records scan ({legacy_metric_s:.4f}s)")
