"""Legacy setup shim so editable installs work without the `wheel`
package (offline environments).  All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
