"""Network subcontroller — Algorithm 4 of the paper.

Prevents saturation of transmit bandwidth::

    while True:
        ls_bw = GetLCTxBandwidth()
        be_bw = LINK_RATE - ls_bw - max(0.05 * LINK_RATE, 0.10 * ls_bw)
        SetBETxBandwidth(be_bw)
        sleep(1)

A headroom of 10% of the current LC bandwidth or 5% of the link rate
(whichever is larger) is reserved for the LC workload to absorb spikes;
the remainder is offered to BE flows via the HTB ``ceil``.  The LC class
itself is never limited.
"""

from __future__ import annotations

from typing import Optional

from ..hardware.counters import CounterBank
from ..sim.actuators import Actuators
from .config import HeraclesConfig


class NetworkController:
    """Algorithm 4: egress bandwidth partitioning via HTB."""

    def __init__(self, config: HeraclesConfig, actuators: Actuators,
                 counters: CounterBank, lc_task: str):
        config.validate()
        self.config = config
        self.actuators = actuators
        self.counters = counters
        self.lc_task = lc_task
        self._last_step_s: Optional[float] = None

    def due(self, now_s: float) -> bool:
        return (self._last_step_s is None
                or now_s - self._last_step_s >= self.config.network_period_s)

    def be_budget_gbps(self, lc_bw_gbps: float) -> float:
        """The Algorithm 4 formula (may be negative; HTB clamps to 0)."""
        link = self.counters.link_rate_gbps()
        headroom = max(self.config.net_link_headroom * link,
                       self.config.net_lc_headroom * lc_bw_gbps)
        return link - lc_bw_gbps - headroom

    def step(self, now_s: float) -> None:
        if not self.due(now_s):
            return
        self._last_step_s = now_s
        lc_bw = self.counters.tx_gbps_of(self.lc_task)
        self.actuators.set_be_net_ceil(max(0.0, self.be_budget_gbps(lc_bw)))
