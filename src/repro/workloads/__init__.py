"""Workload models: latency-critical services, BE tasks, antagonists, traces."""

from .antagonists import (AntagonistSpec, Placement, antagonist_by_label,
                          figure1_antagonists, make_antagonist)
from .base import (Allocation, cache_demand_for, pack_cores,
                   split_across_sockets, spread_cores)
from .best_effort import (BE_PROFILES, BRAIN, CPU_PWR, IPERF, STREAM_DRAM,
                          STREAM_LLC, STREETVIEW, BestEffortWorkload,
                          BeWorkloadProfile, make_be_workload,
                          reference_throughput_units)
from .latency_critical import (LC_PROFILES, MEMKEYVAL, ML_CLUSTER, WEBSEARCH,
                               LatencyCriticalWorkload, LcWorkloadProfile,
                               make_lc_workload)
from .traces import (ConstantLoad, DiurnalTrace, LoadSpike, LoadTrace,
                     PhasedTrace, ReplayTrace, SpikeOverlay, StepLoad,
                     load_sweep, websearch_cluster_trace)

__all__ = [
    "AntagonistSpec", "Placement", "antagonist_by_label",
    "figure1_antagonists", "make_antagonist",
    "Allocation", "cache_demand_for", "pack_cores", "split_across_sockets",
    "spread_cores",
    "BE_PROFILES", "BRAIN", "CPU_PWR", "IPERF", "STREAM_DRAM", "STREAM_LLC",
    "STREETVIEW", "BestEffortWorkload", "BeWorkloadProfile",
    "make_be_workload", "reference_throughput_units",
    "LC_PROFILES", "MEMKEYVAL", "ML_CLUSTER", "WEBSEARCH",
    "LatencyCriticalWorkload", "LcWorkloadProfile", "make_lc_workload",
    "ConstantLoad", "DiurnalTrace", "LoadSpike", "LoadTrace", "PhasedTrace",
    "ReplayTrace", "SpikeOverlay", "StepLoad", "load_sweep",
    "websearch_cluster_trace",
]
