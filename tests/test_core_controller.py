"""Integration tests for the assembled Heracles controller."""

import pytest

import repro
from repro.core import HeraclesConfig, HeraclesController
from repro.core.dram_model import profile_lc_dram_model
from repro.sim.engine import ColocationSim
from repro.workloads.latency_critical import make_lc_workload
from repro.workloads.traces import ConstantLoad, StepLoad


def build(lc="websearch", be="brain", load=0.4, seed=0, trace=None,
          config=None, dram_model=None):
    sim = repro.build_colocation(lc, be, load=load, trace=trace, seed=seed)
    controller = HeraclesController.for_sim(sim, config=config,
                                            dram_model=dram_model)
    return sim, controller


class TestAssembly:
    def test_for_sim_wires_everything(self):
        sim, controller = build()
        assert controller.top_level.monitor is sim.latency_monitor
        assert controller.core_memory.actuators is sim.actuators
        assert controller.power.guaranteed_ghz > 1.0
        assert sim.controller is controller

    def test_requires_a_be_task(self):
        sim = ColocationSim(lc=make_lc_workload("websearch"),
                            trace=ConstantLoad(0.4), seed=0)
        with pytest.raises(ValueError):
            HeraclesController.for_sim(sim)

    def test_lc_llc_floor_derived_from_hot_set(self):
        sim, _ = build()
        # websearch hot set is 24 MB machine-wide = 12 MB/socket; at
        # 2.25 MB/way the floor must cover it.
        assert sim.actuators.min_lc_llc_ways >= 5


class TestSteadyState:
    def test_no_slo_violations(self):
        sim, _ = build(load=0.5, seed=3)
        history = sim.run(900)
        assert history.worst_window_slo(skip_s=240) <= 1.0

    def test_be_gets_resources(self):
        sim, _ = build(load=0.3, seed=3)
        history = sim.run(600)
        assert history.last().be_cores >= 5
        assert history.mean_emu(skip_s=300) > 0.45

    def test_emu_exceeds_lc_alone(self):
        sim, _ = build(load=0.4, seed=3)
        history = sim.run(900)
        assert history.mean_emu(skip_s=300) > 0.55  # well above 0.4

    def test_high_load_disables_colocation(self):
        sim, _ = build(load=0.9, seed=3)
        history = sim.run(300)
        assert history.last().be_cores == 0
        assert not history.last().be_enabled


class TestLoadDynamics:
    def test_load_spike_evicts_be(self):
        # A sharp load spike is the one case the paper allows a
        # transient violation for: "BE execution is also disabled when
        # the latency slack is negative.  This typically happens when
        # there is a sharp spike in load" (§4.3).  The requirements are
        # prompt eviction and full recovery, not spike-proof latency.
        trace = StepLoad(times_s=[0, 600], loads=[0.3, 0.88])
        sim, _ = build(trace=trace, seed=5)
        history = sim.run(1200)
        late = [r for r in history.records if r.t_s > 700]
        assert all(r.be_cores == 0 for r in late[30:])
        # Violation is transient: once BE is evicted, latency recovers.
        assert history.worst_window_slo(skip_s=700) <= 1.0

    def test_recovery_after_spike(self):
        trace = StepLoad(times_s=[0, 300, 600], loads=[0.3, 0.88, 0.3])
        sim, _ = build(trace=trace, seed=5)
        history = sim.run(1500)
        assert history.last().be_cores > 0  # colocation resumed


class TestOfflineModelRobustness:
    def test_stale_dram_model_still_safe(self):
        # §5.2: the websearch binary changed between profiling and the
        # experiment and Heracles still performed well.
        lc = make_lc_workload("websearch")
        stale = profile_lc_dram_model(lc).perturbed(1.3)
        sim, _ = build(load=0.5, seed=3, dram_model=stale)
        history = sim.run(900)
        assert history.worst_window_slo(skip_s=240) <= 1.0

    def test_stale_model_costs_some_emu_not_safety(self):
        lc = make_lc_workload("websearch")
        fresh_sim, _ = build(lc="websearch", be="streetview", load=0.4,
                             seed=3)
        fresh = fresh_sim.run(900)
        stale_model = profile_lc_dram_model(lc).perturbed(1.5)
        stale_sim, _ = build(lc="websearch", be="streetview", load=0.4,
                             seed=3, dram_model=stale_model)
        stale = stale_sim.run(900)
        assert stale.worst_window_slo(skip_s=240) <= 1.0
        # The over-predicting model is more conservative.
        assert (stale.mean("be_throughput_norm", skip_s=300)
                <= fresh.mean("be_throughput_norm", skip_s=300) + 0.05)


class TestConfigKnobs:
    def test_custom_config_applies(self):
        config = HeraclesConfig(load_disable_threshold=0.5,
                                load_enable_threshold=0.45)
        sim, _ = build(load=0.6, seed=3, config=config)
        history = sim.run(300)
        assert history.last().be_cores == 0  # 0.6 > custom threshold

    def test_subcontroller_order_is_top_level_first(self):
        sim, controller = build()
        calls = []
        original = controller.top_level.step

        def spy(now_s):
            calls.append("top")
            original(now_s)

        controller.top_level.step = spy
        original_cm = controller.core_memory.step

        def spy_cm(now_s):
            calls.append("cm")
            original_cm(now_s)

        controller.core_memory.step = spy_cm
        controller.step(0.0)
        assert calls == ["top", "cm"]
