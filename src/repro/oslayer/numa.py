"""numactl-style NUMA binding policies.

Heracles limits each BE task to a single socket for both cores and
memory (via Linux ``numactl``) so that per-core NUMA-local counters can
attribute DRAM traffic to it; LC workloads may span sockets (§4.3).
This module provides the binding bookkeeping and the core-picking
helpers used when building cpusets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..hardware.cpu import CoreId, CpuTopology


@dataclass(frozen=True)
class NumaBinding:
    """Memory/CPU binding of one task."""

    task: str
    sockets: tuple  # sockets the task may use

    def allows(self, socket: int) -> bool:
        return socket in self.sockets


class NumaPolicy:
    """Tracks per-task socket bindings and allocates cores within them."""

    def __init__(self, topology: CpuTopology):
        self.topology = topology
        self._bindings: Dict[str, NumaBinding] = {}

    def bind(self, task: str, sockets: Sequence[int]) -> NumaBinding:
        for s in sockets:
            if not 0 <= s < self.topology.spec.sockets:
                raise ValueError(f"socket {s} out of range")
        if not sockets:
            raise ValueError("must bind to at least one socket")
        binding = NumaBinding(task=task, sockets=tuple(sorted(set(sockets))))
        self._bindings[task] = binding
        return binding

    def bind_single_socket(self, task: str, socket: int) -> NumaBinding:
        """The Heracles BE policy: one socket for cores *and* memory."""
        return self.bind(task, [socket])

    def binding_of(self, task: str) -> Optional[NumaBinding]:
        return self._bindings.get(task)

    def unbind(self, task: str) -> None:
        self._bindings.pop(task, None)

    def least_loaded_socket(self, used_per_socket: Dict[int, int]) -> int:
        """Pick the socket with the most free physical cores."""
        spec = self.topology.spec
        free = {s: spec.socket.cores - used_per_socket.get(s, 0)
                for s in range(spec.sockets)}
        return max(free, key=lambda s: (free[s], -s))

    def pick_cores(self, task: str, count: int,
                   occupied: Sequence[CoreId] = ()) -> List[CoreId]:
        """Choose ``count`` primary hardware threads inside the binding.

        Only thread 0 of each physical core is handed out: Heracles never
        shares a physical core between different workloads, so the sibling
        thread stays with the same task (or idle).
        """
        binding = self._bindings.get(task)
        allowed_sockets = (binding.sockets if binding
                           else tuple(range(self.topology.spec.sockets)))
        occupied_physical = {c.physical for c in occupied}
        picked: List[CoreId] = []
        for t in self.topology.primary_threads():
            if len(picked) >= count:
                break
            if t.socket not in allowed_sockets:
                continue
            if t.physical in occupied_physical:
                continue
            picked.append(t)
        if len(picked) < count:
            raise ValueError(
                f"cannot place {count} cores for {task!r}: only "
                f"{len(picked)} free within binding {allowed_sockets}")
        return picked
