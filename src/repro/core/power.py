"""Power subcontroller — Algorithm 3 of the paper.

Ensures there is enough power slack to run the LC workload at a minimum
guaranteed frequency (measured when the LC workload runs alone at full
load)::

    while True:
        power = PollRAPL()
        ls_freq = PollFrequency(ls_cores)
        if power > 0.90 * TDP and ls_freq < guaranteed:
            LowerFrequency(be_cores)
        elif power <= 0.90 * TDP and ls_freq >= guaranteed:
            IncreaseFrequency(be_cores)
        sleep(2)

Both conditions must hold before acting "to avoid confusion when the LC
cores enter active-idle modes, which also tends to lower frequency
readings" (§4.3).  DVFS steps are 100 MHz.
"""

from __future__ import annotations

from typing import Optional

from ..hardware.counters import CounterBank
from ..hardware.power import CorePowerRequest, SocketPowerModel
from ..hardware.spec import MachineSpec
from ..sim.actuators import Actuators
from ..workloads.latency_critical import LatencyCriticalWorkload
from .config import HeraclesConfig


def guaranteed_frequency_ghz(lc: LatencyCriticalWorkload,
                             spec: Optional[MachineSpec] = None) -> float:
    """Frequency the LC workload sustains alone at full load.

    This is the calibration measurement Heracles performs once per LC
    workload: run it at 100% load with every core and read the steady
    frequency (turbo may be partially available depending on the
    workload's power draw).
    """
    spec = spec or lc.spec
    model = SocketPowerModel(spec.socket)
    request = CorePowerRequest(task=lc.name, cores=spec.socket.cores,
                               activity=lc.profile.compute_activity)
    resolution = model.resolve([request])
    return resolution.freq_of(lc.name)


class PowerController:
    """Algorithm 3: keep LC cores at or above the guaranteed frequency."""

    def __init__(self, config: HeraclesConfig, actuators: Actuators,
                 counters: CounterBank, lc_task: str,
                 guaranteed_ghz: float):
        config.validate()
        if guaranteed_ghz <= 0:
            raise ValueError("guaranteed frequency must be positive")
        self.config = config
        self.actuators = actuators
        self.counters = counters
        self.lc_task = lc_task
        self.guaranteed_ghz = guaranteed_ghz
        self._last_step_s: Optional[float] = None

    def due(self, now_s: float) -> bool:
        return (self._last_step_s is None
                or now_s - self._last_step_s >= self.config.power_period_s)

    def step(self, now_s: float) -> None:
        if not self.due(now_s):
            return
        self._last_step_s = now_s

        power_fraction = self.counters.max_power_fraction_of_tdp()
        ls_freq = self.counters.freq_of(self.lc_task)
        if ls_freq is None:
            return
        threshold = self.config.power_tdp_threshold

        if power_fraction > threshold and ls_freq < self.guaranteed_ghz:
            if self.actuators.be_cores > 0:
                self.actuators.lower_be_frequency()
        elif power_fraction <= threshold and ls_freq >= self.guaranteed_ghz:
            self.actuators.raise_be_frequency()
