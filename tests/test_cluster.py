"""Tests for repro.cluster: root aggregation, leaves, and the cluster."""

import pytest

from repro.cluster.cluster import WebsearchCluster
from repro.cluster.leaf import Leaf, LeafConfig
from repro.cluster.root import RootAggregator
from repro.workloads.traces import ConstantLoad, DiurnalTrace


class TestRootAggregator:
    def test_combine_tracks_worst_leaf(self):
        root = RootAggregator(straggler_weight=1.0)
        assert root.combine([10.0, 20.0, 12.0]) == pytest.approx(20.0)

    def test_combine_blends_with_mean(self):
        root = RootAggregator(straggler_weight=0.5)
        assert root.combine([10.0, 30.0]) == pytest.approx(
            0.5 * 30.0 + 0.5 * 20.0)

    def test_empty_leaves_rejected(self):
        with pytest.raises(ValueError):
            RootAggregator().combine([])

    def test_windowed_average(self):
        root = RootAggregator(window_s=30.0)
        for t in range(40):
            root.record(float(t), [10.0 if t < 35 else 40.0])
        # Window (9, 39]: 25 samples at 10, 5 at 40.
        expected = (26 * 10.0 + 5 * 40.0) / 31
        assert root.windowed_latency_ms() == pytest.approx(expected, rel=0.05)

    def test_no_samples_raises(self):
        with pytest.raises(ValueError):
            RootAggregator().windowed_latency_ms()

    def test_validation(self):
        with pytest.raises(ValueError):
            RootAggregator(window_s=0.0)
        with pytest.raises(ValueError):
            RootAggregator(straggler_weight=1.5)


class TestLeaf:
    def test_leaf_runs_managed(self):
        config = LeafConfig(index=0, be_name="brain", leaf_slo_ms=20.0,
                            seed=1)
        leaf = Leaf(config, trace=ConstantLoad(0.3),
                    spec=None or __import__(
                        "repro.hardware.spec",
                        fromlist=["default_machine_spec"]
                    ).default_machine_spec())
        for _ in range(60):
            record = leaf.tick()
        assert leaf.controller is not None
        assert record.tail_latency_ms > 0
        assert leaf.last_emu >= record.load - 0.01

    def test_leaf_slo_override_moves_target_only(self):
        from repro.hardware.spec import default_machine_spec
        spec = default_machine_spec()
        config = LeafConfig(index=0, be_name="brain", leaf_slo_ms=17.0,
                            seed=1)
        leaf = Leaf(config, trace=ConstantLoad(0.3), spec=spec)
        assert leaf.sim.lc.profile.slo_latency_ms == pytest.approx(17.0)
        # Calibration (service time) still reflects the service's SLO.
        assert leaf.sim.lc.base_service_ms > 1.0

    def test_unmanaged_leaf_has_no_controller(self):
        from repro.hardware.spec import default_machine_spec
        config = LeafConfig(index=0, be_name="brain", leaf_slo_ms=17.0,
                            seed=1)
        leaf = Leaf(config, trace=ConstantLoad(0.3),
                    spec=default_machine_spec(), managed=False)
        assert leaf.controller is None


class TestWebsearchCluster:
    @pytest.fixture(scope="class")
    def short_run(self):
        trace = DiurnalTrace(low=0.2, high=0.9, period_s=1800,
                             noise_sigma=0.0, seed=3)
        cluster = WebsearchCluster(leaves=4, trace=trace, seed=3)
        history = cluster.run(900)
        return cluster, history

    def test_needs_two_leaves(self):
        with pytest.raises(ValueError):
            WebsearchCluster(leaves=1)

    def test_be_tasks_alternate(self, short_run):
        cluster, _ = short_run
        names = [leaf.sim.be.name for leaf in cluster.leaves]
        assert names == ["brain", "streetview", "brain", "streetview"]

    def test_root_slo_above_leaf_slo(self, short_run):
        cluster, _ = short_run
        assert cluster.root_slo_ms > cluster.leaf_slo_ms

    def test_history_recorded(self, short_run):
        _, history = short_run
        assert len(history.records) >= 25
        assert all(r.root_latency_ms > 0 for r in history.records)

    def test_emu_at_least_load(self, short_run):
        _, history = short_run
        for record in history.records:
            assert record.emu >= record.load - 0.05

    def test_summary_metrics(self, short_run):
        _, history = short_run
        assert 0 < history.min_emu() <= history.mean_emu() <= 1.5
        assert history.max_root_slo_fraction() > 0
        assert history.column("load").max() <= 0.9 + 1e-9

    def test_shared_dram_model(self, short_run):
        cluster, _ = short_run
        models = {id(leaf.controller.core_memory.dram_model)
                  for leaf in cluster.leaves}
        assert len(models) == 1  # one offline model shared by all leaves
