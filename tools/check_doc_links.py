#!/usr/bin/env python
"""Check that relative links in markdown docs point at real files.

Usage: ``python tools/check_doc_links.py README.md docs/*.md``

Scans ``[text](target)`` markdown links; external schemes (http/https/
mailto) and pure in-page anchors are skipped, everything else must
resolve — relative to the linking file — to an existing file or
directory.  Exits non-zero listing every broken link.
"""

from __future__ import annotations

import os
import re
import sys
from typing import List, Tuple

#: [text](target) with no nested brackets; good enough for our docs.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def broken_links(path: str) -> List[Tuple[int, str]]:
    """Return (line_number, target) for every dangling link in ``path``."""
    base = os.path.dirname(os.path.abspath(path))
    broken = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                if target.startswith(SKIP_PREFIXES):
                    continue
                local = target.split("#", 1)[0]
                if not local:
                    continue
                if not os.path.exists(os.path.join(base, local)):
                    broken.append((number, target))
    return broken


def main(argv: List[str]) -> int:
    """Check every file in ``argv``; print and count broken links."""
    if not argv:
        print("usage: check_doc_links.py FILE [FILE...]", file=sys.stderr)
        return 2
    failures = 0
    for path in argv:
        for number, target in broken_links(path):
            print(f"{path}:{number}: broken link -> {target}",
                  file=sys.stderr)
            failures += 1
    if failures:
        print(f"{failures} broken link(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
