"""Mega-engine gate: the 1-core sharding regression, erased.

``BENCH_PR4.json`` recorded the sharded fleet plan running 0.76x —
*slower* than sequential — on a single-CPU host: with no cores to fan
out across, the per-shard Python tick loops (actuator gathers, monitor
deques, controller objects) are pure overhead.  The mega engine
(``repro.sim.megabatch``) removes those loops instead of hiding them
behind processes: the whole fleet advances as one heterogeneous
``(T, N_fleet)`` array program, with per-cluster hardware capacities
as broadcast columns and every managed cluster's Heracles controllers
stepping as one grouped array program.

This gate runs the registered 1000-leaf ``mixed-fleet-1k`` scenario
(time-compressed for CI; ``REPRO_BENCH_MEGAFLEET_COMPRESSION=1``
restores the full 12-hour day) under two plans:

* **sequential sharded** — today's default plan (~64-leaf shards) at
  ``processes=1``: the path the PR-4 regression measured;
* **mega** — the same scenario with ``engine="mega"``.

and enforces the engine's two contractual properties:

* **equivalence**: bit-identical per-cluster histories, per-shard
  worst-tail roll-ups, and fleet summaries — the engine changes
  wall-clock, never numbers;
* **speedup**: the mega plan completes at least ``MIN_SPEEDUP`` (5x)
  faster.  The gate is unconditional: the mega engine's advantage is
  algorithmic, not parallelism, so it owes the speedup even (indeed
  especially) on a single-CPU host.

Measurements land in ``BENCH_PR6.json`` (path overridable via
``REPRO_BENCH_MEGAFLEET_OUT``); ``tools/bench_report.py`` folds them
into the CI perf-trajectory artifact.
"""

import dataclasses
import json
import os
import time

import numpy as np
from conftest import regenerate

from repro.scenarios import compile_scenario
from repro.scenarios.library import mixed_fleet_1k_scenario

COMPRESSION = float(os.environ.get("REPRO_BENCH_MEGAFLEET_COMPRESSION",
                                   "72"))
MIN_SPEEDUP = 5.0
OUT_ENV = "REPRO_BENCH_MEGAFLEET_OUT"
DEFAULT_OUT = "BENCH_PR6.json"
CLUSTER_FIELDS = ("t_s", "load", "root_latency_ms", "root_slo_fraction",
                  "emu")


def _scenario(engine: str):
    spec = mixed_fleet_1k_scenario(time_compression=COMPRESSION)
    if engine != spec.fleet.engine:
        spec = dataclasses.replace(
            spec, fleet=dataclasses.replace(spec.fleet, engine=engine))
    return spec


def _run_fleet(engine: str):
    """One execution plan of the 1000-leaf fleet, strictly in-process."""
    spec = _scenario(engine)
    return compile_scenario(spec).run(processes=1)


def test_bench_megafleet_speedup_and_equivalence(benchmark):
    spec = _scenario("mega")
    total_leaves = spec.fleet.total_leaves()

    # The regression's reference plan first: today's sharded default at
    # one process.  (Running it first also charges the one-off DRAM
    # model profiling to the comparator — both engines share the
    # per-process memoized models, as the shard workers do.)
    seq_start = time.perf_counter()
    sequential = _run_fleet("sharded")
    seq_wall = time.perf_counter() - seq_start

    # The mega plan (the benchmark timer records this run).
    mega_start = time.perf_counter()
    mega = regenerate(benchmark, _run_fleet, "mega")
    mega_wall = time.perf_counter() - mega_start

    speedup = seq_wall / mega_wall
    shard_count = sum(len(o.shards) for o in sequential.fleet.clusters)
    warmup = spec.warmup_s

    print()
    print(f"{total_leaves}-leaf fleet, {spec.duration_s / 60:.0f} simulated "
          f"minutes (compression {COMPRESSION:.0f}x):")
    print(f"  sequential sharded ({shard_count} shards, 1 process): "
          f"{seq_wall:.2f}s wall")
    print(f"  mega (one array program): {mega_wall:.2f}s wall "
          f"-> {speedup:.2f}x")

    # -- equivalence: the engine must never change a number -------------
    for seq_outcome in sequential.fleet.clusters:
        mega_outcome = mega.fleet.cluster(seq_outcome.name)
        assert mega_outcome.root_slo_ms == seq_outcome.root_slo_ms
        for name in CLUSTER_FIELDS:
            a = seq_outcome.history.column(name)
            b = mega_outcome.history.column(name)
            assert np.array_equal(a, b), (
                f"cluster {seq_outcome.name!r} column {name!r} diverged "
                f"between engines")
        # The worst leaf tail rolls up exactly whatever the partition:
        # many shards on the reference, one whole-cluster shard on mega.
        seq_worst = max(s.summary["worst_tail_ms"]
                        for s in seq_outcome.shards)
        mega_worst = max(s.summary["worst_tail_ms"]
                         for s in mega_outcome.shards)
        assert mega_worst == seq_worst, (
            f"cluster {seq_outcome.name!r}: per-shard worst-tail metrics "
            f"diverged between engines")
    seq_summary = sequential.fleet.summary(skip_s=warmup)
    mega_summary = mega.fleet.summary(skip_s=warmup)
    assert seq_summary == mega_summary, "fleet summaries diverged"
    print(f"  fleet EMU {mega_summary['fleet_emu']:.1%} (min "
          f"{mega_summary['min_fleet_emu']:.1%}), load-weighted root "
          f"latency {mega_summary['weighted_root_latency_ms']:.1f} ms "
          f"[bit-identical across engines]")

    report = {
        "benchmark": "test_bench_megafleet",
        "leaves": total_leaves,
        "clusters": len(spec.fleet.clusters),
        "shards_sequential": shard_count,
        "time_compression": COMPRESSION,
        "duration_s": spec.duration_s,
        "cpus": os.cpu_count() or 1,
        "wall_s_sequential": round(seq_wall, 2),
        "wall_s_mega": round(mega_wall, 2),
        "speedup": round(speedup, 2),
        "bit_identical": True,
    }
    out_path = os.environ.get(OUT_ENV, DEFAULT_OUT)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"  report: {out_path}")

    # -- speedup: unconditional — this is the regression being erased ---
    assert speedup >= MIN_SPEEDUP, (
        f"mega engine only {speedup:.2f}x faster than the sequential "
        f"sharded path (need >= {MIN_SPEEDUP:.0f}x; BENCH_PR4 recorded "
        f"the sharded plan at 0.76x on one CPU)")
