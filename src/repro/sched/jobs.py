"""Typed best-effort jobs: the unit of work the fleet scheduler places.

The paper's cluster-wide payoff (§5.3, §6) assumes a Borg-like
scheduler that launches *best-effort tasks* onto latency-critical
machines whenever Heracles reports slack.  :class:`BeJob` is that
task, typed the way a batch scheduler types it: total demand in
core-seconds of normalized throughput, a parallelism limit, a
priority, and an arrival time.

Demand is denominated in the EMU currency the whole repo uses: one
core-second of demand is one second of one core's worth of
*normalized* BE throughput (throughput relative to the batch workload
running alone on a whole server, §5.1) — so a leaf whose Heracles
instance harvests 0.3 normalized throughput on an 8-core machine
retires 2.4 core-seconds of job demand per second.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class BeJob:
    """One typed best-effort job in the fleet queue.

    Args:
        name: unique job name (the accounting key).
        demand_core_s: total work, in core-seconds of normalized BE
            throughput.  Must be positive.
        max_cores: parallelism limit — the job never holds more than
            this many BE core slots fleet-wide in one epoch.
        priority: higher runs first; ties break by arrival time, then
            name, so placement is invariant to submission order.
        arrival_s: simulated time the job enters the queue.
    """

    name: str
    demand_core_s: float
    max_cores: int = 8
    priority: int = 0
    arrival_s: float = 0.0

    def validate(self) -> None:
        """Check the job's fields (positive demand, sane limits)."""
        if not self.name:
            raise ValueError("a job needs a non-empty name")
        if not self.demand_core_s > 0:
            raise ValueError(f"job {self.name!r}: demand_core_s must be "
                             f"positive, got {self.demand_core_s!r}")
        if self.max_cores < 1:
            raise ValueError(f"job {self.name!r}: max_cores must be >= 1, "
                             f"got {self.max_cores!r}")
        if self.arrival_s < 0:
            raise ValueError(f"job {self.name!r}: arrival_s must be >= 0, "
                             f"got {self.arrival_s!r}")

    def order_key(self) -> Tuple[int, float, str]:
        """Queue ordering: priority desc, then arrival, then name.

        Every scheduler decision sorts jobs through this one key, which
        is what makes placement invariant to the order jobs were
        submitted in (the determinism property the hypothesis suite
        pins).
        """
        return (-self.priority, self.arrival_s, self.name)


class JobState(enum.Enum):
    """Lifecycle of a job inside one scheduling run."""

    PENDING = "pending"        # submitted, arrival time not reached
    QUEUED = "queued"          # admitted, waiting for (more) slack
    COMPLETED = "completed"    # full demand retired
    REJECTED = "rejected"      # bounced by admission control


@dataclass
class JobRecord:
    """Mutable per-job accounting the scheduler maintains.

    ``progress_core_s`` only ever counts *credited* work: harvest
    earned during an epoch in which the hosting leaf latched its SLO
    is forfeited (the eviction penalty), not banked.
    """

    job: BeJob
    state: JobState = JobState.PENDING
    progress_core_s: float = 0.0
    completed_at_s: Optional[float] = None
    evictions: int = 0
    pinned_leaf: Optional[int] = None
    assigned: dict = field(default_factory=dict)

    @property
    def remaining_core_s(self) -> float:
        """Demand still to retire (never negative)."""
        return max(0.0, self.job.demand_core_s - self.progress_core_s)

    @property
    def runnable(self) -> bool:
        """True while the job is admitted and unfinished."""
        return self.state == JobState.QUEUED


def expand_jobs(jobs: Sequence[BeJob]) -> List[JobRecord]:
    """Validate a job list and build its runtime records, queue-ordered.

    Rejects duplicate names (the accounting key) and returns records
    sorted by :meth:`BeJob.order_key`, which fixes the job axis of the
    scheduler's accounting columns independently of submission order.
    """
    seen = set()
    for job in jobs:
        job.validate()
        if job.name in seen:
            raise ValueError(f"duplicate job name {job.name!r}: job names "
                             f"are the accounting key and must be unique")
        seen.add(job.name)
    ordered = sorted(jobs, key=BeJob.order_key)
    return [JobRecord(job=job) for job in ordered]
