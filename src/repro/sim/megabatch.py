"""Mega-batch fleet engine: every cluster as one array program.

The sharded fleet path (:mod:`repro.fleet.shard`) pays a full Python
tick loop — actuator gathers, monitor deques, controller objects — per
shard per tick.  On few-core hosts that fixed cost *inverts* the
benefit of sharding (BENCH_PR4 records 0.76x vs sequential at one
CPU).  This module removes the Python loops instead of hiding them
behind processes: a fleet run becomes one engine advancing a single
heterogeneous ``(T, N_fleet)`` array program.  Structurally compatible
clusters are *merged* into one membership — per-cluster hardware
capacities (DRAM bandwidth, NIC link rate), LC workloads, SLO targets
and traces become per-member broadcast columns and segment slices —
and the Heracles controllers of every managed cluster step together as
one grouped array program over the merged membership.

Equivalence contract
--------------------

:class:`MegaClusterSim` subclasses :class:`~repro.sim.batch.
BatchColocationSim` and overrides only the member-surface hooks — it
*shares the vectorized physics code path outright*, so tick physics is
bit-identical to the sharded reference by construction.  What this
module reimplements as array state is the per-member control plane:

* actuator state (cores, CAT split, DVFS cap, HTB ceiling) as parallel
  arrays, mutated by masked vector transcriptions of each
  :class:`~repro.sim.actuators.Actuators` method;
* latency/throughput monitors as row-per-tick windows sharing the
  segment clock, with window means accumulated in the scalar helpers'
  left-to-right order;
* the four Heracles control loops (Algorithms 1-4) as masked array
  programs whose branch structure mirrors the scalar controllers
  statement for statement;
* the DVFS cap as an index into a precomputed frequency ladder whose
  lower/raise transition tables are built with the *scalar*
  ``clamp_ghz`` (sidestepping any ``np.round`` vs ``round`` drift);
* tail-noise draws prefetched in chunks per member stream
  (``Generator.lognormal(size=k)`` consumes the bitstream exactly as
  ``k`` scalar calls).

``tests/test_fleet.py`` and ``benchmarks/test_bench_megafleet.py``
enforce bit-identity of every cluster roll-up against the sharded and
scalar references.
"""

from __future__ import annotations

import os
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .batch import BatchColocationSim


def _seq_mean(rows: Sequence[np.ndarray]) -> np.ndarray:
    """Left-to-right mean of sample rows, as ``sample_mean`` computes it.

    ``sum(values) / len(values)`` adds left to right starting from 0
    (an exact additive identity), so sequential vector adds over the
    same rows produce bitwise-identical means per member.
    """
    acc = rows[0]
    for row in rows[1:]:
        acc = acc + row
    return acc / len(rows)


class _VecLatencyMonitor:
    """All of one segment's :class:`LatencyMonitor` deques as row records.

    Members of a segment share the tick clock, so every per-member
    window holds the same timestamps; one deque of ``(t, tails, loads)``
    rows replicates N scalar monitors, and each poll answers for the
    whole segment at once.
    """

    def __init__(self, window_s: float = 15.0, slo_window_s: float = 60.0):
        self.window_s = window_s
        self.slo_window_s = slo_window_s
        self._samples = deque()  # (t_s, tails_ms row, loads row)

    def record(self, t_s: float, tails: np.ndarray,
               loads: np.ndarray) -> None:
        self._samples.append((t_s, tails, loads))
        horizon = max(self.window_s, self.slo_window_s) + 1.0
        while self._samples and self._samples[0][0] < t_s - horizon:
            self._samples.popleft()

    def _window(self, now_s: float, span_s: float) -> list:
        cutoff = now_s - span_s
        out = []
        for sample in reversed(self._samples):
            if sample[0] <= cutoff:
                break
            out.append(sample)
        out.reverse()
        return out

    def observed_spacing_s(self) -> Optional[float]:
        if len(self._samples) < 2:
            return None
        spacing = self._samples[-1][0] - self._samples[-2][0]
        return spacing if spacing > 0 else None

    def poll(self, now_s: float):
        """(latency, load) vectors over the control window, or (None,)*2."""
        window = self._window(now_s, self.window_s)
        if not window:
            return None, None
        return (_seq_mean([s[1] for s in window]),
                _seq_mean([s[2] for s in window]))

    def recent_latency_ms(self, now_s: float,
                          span_s: float) -> Optional[np.ndarray]:
        """Vector twin of :meth:`LatencyMonitor.recent_latency_ms`."""
        window = self._window(now_s, span_s)
        spacing = self.observed_spacing_s()
        if (len(window) < 2 and spacing is not None and spacing > span_s
                and now_s - self._samples[-1][0] <= spacing):
            window = [self._samples[-2], self._samples[-1]]
        if not window:
            window = list(self._samples)[-1:]
        if not window:
            return None
        return _seq_mean([s[1] for s in window])


def _dvfs_ladder(turbo):
    """The reachable BE DVFS cap values plus lower/raise transitions.

    Returns ``(ladder, down, up)``: ``ladder`` is the ascending array
    of cap frequencies reachable through
    :meth:`~repro.sim.actuators.Actuators.lower_be_frequency` /
    ``raise_be_frequency``; index ``len(ladder)`` is the sentinel for
    "no cap" (None).  ``down[i]`` / ``up[i]`` map a cap index to its
    successor under one lower/raise step.  Both tables are computed
    with the scalar :meth:`TurboSpec.clamp_ghz`, so the vector cascade
    inherits its exact float semantics by lookup instead of
    re-deriving them.
    """
    chain = []
    cur = turbo.clamp_ghz(turbo.max_turbo_ghz - turbo.step_ghz)
    while True:
        chain.append(cur)
        nxt = turbo.clamp_ghz(cur - turbo.step_ghz)
        if nxt == cur:
            break
        cur = nxt
    ladder = sorted(set(chain))
    index = {v: i for i, v in enumerate(ladder)}
    none_idx = len(ladder)
    down = np.empty(none_idx + 1, dtype=np.int64)
    up = np.empty(none_idx + 1, dtype=np.int64)
    for i in range(none_idx + 1):
        cap = None if i == none_idx else ladder[i]
        current = turbo.max_turbo_ghz if cap is None else cap
        down[i] = index[turbo.clamp_ghz(current - turbo.step_ghz)]
        if cap is None:
            up[i] = none_idx
        else:
            raised = cap + turbo.step_ghz
            if raised >= turbo.max_turbo_ghz - 1e-9:
                up[i] = none_idx
            else:
                up[i] = index[turbo.clamp_ghz(raised)]
    return np.array(ladder), down, up


class MegaClusterSim(BatchColocationSim):
    """One merged group of fleet clusters as a memberless array program.

    Drop-in for the :class:`BatchColocationSim` a shard worker builds —
    heterogeneous across clusters (per-member specs, LC workloads,
    traces) — but with *no* per-member Python objects: the
    member-surface hooks are overridden with array-state
    implementations, and Heracles (when attached via
    :meth:`attach_vec_heracles`) steps as grouped array ops over the
    merged membership.  Construction cost is O(distinct workloads),
    not O(members).
    """

    def __init__(self, lc, trace, bes, spec=None, seeds=None,
                 min_lc_cores: int = 1, specs=None):
        super().__init__(lc=lc, trace=trace, bes=bes, spec=spec,
                         seeds=seeds, min_lc_cores=min_lc_cores,
                         record_history=False, specs=specs)
        lcs, traces, be_list, seed_list, _ = self._mega_args
        del self._mega_args
        n = self.n
        spec = self.spec
        total_ways = spec.socket.llc_ways
        self._traces = traces
        self._lcs = lcs
        # Contiguous runs sharing one trace object (one run per cluster
        # when the fleet merges its plans into this engine) answer the
        # offered-load query with a single scalar evaluation per run.
        trace_groups = []
        start = 0
        for i in range(1, n + 1):
            if i == n or traces[i] is not traces[start]:
                trace_groups.append((slice(start, i), traces[start]))
                start = i
        self._trace_groups = trace_groups

        # -- Vector actuator state (the Actuators field set as arrays) --
        self._act_enabled = np.zeros(n, dtype=bool)
        self._act_cores = np.zeros(n, dtype=np.int64)       # raw _be_cores
        self._act_lc_ways = np.full(n, total_ways, dtype=np.int64)
        self._act_be_ways = np.zeros(n, dtype=np.int64)
        self._act_throttle = np.ones(n)
        self._act_ceil = np.full(n, np.inf)
        ladder, down, up = _dvfs_ladder(spec.socket.turbo)
        self._cap_ladder = ladder
        self._cap_ladder_ext = np.append(ladder, np.inf)
        self._cap_down = down
        self._cap_up = up
        self._cap_none = len(ladder)
        self._act_cap_idx = np.full(n, self._cap_none, dtype=np.int64)
        self._min_lc_cores = min_lc_cores
        self._max_be_cores = spec.total_cores - min_lc_cores
        self._min_lc_llc_ways = 1
        # enable_be's initial grant (Actuators.initial_be_llc_fraction).
        self._initial_be_ways = max(1, round(0.10 * total_ways))

        # -- Vector monitors ------------------------------------------------
        self._vmon = _VecLatencyMonitor()
        from ..workloads.best_effort import reference_throughput_units
        refs = np.zeros(n)
        memo: Dict[int, float] = {}
        for i, be in enumerate(be_list):
            if be is None:
                continue
            key = id(be)
            if key not in memo:
                memo[key] = reference_throughput_units(be)
            refs[i] = memo[key]
        self._be_ref_safe = np.where(refs > 0, refs, 1.0)
        self._be_last_norm = np.zeros(n)

        # -- Tail-noise streams, prefetched in chunks ----------------------
        sigmas = np.asarray(self._noise_sigmas)
        self._noise_idx = np.nonzero(sigmas > 0)[0]
        self._noise_all = len(self._noise_idx) == n
        self._noise_rngs = [np.random.default_rng(seed_list[i])
                            for i in self._noise_idx]
        self._noise_chunk: Optional[np.ndarray] = None
        self._noise_pos = 0

        self._vec_controller: Optional[_VecHeracles] = None
        # The fleet driver collects (T, N) telemetry itself; the
        # per-tick column-store append would be dead weight.
        self._record_ticks = False

    # -- Member-surface hooks, as array state ---------------------------

    def _build_members(self, lcs, traces, be_list, seed_list,
                       min_lc_cores) -> list:
        # Stash the broadcast argument lists for our own __init__ (the
        # base constructor broadcasts and validates them for us); the
        # member list itself stays empty — there are no member objects.
        self._mega_args = (lcs, traces, be_list, seed_list, min_lc_cores)
        return []

    def _offered_load(self) -> np.ndarray:
        if self._shared_trace is not None:
            return np.full(self.n, self._shared_trace.clipped(self.time_s))
        out = np.empty(self.n)
        for sl, trace in self._trace_groups:
            out[sl] = trace.clipped(self.time_s)
        return out

    def _gather_actuator_state(self):
        be_eff = np.where(self._act_enabled, self._act_cores, 0)
        dvfs_cap = self._cap_ladder_ext[self._act_cap_idx]
        return (self._act_enabled, be_eff, self._act_lc_ways,
                self._act_be_ways, dvfs_cap, self._act_throttle,
                self._act_ceil)

    def _tail_noise_factors(self) -> Optional[np.ndarray]:
        if not self._any_noise:
            return None
        if self._noise_chunk is None or self._noise_pos >= len(
                self._noise_chunk):
            # One chunked draw per member stream: a Generator fills an
            # array by repeating the scalar sampling routine, so k
            # prefetched draws consume the stream exactly as k scalar
            # lognormal() calls by the matching BatchMember rng.
            chunk = np.empty((1024, len(self._noise_idx)))
            for j, i in enumerate(self._noise_idx):
                chunk[:, j] = self._noise_rngs[j].lognormal(
                    mean=0.0, sigma=self._noise_sigmas[i], size=1024)
            self._noise_chunk = chunk
            self._noise_pos = 0
        if self._noise_all:
            # Every member draws: the chunk row *is* the factor array.
            draws = self._noise_chunk[self._noise_pos]
        else:
            draws = self._noise_draws
            draws[self._noise_idx] = self._noise_chunk[self._noise_pos]
        self._noise_pos += 1
        return draws

    def _record_members(self, load, tail, be_units, be_running,
                        dt_s) -> np.ndarray:
        self._vmon.record(self.time_s, tail, load)
        # ThroughputMonitor.record: ((units * dt) / dt) / reference,
        # updated only where the BE group ran this tick.
        norm = ((be_units * dt_s) / dt_s) / self._be_ref_safe
        self._be_last_norm = np.where(be_running, norm, self._be_last_norm)
        return np.where(be_running, self._be_last_norm, 0.0)

    def _step_controllers(self) -> None:
        if self._vec_controller is not None:
            self._vec_controller.step(self.time_s)

    # -- Controller attachment ------------------------------------------

    def attach_vec_heracles(self, dram_model=None, config=None,
                            model_segments=None,
                            managed=None) -> "_VecHeracles":
        """Attach one grouped Heracles instance over the membership.

        Mirrors :meth:`HeraclesController.for_sim` per member: same
        config defaults, same offline guaranteed-frequency measurement,
        same hot-working-set floor on the LC cache partition.  A
        single-cluster engine passes one ``dram_model``; the merged
        fleet engine passes ``model_segments`` — ``(slice, model)``
        pairs covering each managed cluster's member range — plus a
        boolean ``managed`` mask gating which members' controllers may
        act (an unmanaged cluster's members never enable BE work, just
        as leaves without a controller never do on the sharded path).
        """
        from ..core.config import HeraclesConfig
        config = config or HeraclesConfig()
        if model_segments is None:
            model_segments = [(slice(0, self.n), dram_model)]
        spec = self.spec
        mb_per_way = spec.socket.llc_mb / spec.socket.llc_ways
        floors = np.ones(self.n, dtype=np.int64)
        memo: Dict[int, int] = {}
        for i, w in enumerate(self._lcs):
            key = id(w)
            if key not in memo:
                hot_per_socket = w.profile.hot_mb / spec.sockets
                floor = min(spec.socket.llc_ways - 1,
                            int(hot_per_socket / mb_per_way) + 2)
                memo[key] = max(1, floor)
            floors[i] = memo[key]
        if managed is not None:
            # for_sim mutates only the actuators it attaches to, so an
            # unmanaged leaf keeps the Actuators default floor of 1 on
            # the sharded path; mirror that here (a chaos set_llc_split
            # is the one writer that can reach an unmanaged member).
            floors = np.where(np.asarray(managed, dtype=bool), floors, 1)
        self._min_lc_llc_ways = floors
        self._vec_controller = _VecHeracles(self, model_segments, config,
                                            managed)
        return self._vec_controller

    # -- Vector actuator operations (masked Actuators transcriptions) ---

    def _v_set_split(self, mask: np.ndarray, be_ways) -> None:
        """set_llc_split under ``mask`` (``be_ways`` scalar or array)."""
        bound = self.spec.socket.llc_ways - self._min_lc_llc_ways
        ways = np.clip(be_ways, 0, bound)
        self._act_be_ways[mask] = ways[mask] if np.ndim(ways) else ways
        self._act_lc_ways[mask] = (self.spec.socket.llc_ways
                                   - self._act_be_ways[mask])

    def _v_enable(self, mask: np.ndarray) -> None:
        """enable_be under ``mask`` (no-op where already enabled)."""
        fresh = mask & ~self._act_enabled
        if not fresh.any():
            return
        self._act_enabled[fresh] = True
        self._act_cores[fresh] = min(1, self._max_be_cores)
        self._v_set_split(fresh, self._initial_be_ways)

    def _v_disable(self, mask: np.ndarray) -> None:
        """disable_be under ``mask``."""
        if not mask.any():
            return
        self._act_enabled[mask] = False
        self._act_cores[mask] = 0
        self._v_set_split(mask, 0)
        self._act_cap_idx[mask] = self._cap_none
        self._act_throttle[mask] = 1.0
        self._act_ceil[mask] = np.inf

    def _v_remove_cores(self, mask: np.ndarray, count: np.ndarray) -> None:
        """remove_be_cores under ``mask`` (``count`` integral array)."""
        count = np.asarray(count).astype(np.int64)
        removed = np.minimum(np.maximum(0, count), self._act_cores)
        self._act_cores[mask] = (self._act_cores - removed)[mask]

    def be_cores_now(self) -> np.ndarray:
        """Current be_cores property view (post-controller state)."""
        return np.where(self._act_enabled, self._act_cores, 0)

    # -- Chaos actuator hooks (masked Actuators transcriptions) ---------

    def _chaos_mask(self, indices) -> np.ndarray:
        mask = np.zeros(self.n, dtype=bool)
        mask[list(indices)] = True
        return mask

    def _chaos_disable_be(self, indices) -> None:
        self._v_disable(self._chaos_mask(indices))

    def _chaos_enable_be(self, indices) -> None:
        self._v_enable(self._chaos_mask(indices))

    def _chaos_set_be_cores(self, indices, value: int) -> None:
        # Actuators.set_be_cores: unconditional raw-count write, clamped
        # to keep the LC core minimum.
        clamped = max(0, min(int(value), self._max_be_cores))
        self._act_cores[self._chaos_mask(indices)] = clamped

    def _chaos_set_llc_split(self, indices, value: int) -> None:
        self._v_set_split(self._chaos_mask(indices), int(value))

    def _chaos_set_net_ceil(self, indices, value: float) -> None:
        # HtbQdisc.set_ceil: clamp into [0, link rate] per member.
        mask = self._chaos_mask(indices)
        link = self._nic_link
        ceil = np.minimum(np.maximum(0.0, float(value)),
                          link[mask] if np.ndim(link) else link)
        self._act_ceil[mask] = ceil


class _VecHeracles:
    """Algorithms 1-4 as one masked array program over the membership.

    Every branch of the scalar controllers becomes a boolean member
    mask; every early ``return`` narrows the mask for the statements
    below it.  Periods are shared scalars — all members' controllers
    are created before the first tick and therefore step in lockstep —
    and every float expression preserves the scalar code's operation
    order, so the cascade is a bit-identical replica of N independent
    :class:`HeraclesController` instances.
    """

    def __init__(self, sim: MegaClusterSim, model_segments, config,
                 managed=None):
        from ..core.power import guaranteed_frequency_ghz
        config.validate()
        self.sim = sim
        self.cfg = config
        n = sim.n
        spec = sim.spec
        # Members the controller may act on; None means all of them (a
        # single-cluster engine).  An unmanaged member's masks can never
        # reach an actuator, exactly as a leaf with no controller.
        if managed is None or bool(managed.all()):
            self._man = None
        else:
            self._man = np.asarray(managed, dtype=bool)
        # Per-member control targets (clusters differ in SLO, offline
        # calibration, and DRAM/NIC capacity; every structural scalar
        # is shared by the batch's merge contract).
        self.slo_ms = sim._lc["slo_ms"]
        g = np.empty(n)
        memo: Dict[int, float] = {}
        for i, w in enumerate(sim._lcs):
            key = id(w)
            if key not in memo:
                memo[key] = guaranteed_frequency_ghz(w)
            g[i] = memo[key]
        self.guaranteed_ghz = g
        self.sockets = max(1, spec.sockets)
        self.total_cores = spec.total_cores
        self.tdp_watts = spec.socket.tdp_watts
        self.link_gbps = sim._nic_link  # scalar, or (N,) heterogeneous
        cap = sim._dram_cap
        self.dram_limit = (config.dram_limit_fraction
                           * (cap[:, 0] if np.ndim(cap) else cap))
        # Plain-array views of the offline model grids (vector twin of
        # LcDramBandwidthModel.predict_gbps), one grid per managed
        # cluster's member range.
        self._model_segments = [
            (sl, np.asarray(model.loads, dtype=float),
             np.asarray(model.ways, dtype=float),
             np.asarray(model.bandwidth_gbps, dtype=float),
             model.scale)
            for sl, model in model_segments]

        # ControlState columns.
        self.slack = np.ones(n)
        self.load = np.zeros(n)
        self.growth = np.ones(n, dtype=bool)
        self.cooldown_until = np.zeros(n)
        self.phase_llc = np.ones(n, dtype=bool)  # GrowthPhase.GROW_LLC
        # Subcontroller period clocks (shared: lockstep construction).
        self._last_poll_s: Optional[float] = None
        self._last_cm_s: Optional[float] = None
        self._last_pw_s: Optional[float] = None
        self._last_net_s: Optional[float] = None
        # Core & memory internals.
        self._last_bw = np.zeros(n)
        self._has_last_bw = False
        self._bw_deriv = np.zeros(n)
        self._pending = np.zeros(n, dtype=bool)
        self._p_prev_ways = np.zeros(n, dtype=np.int64)
        self._p_thr_before = np.zeros(n)
        self._p_slack_before = np.zeros(n)
        self._sbg = np.zeros(n)
        self._sbg_active = np.zeros(n, dtype=bool)
        self._last_slack_drop = np.zeros(n)
        self._llc_slack_drop = np.zeros(n)

    def _gate(self, mask: np.ndarray) -> np.ndarray:
        """Restrict an actuation mask to managed members.

        Chaos ``enable_be`` events can switch on BE work for unmanaged
        members, so "has an enabled BE group" no longer implies
        "managed" — but on the sharded path an unmanaged leaf has no
        controller at all, so every controller write must stay off it.
        """
        return mask if self._man is None else mask & self._man

    # -- Shared measurements -------------------------------------------

    def _predict_lc_bw(self, load: np.ndarray,
                       lc_ways: np.ndarray) -> np.ndarray:
        """Vector twin of ``LcDramBandwidthModel.predict_gbps``.

        Evaluated per managed cluster segment (each has its own offline
        model grid); unmanaged gaps stay 0 and are never read — every
        consumer mask requires an enabled BE group, which only managed
        members can have.
        """
        out = np.zeros(self.sim.n)
        for sl, gl, gw, table, scale in self._model_segments:
            lo = np.minimum(gl[-1], np.maximum(gl[0], load[sl]))
            w = np.minimum(gw[-1],
                           np.maximum(gw[0], lc_ways[sl].astype(float)))
            li = np.clip(np.searchsorted(gl, lo, side="left") - 1,
                         0, len(gl) - 2)
            wi = np.clip(np.searchsorted(gw, w, side="left") - 1,
                         0, len(gw) - 2)
            lf = (lo - gl[li]) / (gl[li + 1] - gl[li])
            wf = (w - gw[wi]) / (gw[wi + 1] - gw[wi])
            value = ((1 - lf) * (1 - wf) * table[li, wi]
                     + lf * (1 - wf) * table[li + 1, wi]
                     + (1 - lf) * wf * table[li, wi + 1]
                     + lf * wf * table[li + 1, wi + 1])
            out[sl] = value * scale
        return out

    def _current_slack(self, now_s: float) -> np.ndarray:
        """CoreMemoryController.current_slack, for every member at once."""
        latency = self.sim._vmon.recent_latency_ms(
            now_s, span_s=self.cfg.core_mem_period_s)
        if latency is None:
            return self.slack
        return (self.slo_ms - latency) / self.slo_ms

    # -- The grouped control step --------------------------------------

    def step(self, now_s: float) -> None:
        """One control tick: Algorithms 1-4 in the facade's order."""
        self._top_level(now_s)
        self._core_memory(now_s)
        self._power(now_s)
        self._network(now_s)

    def _top_level(self, now_s: float) -> None:
        cfg = self.cfg
        if (self._last_poll_s is not None
                and now_s - self._last_poll_s < cfg.poll_period_s):
            return
        self._last_poll_s = now_s
        latency, load = self.sim._vmon.poll(now_s)
        if latency is None or load is None:
            return  # not enough samples yet
        slack = (self.slo_ms - latency) / self.slo_ms
        self.slack = slack
        self.load = load

        sim = self.sim
        viol = slack < 0
        sim._v_disable(self._gate(viol))
        self.growth[viol] = False
        self.cooldown_until = np.where(
            viol, np.maximum(self.cooldown_until, now_s + cfg.cooldown_s),
            self.cooldown_until)
        rest = ~viol
        high = rest & (load > cfg.load_disable_threshold)
        sim._v_disable(self._gate(high))
        self.growth[high] = False
        rest = rest & ~high
        enable = self._gate(rest & (load < cfg.load_enable_threshold)
                            & ~(now_s < self.cooldown_until))
        sim._v_enable(enable)
        # Slack guards (unconditional on load; see top_level.py note).
        low = rest & (slack < cfg.slack_no_growth)
        self.growth[low] = False
        cut = self._gate(low & (slack < cfg.slack_cut_cores)
                         & sim._act_enabled)
        if cut.any():
            excess = sim.be_cores_now() - cfg.be_cores_floor
            sim._v_remove_cores(cut & (excess > 0), excess)
        self.growth[rest & ~low] = True

    def _core_memory(self, now_s: float) -> None:
        cfg = self.cfg
        if (self._last_cm_s is not None
                and now_s - self._last_cm_s < cfg.core_mem_period_s):
            return
        self._last_cm_s = now_s
        sim = self.sim
        tick = sim._tick

        # MeasureDRAMBw(): busiest-socket traffic + derivative.
        bw = tick["worst_socket_dram_gbps"]
        if self._has_last_bw:
            self._bw_deriv = bw - self._last_bw
        self._last_bw = bw
        self._has_last_bw = True

        cores = sim.be_cores_now()
        be_dram = np.where(tick["be_running"], tick["be_dram_ach"], 0.0)
        safe_cores = np.where(cores > 0, cores, 1)
        per_core = np.where(cores <= 0, 1.0,
                            np.maximum(0.1, be_dram / safe_cores))

        # Hard constraint 1: never saturate DRAM.
        m1 = self._gate((bw > self.dram_limit) & (cores > 0))
        if m1.any():
            to_remove = np.maximum(
                1.0, np.ceil((bw - self.dram_limit) / per_core))
            sim._v_remove_cores(m1, to_remove)
            self._pending &= ~m1

        # Hard constraint 2: rising load reclaims LC cores immediately.
        lc_floor = np.minimum(
            self.total_cores,
            np.ceil((self.load * self.total_cores) * 1.08) + 1)
        budget = np.maximum(0.0, self.total_cores - lc_floor)
        alive = ~m1
        over = cores - budget
        m2 = self._gate(alive & (over > 0))
        if m2.any():
            sim._v_remove_cores(m2, over)
            self._pending &= ~m2
        alive = alive & ~m2

        cs = self._current_slack(now_s)

        # Finish a pending grow-LLC check; others decay their estimates.
        was_pending = self._pending
        mp = alive & was_pending
        if mp.any():
            self._pending = self._pending & ~mp
            self._llc_slack_drop = np.where(
                mp, np.maximum(0.0, self._p_slack_before - cs),
                self._llc_slack_drop)
            rollback = mp & ((cs < cfg.slack_no_growth)
                             | (self._bw_deriv >= 0))
            if rollback.any():
                sim._v_set_split(rollback, self._p_prev_ways)
                self.phase_llc[rollback] = False
            checked = mp & ~rollback
            gain = sim._be_last_norm - self._p_thr_before
            no_benefit = checked & (gain <= cfg.be_benefit_epsilon
                                    * np.maximum(1e-9, self._p_thr_before))
            self.phase_llc[no_benefit] = False
        decay = alive & ~was_pending
        self._last_slack_drop[decay] *= 0.8
        self._llc_slack_drop[decay] *= 0.8

        # CanGrowBE(): enabled, growth allowed, no cooldown.
        grow = self._gate(alive & sim._act_enabled & self.growth
                          & ~(now_s < self.cooldown_until))
        if not grow.any():
            return
        cores = sim.be_cores_now()  # hard constraints may have removed
        lc_model = (self._predict_lc_bw(self.load, sim._act_lc_ways)
                    / self.sockets)
        be_bw = be_dram / self.sockets

        # GROW_LLC arm.
        gl = grow & self.phase_llc
        if gl.any():
            slack = np.minimum(self.slack, cs)
            g1 = gl & ~(slack < cfg.slack_no_growth + cfg.growth_guard)
            pre = g1 & (slack - 3.0 * self._llc_slack_drop
                        <= cfg.slack_cut_cores)
            self.phase_llc[pre] = False
            g2 = g1 & ~pre
            predicted = (lc_model + be_bw) + self._bw_deriv
            blocked = g2 & (predicted > self.dram_limit)
            self.phase_llc[blocked] = False
            g3 = g2 & ~blocked
            if g3.any():
                prev = sim._act_be_ways.copy()
                full = g3 & (sim._act_be_ways + 1
                             > self.sim.spec.socket.llc_ways - 1)
                self.phase_llc[full] = False
                ok = g3 & ~full
                if ok.any():
                    sim._v_set_split(ok, sim._act_be_ways + 1)
                    self._pending |= ok
                    self._p_prev_ways[ok] = prev[ok]
                    self._p_thr_before[ok] = sim._be_last_norm[ok]
                    self._p_slack_before[ok] = slack[ok]

        # GROW_CORES arm.
        gc = grow & ~self.phase_llc & ~gl
        if gc.any():
            needed = (lc_model + be_bw) + per_core
            dram_blocked = gc & (needed > self.dram_limit)
            self.phase_llc[dram_blocked] = True
            t = gc & ~dram_blocked
            if t.any():
                slack = np.minimum(self.slack, cs)
                upd = t & self._sbg_active
                self._last_slack_drop = np.where(
                    upd, np.maximum(0.0, self._sbg - cs),
                    self._last_slack_drop)
                self._sbg_active = self._sbg_active & ~t
                t1 = t & ~(slack <= cfg.slack_no_growth + cfg.growth_guard)
                exhausted = t1 & (budget - cores <= 0)
                self.phase_llc[exhausted] = True
                t2 = t1 & ~exhausted
                t3 = t2 & ~(slack - 3.0 * self._last_slack_drop
                            <= cfg.slack_cut_cores)
                granted = t3 & (sim._act_cores < sim._max_be_cores)
                if granted.any():
                    sim._act_cores[granted] += 1
                    self._sbg[granted] = cs[granted]
                    self._sbg_active |= granted

    def _power(self, now_s: float) -> None:
        cfg = self.cfg
        if (self._last_pw_s is not None
                and now_s - self._last_pw_s < cfg.power_period_s):
            return
        self._last_pw_s = now_s
        sim = self.sim
        # max over sockets of rapl/tdp == rapl.max/tdp (division by a
        # positive scalar is monotone, so the max commutes bitwise).
        power_fraction = sim._rapl_watts.max(axis=1) / self.tdp_watts
        ls_freq = sim._tick["lc_freq_ghz"]
        threshold = cfg.power_tdp_threshold
        lower = self._gate((power_fraction > threshold)
                           & (ls_freq < self.guaranteed_ghz)
                           & (sim.be_cores_now() > 0))
        raise_ = self._gate((power_fraction <= threshold)
                            & (ls_freq >= self.guaranteed_ghz))
        idx = sim._act_cap_idx
        idx[lower] = sim._cap_down[idx[lower]]
        idx[raise_] = sim._cap_up[idx[raise_]]

    def _network(self, now_s: float) -> None:
        cfg = self.cfg
        if (self._last_net_s is not None
                and now_s - self._last_net_s < cfg.network_period_s):
            return
        self._last_net_s = now_s
        sim = self.sim
        link = self.link_gbps
        lc_bw = sim._tick["lc_net_ach"]
        headroom = np.maximum(cfg.net_link_headroom * link,
                              cfg.net_lc_headroom * lc_bw)
        budget = (link - lc_bw) - headroom
        # set_be_net_ceil(max(0, budget)), then the HTB clamp to the
        # link rate — max(0, max(0, x)) collapses.
        ceil = np.minimum(np.maximum(0.0, budget), link)
        if self._man is None:
            sim._act_ceil = ceil
        else:
            sim._act_ceil = np.where(self._man, ceil, sim._act_ceil)


class MegaFleetSim:
    """The whole fleet as one heterogeneous ``(T, N_fleet)`` program.

    Cluster plans whose machine specs are structurally identical —
    everything but DRAM bandwidth and NIC link rate, which the batch
    physics takes as per-member columns — are *merged* into a single
    :class:`MegaClusterSim` over their concatenated membership, with
    per-cluster SLOs, offline DRAM models and traces carried as
    per-member arrays and segment slices.  On the stock fleet every
    cluster lands in one group, so a 1000-leaf fleet ticks as one array
    program instead of one per cluster.  Structurally incompatible
    specs (different core counts, cache geometry, turbo ladder, power
    envelope) fall back to one group each; results are identical either
    way, only the dispatch count changes.

    Produces one whole-cluster :class:`~repro.fleet.shard.ShardResult`
    per cluster plan, so the existing fleet roll-up
    (``assemble_cluster`` → ``rollup_cluster`` → fleet telemetry)
    consumes it unchanged.
    """

    def __init__(self, plans, targets: Dict[str, Tuple[float, float]]):
        # Deferred imports: this module sits in repro.sim, below the
        # cluster/fleet layers it is building for.
        import dataclasses
        from ..cluster.leaf import make_leaf_lc
        from ..hardware.spec import default_machine_spec
        from ..sim.runner import memoized_dram_model
        from ..workloads.best_effort import make_be_workload
        self.plans = list(plans)

        def structural_key(spec):
            return dataclasses.replace(
                spec,
                socket=dataclasses.replace(spec.socket, dram_bw_gbps=1.0),
                nic=dataclasses.replace(spec.nic, link_gbps=1.0))

        group_of: Dict[object, int] = {}
        buckets: List[dict] = []
        for index, plan in enumerate(self.plans):
            spec = plan.spec or default_machine_spec()
            key = structural_key(spec)
            if key not in group_of:
                group_of[key] = len(buckets)
                buckets.append({"lcs": [], "traces": [], "bes": [],
                                "seeds": [], "specs": [], "managed": [],
                                "models": [], "spans": [], "events": []})
            bucket = buckets[group_of[key]]
            leaf_slo_ms, _ = targets[plan.name]
            lc = make_leaf_lc(spec, leaf_slo_ms, lc_name=plan.lc_name)
            be_names = [plan.be_mix[i % len(plan.be_mix)]
                        for i in range(plan.leaves)]
            be_by_name = {name: make_be_workload(name, spec)
                          for name in sorted(set(be_names))}
            lo = len(bucket["lcs"])
            bucket["lcs"] += [lc] * plan.leaves
            bucket["traces"] += [plan.trace] * plan.leaves
            bucket["bes"] += [be_by_name[name] for name in be_names]
            bucket["seeds"] += [plan.seed * 1000 + i
                                for i in range(plan.leaves)]
            bucket["specs"] += [spec] * plan.leaves
            bucket["managed"] += [plan.managed] * plan.leaves
            if plan.managed:
                bucket["models"].append(
                    (slice(lo, lo + plan.leaves),
                     memoized_dram_model(plan.lc_name, spec)))
            bucket["spans"].append((index, lo, lo + plan.leaves))
            # Chaos events arrive with cluster-local leaf targets (or
            # None for the whole cluster); a merged membership needs
            # explicit indices offset into the group.
            for event in getattr(plan, "events", ()) or ():
                local = (range(plan.leaves) if event.members is None
                         else event.members)
                bucket["events"].append(event.retarget(
                    tuple(m + lo for m in local)))

        #: (merged sim, [(plan index, member lo, member hi), ...])
        self.groups: List[Tuple[MegaClusterSim, list]] = []
        for bucket in buckets:
            sim = MegaClusterSim(
                lc=bucket["lcs"], trace=bucket["traces"],
                bes=bucket["bes"], spec=bucket["specs"][0],
                seeds=bucket["seeds"], specs=bucket["specs"])
            if bucket["models"]:
                sim.attach_vec_heracles(
                    model_segments=bucket["models"],
                    managed=np.array(bucket["managed"], dtype=bool))
            if bucket["events"]:
                sim.set_chaos_events(bucket["events"])
            self.groups.append((sim, bucket["spans"]))
        self._set_member_maps()

    def _set_member_maps(self) -> None:
        """Stamp fleet-global member indices on every group sim.

        Plan order defines the fleet-global leaf numbering (cluster
        leaf ``j`` of plan ``i`` is global index ``sum(leaves[:i]) +
        j``), matching the sharded path's ``ShardTask.member_base``
        assignment — so decision-trace events merge shard-plan- and
        engine-invariantly.  Cheap (one int64 array per group), so it
        runs unconditionally and also re-stamps restored groups.
        """
        base, bases = 0, []
        for plan in self.plans:
            bases.append(base)
            base += plan.leaves
        for sim, spans in self.groups:
            members = np.empty(sim.n, dtype=np.int64)
            for index, lo, hi in spans:
                members[lo:hi] = bases[index] + np.arange(hi - lo)
            sim.obs_set_members(members)

    @staticmethod
    def group_archive(checkpoint_dir: str, group: int) -> str:
        """Archive path of one merged group under a checkpoint dir."""
        return os.path.join(checkpoint_dir, f"mega_group_{group}.npz")

    def _save_groups(self, checkpoint_dir: str, k: int, recs,
                     collect_be: bool) -> None:
        """Snapshot every group after ``k`` completed ticks.

        Rows ``[0, k)`` of each group's collected arrays are fully
        written at this point except ``be_cores`` row ``k - 1``, which
        (as in ``run_shard``) is only gathered by tick ``k + 1``; the
        resumed run rewrites it deterministically from the restored
        actuator state.
        """
        from .checkpoint import save_engine
        for g, ((sim, _), (times, tails, emus, be_norm, be_cores)) \
                in enumerate(zip(self.groups, recs)):
            arrays = {"times": times[:k], "tails": tails[:k],
                      "emus": emus[:k]}
            if collect_be:
                arrays["be_norm"] = be_norm[:k]
                arrays["be_cores"] = be_cores[:k - 1]
            save_engine(sim, self.group_archive(checkpoint_dir, g),
                        kind="mega_group", arrays=arrays,
                        extra_meta={"steps_done": k, "n": sim.n,
                                    "group": g,
                                    "collect_be": bool(collect_be)})

    def _load_groups(self, resume_from: str, recs, steps: int,
                     collect_be: bool) -> int:
        """Swap in saved group sims + collected prefixes; returns k0.

        The engine is first rebuilt fresh from its plans (group layout
        is a deterministic function of the plans), then each group's
        archive replaces the fresh sim and refills the already-computed
        telemetry rows — validated against the rebuilt layout so a
        checkpoint from a different fleet fails loudly.
        """
        from .checkpoint import CheckpointError, load_engine
        k0 = None
        for g, (group, rec) in enumerate(zip(self.groups, recs)):
            sim, spans = group
            restored = load_engine(self.group_archive(resume_from, g),
                                   expect_kind="mega_group")
            if restored.meta.get("n") != sim.n:
                raise CheckpointError(
                    f"group {g}: checkpoint holds {restored.meta.get('n')} "
                    f"members, this fleet builds {sim.n}")
            if bool(restored.meta.get("collect_be")) != bool(collect_be):
                raise CheckpointError(
                    f"group {g}: checkpoint collect_be="
                    f"{restored.meta.get('collect_be')} does not match "
                    f"this run's collect_be={collect_be}")
            k = int(restored.meta["steps_done"])
            if k0 is None:
                k0 = k
            elif k != k0:
                raise CheckpointError(
                    f"group {g}: checkpointed at tick {k}, other groups "
                    f"at {k0} — mixed-run checkpoint directory")
            if k > steps:
                raise CheckpointError(
                    f"checkpoint holds {k} completed ticks but the "
                    f"resumed run is only {steps} ticks long")
            self.groups[g] = (restored.sim, spans)
            times, tails, emus, be_norm, be_cores = rec
            times[:k] = restored.arrays["times"]
            tails[:k] = restored.arrays["tails"]
            emus[:k] = restored.arrays["emus"]
            if collect_be:
                be_norm[:k] = restored.arrays["be_norm"]
                # be_cores lands one tick late (see the run loop), so
                # the checkpoint carries one row fewer; the resumed
                # tick k rewrites row k - 1 from the restored state.
                be_cores[:k - 1] = restored.arrays["be_cores"]
        # Restored sims come back with whatever observability state the
        # saving run pickled (load_engine reconciles the sinks with this
        # process's environment); the global member maps are this run's.
        self._set_member_maps()
        return k0 or 0

    def run(self, duration_s: float, dt_s: float = 1.0,
            collect_be: bool = False,
            checkpoint_dir: Optional[str] = None,
            checkpoint_at_s: Optional[float] = None,
            resume_from: Optional[str] = None) -> list:
        """Advance the merged groups; one ShardResult per cluster plan.

        ``checkpoint_dir`` + ``checkpoint_at_s`` snapshot every group
        (state + collected telemetry prefix) after the tick whose time
        reaches ``checkpoint_at_s``; ``resume_from`` restores such a
        directory and continues from the saved tick, producing results
        bit-identical to the uninterrupted run.
        """
        from ..fleet.shard import ShardResult
        from .checkpoint import checkpoint_step
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        if dt_s <= 0:
            raise ValueError("dt must be positive")
        steps = int(round(duration_s / dt_s))
        k_save = None
        if checkpoint_dir is not None and checkpoint_at_s is not None:
            k_save = checkpoint_step(checkpoint_at_s, duration_s, dt_s)
        recs = []
        for sim, _ in self.groups:
            times = np.empty(steps)
            tails = np.empty((steps, sim.n))
            emus = np.empty((steps, sim.n))
            if collect_be:
                be_norm = np.empty((steps, sim.n))
                be_cores = np.empty((steps, sim.n))
            else:
                be_norm = be_cores = None
            recs.append((times, tails, emus, be_norm, be_cores))
        k0 = 0
        if resume_from is not None:
            k0 = self._load_groups(resume_from, recs, steps, collect_be)
        from ..obs.progress import make_heartbeat
        heartbeat = make_heartbeat("fleet[mega]", steps)
        for k in range(k0, steps):
            for (sim, _), (times, tails, emus, be_norm, be_cores) in zip(
                    self.groups, recs):
                result = sim.tick(dt_s)
                times[k] = result.t_s
                tails[k] = result.tail_latency_ms
                emus[k] = result.emu
                if collect_be:
                    be_norm[k] = result.be_throughput_norm
                    # The recorded grant is what run_shard records: the
                    # state tick k+1's actuator gather sees — post
                    # controller step of tick k *and* post any chaos
                    # events firing at the start of tick k+1.  Reading
                    # be_cores_now() here instead would miss those
                    # chaos mutations and shift the scheduler's
                    # grant_cores epochs off the sharded reference.
                    if k:
                        be_cores[k - 1] = sim._gathered_be_cores
            if k_save is not None and k + 1 == k_save:
                self._save_groups(checkpoint_dir, k + 1, recs, collect_be)
            if heartbeat is not None:
                heartbeat.beat(k + 1)
        if steps and collect_be:
            for (sim, _), (times, tails, emus, be_norm, be_cores) in zip(
                    self.groups, recs):
                # The final row has no following tick to gather it; one
                # direct read closes the shift, as in run_shard.
                be_cores[steps - 1] = sim.be_cores_now()
        results: List[Optional[ShardResult]] = [None] * len(self.plans)
        for (sim, spans), (times, tails, emus, be_norm, be_cores) in zip(
                self.groups, recs):
            for index, lo, hi in spans:
                plan = self.plans[index]
                # Contiguous per-plan copies: the summary reductions see
                # the same (T, leaves) layout a per-cluster engine would
                # have filled directly.
                p_tails = np.ascontiguousarray(tails[:, lo:hi])
                p_emus = np.ascontiguousarray(emus[:, lo:hi])
                if steps:
                    summary = {
                        "mean_emu": float(p_emus.mean()),
                        "min_emu": float(p_emus.min()),
                        "worst_tail_ms": float(p_tails.max()),
                        "mean_tail_ms": float(p_tails.mean()),
                    }
                else:
                    summary = {"mean_emu": 0.0, "min_emu": 0.0,
                               "worst_tail_ms": 0.0, "mean_tail_ms": 0.0}
                if collect_be:
                    p_be_norm = np.ascontiguousarray(be_norm[:, lo:hi])
                    p_be_cores = np.ascontiguousarray(be_cores[:, lo:hi])
                else:
                    p_be_norm = p_be_cores = np.zeros((0, 0))
                results[index] = ShardResult(
                    cluster=plan.name, cluster_index=index, shard_index=0,
                    leaf_lo=0, leaf_hi=plan.leaves, times_s=times.copy(),
                    tails_ms=p_tails, emus=p_emus, summary=summary,
                    be_norm=p_be_norm, be_cores=p_be_cores)
        # Observability rides on the first plan's result (the fleet
        # layer merges payloads across all results, so placement is
        # arbitrary; events already carry fleet-global member indices).
        from ..obs.profile import merge_profiles
        from ..obs.trace import concat_payloads
        payloads = [sim._obs_trace.payload() for sim, _ in self.groups
                    if sim._obs_trace is not None]
        if payloads:
            results[0].trace = concat_payloads(payloads)
        profiles = [sim._obs_prof.as_dict() for sim, _ in self.groups
                    if sim._obs_prof is not None]
        if profiles:
            results[0].profile = merge_profiles(profiles)
        return results


def run_mega_fleet(plans, targets: Dict[str, Tuple[float, float]],
                   duration_s: float, dt_s: float = 1.0,
                   collect_be: bool = False,
                   checkpoint_dir: Optional[str] = None,
                   checkpoint_at_s: Optional[float] = None,
                   resume_from: Optional[str] = None) -> list:
    """Build and run the mega engine over a fleet's cluster plans.

    The in-process work unit :class:`~repro.fleet.simulator.
    ShardedFleetSim` dispatches to when ``engine="mega"``; returns one
    whole-cluster :class:`~repro.fleet.shard.ShardResult` per plan, in
    plan order.  Checkpoint/resume parameters pass straight through to
    :meth:`MegaFleetSim.run`.
    """
    return MegaFleetSim(plans, targets).run(
        duration_s, dt_s=dt_s, collect_be=collect_be,
        checkpoint_dir=checkpoint_dir, checkpoint_at_s=checkpoint_at_s,
        resume_from=resume_from)
