"""Columnar telemetry subsystem.

One recording and reporting stack for every execution layer:

* :mod:`repro.metrics.columns` — :class:`ColumnStore` (preallocated,
  geometrically-grown NumPy columns, O(1) amortized appends, zero-copy
  views) and :class:`BatchColumnStore` ((T, N) member-major columns so
  batched engines record whole ticks with one vectorized write);
* :mod:`repro.metrics.windows` — the single implementation of the
  paper's windowed aggregates (worst 60-second SLO window, mean EMU,
  steady-state means) over explicit per-sample timestamps;
* :mod:`repro.metrics.history` — adapters that keep the engines'
  historical list-of-records API intact on top of the columns.

``SimHistory``, ``BatchHistory`` and ``ClusterHistory`` are all thin
facades over this package; see ``docs/architecture.md`` ("Telemetry &
metrics") for the layout and the dt-correctness contract.
"""

from .columns import BatchColumnStore, ColumnStore
from .history import BatchMemberSeries, ColumnarHistory, RecordSeries
from .windows import (WindowedMetrics, derive_dt_s, max_after, mean_after,
                      min_after, sample_mean, window_width,
                      worst_window_mean)

__all__ = [
    "BatchColumnStore", "ColumnStore",
    "BatchMemberSeries", "ColumnarHistory", "RecordSeries",
    "WindowedMetrics", "derive_dt_s", "max_after", "mean_after",
    "min_after", "sample_mean", "window_width", "worst_window_mean",
]
