"""Fleet telemetry roll-up: shards → clusters → fleet columns.

Two stages, both deterministic and shard-count-independent:

1. :func:`rollup_cluster` reassembles a cluster's per-tick leaf
   telemetry from its shard slices (concatenated in global leaf order)
   and replays the *literal* recording protocol of
   :class:`~repro.cluster.cluster.WebsearchCluster` — the same
   :class:`~repro.cluster.root.RootAggregator` window arithmetic, the
   same tick-counted record cadence, the same ``np.mean`` EMU
   reduction — so the resulting :class:`~repro.cluster.cluster.
   ClusterHistory` is bit-identical to the one a monolithic
   single-process run of the same cluster produces, for any shard
   partition.

2. :func:`build_fleet_telemetry` stacks the per-cluster histories into
   one fleet-level :class:`~repro.metrics.columns.BatchColumnStore`
   (clusters on the member axis, record ticks on the row axis) and
   derives the fleet aggregates: leaf-weighted fleet EMU and
   load-weighted root latency, stored as shared columns alongside the
   per-cluster ones.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..cluster.cluster import ClusterHistory, ClusterRecord
from ..cluster.root import RootAggregator
from ..metrics.columns import BatchColumnStore
from ..metrics.windows import WindowedMetrics
from ..workloads.traces import LoadTrace
from .shard import ShardResult


def assemble_cluster(shards: Sequence[ShardResult],
                     total_leaves: Optional[int] = None):
    """Concatenate one cluster's shard slices into leaf-ordered arrays.

    Returns ``(times_s, tails_ms, emus)`` with the leaf axis in global
    leaf order.  Shards must tile the population contiguously — from
    leaf 0 up to ``total_leaves`` when given — and agree on the tick
    clock; all of it is asserted, since a violation (a missing shard,
    say) would silently break the bit-identity contract.
    """
    ordered = sorted(shards, key=lambda s: s.leaf_lo)
    lo = ordered[0].leaf_lo
    if lo != 0:
        raise ValueError(f"cluster {ordered[0].cluster!r}: shard coverage "
                         f"starts at leaf {lo}, not 0")
    if total_leaves is not None and ordered[-1].leaf_hi != total_leaves:
        raise ValueError(
            f"cluster {ordered[0].cluster!r}: shard coverage ends at leaf "
            f"{ordered[-1].leaf_hi}, not the cluster's {total_leaves}")
    for prev, nxt in zip(ordered, ordered[1:]):
        if prev.leaf_hi != nxt.leaf_lo:
            raise ValueError(
                f"cluster {prev.cluster!r}: shards [{prev.leaf_lo}, "
                f"{prev.leaf_hi}) and [{nxt.leaf_lo}, {nxt.leaf_hi}) do "
                f"not tile the leaf population")
        if not np.array_equal(prev.times_s, nxt.times_s):
            raise ValueError(f"cluster {prev.cluster!r}: shards disagree "
                             f"on the tick clock")
    times = ordered[0].times_s
    tails = np.concatenate([s.tails_ms for s in ordered], axis=1)
    emus = np.concatenate([s.emus for s in ordered], axis=1)
    return times, tails, emus


def rollup_cluster(times_s: np.ndarray,
                   tails_ms: np.ndarray,
                   emus: np.ndarray,
                   trace: LoadTrace,
                   root_slo_ms: float,
                   record_period_s: float = 30.0,
                   dt_s: float = 1.0) -> ClusterHistory:
    """Replay the cluster recording protocol over assembled telemetry.

    Args:
        times_s: (T,) tick clock (time at the *start* of each tick,
            matching ``WebsearchCluster.tick``'s use of ``time_s``).
        tails_ms / emus: (T, leaves) per-tick leaf telemetry in global
            leaf order.
        trace: the cluster's shared load trace (sampled at record
            ticks, exactly as the monolithic cluster samples it).
        root_slo_ms: the cluster root SLO the fractions normalize by.
        record_period_s / dt_s: record cadence and tick size — the
            record interval is tick-counted
            (``max(1, round(record_period_s / dt_s))``), the same
            derivation the cluster driver uses.

    Returns:
        A :class:`ClusterHistory` bit-identical to the one the
        monolithic cluster run would have recorded.
    """
    if dt_s <= 0:
        raise ValueError("dt must be positive")
    root = RootAggregator()
    history = ClusterHistory()
    record_every = max(1, int(round(record_period_s / dt_s)))
    for k in range(len(times_s)):
        t = float(times_s[k])
        root.record(t, tails_ms[k].tolist())
        if k % record_every == 0:
            windowed = root.windowed_latency_ms()
            history.append(ClusterRecord(
                t_s=t,
                load=trace.clipped(t),
                root_latency_ms=windowed,
                root_slo_fraction=windowed / root_slo_ms,
                emu=float(np.mean(emus[k])),
            ))
    return history


class FleetTelemetry:
    """Fleet-level columns over the per-cluster record streams.

    One :class:`BatchColumnStore` with the fleet's clusters on the
    member axis: per-cluster columns ``load``, ``root_latency_ms``,
    ``root_slo_fraction`` and ``emu`` (each ``(T, C)``), the shared
    record clock ``t_s``, and two derived shared columns —
    ``fleet_emu`` (leaf-weighted mean EMU across clusters) and
    ``weighted_root_latency_ms`` (root latency weighted by each
    cluster's offered load x leaf count, i.e. by where the traffic
    actually is).  Aggregates route through the shared
    :class:`~repro.metrics.windows.WindowedMetrics` stack like every
    other history in the repo.
    """

    #: Per-cluster (member-axis) fields mirrored from ClusterHistory.
    CLUSTER_FIELDS = ("load", "root_latency_ms", "root_slo_fraction", "emu")
    #: Derived fleet-wide (shared-axis) fields.
    FLEET_FIELDS = ("fleet_emu", "weighted_root_latency_ms")

    def __init__(self, store: BatchColumnStore,
                 cluster_names: Sequence[str],
                 cluster_leaves: Sequence[int]):
        self._store = store
        self.cluster_names = list(cluster_names)
        self.cluster_leaves = list(cluster_leaves)
        self.metrics = WindowedMetrics(self.fleet_column, self.times)

    @property
    def store(self) -> BatchColumnStore:
        """The backing (T, C) column store."""
        return self._store

    def __len__(self) -> int:
        """Number of recorded fleet rows (record-cadence ticks)."""
        return len(self._store)

    def times(self) -> np.ndarray:
        """The shared record clock, shape (T,)."""
        return self._store.column("t_s")

    def column(self, name: str) -> np.ndarray:
        """One per-cluster field as a (T, C) float column."""
        return self._store.column(name)

    def cluster_column(self, name: str, cluster: str) -> np.ndarray:
        """One cluster's (T,) slice of a per-cluster field."""
        index = self.cluster_names.index(cluster)
        return self._store.member_column(name, index)

    def fleet_column(self, name: str) -> np.ndarray:
        """One derived fleet-wide field as a (T,) float column."""
        if name not in self.FLEET_FIELDS:
            raise KeyError(f"not a fleet-wide field: {name!r} (choose "
                           f"from {', '.join(self.FLEET_FIELDS)})")
        return self._store.column(name)

    def mean_fleet_emu(self, skip_s: float = 0.0) -> float:
        """Mean leaf-weighted fleet EMU after ``skip_s`` seconds."""
        return self.metrics.mean("fleet_emu", skip_s=skip_s)

    def min_fleet_emu(self, skip_s: float = 0.0) -> float:
        """Minimum leaf-weighted fleet EMU after ``skip_s`` seconds."""
        return self.metrics.minimum("fleet_emu", skip_s=skip_s)

    def mean_weighted_root_latency_ms(self, skip_s: float = 0.0) -> float:
        """Mean load-weighted root latency (ms) after ``skip_s``."""
        return self.metrics.mean("weighted_root_latency_ms", skip_s=skip_s)


def fleet_emu_row(emus: np.ndarray, leaves: np.ndarray) -> np.ndarray:
    """Leaf-weighted fleet EMU per record tick.

    Args:
        emus: (T, C) per-cluster EMU.
        leaves: (C,) leaf counts.

    Returns:
        (T,) fleet EMU — each cluster's EMU weighted by its share of
        the fleet's leaves, so a 400-leaf cluster moves the fleet
        number four times as far as a 100-leaf one.
    """
    weights = np.asarray(leaves, dtype=float)
    return (np.asarray(emus, dtype=float) @ weights) / weights.sum()


def weighted_root_latency_row(latency_ms: np.ndarray,
                              loads: np.ndarray,
                              leaves: np.ndarray) -> np.ndarray:
    """Load-weighted fleet root latency per record tick.

    Each cluster's root latency is weighted by ``load x leaves`` — its
    instantaneous share of the fleet's offered traffic — so a cluster
    at its diurnal peak dominates the fleet latency figure while a
    trough cluster barely moves it.  Ticks where the whole fleet
    offers zero load fall back to the unweighted cluster mean.
    """
    latency = np.asarray(latency_ms, dtype=float)
    weights = np.asarray(loads, dtype=float) * np.asarray(leaves,
                                                          dtype=float)
    totals = weights.sum(axis=1)
    safe = np.where(totals > 0, totals, 1.0)
    weighted = (latency * weights).sum(axis=1) / safe
    fallback = latency.mean(axis=1)
    return np.where(totals > 0, weighted, fallback)


def build_fleet_telemetry(histories: Dict[str, ClusterHistory],
                          cluster_names: Sequence[str],
                          cluster_leaves: Sequence[int]) -> FleetTelemetry:
    """Stack per-cluster histories into the fleet column store.

    All clusters share one record cadence (the fleet runs them for the
    same duration at the same ``dt_s`` and record period), which is
    asserted rather than assumed.
    """
    names = list(cluster_names)
    lengths = {name: len(histories[name]) for name in names}
    if len(set(lengths.values())) != 1:
        raise ValueError(f"clusters disagree on record count: {lengths}")
    t = histories[names[0]].times()
    for name in names[1:]:
        if not np.array_equal(histories[name].times(), t):
            raise ValueError(
                f"clusters {names[0]!r} and {name!r} disagree on the "
                f"record clock (mixed dt_s or record periods?)")
    per_cluster = {
        field: np.stack([histories[name].column(field) for name in names],
                        axis=1)
        for field in FleetTelemetry.CLUSTER_FIELDS
    }
    leaves = np.asarray(cluster_leaves, dtype=float)
    fleet_emu = fleet_emu_row(per_cluster["emu"], leaves)
    weighted = weighted_root_latency_row(
        per_cluster["root_latency_ms"], per_cluster["load"], leaves)

    fields = [("t_s", np.float64)]
    fields += [(name, np.float64) for name in FleetTelemetry.CLUSTER_FIELDS]
    fields += [(name, np.float64) for name in FleetTelemetry.FLEET_FIELDS]
    store = BatchColumnStore(
        fields, n=len(names),
        shared=("t_s",) + FleetTelemetry.FLEET_FIELDS)
    for k in range(len(t)):
        row = {field: per_cluster[field][k]
               for field in FleetTelemetry.CLUSTER_FIELDS}
        row["t_s"] = t[k]
        row["fleet_emu"] = fleet_emu[k]
        row["weighted_root_latency_ms"] = weighted[k]
        store.append_tick(row)
    return FleetTelemetry(store, names, cluster_leaves)
