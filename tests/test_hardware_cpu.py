"""Tests for repro.hardware.cpu: topology and DVFS state."""

import pytest

from repro.hardware.cpu import CoreId, CpuTopology, DvfsState
from repro.hardware.spec import default_machine_spec


@pytest.fixture
def topology():
    return CpuTopology(default_machine_spec())


class TestCoreId:
    def test_sibling_flips_thread(self):
        c = CoreId(0, 3, 0)
        assert c.sibling() == CoreId(0, 3, 1)
        assert c.sibling().sibling() == c

    def test_sibling_requires_two_way_smt(self):
        with pytest.raises(ValueError):
            CoreId(0, 0, 0).sibling(threads_per_core=4)

    def test_physical_identity(self):
        assert CoreId(1, 5, 0).physical == (1, 5)
        assert CoreId(1, 5, 1).physical == (1, 5)

    def test_ordering(self):
        assert CoreId(0, 0, 0) < CoreId(0, 0, 1) < CoreId(0, 1, 0)


class TestCpuTopology:
    def test_thread_count(self, topology):
        assert len(topology.all_threads()) == 72

    def test_primary_threads_one_per_core(self, topology):
        primary = topology.primary_threads()
        assert len(primary) == 36
        assert all(t.thread == 0 for t in primary)

    def test_threads_on_socket(self, topology):
        threads = topology.threads_on_socket(1)
        assert len(threads) == 36
        assert all(t.socket == 1 for t in threads)

    def test_physical_cores(self, topology):
        assert len(topology.physical_cores()) == 36

    def test_contains(self, topology):
        assert topology.contains(CoreId(0, 0, 0))
        assert not topology.contains(CoreId(5, 0, 0))
        assert not topology.contains(CoreId(0, 99, 0))

    def test_siblings_of(self, topology):
        threads = [CoreId(0, 0, 0), CoreId(1, 2, 1)]
        siblings = topology.siblings_of(threads)
        assert siblings == [CoreId(0, 0, 1), CoreId(1, 2, 0)]

    def test_physical_core_count_dedups_siblings(self, topology):
        threads = [CoreId(0, 0, 0), CoreId(0, 0, 1), CoreId(0, 1, 0)]
        assert topology.physical_core_count(threads) == 2

    def test_per_socket_core_count(self, topology):
        threads = [CoreId(0, 0, 0), CoreId(0, 1, 0), CoreId(1, 0, 0)]
        counts = topology.per_socket_core_count(threads)
        assert counts == {0: 2, 1: 1}


class TestDvfsState:
    def test_uncapped_by_default(self, topology):
        dvfs = DvfsState(topology)
        assert dvfs.cap_ghz(CoreId(0, 0, 0)) is None

    def test_set_and_read_cap(self, topology):
        dvfs = DvfsState(topology)
        dvfs.set_cap_ghz([CoreId(0, 0, 0)], 2.0)
        assert dvfs.cap_ghz(CoreId(0, 0, 0)) == pytest.approx(2.0)
        # Sibling shares the physical core, hence the cap.
        assert dvfs.cap_ghz(CoreId(0, 0, 1)) == pytest.approx(2.0)

    def test_cap_clamped_to_range(self, topology):
        dvfs = DvfsState(topology)
        dvfs.set_cap_ghz([CoreId(0, 0, 0)], 99.0)
        turbo = topology.spec.socket.turbo
        assert dvfs.cap_ghz(CoreId(0, 0, 0)) == pytest.approx(
            turbo.max_turbo_ghz)

    def test_unknown_core_rejected(self, topology):
        dvfs = DvfsState(topology)
        with pytest.raises(KeyError):
            dvfs.set_cap_ghz([CoreId(9, 9, 0)], 2.0)

    def test_step_down_from_uncapped(self, topology):
        dvfs = DvfsState(topology)
        core = CoreId(0, 0, 0)
        dvfs.step_down([core])
        turbo = topology.spec.socket.turbo
        assert dvfs.cap_ghz(core) == pytest.approx(
            turbo.max_turbo_ghz - turbo.step_ghz)

    def test_step_down_floors_at_min(self, topology):
        dvfs = DvfsState(topology)
        core = CoreId(0, 0, 0)
        dvfs.step_down([core], steps=100)
        assert dvfs.cap_ghz(core) == pytest.approx(
            topology.spec.socket.turbo.min_ghz)

    def test_step_up_clears_at_max(self, topology):
        dvfs = DvfsState(topology)
        core = CoreId(0, 0, 0)
        dvfs.set_cap_ghz([core], 2.0)
        dvfs.step_up([core], steps=100)
        assert dvfs.cap_ghz(core) == pytest.approx(
            topology.spec.socket.turbo.max_turbo_ghz)

    def test_step_up_noop_when_uncapped(self, topology):
        dvfs = DvfsState(topology)
        core = CoreId(0, 0, 0)
        dvfs.step_up([core])
        assert dvfs.cap_ghz(core) is None

    def test_min_cap_on(self, topology):
        dvfs = DvfsState(topology)
        a, b = CoreId(0, 0, 0), CoreId(0, 1, 0)
        assert dvfs.min_cap_on([a, b]) is None
        dvfs.set_cap_ghz([a], 2.0)
        dvfs.set_cap_ghz([b], 1.5)
        assert dvfs.min_cap_on([a, b]) == pytest.approx(1.5)
