"""Interference microbenchmarks for the Figure 1 characterization.

§3.2 runs each LC workload against a synthetic benchmark that stresses a
single shared resource in isolation:

* ``LLC (small|med|big)`` — streams through an array sized to a quarter,
  half, or almost all of the LLC, pinned to the cores the LC task is not
  using.
* ``DRAM`` — same placement, with an array far larger than the LLC so
  every access goes to memory, saturating the channels.
* ``HyperThread`` — a tight spinloop pinned on the *sibling* HyperThreads
  of the LC task's cores.  It touches registers only — no L1/L2/LLC
  footprint — making it a lower bound on HyperThread interference.
* ``CPU power`` — a power virus on the remaining cores.
* ``Network`` — iperf generating many low-bandwidth "mice" flows.
* ``brain`` — the production BE task under OS-only isolation (separate
  containers, low CFS shares), the configuration Figure 1 uses to show
  that OS isolation is inadequate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..hardware.spec import MachineSpec, default_machine_spec
from .best_effort import (BRAIN, CPU_PWR, IPERF, STREAM_DRAM,
                          BeWorkloadProfile, BestEffortWorkload)


class Placement(enum.Enum):
    """How an antagonist is pinned relative to the LC workload."""

    REMAINING_CORES = "remaining_cores"   # cores the LC task is not using
    SIBLING_THREADS = "sibling_threads"   # HT siblings of the LC cores
    ONE_CORE = "one_core"                 # a single core (network tests)
    SHARED_CORES = "shared_cores"         # same cores, CFS-arbitrated


@dataclass(frozen=True)
class AntagonistSpec:
    """One row of Figure 1: a stressor plus its placement."""

    label: str
    profile: BeWorkloadProfile
    placement: Placement


def _llc_stream_profile(label: str, llc_fraction: float,
                        spec: MachineSpec) -> BeWorkloadProfile:
    """A cache antagonist streaming an array covering ``llc_fraction`` of
    the total LLC."""
    if not 0.0 < llc_fraction <= 1.0:
        raise ValueError("llc_fraction must be in (0, 1]")
    return BeWorkloadProfile(
        name=label,
        activity=0.50,
        bulk_mb=llc_fraction * spec.total_llc_mb,
        bulk_reuse=1.0,
        access_gbps_per_core=9.0,
        uncached_dram_gbps_per_core=0.2,
        mem_bound_fraction=0.45,
        cache_benefit=0.55,
    )


def _spinloop_profile() -> BeWorkloadProfile:
    """Tight spinloop: registers only, minimal power, no memory."""
    return BeWorkloadProfile(
        name="HyperThread",
        activity=0.30,
        hot_mb=0.0,
        bulk_mb=0.0,
        access_gbps_per_core=0.0,
        mem_bound_fraction=0.0,
        cache_benefit=0.0,
    )


def figure1_antagonists(spec: Optional[MachineSpec] = None) -> List[AntagonistSpec]:
    """The eight rows of Figure 1, in paper order."""
    spec = spec or default_machine_spec()
    return [
        AntagonistSpec("LLC (small)",
                       _llc_stream_profile("LLC (small)", 0.25, spec),
                       Placement.REMAINING_CORES),
        AntagonistSpec("LLC (med)",
                       _llc_stream_profile("LLC (med)", 0.50, spec),
                       Placement.REMAINING_CORES),
        AntagonistSpec("LLC (big)",
                       _llc_stream_profile("LLC (big)", 0.90, spec),
                       Placement.REMAINING_CORES),
        AntagonistSpec("DRAM",
                       BeWorkloadProfile(
                           name="DRAM",
                           activity=STREAM_DRAM.activity,
                           bulk_mb=STREAM_DRAM.bulk_mb,
                           bulk_reuse=STREAM_DRAM.bulk_reuse,
                           access_gbps_per_core=STREAM_DRAM.access_gbps_per_core,
                           mem_bound_fraction=STREAM_DRAM.mem_bound_fraction,
                           cache_benefit=STREAM_DRAM.cache_benefit),
                       Placement.REMAINING_CORES),
        AntagonistSpec("HyperThread",
                       _spinloop_profile(),
                       Placement.SIBLING_THREADS),
        AntagonistSpec("CPU power",
                       BeWorkloadProfile(
                           name="CPU power",
                           activity=CPU_PWR.activity,
                           power_weight=CPU_PWR.power_weight,
                           hot_mb=CPU_PWR.hot_mb,
                           bulk_mb=CPU_PWR.bulk_mb,
                           bulk_reuse=CPU_PWR.bulk_reuse,
                           access_gbps_per_core=CPU_PWR.access_gbps_per_core,
                           mem_bound_fraction=CPU_PWR.mem_bound_fraction,
                           cache_benefit=CPU_PWR.cache_benefit),
                       Placement.REMAINING_CORES),
        AntagonistSpec("Network",
                       BeWorkloadProfile(
                           name="Network",
                           activity=IPERF.activity,
                           net_demand_gbps=IPERF.net_demand_gbps,
                           net_flows=IPERF.net_flows,
                           mem_bound_fraction=IPERF.mem_bound_fraction,
                           cache_benefit=IPERF.cache_benefit),
                       Placement.ONE_CORE),
        AntagonistSpec("brain",
                       BeWorkloadProfile(
                           name="brain",
                           activity=BRAIN.activity,
                           power_weight=BRAIN.power_weight,
                           hot_mb=BRAIN.hot_mb,
                           bulk_mb=BRAIN.bulk_mb,
                           bulk_reuse=BRAIN.bulk_reuse,
                           access_gbps_per_core=BRAIN.access_gbps_per_core,
                           hot_access_fraction=BRAIN.hot_access_fraction,
                           uncached_dram_gbps_per_core=BRAIN.uncached_dram_gbps_per_core,
                           mem_bound_fraction=BRAIN.mem_bound_fraction,
                           cache_benefit=BRAIN.cache_benefit),
                       Placement.SHARED_CORES),
    ]


def antagonist_by_label(label: str,
                        spec: Optional[MachineSpec] = None) -> AntagonistSpec:
    """Look up one Figure 1 row by its label."""
    for spec_ in figure1_antagonists(spec):
        if spec_.label == label:
            return spec_
    raise KeyError(f"unknown antagonist {label!r}")


def make_antagonist(spec_: AntagonistSpec,
                    machine: Optional[MachineSpec] = None) -> BestEffortWorkload:
    """Instantiate the BE workload behind an antagonist spec."""
    return BestEffortWorkload(spec_.profile, machine)
