"""pydocstyle-lite: the public API surface must be documented.

Two enforcement levels:

* every ``__all__`` export of the public packages has a non-empty
  docstring (classes, functions, and the modules themselves);
* the modules named by the docs pass (``repro`` itself,
  ``repro.sim.batch``, ``repro.sim.runner``, ``repro.core.controller``,
  and the scenario subsystem) are additionally checked method-by-method:
  every public def/property of every public class defined in the module
  needs its own docstring.

Keeping this as a test (rather than a linter config) means the check
runs wherever the suite runs, with no extra tooling.
"""

import importlib
import inspect

import pytest

#: Packages whose ``__all__`` exports must each carry a docstring.
ALL_EXPORT_MODULES = (
    "repro",
    "repro.sim",
    "repro.metrics",
    "repro.workloads",
    "repro.baselines",
    "repro.experiments",
    "repro.scenarios",
    "repro.fleet",
    "repro.sched",
)

#: Modules checked member-by-member (every public class/function defined
#: in the module, and every public method/property of those classes).
DEEP_MODULES = (
    "repro",
    "repro.sim.batch",
    "repro.sim.runner",
    "repro.sim.engine",
    "repro.metrics.columns",
    "repro.metrics.windows",
    "repro.metrics.history",
    "repro.core.controller",
    "repro.scenarios.spec",
    "repro.scenarios.loader",
    "repro.scenarios.registry",
    "repro.scenarios.compiler",
    "repro.fleet.shard",
    "repro.fleet.aggregate",
    "repro.fleet.simulator",
    "repro.sched.jobs",
    "repro.sched.policies",
    "repro.sched.scheduler",
    "repro.sched.report",
)


def _missing_doc(obj) -> bool:
    """True when the object lacks a (non-empty) docstring of its own."""
    doc = inspect.getdoc(obj)
    return not (doc and doc.strip())


def _class_offenders(cls, where: str) -> list:
    """Public methods/properties of ``cls`` (own namespace) without docs."""
    offenders = []
    for name, member in vars(cls).items():
        if name.startswith("_"):
            continue
        if isinstance(member, property):
            target = member.fget
        elif isinstance(member, (staticmethod, classmethod)):
            target = member.__func__
        elif inspect.isfunction(member):
            target = member
        else:
            continue
        if target is not None and _missing_doc(target):
            offenders.append(f"{where}.{cls.__name__}.{name}")
    return offenders


@pytest.mark.parametrize("module_name", ALL_EXPORT_MODULES)
def test_all_exports_documented(module_name):
    """Every ``__all__`` export carries a docstring."""
    module = importlib.import_module(module_name)
    assert not _missing_doc(module), f"{module_name}: module docstring"
    offenders = []
    for name in getattr(module, "__all__", ()):
        obj = getattr(module, name)
        if not (inspect.isclass(obj) or callable(obj)
                or inspect.ismodule(obj)):
            continue  # plain constants (e.g. __version__, tuples)
        if _missing_doc(obj):
            offenders.append(f"{module_name}.{name}")
    assert not offenders, f"undocumented __all__ exports: {offenders}"


@pytest.mark.parametrize("module_name", DEEP_MODULES)
def test_public_members_documented(module_name):
    """Every public class/function — and their public methods — has docs."""
    module = importlib.import_module(module_name)
    offenders = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.isclass(obj) and obj.__module__ == module.__name__:
            if _missing_doc(obj):
                offenders.append(f"{module_name}.{name}")
            offenders.extend(_class_offenders(obj, module_name))
        elif inspect.isfunction(obj) and obj.__module__ == module.__name__:
            if _missing_doc(obj):
                offenders.append(f"{module_name}.{name}")
    assert not offenders, f"undocumented public members: {offenders}"
