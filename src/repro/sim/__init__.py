"""Simulation engine: monitors, actuators, and the colocation loop.

Two execution backends share one physics model: the scalar
:class:`ColocationSim` (one server, reference implementation) and the
vectorized :class:`~repro.sim.batch.BatchColocationSim` (N servers per
tick as array math).  :mod:`repro.sim.runner` fans independent runs —
sweep points, cluster arms — across a process pool.
"""

from .actuators import Actuators, BE_COS, LC_COS
from .batch import (BatchColocationSim, BatchHistory, BatchMember,
                    BatchMemberHistory, BatchTickResult)
from .engine import ColocationSim, Controller, SimHistory, TickRecord
from .monitors import LatencyMonitor, ThroughputMonitor
from .runner import memoized_dram_model, run_sweep

__all__ = [
    "Actuators", "BE_COS", "LC_COS",
    "BatchColocationSim", "BatchHistory", "BatchMember",
    "BatchMemberHistory", "BatchTickResult",
    "ColocationSim", "Controller", "SimHistory", "TickRecord",
    "LatencyMonitor", "ThroughputMonitor",
    "memoized_dram_model", "run_sweep",
]
