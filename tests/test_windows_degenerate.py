"""Degenerate-input behavior of the windowed metric layer.

Three bugfix regressions pinned in one place:

* ``sample_mean`` on an empty sequence reports the metric layer's
  nothing-recorded value (0.0) instead of raising a bare
  ``ZeroDivisionError`` — it is the public helper behind every monitor
  window estimate.
* ``WindowedMetrics`` memoization keys on the history's last timestamp
  as well as its length, so an equal-length history with different
  contents (a reset-and-refilled store, a restored snapshot) cannot be
  served stale aggregates.
* The reporting aggregates (``derive_dt_s`` / ``worst_window_mean`` /
  ``mean_after``) stay well-defined on single-sample and empty series,
  and with ``skip_s`` past the end of the run — checked on the scalar,
  batch, and fleet history stacks, not just on raw arrays.
"""

import numpy as np
import pytest

from repro.fleet.simulator import ClusterPlan, ShardedFleetSim
from repro.metrics import (WindowedMetrics, derive_dt_s, mean_after,
                           sample_mean, worst_window_mean)
from repro.sim import ColocationSim
from repro.workloads.traces import ConstantLoad, websearch_cluster_trace
from repro.workloads.latency_critical import make_lc_workload


class TestSampleMeanEmpty:
    def test_empty_list_is_zero(self):
        assert sample_mean([]) == 0.0

    def test_empty_tuple_is_zero(self):
        assert sample_mean(()) == 0.0

    def test_empty_array_is_zero(self):
        assert sample_mean(np.array([])) == 0.0

    def test_nonempty_unchanged(self):
        assert sample_mean([1.0, 2.0, 4.0]) == (1.0 + 2.0 + 4.0) / 3


class TestRawDegenerateSeries:
    def test_derive_dt_single_sample_falls_back(self):
        assert derive_dt_s(np.array([5.0])) == 1.0
        assert derive_dt_s(np.array([5.0]), default=0.25) == 0.25

    def test_derive_dt_empty_falls_back(self):
        assert derive_dt_s(np.array([])) == 1.0

    def test_derive_dt_zero_span_falls_back(self):
        assert derive_dt_s(np.array([3.0, 3.0])) == 1.0

    def test_worst_window_single_sample_is_that_sample(self):
        assert worst_window_mean(np.array([7.5]), np.array([0.0])) == 7.5

    def test_worst_window_empty_is_zero(self):
        assert worst_window_mean(np.array([]), np.array([])) == 0.0

    def test_mean_after_skip_past_end_is_zero(self):
        t = np.arange(5.0)
        assert mean_after(np.ones(5), t, skip_s=10.0) == 0.0
        assert worst_window_mean(np.ones(5), t, skip_s=10.0) == 0.0


class TestMemoStaleness:
    def test_equal_length_different_contents_not_stale(self):
        """Reset-and-refill with the same length must recompute."""
        state = {"t": np.array([0.0, 1.0, 2.0]),
                 "x": np.array([1.0, 1.0, 1.0])}
        metrics = WindowedMetrics(lambda name: state["x"],
                                  lambda: state["t"])
        assert metrics.mean("x") == 1.0
        # Same length, new clock + new contents (restored snapshot).
        state["t"] = np.array([10.0, 11.0, 12.0])
        state["x"] = np.array([3.0, 3.0, 3.0])
        assert metrics.mean("x") == 3.0
        assert metrics.maximum("x") == 3.0
        assert metrics.worst_window("x", window_s=2.0) == 3.0

    def test_growth_still_invalidates(self):
        state = {"t": np.array([0.0, 1.0]), "x": np.array([2.0, 2.0])}
        metrics = WindowedMetrics(lambda name: state["x"],
                                  lambda: state["t"])
        assert metrics.mean("x") == 2.0
        state["t"] = np.array([0.0, 1.0, 2.0])
        state["x"] = np.array([2.0, 2.0, 8.0])
        assert metrics.mean("x") == 4.0

    def test_unchanged_history_is_served_from_cache(self):
        calls = {"n": 0}
        t = np.array([0.0, 1.0])

        def column(name):
            calls["n"] += 1
            return np.array([1.0, 3.0])

        metrics = WindowedMetrics(column, lambda: t)
        assert metrics.mean("x") == 2.0
        assert metrics.mean("x") == 2.0
        assert calls["n"] == 1

    def test_empty_history_memoizes_safely(self):
        state = {"t": np.array([]), "x": np.array([])}
        metrics = WindowedMetrics(lambda name: state["x"],
                                  lambda: state["t"])
        assert metrics.mean("x") == 0.0
        state["t"] = np.array([0.0])
        state["x"] = np.array([5.0])
        assert metrics.mean("x") == 5.0


def _scalar_history(ticks):
    lc = make_lc_workload("websearch")
    sim = ColocationSim(lc=lc, trace=ConstantLoad(0.5))
    for _ in range(ticks):
        sim.tick(1.0)
    return sim.history


class TestHistoryDegenerates:
    """skip_s past the end + single-record runs on every history stack."""

    def test_scalar_history(self):
        history = _scalar_history(3)
        past = history.times()[-1] + 100.0
        assert history.metrics.mean("tail_latency_ms", skip_s=past) == 0.0
        assert history.metrics.maximum("tail_latency_ms",
                                       skip_s=past) == 0.0
        assert history.metrics.worst_window("tail_latency_ms",
                                            skip_s=past) == 0.0

    def test_scalar_single_record(self):
        history = _scalar_history(1)
        assert len(history) == 1
        assert history.metrics.dt_s(default=2.5) == 2.5  # derive falls back
        tail = float(history.column("tail_latency_ms")[0])
        assert history.metrics.worst_window("tail_latency_ms") == tail
        assert history.metrics.mean("tail_latency_ms") == tail

    def test_batch_member_history(self):
        from repro.sim.batch import BatchColocationSim
        lc = make_lc_workload("websearch")
        batch = BatchColocationSim(lc=lc, trace=ConstantLoad(0.5), n=2)
        batch.tick(1.0)
        history = batch.members[0].history
        assert history.metrics.worst_window("tail_latency_ms",
                                            skip_s=50.0) == 0.0
        tail = float(history.column("tail_latency_ms")[0])
        assert history.metrics.worst_window("tail_latency_ms") == tail

    @pytest.fixture(scope="class")
    def fleet_history(self):
        fleet = ShardedFleetSim(
            [ClusterPlan(name="web", leaves=2,
                         trace=websearch_cluster_trace(seed=3), seed=1)],
            shard_leaves=2, record_period_s=30.0)
        result = fleet.run(60.0, processes=1)
        return result.clusters[0].history

    def test_fleet_history_skip_past_end(self, fleet_history):
        past = fleet_history.times()[-1] + 1.0
        assert fleet_history.mean_emu(skip_s=past) == 0.0
        assert fleet_history.max_root_slo_fraction(skip_s=past) == 0.0
        assert fleet_history.metrics.worst_window(
            "root_slo_fraction", skip_s=past) == 0.0

    def test_fleet_history_well_defined(self, fleet_history):
        assert len(fleet_history) >= 1
        assert fleet_history.mean_emu() > 0.0
