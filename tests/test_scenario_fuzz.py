"""Hypothesis-driven scenario fuzzer: the auto-generated bit-identity
test matrix.

The hand-written differential tests pin specific scenarios; this module
generates *random valid* :class:`ScenarioSpec` trees across all five
shapes (members / sweep / cluster / fleet / schedule) — including
random chaos and actuator injections — and asserts the engine
equivalence contracts hold for every one of them:

* fleet-like shapes (``fleet``, ``schedule``): bit-identical
  ``FleetResult.summary()`` and per-cluster history columns across
  engine ∈ {sharded, mega} × shard_leaves ∈ {1, 3, as-drawn} ×
  ``REPRO_JOBS`` ∈ {1, 4};
* member shapes: back-to-back determinism is bitwise, and a
  single-member batch matches the scalar reference engine under the
  repo's scalar↔batch contract (``rtol=1e-9`` floats, exact actuator
  columns);
* cluster shapes: the batch engine matches the scalar per-leaf loop
  bitwise on every arm;
* sweep shapes: serial and process-pool execution produce identical
  grids;
* the resume axis: for fleet-like shapes, a run that *writes* a
  mid-run checkpoint and a fresh run *resumed* from that checkpoint
  are both bit-identical to the straight run — across engine ∈
  {sharded, mega} × ``REPRO_JOBS`` ∈ {1, 4};
* the trace axis: enabling decision tracing (``REPRO_TRACE=1``)
  leaves every simulated number bit-identical, and the merged trace
  itself is byte-identical JSONL across engine × shard plan × worker
  count.

Profiles: ``REPRO_FUZZ_PROFILE=ci`` (the CI pin: 200 derandomized
examples for the fleet matrix) or ``dev`` (default: a quick seeded
pass).  ``tools/fuzz_scenarios.py`` reuses the same generator idea for
open-ended soak runs.
"""

import dataclasses
import os
import tempfile

import numpy as np
import pytest

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.scenarios import CheckpointSpec, run_scenario
from repro.scenarios.spec import (CONTROLLERS, INJECTION_ACTIONS,
                                  ClusterSpec, FleetSpec, InjectionSpec,
                                  JobSpec, ScenarioSpec, ScheduleSpec,
                                  ShardSpec, SweepSpec, TraceSpec,
                                  WorkloadSpec)
from repro.sim.runner import JOBS_ENV
from repro.workloads.best_effort import BE_PROFILES
from repro.workloads.latency_critical import LC_PROFILES

# -- hypothesis profiles -------------------------------------------------
# "ci" is the pinned gate: derandomized (fixed example corpus, no flaky
# reruns) and sized so the fleet matrix covers 200 generated scenarios.
# "dev" (default) is a quick local pass with the usual random seed.
settings.register_profile(
    "ci", max_examples=200, derandomize=True, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])
settings.register_profile(
    "dev", max_examples=20, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])
settings.load_profile(os.environ.get("REPRO_FUZZ_PROFILE", "dev"))

LCS = tuple(sorted(LC_PROFILES))
BES = tuple(sorted(BE_PROFILES))

#: Valid values per value-taking action (grids, not raw floats: the
#: interesting behaviour lives at distinct regimes, not in the mantissa).
VALUE_GRIDS = {
    "set_be_cores": (1, 2, 4),
    "set_llc_split": (1, 3, 6),
    "set_be_net_ceil": (0.5, 2.0, 9.0),
    "straggler": (0.25, 0.5, 0.75, 1.0),
    "power_cap": (0.4, 0.7, 1.0),
    "partition": (5.0, 15.0, 30.0),
}

CLUSTER_FIELDS = ("t_s", "load", "root_latency_ms", "root_slo_fraction",
                  "emu")
MEMBER_FLOAT_FIELDS = (
    "t_s", "load", "tail_latency_ms", "slo_fraction", "be_throughput_norm",
    "emu", "dram_bw_gbps", "dram_utilization", "cpu_utilization",
    "power_fraction_of_tdp", "lc_net_gbps", "be_net_gbps",
    "link_utilization",
)
MEMBER_EXACT_FIELDS = ("be_cores", "be_llc_ways", "be_enabled",
                       "be_dvfs_cap_ghz", "be_net_ceil_gbps")


def draw_injection(draw, duration, cluster_leaves=None, n_members=None):
    """One valid InjectionSpec for a fleet (cluster_leaves) or members
    (n_members) scenario."""
    action = draw(st.sampled_from(INJECTION_ACTIONS))
    value = (draw(st.sampled_from(VALUE_GRIDS[action]))
             if action in VALUE_GRIDS else None)
    at_s = float(draw(st.integers(0, int(duration) - 1)))
    cluster = None
    leaf = None
    if cluster_leaves is not None:
        cluster = draw(st.one_of(
            st.none(), st.sampled_from(sorted(cluster_leaves))))
        if cluster is not None:
            leaf = draw(st.one_of(
                st.none(), st.integers(0, cluster_leaves[cluster] - 1)))
    else:
        leaf = draw(st.one_of(st.none(), st.integers(0, n_members - 1)))
    return InjectionSpec(at_s=at_s, action=action, value=value,
                         cluster=cluster, leaf=leaf)


def draw_trace(draw):
    """A deterministic (noise-free) trace with distinct regimes."""
    kind = draw(st.sampled_from(("constant", "diurnal")))
    if kind == "constant":
        return TraceSpec(kind="constant",
                         load=draw(st.sampled_from((0.3, 0.5, 0.7))))
    return TraceSpec(kind="diurnal", low=0.2,
                     high=draw(st.sampled_from((0.6, 0.85))),
                     period_s=120.0, noise_sigma=0.0)


@st.composite
def fleet_like_specs(draw):
    """A random valid fleet or schedule scenario, with injections."""
    clusters = []
    for i in range(draw(st.integers(1, 2))):
        be_mix = draw(st.lists(st.sampled_from(BES), min_size=1,
                               max_size=2, unique=True))
        clusters.append(ShardSpec(
            name=f"c{i}",
            leaves=draw(st.integers(2, 4)),
            lc=draw(st.sampled_from(LCS)),
            be_mix=tuple(be_mix),
            trace=draw_trace(draw),
            managed=draw(st.booleans())))
    fleet = FleetSpec(clusters=tuple(clusters),
                      shard_leaves=draw(st.sampled_from((2, 8))),
                      record_period_s=5.0)
    duration = float(draw(st.sampled_from((40, 60))))
    cluster_leaves = {c.name: c.leaves for c in fleet.clusters}
    injections = tuple(
        draw_injection(draw, duration, cluster_leaves=cluster_leaves)
        for _ in range(draw(st.integers(0, 5))))
    kwargs = dict(
        name="fuzz-fleet",
        duration_s=duration,
        dt_s=draw(st.sampled_from((0.5, 1.0))),
        warmup_s=float(draw(st.sampled_from((0, 10)))),
        seed=draw(st.integers(0, 5)),
        injections=injections)
    if draw(st.booleans()):
        jobs = tuple(
            JobSpec(name=f"job{j}",
                    demand_core_s=float(draw(st.sampled_from((40, 160)))),
                    max_cores=draw(st.sampled_from((1, 4))),
                    priority=draw(st.sampled_from((0, 1))),
                    arrival_s=float(draw(st.sampled_from((0, 15)))),
                    count=draw(st.sampled_from((1, 2))))
            for j in range(draw(st.integers(0, 2))))
        return ScenarioSpec(schedule=ScheduleSpec(fleet=fleet, jobs=jobs,
                                                  epoch_s=20.0),
                            **kwargs)
    return ScenarioSpec(fleet=fleet, **kwargs)


@st.composite
def member_specs(draw):
    """A random valid members scenario (every member gets a BE so the
    actuator injections always have a group to poke)."""
    n = draw(st.integers(1, 3))
    duration = 60.0
    members = tuple(
        WorkloadSpec(lc=draw(st.sampled_from(LCS)),
                     be=draw(st.sampled_from(BES)),
                     trace=draw_trace(draw),
                     controller=draw(st.sampled_from(CONTROLLERS)))
        for _ in range(n))
    injections = tuple(
        draw_injection(draw, duration, n_members=n)
        for _ in range(draw(st.integers(0, 4))))
    return ScenarioSpec(name="fuzz-members", duration_s=duration,
                        warmup_s=15.0, seed=draw(st.integers(0, 5)),
                        members=members, injections=injections)


@st.composite
def cluster_specs(draw):
    """A random valid cluster scenario (injection-free by contract)."""
    cluster = ClusterSpec(
        leaves=draw(st.integers(2, 3)),
        arms=draw(st.sampled_from((("managed",), ("managed", "baseline")))),
        trace=draw_trace(draw),
        engine="batch")
    return ScenarioSpec(name="fuzz-cluster", duration_s=40.0,
                        warmup_s=10.0, seed=draw(st.integers(0, 5)),
                        cluster=cluster)


@st.composite
def sweep_specs(draw):
    """A random valid sweep scenario (small grid)."""
    sweep = SweepSpec(
        lc_tasks=(draw(st.sampled_from(LCS)),),
        be_tasks=tuple(draw(st.lists(st.sampled_from(BES), min_size=1,
                                     max_size=2, unique=True))),
        loads=tuple(draw(st.lists(st.sampled_from((0.25, 0.5, 0.75)),
                                  min_size=1, max_size=2, unique=True))),
        include_baseline=draw(st.booleans()))
    return ScenarioSpec(name="fuzz-sweep", duration_s=40.0, warmup_s=10.0,
                        seed=draw(st.integers(0, 5)), sweep=sweep)


def run_with_jobs(spec, jobs):
    """Run a scenario with ``REPRO_JOBS`` pinned to ``jobs``."""
    saved = os.environ.get(JOBS_ENV)
    os.environ[JOBS_ENV] = str(jobs)
    try:
        return run_scenario(spec, processes=None)
    finally:
        if saved is None:
            os.environ.pop(JOBS_ENV, None)
        else:
            os.environ[JOBS_ENV] = saved


def with_fleet(spec, **overrides):
    """Replace fleet engine/shard knobs on a fleet or schedule spec."""
    if spec.schedule is not None:
        fleet = dataclasses.replace(spec.schedule.fleet, **overrides)
        return dataclasses.replace(
            spec, schedule=dataclasses.replace(spec.schedule, fleet=fleet))
    return dataclasses.replace(
        spec, fleet=dataclasses.replace(spec.fleet, **overrides))


def assert_fleet_results_identical(got, want, what, warmup_s):
    """Bit-identical fleet summaries and per-cluster history columns."""
    assert got.fleet.summary(skip_s=warmup_s) == \
        want.fleet.summary(skip_s=warmup_s), f"{what}: summary diverged"
    for outcome in want.fleet.clusters:
        other = got.fleet.cluster(outcome.name)
        assert len(other.history) == len(outcome.history), (
            f"{what}: cluster {outcome.name!r} record counts differ")
        for name in CLUSTER_FIELDS:
            a = other.history.column(name)
            b = outcome.history.column(name)
            assert np.array_equal(a, b), (
                f"{what}: cluster {outcome.name!r} column {name!r} "
                f"diverged (max abs diff {np.abs(a - b).max():.3e})")
    if want.schedule is not None:
        assert got.schedule.summary() == want.schedule.summary(), (
            f"{what}: schedule summary diverged")


class TestFleetMatrix:
    """The headline gate: every generated fleet/schedule scenario is
    bit-identical across engine × shard size × worker count."""

    @given(spec=fleet_like_specs())
    def test_engine_shard_jobs_identity(self, spec):
        spec.validate()
        base = run_with_jobs(spec, 1)
        variants = (
            ("sharded shard=1 jobs=1", with_fleet(
                spec, engine="sharded", shard_leaves=1), 1),
            ("sharded shard=3 jobs=4", with_fleet(
                spec, engine="sharded", shard_leaves=3), 4),
            ("mega jobs=1", with_fleet(spec, engine="mega"), 1),
        )
        for what, variant, jobs in variants:
            got = run_with_jobs(variant, jobs)
            assert_fleet_results_identical(got, base, what, spec.warmup_s)


class TestResumeAxis:
    """The checkpoint/resume leg of the matrix: for every generated
    fleet/schedule scenario, (a) the run that writes a snapshot at
    T/2 and (b) a fresh run resumed from that snapshot are both
    bit-identical to the straight run — per engine and worker pool.
    (Hypothesis forbids the function-scoped ``tmp_path`` fixture
    inside ``@given``, so each example manages its own tempdir.)"""

    VARIANTS = (
        ("sharded jobs=1", {}, 1),
        ("sharded shard=3 jobs=4", dict(engine="sharded",
                                        shard_leaves=3), 4),
        ("mega jobs=1", dict(engine="mega"), 1),
    )

    @settings(max_examples=15)
    @given(spec=fleet_like_specs())
    def test_save_and_resume_match_straight_run(self, spec):
        spec.validate()
        at_s = spec.duration_s / 2.0  # always on the tick grid here
        base = run_with_jobs(spec, 1)
        with tempfile.TemporaryDirectory() as tmp:
            for i, (what, overrides, jobs) in enumerate(self.VARIANTS):
                ckpt = os.path.join(tmp, f"ckpt{i}")
                variant = with_fleet(spec, **overrides) \
                    if overrides else spec
                saver = dataclasses.replace(
                    variant, checkpoint=CheckpointSpec(save=ckpt,
                                                       at_s=at_s))
                saver.validate()
                saved = run_with_jobs(saver, jobs)
                assert_fleet_results_identical(
                    saved, base, f"{what} (checkpointing run)",
                    spec.warmup_s)
                resumer = dataclasses.replace(
                    variant, checkpoint=CheckpointSpec(resume=ckpt))
                resumed = run_with_jobs(resumer, jobs)
                assert_fleet_results_identical(
                    resumed, base, f"{what} (resumed run)",
                    spec.warmup_s)


class TestTraceAxis:
    """The observability leg of the matrix: for every generated
    fleet/schedule scenario, (a) enabling decision tracing never
    changes a simulated number — the traced run is bit-identical to
    the untraced baseline — and (b) the merged trace itself is one
    canonical stream: byte-identical JSONL across engine × shard plan
    × worker count."""

    VARIANTS = (
        ("sharded jobs=1", {}, 1),
        ("sharded shard=3 jobs=4", dict(engine="sharded",
                                        shard_leaves=3), 4),
        ("mega jobs=1", dict(engine="mega"), 1),
    )

    @settings(max_examples=10)
    @given(spec=fleet_like_specs())
    def test_trace_on_is_bit_identical_and_canonical(self, spec):
        from repro.obs import TRACE_ENV, events_to_jsonl

        spec.validate()
        # The baseline must be untraced even when the suite itself runs
        # under ambient REPRO_TRACE=1 (the CI tier1-trace leg).
        saved = os.environ.pop(TRACE_ENV, None)
        try:
            base = run_with_jobs(spec, 1)
            assert base.trace is None
            os.environ[TRACE_ENV] = "1"
            reference = None
            for what, overrides, jobs in self.VARIANTS:
                variant = with_fleet(spec, **overrides) \
                    if overrides else spec
                traced = run_with_jobs(variant, jobs)
                assert_fleet_results_identical(
                    traced, base, f"{what} (traced run)", spec.warmup_s)
                text = events_to_jsonl(traced.trace)
                if reference is None:
                    reference = text
                else:
                    assert text == reference, f"{what}: trace diverged"
        finally:
            if saved is None:
                os.environ.pop(TRACE_ENV, None)
            else:
                os.environ[TRACE_ENV] = saved


class TestMemberScenarios:
    @settings(max_examples=40)
    @given(spec=member_specs())
    def test_batch_deterministic_and_matches_scalar(self, spec):
        spec.validate()
        batch_spec = dataclasses.replace(spec, engine="batch")
        first = run_scenario(batch_spec)
        second = run_scenario(batch_spec)
        for i, (a, b) in enumerate(zip(first.members, second.members)):
            assert len(a.history) == len(b.history)
            for name in MEMBER_FLOAT_FIELDS:
                assert np.array_equal(a.history.column(name),
                                      b.history.column(name)), (
                    f"member {i}: rerun column {name!r} diverged")
        if len(spec.members) == 1:
            scalar = run_scenario(dataclasses.replace(spec,
                                                      engine="scalar"))
            a = scalar.members[0].history
            b = first.members[0].history
            assert len(a) == len(b)
            for name in MEMBER_FLOAT_FIELDS:
                np.testing.assert_allclose(
                    a.column(name), b.column(name), rtol=1e-9, atol=1e-12,
                    err_msg=f"scalar vs batch: column {name!r} diverged")
            for name in MEMBER_EXACT_FIELDS:
                assert [getattr(r, name) for r in a.records] == \
                    [getattr(r, name) for r in b.records], (
                    f"scalar vs batch: column {name!r} diverged")


class TestClusterScenarios:
    @settings(max_examples=15)
    @given(spec=cluster_specs())
    def test_batch_matches_scalar_bitwise(self, spec):
        spec.validate()
        batch = run_scenario(spec, processes=1)
        scalar = run_scenario(
            dataclasses.replace(
                spec, cluster=dataclasses.replace(spec.cluster,
                                                  engine="scalar")),
            processes=1)
        assert batch.root_slo_ms == scalar.root_slo_ms
        assert batch.cluster_arms.keys() == scalar.cluster_arms.keys()
        for arm, history in batch.cluster_arms.items():
            other = scalar.cluster_arms[arm]
            assert len(history) == len(other)
            for name in CLUSTER_FIELDS:
                assert np.array_equal(history.column(name),
                                      other.column(name)), (
                    f"arm {arm!r}: column {name!r} diverged")


class TestSweepScenarios:
    @settings(max_examples=10)
    @given(spec=sweep_specs())
    def test_pool_matches_serial(self, spec):
        spec.validate()
        serial = run_scenario(spec, processes=1)
        pooled = run_scenario(spec, processes=2)
        assert serial.sweeps.keys() == pooled.sweeps.keys()
        for lc_name, grid in serial.sweeps.items():
            other = pooled.sweeps[lc_name]
            assert grid.loads == other.loads
            assert grid.baseline_slo == other.baseline_slo
            assert grid.results.keys() == other.results.keys()
            for be_name, cells in grid.results.items():
                a = [r.history.worst_window_slo(skip_s=spec.warmup_s)
                     for r in cells]
                b = [r.history.worst_window_slo(skip_s=spec.warmup_s)
                     for r in other.results[be_name]]
                assert a == b, f"{lc_name}/{be_name}: sweep cells diverged"
