"""Top-level Heracles controller — Algorithm 1 of the paper.

Polls the LC application's tail latency and load every 15 seconds and
digests them into coarse signals::

    while True:
        latency = PollLCAppLatency()
        load = PollLCAppLoad()
        slack = (target - latency) / target
        if slack < 0:
            DisableBE(); EnterCooldown()
        elif load > 0.85:
            DisableBE()
        elif load < 0.80:
            EnableBE()
        elif slack < 0.10:
            DisallowBEGrowth()
            if slack < 0.05:
                be_cores.Remove(be_cores.Size() - 2)
        sleep(15)

Faithfulness note: in the pseudo-code the slack guards live on the
``elif`` chain and therefore only execute when load sits inside the
[80%, 85%] hysteresis band.  Read literally, a colocation running at 60%
load with 6% slack would keep growing until it violates.  We interpret
the slack guards as applying whenever BE execution is (or has just been)
enabled — the reading consistent with the paper's results (no violations
at any load) and with the stated intent that "if slack is less than 10%,
the subcontrollers are instructed to disallow growth ... If slack drops
below 5%, the subcontroller for cores is instructed to switch cores from
BE tasks to the LC workload" (§4.3, unconditional on load).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim.actuators import Actuators
from ..sim.monitors import LatencyMonitor
from .config import HeraclesConfig
from .state import ControlState


class TopLevelController:
    """Algorithm 1: slack/load state machine."""

    def __init__(self, config: HeraclesConfig, state: ControlState,
                 actuators: Actuators, monitor: LatencyMonitor,
                 slo_target_ms: float):
        config.validate()
        if slo_target_ms <= 0:
            raise ValueError("SLO target must be positive")
        self.config = config
        self.state = state
        self.actuators = actuators
        self.monitor = monitor
        self.slo_target_ms = slo_target_ms
        self._last_poll_s: Optional[float] = None

    def due(self, now_s: float) -> bool:
        return (self._last_poll_s is None
                or now_s - self._last_poll_s >= self.config.poll_period_s)

    def step(self, now_s: float) -> None:
        if not self.due(now_s):
            return
        self._last_poll_s = now_s

        latency = self.monitor.poll_latency_ms(now_s)
        load = self.monitor.poll_load(now_s)
        if latency is None or load is None:
            return  # not enough samples yet

        slack = (self.slo_target_ms - latency) / self.slo_target_ms
        self.state.slack = slack
        self.state.load = load
        self.state.last_latency_ms = latency

        cfg = self.config
        if slack < 0:
            self._disable_be()
            self.state.enter_cooldown(now_s, cfg.cooldown_s)
            return
        if load > cfg.load_disable_threshold:
            self._disable_be()
            return
        if load < cfg.load_enable_threshold:
            if not self.state.in_cooldown(now_s):
                self.actuators.enable_be()
        # Slack guards (see faithfulness note in the module docstring).
        if slack < cfg.slack_no_growth:
            self.state.growth_allowed = False
            if slack < cfg.slack_cut_cores and self.actuators.be_enabled:
                excess = self.actuators.be_cores - cfg.be_cores_floor
                if excess > 0:
                    self.actuators.remove_be_cores(excess)
        else:
            self.state.growth_allowed = True

    def _disable_be(self) -> None:
        self.actuators.disable_be()
        self.state.growth_allowed = False
