"""Tests for repro.oslayer: cgroups, CFS model, NUMA, traffic control."""

import pytest

from repro.hardware.cpu import CoreId, CpuTopology
from repro.hardware.spec import default_machine_spec
from repro.oslayer.cgroups import CgroupManager
from repro.oslayer.numa import NumaPolicy
from repro.oslayer.scheduler import CfsModelParams, CfsSharedCoreModel
from repro.oslayer.traffic_control import HtbQdisc


@pytest.fixture
def topology():
    return CpuTopology(default_machine_spec())


@pytest.fixture
def manager(topology):
    return CgroupManager(topology)


class TestCgroups:
    def test_create_and_get(self, manager):
        manager.create("lc", [CoreId(0, 0, 0)], shares=2048)
        group = manager.get("lc")
        assert group.shares == 2048
        assert CoreId(0, 0, 0) in group.cpuset

    def test_duplicate_rejected(self, manager):
        manager.create("lc")
        with pytest.raises(ValueError):
            manager.create("lc")

    def test_unknown_thread_rejected(self, manager):
        with pytest.raises(ValueError):
            manager.create("x", [CoreId(9, 9, 9)])

    def test_remove(self, manager):
        manager.create("x")
        manager.remove("x")
        assert not manager.exists("x")
        with pytest.raises(KeyError):
            manager.remove("x")

    def test_set_shares_validates(self, manager):
        manager.create("x")
        with pytest.raises(ValueError):
            manager.set_shares("x", 1)

    def test_cores_by_socket(self, manager, topology):
        manager.create("lc", [CoreId(0, 0, 0), CoreId(0, 0, 1),
                              CoreId(1, 3, 0)])
        counts = manager.get("lc").cores_by_socket(topology)
        assert counts == {0: 1, 1: 1}

    def test_exclusive_physical_cores(self, manager):
        manager.create("lc", [CoreId(0, 0, 0), CoreId(0, 1, 0)])
        manager.create("be", [CoreId(0, 1, 1)])
        exclusive = manager.exclusive_physical_cores("lc")
        assert exclusive == {(0, 0)}

    def test_ht_share_fraction_disjoint(self, manager):
        manager.create("lc", [CoreId(0, 0, 0), CoreId(0, 0, 1)])
        manager.create("be", [CoreId(0, 1, 0), CoreId(0, 1, 1)])
        assert manager.ht_share_fraction("lc") == pytest.approx(0.0)

    def test_ht_share_fraction_siblings(self, manager):
        manager.create("lc", [CoreId(0, 0, 0), CoreId(0, 1, 0)])
        manager.create("be", [CoreId(0, 0, 1)])
        assert manager.ht_share_fraction("lc") == pytest.approx(0.5)

    def test_share_fraction(self, manager):
        manager.create("lc", shares=900)
        manager.create("be", shares=100)
        assert manager.share_fraction("lc") == pytest.approx(0.9)

    def test_overlapping_cores(self, manager):
        manager.create("a", [CoreId(0, 0, 0), CoreId(0, 1, 0)])
        manager.create("b", [CoreId(0, 1, 1)])
        assert manager.overlapping_physical_cores("a", "b") == {(0, 1)}


class TestCfsModel:
    def test_no_be_no_delay(self):
        cfs = CfsSharedCoreModel()
        assert cfs.tail_delay_ms(10, 0, 36, 0.98) == 0.0

    def test_delay_grows_with_lc_pressure(self):
        cfs = CfsSharedCoreModel()
        low = cfs.tail_delay_ms(4, 36, 36, 0.98)
        high = cfs.tail_delay_ms(30, 36, 36, 0.98)
        assert high > low

    def test_delay_is_milliseconds_scale(self):
        # The Leverich pathology: tens of milliseconds at the tail.
        cfs = CfsSharedCoreModel()
        delay = cfs.tail_delay_ms(18, 36, 36, 0.98)
        assert 5.0 < delay < 100.0

    def test_low_shares_do_not_eliminate_delay(self):
        cfs = CfsSharedCoreModel()
        tiny_shares = cfs.tail_delay_ms(10, 36, 36, lc_share=0.999)
        assert tiny_shares > 1.0

    def test_zero_cores(self):
        cfs = CfsSharedCoreModel()
        assert cfs.tail_delay_ms(1, 1, 0, 0.5) == 0.0

    def test_throughput_share_work_conserving(self):
        cfs = CfsSharedCoreModel()
        # BE soaks up idle capacity.
        share = cfs.throughput_share(6, 36, 36, 0.98)
        assert share > 0.7

    def test_throughput_share_zero_demand(self):
        cfs = CfsSharedCoreModel()
        assert cfs.throughput_share(6, 0, 36, 0.98) == 0.0


class TestNumaPolicy:
    def test_bind_and_query(self, topology):
        policy = NumaPolicy(topology)
        policy.bind_single_socket("be", 1)
        binding = policy.binding_of("be")
        assert binding.allows(1)
        assert not binding.allows(0)

    def test_bind_validates_socket(self, topology):
        policy = NumaPolicy(topology)
        with pytest.raises(ValueError):
            policy.bind("x", [5])
        with pytest.raises(ValueError):
            policy.bind("x", [])

    def test_unbind(self, topology):
        policy = NumaPolicy(topology)
        policy.bind("x", [0])
        policy.unbind("x")
        assert policy.binding_of("x") is None

    def test_least_loaded_socket(self, topology):
        policy = NumaPolicy(topology)
        assert policy.least_loaded_socket({0: 10, 1: 3}) == 1
        assert policy.least_loaded_socket({}) == 0

    def test_pick_cores_within_binding(self, topology):
        policy = NumaPolicy(topology)
        policy.bind_single_socket("be", 1)
        cores = policy.pick_cores("be", 4)
        assert len(cores) == 4
        assert all(c.socket == 1 and c.thread == 0 for c in cores)

    def test_pick_cores_avoids_occupied(self, topology):
        policy = NumaPolicy(topology)
        occupied = [CoreId(0, i, 0) for i in range(18)]
        cores = policy.pick_cores("x", 2, occupied=occupied)
        assert all(c.socket == 1 for c in cores)

    def test_pick_cores_overflow(self, topology):
        policy = NumaPolicy(topology)
        policy.bind_single_socket("be", 0)
        with pytest.raises(ValueError):
            policy.pick_cores("be", 19)


class TestHtbQdisc:
    def test_add_and_read(self):
        htb = HtbQdisc(10.0)
        htb.add_class("be", ceil_gbps=3.0)
        assert htb.ceil_of("be") == pytest.approx(3.0)

    def test_uncapped_class(self):
        htb = HtbQdisc(10.0)
        htb.add_class("lc")
        assert htb.ceil_of("lc") is None

    def test_unknown_class(self):
        htb = HtbQdisc(10.0)
        assert htb.ceil_of("ghost") is None
        with pytest.raises(KeyError):
            htb.set_ceil("ghost", 1.0)

    def test_negative_ceil_clamped_to_zero(self):
        # Algorithm 4 can compute a negative BE budget.
        htb = HtbQdisc(10.0)
        htb.add_class("be")
        htb.set_ceil("be", -5.0)
        assert htb.ceil_of("be") == pytest.approx(0.0)

    def test_ceil_clamped_to_link(self):
        htb = HtbQdisc(10.0)
        htb.add_class("be")
        htb.set_ceil("be", 50.0)
        assert htb.ceil_of("be") == pytest.approx(10.0)

    def test_rate_cannot_exceed_ceil(self):
        htb = HtbQdisc(10.0)
        with pytest.raises(ValueError):
            htb.add_class("bad", rate_gbps=5.0, ceil_gbps=2.0)

    def test_remove_class(self):
        htb = HtbQdisc(10.0)
        htb.add_class("be")
        htb.remove_class("be")
        assert htb.ceil_of("be") is None
        with pytest.raises(KeyError):
            htb.remove_class("be")

    def test_bad_link(self):
        with pytest.raises(ValueError):
            HtbQdisc(0.0)
