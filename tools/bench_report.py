#!/usr/bin/env python
"""Run the perf-gating benchmarks and write the BENCH_PR10.json report.

Usage: ``python tools/bench_report.py [--out BENCH_PR10.json] [--root DIR]``

Runs the telemetry benchmark (``benchmarks/test_bench_metrics.py`` —
history-memory and summary-speed gates), the batched-backend benchmark
(``benchmarks/test_bench_batch.py`` — cluster speedup and equivalence
gates), the sharded-fleet benchmark (``benchmarks/test_bench_fleet.py``
— cross-plan bit-identity plus the parallel wall-clock speedup gate),
the scheduler benchmark (``benchmarks/test_bench_sched.py`` —
slack-greedy vs static goodput at equal SLO), and the mega-fleet
benchmark (``benchmarks/test_bench_megafleet.py`` — mega-engine
bit-identity to the sharded reference plus the sequential-path speedup
gate), the checkpoint/spill benchmark
(``benchmarks/test_bench_checkpoint.py`` — the spilled-history peak-RSS
gate plus checkpoint save/restore round-trip timing), and the
observability benchmark (``benchmarks/test_bench_obs.py`` — the
disabled-path and trace-on overhead gates on the 1000-leaf mega run,
with the tick-phase breakdown); the benchmarks
that emit measurement detail as JSON are merged in.  Each suite's wall time and pass/fail land in one report so CI can
upload the perf trajectory as an artifact run over run.

The committed ``BENCH_PR*.json`` snapshots at the repo root are folded
into the report's ``trajectory`` section — discovered by glob, so every
future snapshot joins automatically; an unparsable snapshot degrades
to a warning, never a crash, so the report stays usable on partial
checkouts.

Exits non-zero if any benchmark gate fails; the report is written
either way so a failing run still leaves its numbers behind.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import re
import subprocess
import sys
import tempfile
import time

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))

#: The gating benchmarks whose wall time and verdicts the report records.
#: name -> (pytest file, extra env).  The fleet and scheduler benchmarks
#: must see REPRO_JOBS=0 (auto) so their sharded plans actually use the
#: pool.
BENCHES = (
    ("metrics", "benchmarks/test_bench_metrics.py", {}),
    ("batch", "benchmarks/test_bench_batch.py", {}),
    ("fleet", "benchmarks/test_bench_fleet.py", {"REPRO_JOBS": "0"}),
    ("sched", "benchmarks/test_bench_sched.py", {"REPRO_JOBS": "0"}),
    ("megafleet", "benchmarks/test_bench_megafleet.py",
     {"REPRO_JOBS": "1"}),
    ("checkpoint", "benchmarks/test_bench_checkpoint.py",
     {"REPRO_JOBS": "1"}),
    ("obs", "benchmarks/test_bench_obs.py", {"REPRO_JOBS": "1"}),
)

#: Benchmarks that write a JSON measurement detail file, keyed by the
#: environment variable naming the output path.
DETAIL_ENVS = {
    "metrics": "REPRO_BENCH_OUT",
    "fleet": "REPRO_BENCH_FLEET_OUT",
    "sched": "REPRO_BENCH_SCHED_OUT",
    "megafleet": "REPRO_BENCH_MEGAFLEET_OUT",
    "checkpoint": "REPRO_BENCH_CHECKPOINT_OUT",
    "obs": "REPRO_BENCH_OBS_OUT",
}


def trajectory_snapshots(root: str = ROOT) -> list:
    """Committed ``BENCH_PR<N>.json`` snapshots at ``root``, oldest first.

    Discovered by glob and ordered by PR number, so a new snapshot
    joins the trajectory the moment it is committed — the fixed tuple
    this replaces silently dropped every snapshot newer than itself.
    Files whose suffix is not a plain integer (``BENCH_PRx.json``,
    ``BENCH_PR5_old.json``) are not snapshots and are ignored.
    """
    pattern = re.compile(r"^BENCH_PR(\d+)\.json$")
    found = []
    for path in glob.glob(os.path.join(root, "BENCH_PR*.json")):
        match = pattern.match(os.path.basename(path))
        if match:
            found.append((int(match.group(1)), os.path.basename(path)))
    return [name for _, name in sorted(found)]


def run_bench(path: str, extra_env: dict) -> dict:
    """Run one benchmark file under pytest; return wall time + verdict."""
    env = dict(os.environ)
    env.update(extra_env)
    env["PYTHONPATH"] = (os.path.join(ROOT, "src")
                         + os.pathsep + env.get("PYTHONPATH", ""))
    env.setdefault("REPRO_JOBS", "1")
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-q", "-p", "no:cacheprovider",
         path],
        cwd=ROOT, env=env, capture_output=True, text=True)
    wall_s = time.perf_counter() - start
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout[-4000:] + proc.stderr[-4000:])
    return {"wall_s": round(wall_s, 2), "passed": proc.returncode == 0}


def load_trajectory(root: str = ROOT, exclude: str = "") -> dict:
    """Collect the committed BENCH_PR*.json snapshots, warning on gaps.

    A snapshot that is unparsable is reported to stderr and skipped —
    the trajectory is best-effort context, never a reason to fail the
    report run.  ``exclude`` names the report's own output path, which
    must not be folded into itself (the default output is
    ``BENCH_PR6.json``, the same filename as the newest snapshot).
    """
    trajectory = {}
    for name in trajectory_snapshots(root):
        path = os.path.join(root, name)
        if exclude and os.path.abspath(path) == os.path.abspath(exclude):
            continue
        try:
            with open(path, "r", encoding="utf-8") as handle:
                trajectory[name] = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"warning: cannot read perf snapshot {name} ({exc}); "
                  f"skipping it in the trajectory", file=sys.stderr)
    return trajectory


def resolve_out(out: str, root: str) -> str:
    """Anchor a relative report path at the repo root.

    The report must land (and self-exclude from the trajectory) next to
    the committed ``BENCH_PR*.json`` snapshots no matter where the
    script is invoked from — the old cwd-relative default scattered
    reports outside the repo when run from a subdirectory, and the
    newest committed snapshot was folded into the report that was about
    to overwrite it.
    """
    return out if os.path.isabs(out) \
        else os.path.join(os.path.abspath(root), out)


def main(argv=None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_PR10.json",
                        help="report path; a relative path is anchored at "
                             "--root, not the caller's cwd (default: "
                             "<root>/BENCH_PR10.json)")
    parser.add_argument("--root", default=ROOT,
                        help="repository root the benchmarks and the "
                             "snapshot trajectory are read from "
                             "(default: the checkout containing this "
                             "script)")
    args = parser.parse_args(argv)
    root = os.path.abspath(args.root)
    out = resolve_out(args.out, root)

    report = {"report": "BENCH_PR10", "benches": {}}
    with tempfile.TemporaryDirectory() as tmp:
        for name, path, env in BENCHES:
            extra = dict(env)
            detail_path = None
            if name in DETAIL_ENVS:
                detail_path = os.path.join(tmp, f"{name}_detail.json")
                extra[DETAIL_ENVS[name]] = detail_path
            print(f"running {path} ...", flush=True)
            report["benches"][name] = run_bench(path, extra)
            if detail_path and not os.path.exists(detail_path):
                print(f"warning: benchmark {name!r} emitted no detail "
                      f"JSON ({DETAIL_ENVS[name]}); recording verdict "
                      f"only", file=sys.stderr)
            elif detail_path:
                with open(detail_path, "r", encoding="utf-8") as handle:
                    report["benches"][name].update(json.load(handle))

    report["trajectory"] = load_trajectory(root=root, exclude=out)
    report["tests_passed"] = all(b["passed"]
                                 for b in report["benches"].values())
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {out}")
    for name, bench in report["benches"].items():
        verdict = "ok" if bench["passed"] else "FAILED"
        print(f"  {name}: {verdict} in {bench['wall_s']}s")
    return 0 if report["tests_passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
