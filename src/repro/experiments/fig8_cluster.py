"""Figure 8: the 12-hour websearch cluster under Heracles.

Tens of leaves behind a fan-out root, a diurnal 20%-90% load trace,
brain on half the leaves and streetview on the other half.  Reported:

* root latency (µ/30s) vs the cluster SLO, baseline and Heracles — the
  paper shows no violations and slack reduced by 20-30%;
* cluster EMU over the trace — "an average EMU of 90% and a minimum of
  80%" for the paper's hardware; our simulated substrate lands close
  (~0.8 average) with the same no-violation property.

The full-fidelity run is 12 simulated hours; ``time_compression``
shrinks the trace period for quick looks (controller dynamics stay at
real speed, so heavy compression makes the controller look artificially
sluggish — use 1 for the faithful experiment).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cluster.cluster import ClusterHistory, WebsearchCluster
from ..hardware.spec import MachineSpec
from ..workloads.traces import DiurnalTrace


@dataclass
class Fig8Result:
    managed: ClusterHistory
    baseline: ClusterHistory
    root_slo_ms: float

    @property
    def heracles_max_slo(self) -> float:
        return self.managed.max_root_slo_fraction(skip_s=600.0)

    @property
    def baseline_max_slo(self) -> float:
        return self.baseline.max_root_slo_fraction(skip_s=600.0)

    @property
    def heracles_mean_emu(self) -> float:
        return self.managed.mean_emu(skip_s=600.0)

    @property
    def baseline_mean_emu(self) -> float:
        return self.baseline.mean_emu(skip_s=600.0)


def run_fig8(leaves: int = 12,
             duration_s: float = 12 * 3600.0,
             time_compression: float = 1.0,
             spec: Optional[MachineSpec] = None,
             seed: int = 7) -> Fig8Result:
    """Run the cluster trace with and without Heracles."""
    if time_compression < 1.0:
        raise ValueError("compression must be >= 1")
    period = 12 * 3600.0 / time_compression
    duration = duration_s / time_compression

    def make_trace() -> DiurnalTrace:
        return DiurnalTrace(low=0.20, high=0.90, period_s=period,
                            noise_sigma=0.02, seed=seed)

    managed = WebsearchCluster(leaves=leaves, spec=spec, trace=make_trace(),
                               managed=True, seed=seed)
    managed_history = managed.run(duration)
    baseline = WebsearchCluster(leaves=leaves, spec=spec, trace=make_trace(),
                                managed=False, seed=seed)
    baseline_history = baseline.run(duration)
    return Fig8Result(managed=managed_history, baseline=baseline_history,
                      root_slo_ms=managed.root_slo_ms)


def main() -> None:
    result = run_fig8(leaves=8)
    print(f"root SLO: {result.root_slo_ms:.1f} ms")
    print(f"Heracles: max latency {result.heracles_max_slo * 100:.0f}% of "
          f"SLO, mean EMU {result.heracles_mean_emu * 100:.0f}%")
    print(f"baseline: max latency {result.baseline_max_slo * 100:.0f}% of "
          f"SLO, mean EMU {result.baseline_mean_emu * 100:.0f}%")


if __name__ == "__main__":
    main()
