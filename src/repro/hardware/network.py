"""NIC egress link: per-flow fair sharing with optional class ceilings.

Within a server, outgoing network interference happens when flows from a
BE task compete with the LC workload's responses on the transmit link.
Absent traffic control, the link is shared per-flow (TCP converges to
approximate per-flow fairness), which is why "many low-bandwidth mice
flows" from an antagonist can overwhelm an LC task even though each flow
is tiny (§3.2).  With Linux ``tc`` HTB classes, each class is limited to
its ``ceil`` rate (§4.1); this module resolves achieved bandwidth under
both regimes with weighted max-min fairness.

Latency effect: once an LC task's achieved egress bandwidth falls below
its demand, responses queue behind the link.  The resulting delay factor
is computed by the perf layer from the achieved/demanded ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass
class FlowDemand:
    """Egress traffic offered by one task.

    Attributes:
        task: owner name.
        demand_gbps: offered egress load.
        flows: number of concurrent TCP flows carrying that load.  Under
            per-flow fairness, a task's share of a congested link is
            proportional to its flow count — mice-flow antagonists exploit
            exactly that.
        ceil_gbps: HTB class ceiling applied to this task, or None.
    """

    task: str
    demand_gbps: float
    flows: int = 1
    ceil_gbps: Optional[float] = None

    def validate(self) -> None:
        if self.demand_gbps < 0:
            raise ValueError("demand must be non-negative")
        if self.flows < 1:
            raise ValueError("flow count must be >= 1")
        if self.ceil_gbps is not None and self.ceil_gbps < 0:
            raise ValueError("ceil must be non-negative")


@dataclass
class FlowGrant:
    """Achieved egress bandwidth for one task."""

    task: str
    achieved_gbps: float
    demand_gbps: float

    @property
    def satisfaction(self) -> float:
        """achieved/demand in [0, 1]; 1.0 when nothing was demanded."""
        if self.demand_gbps <= 0:
            return 1.0
        return min(1.0, self.achieved_gbps / self.demand_gbps)


@dataclass
class LinkResolution:
    """Result of sharing the egress link for one interval."""

    link_gbps: float
    total_demand_gbps: float
    total_achieved_gbps: float
    grants: List[FlowGrant]

    def grant_for(self, task: str) -> FlowGrant:
        for g in self.grants:
            if g.task == task:
                return g
        raise KeyError(task)

    @property
    def utilization(self) -> float:
        return min(1.0, self.total_achieved_gbps / self.link_gbps)


class EgressLink:
    """One NIC transmit link."""

    def __init__(self, link_gbps: float):
        if link_gbps <= 0:
            raise ValueError("link rate must be positive")
        self.link_gbps = link_gbps
        self._last = LinkResolution(link_gbps, 0.0, 0.0, [])

    def resolve(self, demands: List[FlowDemand]) -> LinkResolution:
        """Weighted max-min fair allocation with per-task ceilings.

        Weights are flow counts (per-flow fairness).  Each task's
        allocation is bounded by min(demand, ceil); leftover capacity is
        redistributed among still-unsatisfied tasks until the link is full
        or every demand is met.
        """
        for d in demands:
            d.validate()
        limits = {}
        for d in demands:
            limit = d.demand_gbps
            if d.ceil_gbps is not None:
                limit = min(limit, d.ceil_gbps)
            limits[d.task] = limit

        alloc = {d.task: 0.0 for d in demands}
        capacity = self.link_gbps
        active = [d for d in demands if limits[d.task] > 0]
        for _ in range(len(demands) + 1):
            if not active or capacity <= 1e-12:
                break
            wsum = sum(d.flows for d in active)
            spent = 0.0
            next_active = []
            for d in active:
                grant = capacity * d.flows / wsum
                room = limits[d.task] - alloc[d.task]
                take = min(grant, room)
                alloc[d.task] += take
                spent += take
                if limits[d.task] - alloc[d.task] > 1e-12:
                    next_active.append(d)
            capacity -= spent
            if spent <= 1e-12:
                break
            active = next_active

        grants = [FlowGrant(task=d.task,
                            achieved_gbps=alloc[d.task],
                            demand_gbps=d.demand_gbps)
                  for d in demands]
        self._last = LinkResolution(
            link_gbps=self.link_gbps,
            total_demand_gbps=sum(d.demand_gbps for d in demands),
            total_achieved_gbps=sum(alloc.values()),
            grants=grants,
        )
        return self._last

    @property
    def last_resolution(self) -> LinkResolution:
        return self._last

    def measured_tx_gbps(self) -> float:
        """Counter read: total transmit bandwidth last interval."""
        return self._last.total_achieved_gbps

    def per_task_tx_gbps(self) -> Dict[str, float]:
        return {g.task: g.achieved_gbps for g in self._last.grants}
