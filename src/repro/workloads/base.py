"""Workload abstractions: allocations, profiles, and the demand protocol.

A workload is a pure model: given its offered load and the resources it
has been allocated, it reports (a) what it demands from the server this
tick (:class:`~repro.hardware.server.TaskTickDemand`) and (b) how it
performs given what the server actually granted (tail latency for LC
workloads, normalized throughput for BE tasks).

Placement decisions — which cores, which CAT partition, which DVFS cap,
which HTB class — live in :class:`Allocation`, owned by the engine and
mutated by whatever controller is in charge.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from ..hardware.cache import CacheDemand
from ..hardware.server import DEFAULT_COS, TaskTickDemand
from ..hardware.spec import MachineSpec


@dataclass
class Allocation:
    """Resources currently granted to one task.

    Attributes:
        cores_by_socket: physical cores owned per socket.
        cache_cos: CAT class the task allocates into (partition sizes are
            configured on the server's :class:`CatController`).
        dvfs_cap_ghz: per-core frequency cap, None = uncapped.
        net_ceil_gbps: HTB ceiling, None = uncapped (the LC class).
        ht_share_fraction: fraction of the task's hardware threads whose
            sibling runs a foreign task.  Zero under Heracles (disjoint
            physical cores); nonzero for the HyperThread antagonist and
            the OS-isolation baseline.
        dram_throttle: MBA-style DRAM request-rate throttle in (0, 1].
    """

    cores_by_socket: Dict[int, int] = field(default_factory=dict)
    cache_cos: str = DEFAULT_COS
    dvfs_cap_ghz: Optional[float] = None
    net_ceil_gbps: Optional[float] = None
    ht_share_fraction: float = 0.0
    dram_throttle: float = 1.0

    @property
    def total_cores(self) -> int:
        return sum(self.cores_by_socket.values())

    def with_cores(self, cores_by_socket: Dict[int, int]) -> "Allocation":
        return replace(self, cores_by_socket=dict(cores_by_socket))

    def sockets_in_use(self):
        return sorted(s for s, n in self.cores_by_socket.items() if n > 0)


def split_across_sockets(total: float, alloc: Allocation) -> Dict[int, float]:
    """Split a machine-wide quantity across sockets, weighted by cores."""
    sockets = alloc.sockets_in_use()
    if not sockets:
        return {}
    weight = {s: alloc.cores_by_socket[s] for s in sockets}
    wsum = sum(weight.values())
    return {s: total * weight[s] / wsum for s in sockets}


def spread_cores(total_cores: int, spec: MachineSpec) -> Dict[int, int]:
    """Distribute ``total_cores`` across sockets as evenly as possible."""
    if total_cores < 0:
        raise ValueError("core count must be non-negative")
    if total_cores > spec.total_cores:
        raise ValueError(f"machine has only {spec.total_cores} cores")
    base = total_cores // spec.sockets
    extra = total_cores % spec.sockets
    return {s: base + (1 if s < extra else 0) for s in range(spec.sockets)}


def pack_cores(total_cores: int, spec: MachineSpec) -> Dict[int, int]:
    """Fill socket 0 first, then socket 1, ... (the BE NUMA policy)."""
    if total_cores < 0:
        raise ValueError("core count must be non-negative")
    if total_cores > spec.total_cores:
        raise ValueError(f"machine has only {spec.total_cores} cores")
    out = {}
    left = total_cores
    for s in range(spec.sockets):
        take = min(left, spec.socket.cores)
        out[s] = take
        left -= take
    return out


def cache_demand_for(task: str, alloc: Allocation, spec: MachineSpec,
                     hot_mb: float, bulk_mb: float, access_gbps: float,
                     hot_access_fraction: float,
                     bulk_reuse: float) -> Dict[int, CacheDemand]:
    """Build per-socket cache demands for a task, split by core weight."""
    sockets = alloc.sockets_in_use()
    if not sockets:
        return {}
    wsum = sum(alloc.cores_by_socket[s] for s in sockets)
    out = {}
    for s in sockets:
        w = alloc.cores_by_socket[s] / wsum
        out[s] = CacheDemand(
            task=task,
            hot_mb=hot_mb * w,
            bulk_mb=bulk_mb * w,
            access_gbps=access_gbps * w,
            hot_access_fraction=hot_access_fraction,
            bulk_reuse=bulk_reuse,
        )
    return out
