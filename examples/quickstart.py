#!/usr/bin/env python3
"""Quickstart: colocate Google-style websearch with a batch job.

Builds one simulated dual-socket server running the websearch leaf at
50% load, starts the `brain` deep-learning batch task next to it under
the Heracles controller, and reports what the paper's Figure 4/5 report:
worst-case tail latency vs the SLO, and effective machine utilization.

Run:
    python examples/quickstart.py
"""

from repro import HeraclesController, build_colocation


def main() -> None:
    sim = build_colocation("websearch", "brain", load=0.50, seed=42)
    HeraclesController.for_sim(sim)

    history = sim.run(900)  # 15 simulated minutes

    worst = history.worst_window_slo(skip_s=240)
    emu = history.mean_emu(skip_s=240)
    final = history.last()

    print("websearch + brain under Heracles (load 50%)")
    print(f"  worst 60s tail latency : {worst * 100:.0f}% of SLO "
          f"({'OK' if worst <= 1.0 else 'VIOLATION'})")
    print(f"  effective machine util : {emu * 100:.0f}% "
          f"(LC alone would be 50%)")
    print(f"  final BE allocation    : {final.be_cores} cores, "
          f"{final.be_llc_ways} LLC ways, "
          f"DVFS cap {final.be_dvfs_cap_ghz or 'none'}")
    print(f"  DRAM bandwidth         : {final.dram_bw_gbps:.0f} GB/s "
          f"({final.dram_utilization * 100:.0f}% of the busiest socket)")


if __name__ == "__main__":
    main()
