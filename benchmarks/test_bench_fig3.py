"""Regenerates Figure 3: websearch max load under SLO vs (cores, LLC)."""

from conftest import regenerate

from repro.experiments.fig3_convexity import run_fig3


def test_bench_fig3_convexity_surface(benchmark):
    surface = regenerate(
        benchmark, run_fig3,
        core_fractions=(0.1, 0.25, 0.5, 0.75, 1.0),
        way_fractions=(0.1, 0.25, 0.5, 0.75, 1.0))
    print()
    print(f"Max load under SLO — {surface.lc_name}")
    header = "cores\\ways " + " ".join(f"{w:>5d}" for w in surface.way_counts)
    print(header)
    for i, cores in enumerate(surface.core_counts):
        row = " ".join(f"{surface.max_load[i, j] * 100:>4.0f}%"
                       for j in range(len(surface.way_counts)))
        print(f"{cores:>10d} {row}")
    assert surface.is_monotone_nondecreasing()
    assert surface.max_load[-1, -1] > 0.9
