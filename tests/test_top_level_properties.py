"""Property-style state-machine tests for the top-level controller.

Algorithm 1 is a small state machine over (latency slack, load); its
safety properties must hold for *any* input sequence, not just the
trajectories the simulator happens to produce.  We drive the controller
with randomized latency/load streams — interleaved with random
subcontroller-like core grants — and assert the invariants after every
poll:

* BE execution is never enabled while a post-violation cooldown is in
  effect;
* growth is never allowed when the controller's own slack reading is
  below ``slack_no_growth``;
* the slack-cut action never drops BE cores below ``be_cores_floor``
  (and always lands exactly on the floor when it fires);
* a negative-slack poll always disables BE and enters cooldown.
"""

import numpy as np
import pytest

from repro.core.config import HeraclesConfig
from repro.core.state import ControlState
from repro.core.top_level import TopLevelController
from repro.hardware.server import Server
from repro.hardware.spec import default_machine_spec
from repro.sim.actuators import Actuators
from repro.sim.monitors import LatencyMonitor

SLO_MS = 20.0


def make_controller(config=None):
    config = config or HeraclesConfig()
    server = Server(default_machine_spec())
    actuators = Actuators(server)
    monitor = LatencyMonitor()
    state = ControlState()
    controller = TopLevelController(config, state, actuators, monitor,
                                    slo_target_ms=SLO_MS)
    return controller, state, actuators, monitor


def random_walk(rng, steps, poll_period_s):
    """One randomized episode; yields (t, latency_ms, load) samples.

    Latency wanders across the whole interesting range — deep in the
    green band, inside the no-growth band, just under the SLO, and past
    it — and load sweeps through both hysteresis thresholds.
    """
    latency = rng.uniform(0.3, 0.9) * SLO_MS
    load = rng.uniform(0.2, 0.7)
    for t in range(steps):
        latency = float(np.clip(latency + rng.normal(0.0, 0.08) * SLO_MS,
                                0.05 * SLO_MS, 1.6 * SLO_MS))
        load = float(np.clip(load + rng.normal(0.0, 0.02), 0.0, 1.0))
        yield float(t), latency, load


@pytest.mark.parametrize("episode_seed", range(12))
def test_top_level_invariants_hold_on_random_sequences(episode_seed):
    rng = np.random.default_rng(1000 + episode_seed)
    config = HeraclesConfig(cooldown_s=60.0)
    controller, state, actuators, monitor = make_controller(config)

    for t, latency, load in random_walk(rng, steps=600,
                                        poll_period_s=config.poll_period_s):
        monitor.record(t, latency, load)

        # A "subcontroller" randomly grows BE between polls, so the
        # controller faces arbitrary core counts when a cut fires.
        if actuators.be_enabled and state.growth_allowed and rng.random() < 0.3:
            for _ in range(rng.integers(1, 4)):
                actuators.add_be_core()

        due = controller.due(t)
        polled_latency = monitor.poll_latency_ms(t)
        polled_load = monitor.poll_load(t)
        cores_before = actuators.be_cores
        enabled_before = actuators.be_enabled

        controller.step(t)

        if not due or polled_latency is None or polled_load is None:
            continue
        slack = (SLO_MS - polled_latency) / SLO_MS

        # Invariant: negative slack -> BE disabled, cooldown entered.
        if slack < 0:
            assert not actuators.be_enabled
            assert state.in_cooldown(t + 1e-9)
            assert not state.growth_allowed

        # Invariant: BE never enabled during a cooldown.  (Only the
        # top-level controller may enable BE.)
        if state.in_cooldown(t) and not enabled_before:
            assert not actuators.be_enabled

        # Invariant: growth is never allowed with slack below the
        # no-growth band (the controller's own digested reading).
        if state.growth_allowed:
            assert state.slack >= config.slack_no_growth

        # Invariant: the slack cut lands exactly on the floor and
        # never below it.
        if (enabled_before and actuators.be_enabled
                and actuators.be_cores < cores_before):
            assert cores_before > config.be_cores_floor
            assert actuators.be_cores == config.be_cores_floor

        # Invariant: high load always disables BE.
        if slack >= 0 and polled_load > config.load_disable_threshold:
            assert not actuators.be_enabled


def test_cooldown_blocks_reenable_until_expiry():
    config = HeraclesConfig(cooldown_s=120.0, poll_period_s=15.0)
    controller, state, actuators, monitor = make_controller(config)
    # Healthy start: low load, low latency -> BE comes on.
    monitor.record(0.0, 5.0, 0.5)
    controller.step(0.0)
    assert actuators.be_enabled
    # Violation -> disable + cooldown.
    monitor.record(15.0, 30.0, 0.5)
    controller.step(15.0)
    assert not actuators.be_enabled
    assert state.in_cooldown(16.0)
    # Healthy polls inside the cooldown must NOT re-enable.
    t = 15.0
    while t + 15.0 < 15.0 + 120.0:
        t += 15.0
        monitor.record(t, 5.0, 0.5)
        controller.step(t)
        assert not actuators.be_enabled, f"re-enabled at t={t} in cooldown"
    # First healthy poll after expiry re-enables.
    t = 15.0 + 120.0 + 15.0
    monitor.record(t, 5.0, 0.5)
    controller.step(t)
    assert actuators.be_enabled


def test_slack_cut_is_noop_at_or_below_floor():
    config = HeraclesConfig()
    controller, state, actuators, monitor = make_controller(config)
    monitor.record(0.0, 5.0, 0.5)
    controller.step(0.0)
    assert actuators.be_enabled
    actuators.set_be_cores(config.be_cores_floor)
    # Slack inside (cut, no-growth): growth disallowed, no cut below floor.
    latency = SLO_MS * (1.0 - 0.5 * config.slack_cut_cores)
    monitor.record(15.0, latency, 0.5)
    controller.step(15.0)
    assert actuators.be_cores == config.be_cores_floor
    assert not state.growth_allowed


def test_load_hysteresis_band_keeps_be_state():
    """Inside [enable, disable] the BE on/off state must not flap."""
    config = HeraclesConfig()
    controller, state, actuators, monitor = make_controller(config)
    monitor.record(0.0, 5.0, 0.5)
    controller.step(0.0)
    assert actuators.be_enabled
    mid_load = (config.load_enable_threshold
                + config.load_disable_threshold) / 2.0
    monitor.record(15.0, 5.0, mid_load)
    controller.step(15.0)
    assert actuators.be_enabled  # still on: did not cross disable
    # Force off via high load, then mid-band load must not re-enable.
    monitor.record(30.0, 5.0, 0.99)
    controller.step(30.0)
    assert not actuators.be_enabled
    monitor.record(45.0, 5.0, mid_load)
    controller.step(45.0)
    assert not actuators.be_enabled
