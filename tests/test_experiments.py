"""Integration tests: each paper figure's headline claims hold.

These use reduced grids (coarser load axes, shorter runs) so the suite
stays fast; the benchmarks regenerate the full-resolution artefacts.
"""

import pytest

from repro.experiments.common import baseline_cell, characterization_cell
from repro.experiments.fig1_interference import (InterferenceTable, classify,
                                                 run_fig1)
from repro.experiments.fig3_convexity import max_load_under_slo, run_fig3
from repro.experiments.fig4_latency_slo import run_sweep
from repro.experiments.fig7_network_bw import run_fig7
from repro.experiments.tco_table import run_tco_table
from repro.workloads.latency_critical import make_lc_workload


class TestClassify:
    def test_categories(self):
        assert classify(0.8) == "ok"
        assert classify(1.0) == "ok"
        assert classify(1.1) == "mild"
        assert classify(1.2) == "severe"
        assert classify(9.9) == "severe"


@pytest.fixture(scope="module")
def fig1_tables():
    loads = [0.10, 0.30, 0.50, 0.70, 0.90, 0.95]
    return run_fig1(loads=loads), loads


class TestFig1Claims:
    """The §3.3 interference analysis, one claim per test."""

    def test_os_isolation_inadequate(self, fig1_tables):
        # brain under CFS shares violates at (nearly) every load for
        # every workload.
        tables, loads = fig1_tables
        for table in tables.values():
            violations = sum(table.cell("brain", l) > 1.0 for l in loads)
            assert violations >= len(loads) - 1

    def test_llc_big_catastrophic_at_low_load(self, fig1_tables):
        tables, _ = fig1_tables
        for table in tables.values():
            assert table.cell("LLC (big)", 0.10) > 1.0

    def test_llc_and_dram_interference_fade_with_load(self, fig1_tables):
        # "As the load increases, the impact of LLC and DRAM
        # interference decreases" (the LC workload defends its share).
        # For websearch/memkeyval the paper shows a return to ~100% at
        # 90-95% load; for ml_cluster the cells stay red (~205-225%)
        # because its own super-linear DRAM demand keeps the channels
        # saturated — we assert that distinction.
        tables, _ = fig1_tables
        for name in ("websearch", "memkeyval"):
            for row in ("LLC (big)", "DRAM"):
                assert (tables[name].cell(row, 0.90)
                        < tables[name].cell(row, 0.10))
                assert tables[name].cell(row, 0.90) < 1.5
        for row in ("LLC (big)", "DRAM"):
            assert tables["ml_cluster"].cell(row, 0.90) > 1.2

    def test_websearch_tolerates_small_llc(self, fig1_tables):
        tables, loads = fig1_tables
        ws = tables["websearch"]
        assert all(ws.cell("LLC (small)", l) <= 1.0 for l in loads)

    def test_ml_cluster_hurt_by_medium_llc_at_mid_load(self, fig1_tables):
        tables, _ = fig1_tables
        ml = tables["ml_cluster"]
        assert ml.cell("LLC (med)", 0.50) > 1.0
        assert ml.cell("LLC (med)", 0.10) <= 1.0

    def test_hyperthread_explodes_only_at_high_load(self, fig1_tables):
        tables, _ = fig1_tables
        for table in tables.values():
            assert table.cell("HyperThread", 0.95) > 1.2
            assert table.cell("HyperThread", 0.30) < 1.2

    def test_power_virus_worst_at_low_load_for_websearch(self, fig1_tables):
        tables, _ = fig1_tables
        ws = tables["websearch"]
        assert ws.cell("CPU power", 0.10) > ws.cell("CPU power", 0.90)

    def test_network_hurts_only_memkeyval(self, fig1_tables):
        tables, loads = fig1_tables
        assert tables["memkeyval"].cell("Network", 0.70) > 3.0
        for name in ("websearch", "ml_cluster"):
            values = [tables[name].cell("Network", l) for l in loads[:-1]]
            assert all(v <= 1.0 for v in values)

    def test_render_includes_all_rows(self, fig1_tables):
        tables, _ = fig1_tables
        text = tables["websearch"].render()
        for row in ("LLC (small)", "DRAM", "HyperThread", "CPU power",
                    "Network", "brain"):
            assert row in text


class TestCharacterizationMachinery:
    def test_baseline_cell_reasonable(self):
        lc = make_lc_workload("websearch")
        low = baseline_cell(lc, 0.1)
        high = baseline_cell(lc, 0.9)
        assert 0.1 < low < 0.6
        assert low < high <= 1.0

    def test_cell_records_placement(self):
        from repro.workloads.antagonists import antagonist_by_label
        lc = make_lc_workload("websearch")
        spec = antagonist_by_label("DRAM")
        result = characterization_cell(lc, spec, 0.5)
        assert result.lc_cores + result.antagonist_cores == 36
        assert result.antagonist == "DRAM"


class TestFig3Claims:
    def test_surface_monotone(self):
        surface = run_fig3(core_fractions=(0.25, 0.5, 1.0),
                           way_fractions=(0.25, 0.5, 1.0))
        assert surface.is_monotone_nondecreasing()

    def test_full_allocation_approaches_peak(self):
        lc = make_lc_workload("websearch")
        assert max_load_under_slo(lc, 36, 20) > 0.9

    def test_starved_allocation_is_low(self):
        lc = make_lc_workload("websearch")
        assert max_load_under_slo(lc, 4, 20) < 0.25

    def test_bad_args(self):
        lc = make_lc_workload("websearch")
        with pytest.raises(ValueError):
            max_load_under_slo(lc, 0, 20)
        with pytest.raises(ValueError):
            max_load_under_slo(lc, 4, 99)


@pytest.fixture(scope="module")
def ws_sweep():
    return run_sweep("websearch", be_tasks=("brain", "streetview"),
                     loads=(0.2, 0.5, 0.8), duration_s=600.0)


class TestFig4And5Claims:
    def test_no_slo_violations_under_heracles(self, ws_sweep):
        # The paper's headline: zero violations at any load with any BE.
        for be_name in ws_sweep.results:
            assert ws_sweep.no_violations(be_name), be_name

    def test_emu_exceeds_baseline(self, ws_sweep):
        for be_name in ws_sweep.results:
            emu = ws_sweep.emu_series(be_name)
            for value, load in zip(emu, ws_sweep.loads):
                assert value >= load - 0.05

    def test_brain_emu_at_least_75_percent_somewhere(self, ws_sweep):
        # "websearch and brain ... at least 75%" on average in the paper;
        # our substrate lands in that band at mid/high loads.
        assert max(ws_sweep.emu_series("brain")) >= 0.70

    def test_baseline_column_present(self, ws_sweep):
        assert len(ws_sweep.baseline_slo) == len(ws_sweep.loads)
        assert all(0 < v <= 1.0 for v in ws_sweep.baseline_slo)


class TestFig7Claims:
    @pytest.fixture(scope="class")
    def points(self):
        return run_fig7(loads=(0.2, 0.5, 0.8), duration_s=600.0)

    def test_memkeyval_protected(self, points):
        assert all(p.worst_slo <= 1.0 for p in points)

    def test_lc_bandwidth_grows_with_load(self, points):
        lc = [p.lc_gbps for p in points]
        assert lc == sorted(lc)

    def test_be_bandwidth_shrinks_with_load(self, points):
        assert points[-1].be_gbps < points[0].be_gbps

    def test_link_never_oversubscribed(self, points):
        assert all(p.total_gbps <= 10.0 + 1e-6 for p in points)


class TestTcoTable:
    def test_rows_and_ordering(self):
        rows = run_tco_table()
        assert [r.baseline_utilization for r in rows] == [0.75, 0.50, 0.20]
        gains = [r.heracles_gain for r in rows]
        assert gains == sorted(gains)  # lower baseline -> bigger gain

    def test_heracles_beats_energy_prop_everywhere(self):
        for row in run_tco_table():
            assert row.heracles_gain > row.energy_prop_gain
