"""Tests for repro.hardware.server: whole-server contention resolution."""

import pytest

from repro.hardware.cache import CacheDemand
from repro.hardware.server import DEFAULT_COS, Server, TaskTickDemand
from repro.hardware.spec import default_machine_spec


@pytest.fixture
def server():
    return Server(default_machine_spec())


def lc_demand(name="lc", cores=9, activity=0.5, **kwargs):
    return TaskTickDemand(
        task=name,
        cores_by_socket={0: cores, 1: cores},
        activity=activity,
        **kwargs,
    )


class TestResolveBasics:
    def test_single_task(self, server):
        usages = server.resolve([lc_demand()])
        usage = usages["lc"]
        assert usage.cores == 18
        assert usage.freq_ghz > 2.0
        assert usage.mem_delay_factor >= 1.0
        assert usage.net_satisfaction == pytest.approx(1.0)

    def test_duplicate_names_rejected(self, server):
        with pytest.raises(ValueError):
            server.resolve([lc_demand(), lc_demand()])

    def test_invalid_socket_rejected(self, server):
        demand = TaskTickDemand(task="x", cores_by_socket={7: 1},
                                activity=0.5)
        with pytest.raises(ValueError):
            server.resolve([demand])

    def test_too_many_cores_rejected(self, server):
        demand = TaskTickDemand(task="x", cores_by_socket={0: 99},
                                activity=0.5)
        with pytest.raises(ValueError):
            server.resolve([demand])

    def test_usage_lookup(self, server):
        server.resolve([lc_demand()])
        assert server.usage_of("lc").task == "lc"
        with pytest.raises(KeyError):
            server.usage_of("ghost")


class TestCacheIntegration:
    def test_default_cos_shares_whole_llc(self, server):
        demand = lc_demand(cache_by_socket={
            0: CacheDemand("lc", hot_mb=10, access_gbps=5,
                           hot_access_fraction=1.0),
        })
        usages = server.resolve([demand])
        assert usages["lc"].hot_coverage == pytest.approx(1.0)

    def test_partition_bounds_occupancy(self, server):
        server.cat[0].set_partition("small", 2)  # 4.5 MB
        demand = TaskTickDemand(
            task="lc", cores_by_socket={0: 9}, activity=0.5,
            cache_by_socket={0: CacheDemand("lc", hot_mb=20, access_gbps=5,
                                            hot_access_fraction=1.0)},
            cache_cos="small")
        usages = server.resolve([demand])
        assert usages["lc"].hot_coverage == pytest.approx(4.5 / 20.0)

    def test_misses_feed_dram(self, server):
        # A task whose working set exceeds its partition generates DRAM
        # traffic from the misses.
        server.cat[0].set_partition("tiny", 2)
        demand = TaskTickDemand(
            task="x", cores_by_socket={0: 9}, activity=0.5,
            cache_by_socket={0: CacheDemand("x", bulk_mb=100, access_gbps=30,
                                            bulk_reuse=1.0)},
            cache_cos="tiny")
        usages = server.resolve([demand])
        assert usages["x"].dram_demand_gbps > 20.0


class TestMemoryIntegration:
    def test_uncached_traffic_counted(self, server):
        demand = lc_demand(uncached_dram_gbps_by_socket={0: 30.0, 1: 30.0})
        server.resolve([demand])
        assert server.telemetry.total_dram_gbps == pytest.approx(60.0)

    def test_socket_saturation_visible_in_telemetry(self, server):
        demand = TaskTickDemand(task="hog", cores_by_socket={0: 18},
                                activity=0.5,
                                uncached_dram_gbps_by_socket={0: 100.0})
        server.resolve([demand])
        assert server.telemetry.max_dram_utilization == pytest.approx(1.0)
        assert server.telemetry.sockets[1].dram_utilization < 0.01

    def test_delay_factor_propagates(self, server):
        hog = TaskTickDemand(task="hog", cores_by_socket={0: 17},
                             activity=0.5,
                             uncached_dram_gbps_by_socket={0: 100.0})
        victim = TaskTickDemand(task="victim", cores_by_socket={0: 1},
                                activity=0.5,
                                uncached_dram_gbps_by_socket={0: 1.0})
        usages = server.resolve([hog, victim])
        assert usages["victim"].mem_delay_factor > 1.5


class TestPowerIntegration:
    def test_rapl_meter_updates(self, server):
        server.resolve([lc_demand(activity=1.0, cores=18)])
        assert server.rapl[0].read_watts() > 50.0

    def test_turbo_drops_with_contention(self, server):
        alone = Server(default_machine_spec())
        u1 = alone.resolve([lc_demand(cores=4, activity=0.5)])
        contended = Server(default_machine_spec())
        virus = TaskTickDemand(task="virus",
                               cores_by_socket={0: 14, 1: 14},
                               activity=2.2)
        u2 = contended.resolve([lc_demand(cores=4, activity=0.5), virus])
        assert u2["lc"].freq_ghz < u1["lc"].freq_ghz

    def test_dvfs_cap_passes_through(self, server):
        demand = lc_demand(dvfs_cap_ghz=1.5)
        usages = server.resolve([demand])
        assert usages["lc"].freq_ghz == pytest.approx(1.5)


class TestNetworkIntegration:
    def test_ceil_passes_through(self, server):
        demand = lc_demand(net_demand_gbps=8.0, net_ceil_gbps=2.0)
        usages = server.resolve([demand])
        assert usages["lc"].net_achieved_gbps == pytest.approx(2.0)
        assert usages["lc"].net_satisfaction == pytest.approx(0.25)

    def test_link_telemetry(self, server):
        server.resolve([lc_demand(net_demand_gbps=5.0)])
        assert server.telemetry.link_tx_gbps == pytest.approx(5.0)
        assert server.telemetry.link_utilization == pytest.approx(0.5)


class TestTelemetry:
    def test_cpu_utilization(self, server):
        server.resolve([lc_demand(cores=9)])  # 18 of 36 cores
        assert server.telemetry.cpu_utilization == pytest.approx(0.5)

    def test_power_fraction(self, server):
        server.resolve([lc_demand(cores=18, activity=1.0)])
        assert 0.2 < server.telemetry.power_fraction_of_tdp <= 1.0

    def test_ht_share_passthrough(self, server):
        usages = server.resolve([lc_demand(ht_share_fraction=0.5)])
        assert usages["lc"].ht_share_fraction == pytest.approx(0.5)
