"""The sharded fleet simulator: thousands of leaves across clusters.

The paper's §5.3 minicluster stops at tens of homogeneous leaves
behind one fan-out root.  :class:`ShardedFleetSim` scales the same
construction to fleet size: a *fleet* is a set of clusters — each with
its own machine spec, LC workload, BE mix, leaf count, and
(phase-shifted) load trace — and each cluster's leaf population is
partitioned into homogeneous *shards* that advance as independent
:class:`~repro.sim.batch.BatchColocationSim` instances fanned across
the :func:`repro.sim.runner.run_sweep` process pool (worker count via
``REPRO_JOBS`` / ``--jobs``, like every other sweep).

Per-shard telemetry rolls up losslessly: each cluster's
:class:`~repro.cluster.cluster.ClusterHistory` is reconstructed
bit-identically to a monolithic single-process run of that cluster
(see :mod:`repro.fleet.aggregate`), and the per-cluster streams stack
into fleet-level :class:`~repro.metrics.columns.BatchColumnStore`
columns (fleet EMU, per-cluster SLO fractions, load-weighted root
latency).

Typical use::

    from repro.fleet import ClusterPlan, ShardedFleetSim
    from repro.workloads.traces import websearch_cluster_trace

    fleet = ShardedFleetSim([
        ClusterPlan(name="us-east", leaves=400,
                    trace=websearch_cluster_trace(seed=1), seed=1),
        ClusterPlan(name="eu-west", leaves=200,
                    trace=websearch_cluster_trace(seed=2), seed=2),
    ], shard_leaves=64)
    result = fleet.run(duration_s=3600.0)
    print(result.telemetry.mean_fleet_emu(skip_s=600.0))
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..cluster.cluster import ClusterHistory, cluster_slo_targets
from ..hardware.spec import MachineSpec, default_machine_spec
from ..obs.profile import PhaseProfiler, profile_enabled
from ..obs.trace import concat_payloads, make_sink
from ..sim.checkpoint import (CheckpointError, checkpoint_step,
                              trace_checkpoint_save)
from ..sim.runner import run_sweep
from ..workloads.best_effort import BE_PROFILES
from ..workloads.latency_critical import LC_PROFILES
from ..workloads.traces import LoadTrace
from .aggregate import (FleetSlackView, FleetTelemetry, assemble_cluster,
                        build_fleet_telemetry, reduce_leaf_epochs,
                        rollup_cluster)
from .shard import (ShardResult, ShardTask, overlapping_seed_ranges,
                    partition_leaves, run_shard)

#: Default shard size: large enough that the vectorized physics
#: amortizes the per-tick fixed cost, small enough that a typical
#: worker pool gets several shards per core to balance.
DEFAULT_SHARD_LEAVES = 64

#: Manifest file written into a fleet checkpoint directory alongside
#: the per-shard (or per-mega-group) engine archives.  Resuming
#: validates the manifest against the live fleet before any archive is
#: unpickled, so a checkpoint taken with a different topology fails
#: with a message naming the mismatch.
FLEET_META_NAME = "meta.json"


@dataclass(frozen=True)
class ClusterPlan:
    """One homogeneous cluster of a fleet (the engine-level plan).

    Args:
        name: aggregation/reporting key (unique within the fleet).
        leaves: leaf population behind this cluster's fan-out root
            (at least 2, like :class:`~repro.cluster.cluster.
            WebsearchCluster`).
        trace: the cluster's shared offered-load trace (wrap in
            :class:`~repro.workloads.traces.PhasedTrace` for
            follow-the-sun fleets).
        lc_name: LC workload every leaf runs.
        be_mix: BE task names cycled across leaves by global index;
            the default matches the §5.3 brain/streetview alternation.
        spec: machine description (``None`` = the paper's server).
        managed: run Heracles on every leaf (``False`` = baseline
            cluster, BE disabled).
        seed: cluster base seed; leaf ``i`` uses ``seed * 1000 + i``.
        events: chaos schedule for this cluster
            (:class:`~repro.sim.chaos.ChaosEvent` tuples with
            cluster-local leaf targets, or ``members=None`` for every
            leaf).  Resolved identically by the sharded and mega
            engines — see :mod:`repro.sim.chaos` for the semantics.
    """

    name: str
    leaves: int
    trace: LoadTrace
    lc_name: str = "websearch"
    be_mix: Tuple[str, ...] = ("brain", "streetview")
    spec: Optional[MachineSpec] = None
    managed: bool = True
    seed: int = 0
    events: Tuple = ()

    def validate(self) -> None:
        """Check leaf count, workload names, and the BE mix."""
        if self.leaves < 2:
            raise ValueError(
                f"cluster {self.name!r}: leaves={self.leaves} — a cluster "
                f"needs at least two leaves (zero or negative counts are "
                f"invalid)")
        if self.lc_name not in LC_PROFILES:
            raise ValueError(
                f"cluster {self.name!r}: unknown LC workload "
                f"{self.lc_name!r}; choose from "
                f"{', '.join(sorted(LC_PROFILES))}")
        if not self.be_mix:
            raise ValueError(f"cluster {self.name!r}: be_mix must name at "
                             f"least one BE task")
        for be in self.be_mix:
            if be not in BE_PROFILES:
                raise ValueError(
                    f"cluster {self.name!r}: unknown BE workload {be!r}; "
                    f"choose from {', '.join(sorted(BE_PROFILES))}")
        for event in self.events:
            event.validate()
            for leaf in event.members or ():
                if not 0 <= leaf < self.leaves:
                    raise ValueError(
                        f"cluster {self.name!r}: chaos event targets "
                        f"leaf {leaf} of {self.leaves}")


@dataclass
class ClusterOutcome:
    """One cluster's rolled-up run within a fleet result.

    ``shards`` holds summary-only shard records (identity, leaf range,
    per-shard aggregates); the bulk per-tick telemetry is consumed by
    the roll-up and dropped, so results stay light even for
    full-fidelity fleet runs.
    """

    name: str
    leaves: int
    managed: bool
    leaf_slo_ms: float
    root_slo_ms: float
    history: ClusterHistory
    shards: List[ShardResult] = field(default_factory=list)

    def shard_summaries(self) -> List[Dict[str, float]]:
        """Per-shard summary dicts, in leaf order."""
        return [dict(s.summary, leaf_lo=s.leaf_lo, leaf_hi=s.leaf_hi)
                for s in sorted(self.shards, key=lambda s: s.leaf_lo)]


@dataclass
class FleetResult:
    """Everything a fleet run produced.

    ``clusters`` holds each cluster's bit-exact
    :class:`ClusterHistory` roll-up plus summary-only shard records;
    ``telemetry`` is the fleet-level column store.  ``slack`` is the
    decision-epoch per-leaf slack view the fleet scheduler consumes —
    populated only when the run asked for it (``slack_epoch_s``).

    ``trace`` is the run's merged decision-trace payload
    (:mod:`repro.obs.trace` columns with fleet-global member indices;
    event order unspecified — the JSONL exporters canonicalize) and
    ``profile`` the fleet-wide tick-phase wall-clock
    breakdown; each is ``None`` unless the corresponding observability
    toggle was on.
    """

    clusters: List[ClusterOutcome]
    telemetry: FleetTelemetry
    duration_s: float
    dt_s: float
    slack: Optional[FleetSlackView] = None
    trace: Optional[Dict[str, Any]] = None
    profile: Optional[Dict[str, float]] = None

    def cluster(self, name: str) -> ClusterOutcome:
        """Look up one cluster's outcome by name."""
        for outcome in self.clusters:
            if outcome.name == name:
                return outcome
        raise KeyError(f"no cluster named {name!r} in this fleet")

    def summary(self, skip_s: float = 0.0,
                slo_window_s: float = 60.0) -> Dict[str, object]:
        """Deterministic fleet summary (the seed-determinism contract).

        Args:
            skip_s: warm-up prefix excluded from every aggregate.
            slo_window_s: window for the per-cluster worst-window SLO.

        Returns:
            Plain floats only, so two runs of the same spec + seed can
            be compared with ``==`` — the determinism regression tests
            do exactly that.
        """
        clusters = {}
        for outcome in self.clusters:
            history = outcome.history
            clusters[outcome.name] = {
                "leaves": outcome.leaves,
                "root_slo_ms": outcome.root_slo_ms,
                "mean_emu": history.mean_emu(skip_s=skip_s),
                "min_emu": history.min_emu(skip_s=skip_s),
                "max_root_slo_fraction":
                    history.max_root_slo_fraction(skip_s=skip_s),
                "worst_window_slo": history.metrics.worst_window(
                    "root_slo_fraction", window_s=slo_window_s,
                    skip_s=skip_s),
            }
        return {
            "leaves": sum(o.leaves for o in self.clusters),
            "fleet_emu": self.telemetry.mean_fleet_emu(skip_s=skip_s),
            "min_fleet_emu": self.telemetry.min_fleet_emu(skip_s=skip_s),
            "weighted_root_latency_ms":
                self.telemetry.mean_weighted_root_latency_ms(skip_s=skip_s),
            "clusters": clusters,
        }


class ShardedFleetSim:
    """Partition a fleet into shards and run them across the pool.

    Args:
        clusters: the fleet's cluster plans (unique names).
        shard_leaves: maximum leaves per shard; each cluster splits
            into ``ceil(leaves / shard_leaves)`` near-equal shards.
            Must be positive — zero or negative shard sizes are
            rejected eagerly.
        record_period_s: cluster record cadence (30 s in the paper).
        engine: ``"sharded"`` (default) fans the clusters out as shard
            work units over the process pool; ``"mega"`` runs the whole
            fleet in-process as one array program
            (:class:`~repro.sim.megabatch.MegaFleetSim`) — bit-identical
            telemetry, no per-shard Python tick loops.  Both feed the
            same roll-up.
    """

    ENGINES = ("sharded", "mega")

    def __init__(self, clusters: Sequence[ClusterPlan],
                 shard_leaves: int = DEFAULT_SHARD_LEAVES,
                 record_period_s: float = 30.0,
                 engine: str = "sharded"):
        if engine not in self.ENGINES:
            raise ValueError(f"engine={engine!r}: expected one of "
                             f"{self.ENGINES}")
        clusters = list(clusters)
        if not clusters:
            raise ValueError("a fleet needs at least one cluster")
        if shard_leaves <= 0:
            raise ValueError(
                f"shard_leaves={shard_leaves}: shard size must be positive "
                f"(got zero or negative)")
        if record_period_s <= 0:
            raise ValueError("record_period_s must be positive")
        names = [plan.name for plan in clusters]
        if len(set(names)) != len(names):
            raise ValueError(f"cluster names must be unique, got {names}")
        for plan in clusters:
            plan.validate()
        collision = overlapping_seed_ranges(
            (plan.seed, plan.leaves, plan.name) for plan in clusters)
        if collision is not None:
            raise ValueError(
                f"clusters {collision[0]!r} and {collision[1]!r}: "
                f"tail-noise seed ranges overlap (leaf seeds are "
                f"seed*1000 + leaf_index; give clusters of 1000+ leaves "
                f"more widely spaced seeds)")
        self.clusters = clusters
        self.shard_leaves = shard_leaves
        self.record_period_s = record_period_s
        self.engine = engine

    def shard_plan(self) -> Dict[str, List[Tuple[int, int]]]:
        """Leaf ranges each cluster will be partitioned into."""
        return {plan.name: partition_leaves(plan.leaves, self.shard_leaves)
                for plan in self.clusters}

    @staticmethod
    def shard_archive(checkpoint_dir: str, cluster_index: int,
                      shard_index: int) -> str:
        """Deterministic archive path for one shard of a fleet snapshot."""
        return os.path.join(checkpoint_dir,
                            f"shard_{cluster_index}_{shard_index}.npz")

    def _fleet_meta(self, dt_s: float, checkpoint_at_s: float,
                    collect_be: bool) -> Dict[str, Any]:
        """The manifest describing a fleet checkpoint directory."""
        return {
            "version": 1,
            "engine": self.engine,
            "dt_s": float(dt_s),
            "checkpoint_t_s": float(checkpoint_at_s),
            "collect_be": bool(collect_be),
            "shard_leaves": self.shard_leaves,
            "clusters": [{"name": plan.name, "leaves": plan.leaves,
                          "seed": plan.seed} for plan in self.clusters],
        }

    def _load_fleet_meta(self, resume_from: str, dt_s: float,
                         collect_be: bool) -> Dict[str, Any]:
        """Read and validate a checkpoint manifest against this fleet."""
        meta_path = os.path.join(resume_from, FLEET_META_NAME)
        try:
            with open(meta_path, "r", encoding="utf-8") as handle:
                meta = json.load(handle)
        except (OSError, ValueError) as exc:
            raise CheckpointError(
                f"cannot read fleet checkpoint manifest {meta_path}: "
                f"{exc}")
        expected = self._fleet_meta(dt_s, meta.get("checkpoint_t_s", 0.0),
                                    collect_be)
        for key in ("version", "engine", "dt_s", "collect_be",
                    "shard_leaves", "clusters"):
            if meta.get(key) != expected[key]:
                raise CheckpointError(
                    f"{meta_path}: checkpoint {key}={meta.get(key)!r} "
                    f"does not match this fleet's {expected[key]!r}; a "
                    f"snapshot only resumes under the engine, tick size, "
                    f"sharding, slack mode, and cluster plans that wrote "
                    f"it")
        return meta

    def _tasks(self, duration_s: float, dt_s: float,
               targets: Dict[str, Tuple[float, float]],
               collect_be: bool = False,
               checkpoint_dir: Optional[str] = None,
               checkpoint_at_s: Optional[float] = None,
               resume_from: Optional[str] = None,
               spill_dir: Optional[str] = None) -> List[ShardTask]:
        """Materialize the picklable shard work units."""
        tasks = []
        member_base = 0
        for index, plan in enumerate(self.clusters):
            leaf_slo_ms, _ = targets[plan.name]
            spec = plan.spec or default_machine_spec()
            for shard_index, (lo, hi) in enumerate(
                    partition_leaves(plan.leaves, self.shard_leaves)):
                # Chaos targets arrive as cluster-local leaf indices;
                # each shard keeps the intersection with its own leaf
                # range, rebased to shard-local indices (an event whose
                # targets all land elsewhere is dropped, and a
                # whole-cluster event stays whole-shard).
                events = []
                for event in plan.events:
                    if event.members is None:
                        events.append(event)
                        continue
                    local = tuple(m - lo for m in event.members
                                  if lo <= m < hi)
                    if local:
                        events.append(event.retarget(local))
                tasks.append(ShardTask(
                    cluster=plan.name, cluster_index=index,
                    shard_index=shard_index, leaf_lo=lo, leaf_hi=hi,
                    total_leaves=plan.leaves, lc_name=plan.lc_name,
                    be_mix=tuple(plan.be_mix), leaf_slo_ms=leaf_slo_ms,
                    spec=spec, trace=plan.trace, managed=plan.managed,
                    seed=plan.seed, duration_s=duration_s, dt_s=dt_s,
                    collect_be=collect_be, events=tuple(events),
                    checkpoint_path=None if checkpoint_dir is None else
                    self.shard_archive(checkpoint_dir, index, shard_index),
                    checkpoint_at_s=checkpoint_at_s,
                    resume_path=None if resume_from is None else
                    self.shard_archive(resume_from, index, shard_index),
                    spill_dir=None if spill_dir is None else os.path.join(
                        spill_dir, f"shard_{index}_{shard_index}"),
                    member_base=member_base))
            member_base += plan.leaves
        return tasks

    def run(self, duration_s: float, dt_s: float = 1.0,
            processes: Optional[int] = None,
            slack_epoch_s: Optional[float] = None,
            checkpoint_dir: Optional[str] = None,
            checkpoint_at_s: Optional[float] = None,
            resume_from: Optional[str] = None,
            spill_dir: Optional[str] = None) -> FleetResult:
        """Run the whole fleet and roll up its telemetry.

        Args:
            duration_s: simulated run length (shared by every cluster).
            dt_s: tick size (the record cadence is tick-counted from
                it, like the cluster driver's).
            processes: worker processes for the shard fan-out
                (``None`` = auto via ``REPRO_JOBS`` /
                :func:`repro.sim.runner.default_jobs`; ``1`` forces
                the serial in-process path).
            slack_epoch_s: when given, shards additionally collect the
                per-leaf BE slack signals and the result carries a
                :class:`FleetSlackView` at this decision-epoch
                granularity (the scheduler hook).  ``None`` keeps the
                plain fleet run — no extra telemetry, bit-identical to
                what this method always produced.
            checkpoint_dir: when given (with ``checkpoint_at_s``),
                snapshot every shard's full engine state mid-run into
                this directory — per-shard ``.npz`` archives plus a
                :data:`FLEET_META_NAME` manifest — so a later run can
                resume (or branch several what-ifs) from ``t =
                checkpoint_at_s`` instead of ``t = 0``.
            checkpoint_at_s: simulated time of the snapshot; must land
                on a tick strictly inside the run.
            resume_from: a checkpoint directory written by a previous
                run of this same fleet; the run warm-starts every shard
                from its archive and only ticks the remaining steps.
                The result is bit-identical to running from ``t = 0``.
            spill_dir: bound telemetry memory by streaming full history
                chunks to ``.npy`` files under this directory (one
                subdirectory per shard).  The mega engine collects its
                telemetry in dense arrays, not column stores, so this
                only affects the sharded path.

        Returns:
            The populated :class:`FleetResult`.
        """
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        if dt_s <= 0:
            raise ValueError("dt must be positive")
        if slack_epoch_s is not None and slack_epoch_s <= 0:
            raise ValueError("slack_epoch_s must be positive")
        if (checkpoint_dir is None) != (checkpoint_at_s is None):
            raise CheckpointError(
                "checkpoint_dir and checkpoint_at_s go together: give "
                "both to take a snapshot, neither to skip it")
        collect_be = slack_epoch_s is not None
        k_save = None
        if checkpoint_dir is not None:
            k_save = checkpoint_step(checkpoint_at_s, duration_s, dt_s)
        if resume_from is not None:
            resume_meta = self._load_fleet_meta(resume_from, dt_s,
                                                collect_be)
            k_done = int(round(resume_meta["checkpoint_t_s"] / dt_s))
            if k_save is not None and k_save <= k_done:
                raise CheckpointError(
                    f"checkpoint at t={checkpoint_at_s}s lands at or "
                    f"before the resumed snapshot "
                    f"(t={resume_meta['checkpoint_t_s']}s); a resumed "
                    f"run can only checkpoint further ahead")
        targets = {
            plan.name: cluster_slo_targets(
                plan.spec or default_machine_spec(), plan.leaves,
                lc_name=plan.lc_name)
            for plan in self.clusters
        }
        profiler = PhaseProfiler() if profile_enabled() else None
        t_dispatch = perf_counter()
        if self.engine == "mega":
            # One in-process array program for the whole fleet; the
            # shard fan-out (and its pool) is bypassed entirely.  Each
            # cluster comes back as a single whole-population
            # ShardResult, so the roll-up below is shared verbatim.
            from ..sim.megabatch import run_mega_fleet
            results = run_mega_fleet(self.clusters, targets, duration_s,
                                     dt_s=dt_s, collect_be=collect_be,
                                     checkpoint_dir=checkpoint_dir,
                                     checkpoint_at_s=checkpoint_at_s,
                                     resume_from=resume_from)
        else:
            tasks = self._tasks(duration_s, dt_s, targets,
                                collect_be=collect_be,
                                checkpoint_dir=checkpoint_dir,
                                checkpoint_at_s=checkpoint_at_s,
                                resume_from=resume_from,
                                spill_dir=spill_dir)
            results = run_sweep(run_shard, tasks, processes=processes)
        dispatch_wall_s = perf_counter() - t_dispatch
        # Harvest the shards' observability payloads before the roll-up
        # consumes (and drops) the bulk results.  The fleet-level sink
        # adds run-scoped events (checkpoint saves) so the merged trace
        # stays invariant under the shard plan — a per-shard save event
        # would count shards.
        fleet_sink = make_sink()
        if fleet_sink is not None and resume_from is not None:
            # The snapshot this run warm-started from: replayed so a
            # resumed trace matches the checkpointing run's.
            trace_checkpoint_save(
                fleet_sink, resume_meta["checkpoint_t_s"],
                int(round(resume_meta["checkpoint_t_s"] / dt_s)))
        if fleet_sink is not None and checkpoint_dir is not None:
            trace_checkpoint_save(fleet_sink, checkpoint_at_s, k_save)
        trace_payloads = [r.trace for r in results if r.trace is not None]
        if fleet_sink is not None and len(fleet_sink):
            trace_payloads.append(fleet_sink.payload())
        trace = concat_payloads(trace_payloads) if trace_payloads else None
        if profiler is not None:
            for result in results:
                profiler.merge(result.profile)
            # Pool wall-clock not attributed to any shard phase:
            # dispatch, pickling, result transport.  Parallel shards
            # overlap, so the residual clamps at zero and is exact
            # only on the serial path (REPRO_JOBS=1).
            shard_wall_s = sum(profiler.seconds.values())
            profiler.add("ipc", max(0.0, dispatch_wall_s - shard_wall_s))
        if checkpoint_dir is not None:
            # The manifest is written last, once every shard archive
            # exists — a directory with a manifest is a complete,
            # resumable snapshot; one without is a partial write.
            os.makedirs(checkpoint_dir, exist_ok=True)
            meta_path = os.path.join(checkpoint_dir, FLEET_META_NAME)
            with open(meta_path, "w", encoding="utf-8") as handle:
                json.dump(self._fleet_meta(dt_s, checkpoint_at_s,
                                           collect_be),
                          handle, indent=2, sort_keys=True)
                handle.write("\n")

        by_cluster: Dict[str, List[ShardResult]] = {}
        for result in results:
            by_cluster.setdefault(result.cluster, []).append(result)
        del results  # the raw arrays are dropped cluster by cluster below

        outcomes = []
        histories: Dict[str, ClusterHistory] = {}
        slack_views = []
        t_rollup = perf_counter()
        for plan in self.clusters:
            leaf_slo_ms, root_slo_ms = targets[plan.name]
            # Pop each cluster's shard list so its bulk (T, n) arrays
            # are released as soon as they are rolled up — peak memory
            # is one cluster's telemetry, not the whole fleet's.
            shard_results = by_cluster.pop(plan.name)
            assembled = assemble_cluster(shard_results,
                                         total_leaves=plan.leaves)
            history = rollup_cluster(
                assembled.times_s, assembled.tails_ms, assembled.emus,
                trace=plan.trace, root_slo_ms=root_slo_ms,
                record_period_s=self.record_period_s, dt_s=dt_s)
            histories[plan.name] = history
            if slack_epoch_s is not None:
                spec = plan.spec or default_machine_spec()
                slack_views.append(reduce_leaf_epochs(
                    assembled, cluster=plan.name, leaf_slo_ms=leaf_slo_ms,
                    total_cores=spec.total_cores, epoch_s=slack_epoch_s,
                    dt_s=dt_s))
            outcomes.append(ClusterOutcome(
                name=plan.name, leaves=plan.leaves, managed=plan.managed,
                leaf_slo_ms=leaf_slo_ms, root_slo_ms=root_slo_ms,
                history=history,
                shards=[s.stripped() for s in shard_results]))
            del shard_results, assembled
        telemetry = build_fleet_telemetry(
            histories, [plan.name for plan in self.clusters],
            [plan.leaves for plan in self.clusters])
        slack = FleetSlackView(slack_views) if slack_epoch_s is not None \
            else None
        if profiler is not None:
            profiler.add("rollup", perf_counter() - t_rollup)
        return FleetResult(clusters=outcomes, telemetry=telemetry,
                           duration_s=duration_s, dt_s=dt_s, slack=slack,
                           trace=trace,
                           profile=(profiler.as_dict()
                                    if profiler is not None else None))
