"""cpuset and CPU-shares cgroups.

Heracles' core-isolation mechanism is Linux ``cpuset`` cgroups: the LC
workload is pinned to one set of cores and BE tasks to another (§4.1).
The OS-isolation *baseline* of the characterization instead runs LC and
BE in separate containers distinguished only by CFS ``shares`` — which
the paper shows is hopeless for tail latency.

This module tracks both: which hardware threads each group owns, and the
group's scheduler shares.  It also answers the placement questions the
simulation needs — most importantly, how much HyperThread sibling sharing
a placement implies, since an LC thread whose sibling runs a BE task
suffers instruction-bandwidth and L1/L2 interference (§2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from ..hardware.cpu import CoreId, CpuTopology


@dataclass
class Cgroup:
    """One control group: a cpuset plus CFS shares."""

    name: str
    cpuset: FrozenSet[CoreId] = frozenset()
    shares: int = 1024  # CFS default

    def cores_by_socket(self, topology: CpuTopology) -> Dict[int, int]:
        """Distinct physical cores this group may run on, per socket."""
        per: Dict[int, Set] = {}
        for t in self.cpuset:
            per.setdefault(t.socket, set()).add(t.physical)
        return {s: len(v) for s, v in per.items()}

    def physical_cores(self) -> Set:
        return {t.physical for t in self.cpuset}


class CgroupManager:
    """Creates cgroups and validates/queries their cpusets."""

    def __init__(self, topology: CpuTopology):
        self.topology = topology
        self._groups: Dict[str, Cgroup] = {}

    def create(self, name: str, cpuset: Iterable[CoreId] = (),
               shares: int = 1024) -> Cgroup:
        if name in self._groups:
            raise ValueError(f"cgroup {name!r} already exists")
        group = Cgroup(name=name, cpuset=frozenset(), shares=shares)
        self._groups[name] = group
        self.set_cpuset(name, cpuset)
        return self._groups[name]

    def remove(self, name: str) -> None:
        if name not in self._groups:
            raise KeyError(name)
        del self._groups[name]

    def get(self, name: str) -> Cgroup:
        return self._groups[name]

    def exists(self, name: str) -> bool:
        return name in self._groups

    def groups(self) -> List[Cgroup]:
        return list(self._groups.values())

    def set_cpuset(self, name: str, cpuset: Iterable[CoreId]) -> None:
        """Repin a group.  Core migration takes tens of milliseconds on
        Linux (§4.1); at our 1 s tick that is effectively immediate, but
        the engine applies changes at the *next* tick boundary."""
        threads = frozenset(cpuset)
        for t in threads:
            if not self.topology.contains(t):
                raise ValueError(f"thread {t} not present on this machine")
        group = self._groups[name]
        self._groups[name] = Cgroup(name=group.name, cpuset=threads,
                                    shares=group.shares)

    def set_shares(self, name: str, shares: int) -> None:
        if shares < 2:
            raise ValueError("CFS shares must be >= 2")
        group = self._groups[name]
        self._groups[name] = Cgroup(name=group.name, cpuset=group.cpuset,
                                    shares=shares)

    # ------------------------------------------------------------------
    # Placement queries
    # ------------------------------------------------------------------

    def exclusive_physical_cores(self, name: str) -> Set:
        """Physical cores used by ``name`` and no other group."""
        mine = self._groups[name].physical_cores()
        for other_name, other in self._groups.items():
            if other_name != name:
                mine -= other.physical_cores()
        return mine

    def ht_share_fraction(self, name: str) -> float:
        """Fraction of this group's threads whose sibling HyperThread
        belongs to a *different* group (the dangerous configuration)."""
        group = self._groups[name]
        if not group.cpuset:
            return 0.0
        if self.topology.spec.socket.threads_per_core != 2:
            return 0.0
        foreign = set()
        for other_name, other in self._groups.items():
            if other_name != name:
                foreign |= set(other.cpuset)
        shared = sum(1 for t in group.cpuset if t.sibling() in foreign)
        return shared / len(group.cpuset)

    def overlapping_physical_cores(self, a: str, b: str) -> Set:
        """Physical cores where groups a and b may both be scheduled."""
        return self._groups[a].physical_cores() & self._groups[b].physical_cores()

    def share_fraction(self, name: str) -> float:
        """This group's CFS share weight relative to all groups."""
        total = sum(g.shares for g in self._groups.values())
        if total == 0:
            return 0.0
        return self._groups[name].shares / total
