"""DRAM controllers: bandwidth accounting, saturation, and access latency.

There is no commercially available DRAM-bandwidth isolation mechanism
(§2), which is precisely why Heracles needs an offline bandwidth model
and core throttling.  What the hardware *does* provide is bandwidth
measurement: "the DRAM controllers provide registers that track bandwidth
usage, making it easy to detect when they reach 90% of peak streaming
DRAM bandwidth" (§4.3).  This module supplies both the measurable
counters and the contention physics.

The latency model is a standard open-queueing delay curve: memory access
time is roughly flat until channel utilization approaches saturation and
then grows as ``1/(1 - utilization)``.  That knee-then-cliff shape is the
empirical inflection the paper builds its whole design on (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass
class MemoryDemand:
    """DRAM bandwidth wanted by one task on one socket's controllers."""

    task: str
    demand_gbps: float

    def validate(self) -> None:
        if self.demand_gbps < 0:
            raise ValueError("bandwidth demand must be non-negative")


@dataclass
class MemoryGrant:
    """Resolved DRAM behaviour for one task."""

    task: str
    achieved_gbps: float
    # Multiplier on the task's memory access time relative to an idle
    # memory system (>= 1.0).
    access_delay_factor: float


@dataclass
class MemoryResolution:
    """Socket-wide outcome of one resolution round."""

    total_demand_gbps: float
    total_achieved_gbps: float
    utilization: float  # achieved / capacity, in [0, 1]
    grants: List[MemoryGrant]

    def grant_for(self, task: str) -> MemoryGrant:
        for g in self.grants:
            if g.task == task:
                return g
        raise KeyError(task)


class MemoryController:
    """One socket's DRAM channels.

    Args:
        capacity_gbps: peak streaming bandwidth of the local channels.
        delay_knee: utilization at which queueing delay starts to climb.
        delay_gain: scales how violently latency grows past the knee.
    """

    def __init__(self, capacity_gbps: float,
                 delay_knee: float = 0.88,
                 delay_gain: float = 0.10):
        if capacity_gbps <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 < delay_knee < 1.0:
            raise ValueError("delay knee must be in (0, 1)")
        self.capacity_gbps = capacity_gbps
        self.delay_knee = delay_knee
        self.delay_gain = delay_gain
        self._last: MemoryResolution = MemoryResolution(0.0, 0.0, 0.0, [])

    def resolve(self, demands: List[MemoryDemand]) -> MemoryResolution:
        """Share the channels among ``demands`` and compute delay.

        Bandwidth is allocated proportionally to demand when the channels
        are oversubscribed (DRAM schedulers are roughly fair at saturation).
        The delay factor applies to *all* requestors: a controller near
        saturation slows every access, which is how a streaming antagonist
        overwhelms even memkeyval's few memory requests (§3.3).
        """
        for d in demands:
            d.validate()
        total_demand = sum(d.demand_gbps for d in demands)
        if total_demand <= self.capacity_gbps:
            scale = 1.0
            achieved_total = total_demand
        else:
            scale = self.capacity_gbps / total_demand
            achieved_total = self.capacity_gbps
        utilization = min(1.0, achieved_total / self.capacity_gbps)
        delay = self.delay_factor(utilization, total_demand)
        grants = [
            MemoryGrant(task=d.task,
                        achieved_gbps=d.demand_gbps * scale,
                        access_delay_factor=delay)
            for d in demands
        ]
        self._last = MemoryResolution(
            total_demand_gbps=total_demand,
            total_achieved_gbps=achieved_total,
            utilization=utilization,
            grants=grants,
        )
        return self._last

    def delay_factor(self, utilization: float, demand_gbps: float) -> float:
        """Memory access delay multiplier at a given channel utilization.

        Below the knee the factor is ~1.  Past it, the factor follows a
        ``1/(1-rho)`` queueing curve calibrated so the paper's
        operating point is safe: ~1.2x at 90% of peak bandwidth (the
        DRAM_LIMIT Heracles enforces), ~2x at 95%, diverging beyond.  When demand exceeds capacity the
        queue is formally unstable; we extend the curve with a term
        proportional to the oversubscription so that heavier antagonists
        keep hurting more (matching the monotone ">300%" region of Fig.1).
        """
        rho = min(utilization, 0.995)
        if rho <= self.delay_knee:
            return 1.0 + 0.05 * (rho / self.delay_knee)
        excess = (rho - self.delay_knee) / (1.0 - self.delay_knee)
        # The stable-queue term is capped: a fully utilized DRAM system
        # settles at a loaded latency a handful of times its unloaded
        # latency (row buffers and bank parallelism bound the queueing),
        # so the divergence of 1/(1-rho) is not physical beyond ~5x.
        queueing = min(5.0, self.delay_gain * excess / (1.0 - rho))
        factor = 1.05 + queueing
        oversub = max(0.0, demand_gbps / self.capacity_gbps - 1.0)
        return factor + 6.0 * oversub

    @property
    def last_resolution(self) -> MemoryResolution:
        """Most recent resolution (what the bandwidth registers report)."""
        return self._last

    def measured_bw_gbps(self) -> float:
        """Counter read: total achieved bandwidth last interval."""
        return self._last.total_achieved_gbps

    def measured_utilization(self) -> float:
        return self._last.utilization

    def per_task_bw_gbps(self) -> Dict[str, float]:
        """Approximate per-task traffic, as Heracles estimates from
        NUMA-local per-core counters (§4.3)."""
        return {g.task: g.achieved_gbps for g in self._last.grants}
