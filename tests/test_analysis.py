"""Tests for repro.analysis: EMU, TCO model, table rendering."""

import pytest

from repro.analysis.emu import (EmuSummary, cluster_emu,
                                effective_machine_utilization)
from repro.analysis.tables import (format_percent, render_load_series_table,
                                   render_series, render_table)
from repro.analysis.tco import TcoModel, TcoParameters


class TestEmu:
    def test_sum(self):
        assert effective_machine_utilization(0.5, 0.4) == pytest.approx(0.9)

    def test_can_exceed_one(self):
        # "EMU can be above 100% due to better binpacking" (§5.1).
        assert effective_machine_utilization(0.7, 0.5) > 1.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            effective_machine_utilization(-0.1, 0.5)

    def test_summary(self):
        s = EmuSummary.from_series([0.8, 0.9, 1.0])
        assert s.mean == pytest.approx(0.9)
        assert s.minimum == pytest.approx(0.8)
        assert s.maximum == pytest.approx(1.0)

    def test_summary_empty(self):
        with pytest.raises(ValueError):
            EmuSummary.from_series([])

    def test_cluster_emu(self):
        assert cluster_emu([0.8, 1.0]) == pytest.approx(0.9)
        with pytest.raises(ValueError):
            cluster_emu([])


class TestTcoModel:
    @pytest.fixture(scope="class")
    def model(self):
        return TcoModel()

    def test_power_curve(self, model):
        assert model.server_power_watts(0.0) == pytest.approx(250.0)
        assert model.server_power_watts(1.0) == pytest.approx(500.0)
        assert model.server_power_watts(0.5) == pytest.approx(375.0)

    def test_tco_grows_with_utilization(self, model):
        assert (model.tco_per_server_usd(0.9)
                > model.tco_per_server_usd(0.2))

    def test_capex_dominates(self, model):
        # Facility provisioning + server >> energy delta: that is why
        # raising utilization is so valuable.
        tco_low = model.tco_per_server_usd(0.2)
        tco_high = model.tco_per_server_usd(0.9)
        assert (tco_high - tco_low) / tco_low < 0.15

    def test_paper_headline_numbers(self, model):
        assert model.throughput_per_tco_gain(0.20, 0.90) == pytest.approx(
            3.06, abs=0.15)  # "306%"
        assert model.throughput_per_tco_gain(0.75, 0.90) == pytest.approx(
            0.15, abs=0.05)  # "15%"

    def test_energy_prop_bounds(self, model):
        assert model.energy_proportionality_gain(0.20) < 0.07  # "< 7%"
        assert 0.01 < model.energy_proportionality_gain(0.75) < 0.05  # "~3%"

    def test_cluster_scale(self, model):
        assert model.cluster_tco_usd(0.5) == pytest.approx(
            10_000 * model.tco_per_server_usd(0.5))

    def test_validation(self):
        import dataclasses
        with pytest.raises(ValueError):
            dataclasses.replace(TcoParameters(), pue=0.5).validate()
        with pytest.raises(ValueError):
            dataclasses.replace(TcoParameters(),
                                idle_power_fraction=1.0).validate()
        m = TcoModel()
        with pytest.raises(ValueError):
            m.server_power_watts(2.0)
        with pytest.raises(ValueError):
            m.throughput_per_tco_gain(0.0, 0.9)
        with pytest.raises(ValueError):
            m.energy_proportionality_gain(0.5, idle_savings_fraction=2.0)


class TestTables:
    def test_format_percent(self):
        assert format_percent(0.87) == "87%"
        assert format_percent(5.0) == ">300%"

    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [["1", "2"], ["333", "4"]],
                           title="t")
        lines = out.splitlines()
        assert lines[0] == "t"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_render_table_validation(self):
        with pytest.raises(ValueError):
            render_table([], [])
        with pytest.raises(ValueError):
            render_table(["a"], [["1", "2"]])

    def test_render_series(self):
        out = render_series("emu", [0.1, 0.5], [0.8, 0.9])
        assert "emu" in out
        assert "10%" in out
        with pytest.raises(ValueError):
            render_series("x", [1], [1, 2])

    def test_render_load_series_table(self):
        out = render_load_series_table({"a": [1.0, 2.0]}, [0.1, 0.5])
        assert "10%" in out and "50%" in out
        with pytest.raises(ValueError):
            render_load_series_table({"a": [1.0]}, [0.1, 0.5])
