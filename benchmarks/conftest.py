"""Shared benchmark configuration.

Each benchmark regenerates one paper artefact (table/figure) at reduced
resolution and prints the rows/series the paper reports, so a benchmark
run doubles as the reproduction harness.  pytest-benchmark measures the
regeneration cost; `pedantic` with one round keeps total runtime sane.
"""

import pytest


def regenerate(benchmark, fn, *args, **kwargs):
    """Run an artefact generator once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
