"""Tests for repro.hardware.cache: CAT partitioning and occupancy."""

import pytest

from repro.hardware.cache import (CacheDemand, CatController,
                                  resolve_occupancy)


def demand(task, hot=0.0, bulk=0.0, access=1.0, haf=0.0, reuse=1.0):
    return CacheDemand(task=task, hot_mb=hot, bulk_mb=bulk,
                       access_gbps=access, hot_access_fraction=haf,
                       bulk_reuse=reuse)


class TestCacheDemand:
    def test_footprint(self):
        d = demand("t", hot=4.0, bulk=6.0)
        assert d.footprint_mb == pytest.approx(10.0)

    def test_rejects_negative_footprint(self):
        with pytest.raises(ValueError):
            demand("t", hot=-1.0).validate()

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            demand("t", haf=1.5).validate()

    def test_rejects_bad_reuse(self):
        with pytest.raises(ValueError):
            demand("t", reuse=-0.1).validate()


class TestResolveOccupancySingleTask:
    def test_fits_entirely(self):
        shares = resolve_occupancy(45.0, [demand("t", hot=5, bulk=10,
                                                 access=10, haf=0.5)])
        share = shares[0]
        assert share.occupancy_mb == pytest.approx(15.0)
        assert share.hot_coverage == pytest.approx(1.0)
        assert share.bulk_coverage == pytest.approx(1.0)

    def test_partition_smaller_than_hot_set(self):
        shares = resolve_occupancy(2.0, [demand("t", hot=8, bulk=0,
                                                access=10, haf=1.0)])
        share = shares[0]
        assert share.hot_coverage == pytest.approx(0.25)
        assert share.hit_fraction == pytest.approx(0.25)

    def test_hot_fills_before_bulk(self):
        shares = resolve_occupancy(10.0, [demand("t", hot=8, bulk=20,
                                                 access=10, haf=0.5)])
        share = shares[0]
        assert share.hot_coverage == pytest.approx(1.0)
        assert share.bulk_coverage == pytest.approx(0.1)

    def test_miss_bandwidth_tracks_hit_fraction(self):
        d = demand("t", hot=4, bulk=100, access=20, haf=0.2, reuse=1.0)
        shares = resolve_occupancy(14.0, [d])
        share = shares[0]
        expected_hit = 0.2 * 1.0 + 0.8 * 0.1 * 1.0
        assert share.hit_fraction == pytest.approx(expected_hit)
        assert share.miss_gbps == pytest.approx(20 * (1 - expected_hit))

    def test_zero_partition(self):
        shares = resolve_occupancy(0.0, [demand("t", hot=4, access=5,
                                                haf=1.0)])
        assert shares[0].occupancy_mb == pytest.approx(0.0)
        assert shares[0].miss_gbps == pytest.approx(5.0)

    def test_empty_demands(self):
        assert resolve_occupancy(45.0, []) == []

    def test_negative_partition_rejected(self):
        with pytest.raises(ValueError):
            resolve_occupancy(-1.0, [demand("t")])


class TestResolveOccupancyContention:
    def test_capacity_is_conserved(self):
        demands = [demand("a", bulk=40, access=10),
                   demand("b", bulk=40, access=10)]
        shares = resolve_occupancy(45.0, demands)
        total = sum(s.occupancy_mb for s in shares)
        assert total <= 45.0 + 1e-9

    def test_no_contention_when_everything_fits(self):
        demands = [demand("a", bulk=10, access=10),
                   demand("b", bulk=10, access=1)]
        shares = resolve_occupancy(45.0, demands)
        assert all(s.bulk_coverage == pytest.approx(1.0) for s in shares)

    def test_higher_access_rate_defends_more_cache(self):
        demands = [demand("hog", bulk=40, access=100),
                   demand("meek", bulk=40, access=10)]
        shares = {s.task: s for s in resolve_occupancy(45.0, demands)}
        assert shares["hog"].occupancy_mb > shares["meek"].occupancy_mb

    def test_occupancy_capped_at_footprint(self):
        # A small streaming task cannot occupy more than its array, no
        # matter how hard it streams (the LLC-small antagonist property).
        demands = [demand("small", bulk=11.0, access=300),
                   demand("victim", hot=20.0, bulk=0, access=5, haf=1.0)]
        shares = {s.task: s for s in resolve_occupancy(45.0, demands)}
        assert shares["small"].occupancy_mb <= 11.0 + 1e-9
        # Victim keeps its hot set: 45 - 11 = 34 > 20.
        assert shares["victim"].hot_coverage == pytest.approx(1.0)

    def test_big_antagonist_evicts_victim_hot_set(self):
        demands = [demand("big", bulk=40.0, access=300),
                   demand("victim", hot=20.0, bulk=0, access=5, haf=1.0)]
        shares = {s.task: s for s in resolve_occupancy(45.0, demands)}
        assert shares["victim"].hot_coverage < 1.0

    def test_victim_defends_better_with_more_access(self):
        def victim_coverage(victim_access):
            demands = [demand("big", bulk=40.0, access=100),
                       demand("victim", hot=20.0, access=victim_access,
                              haf=1.0)]
            shares = {s.task: s for s in resolve_occupancy(45.0, demands)}
            return shares["victim"].hot_coverage

        assert victim_coverage(50) > victim_coverage(5)

    def test_zero_access_everyone(self):
        demands = [demand("a", bulk=100, access=0),
                   demand("b", bulk=100, access=0)]
        shares = resolve_occupancy(45.0, demands)
        total = sum(s.occupancy_mb for s in shares)
        assert total <= 45.0 + 1e-9


class TestCatController:
    def test_partition_sizing(self):
        cat = CatController(llc_mb=45.0, ways=20)
        assert cat.mb_per_way == pytest.approx(2.25)
        cat.set_partition("lc", 16)
        assert cat.partition_mb("lc") == pytest.approx(36.0)

    def test_overflow_rejected(self):
        cat = CatController(45.0, 20)
        cat.set_partition("lc", 16)
        with pytest.raises(ValueError):
            cat.set_partition("be", 5)

    def test_resize_within_budget(self):
        cat = CatController(45.0, 20)
        cat.set_partition("lc", 16)
        cat.set_partition("lc", 18)
        assert cat.partition_ways("lc") == 18

    def test_zero_ways_removes_class(self):
        cat = CatController(45.0, 20)
        cat.set_partition("lc", 4)
        cat.set_partition("lc", 0)
        assert cat.classes() == {}

    def test_unallocated(self):
        cat = CatController(45.0, 20)
        cat.set_partition("lc", 12)
        assert cat.unallocated_ways() == 8

    def test_grow_and_shrink(self):
        cat = CatController(45.0, 20)
        cat.set_partition("be", 2)
        assert cat.grow("be", 3)
        assert cat.partition_ways("be") == 5
        assert cat.shrink("be", 4)
        assert cat.partition_ways("be") == 1

    def test_grow_fails_when_full(self):
        cat = CatController(45.0, 20)
        cat.set_partition("lc", 20)
        assert not cat.grow("be", 1)

    def test_shrink_fails_below_zero(self):
        cat = CatController(45.0, 20)
        cat.set_partition("be", 1)
        assert not cat.shrink("be", 2)

    def test_transfer(self):
        cat = CatController(45.0, 20)
        cat.set_partition("lc", 18)
        cat.set_partition("be", 2)
        assert cat.transfer("lc", "be", 3)
        assert cat.partition_ways("lc") == 15
        assert cat.partition_ways("be") == 5

    def test_transfer_fails_gracefully(self):
        cat = CatController(45.0, 20)
        cat.set_partition("lc", 2)
        assert not cat.transfer("lc", "be", 5)
        assert cat.partition_ways("lc") == 2

    def test_needs_two_ways(self):
        with pytest.raises(ValueError):
            CatController(45.0, 1)

    def test_invalid_grow_amount(self):
        cat = CatController(45.0, 20)
        with pytest.raises(ValueError):
            cat.grow("lc", 0)
