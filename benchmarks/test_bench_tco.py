"""Regenerates the §5.3 TCO analysis table."""

from conftest import regenerate

from repro.analysis.tables import render_table
from repro.experiments.tco_table import run_tco_table


def test_bench_tco_table(benchmark):
    rows = regenerate(benchmark, run_tco_table)
    print()
    print(render_table(
        ["baseline util", "Heracles util", "Heracles tput/TCO",
         "energy-prop tput/TCO"],
        [[f"{r.baseline_utilization:.0%}", f"{r.heracles_utilization:.0%}",
          f"+{r.heracles_gain:.1%}", f"+{r.energy_prop_gain:.1%}"]
         for r in rows],
        title="Throughput/TCO improvements (10,000-server cluster)"))
    by_util = {r.baseline_utilization: r for r in rows}
    # Paper: +15% at 75% baseline, +306% at 20%; energy-prop ~3% / <7%.
    assert abs(by_util[0.75].heracles_gain - 0.15) < 0.05
    assert abs(by_util[0.20].heracles_gain - 3.06) < 0.20
    assert by_util[0.20].energy_prop_gain < 0.07
    assert by_util[0.75].energy_prop_gain < 0.05
