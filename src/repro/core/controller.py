"""The Heracles controller facade.

Wires the top-level controller (Algorithm 1) and the three
subcontrollers (Algorithms 2-4) to one server's monitors and actuators,
exactly as Figure 2 of the paper draws it:

* latency readings feed the top-level controller;
* "can BE grow?" flows from the top level to the subcontrollers via the
  shared :class:`~repro.core.state.ControlState`;
* each subcontroller owns its actuation mechanism — cores & LLC (cpuset
  + CAT), CPU power (DVFS), and network (HTB) — and runs on its own
  period with internal feedback loops.

``HeraclesController.for_sim`` builds the whole stack for a
:class:`~repro.sim.engine.ColocationSim`, including the one-off offline
steps: profiling the LC DRAM-bandwidth model and measuring the
guaranteed frequency.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..hardware.counters import CounterBank
from ..sim.actuators import Actuators
from ..sim.engine import ColocationSim
from ..sim.monitors import LatencyMonitor
from ..workloads.latency_critical import LatencyCriticalWorkload
from .config import HeraclesConfig
from .core_memory import CoreMemoryController
from .dram_model import LcDramBandwidthModel, profile_lc_dram_model
from .network import NetworkController
from .power import PowerController, guaranteed_frequency_ghz
from .state import ControlState
from .top_level import TopLevelController


class SimBeThroughputProbe:
    """Picklable BE-throughput probe bound to one colocation sim.

    The checkpoint layer (:mod:`repro.sim.checkpoint`) pickles whole
    engines, controllers included; a local closure over ``sim`` would
    break that, so the probe is a module-level callable instead.
    """

    def __init__(self, sim: ColocationSim):
        self._sim = sim

    def __call__(self) -> float:
        monitor = self._sim.be_monitor
        return monitor.last_normalized if monitor is not None else 0.0


class HeraclesController:
    """Coordinated dynamic management of four isolation mechanisms."""

    def __init__(self,
                 config: HeraclesConfig,
                 actuators: Actuators,
                 counters: CounterBank,
                 monitor: LatencyMonitor,
                 slo_target_ms: float,
                 dram_model: LcDramBandwidthModel,
                 guaranteed_freq_ghz: float,
                 lc_task: str,
                 be_task: str,
                 be_throughput_fn: Callable[[], float]):
        config.validate()
        self.config = config
        self.state = ControlState()
        self.top_level = TopLevelController(
            config, self.state, actuators, monitor, slo_target_ms)
        self.core_memory = CoreMemoryController(
            config, self.state, actuators, counters, dram_model,
            lc_task=lc_task, be_task=be_task,
            be_throughput_fn=be_throughput_fn,
            monitor=monitor, slo_target_ms=slo_target_ms)
        self.power = PowerController(
            config, actuators, counters, lc_task=lc_task,
            guaranteed_ghz=guaranteed_freq_ghz)
        self.network = NetworkController(
            config, actuators, counters, lc_task=lc_task)

    def step(self, now_s: float) -> None:
        """One engine tick: run whichever loops are due.

        Order matters the way it does on the real system: the top level
        digests the freshest latency sample first, then the
        subcontrollers act on the updated signals.
        """
        self.top_level.step(now_s)
        self.core_memory.step(now_s)
        self.power.step(now_s)
        self.network.step(now_s)

    # ------------------------------------------------------------------

    @classmethod
    def for_sim(cls, sim: ColocationSim,
                config: Optional[HeraclesConfig] = None,
                dram_model: Optional[LcDramBandwidthModel] = None
                ) -> "HeraclesController":
        """Build and attach a Heracles instance to a colocation sim.

        Performs the offline steps the paper requires: DRAM model
        profiling for the LC workload (unless a — possibly stale — model
        is supplied) and the guaranteed-frequency measurement.
        """
        if sim.be is None:
            raise ValueError("Heracles manages a colocation; the sim has "
                             "no BE task")
        config = config or HeraclesConfig()
        lc: LatencyCriticalWorkload = sim.lc
        model = dram_model or profile_lc_dram_model(lc)
        guaranteed = guaranteed_frequency_ghz(lc)

        # Offline profiling tells Heracles the LC hot working set; the
        # LC cache partition never shrinks below the ways that keep it
        # resident (plus one way of headroom).
        spec = lc.spec
        mb_per_way = spec.socket.llc_mb / spec.socket.llc_ways
        hot_per_socket = lc.profile.hot_mb / spec.sockets
        floor = min(spec.socket.llc_ways - 1,
                    int(hot_per_socket / mb_per_way) + 2)
        sim.actuators.min_lc_llc_ways = max(1, floor)

        controller = cls(
            config=config,
            actuators=sim.actuators,
            counters=sim.counters,
            monitor=sim.latency_monitor,
            slo_target_ms=lc.profile.slo_latency_ms,
            dram_model=model,
            guaranteed_freq_ghz=guaranteed,
            lc_task=lc.name,
            be_task=sim.be.name,
            be_throughput_fn=SimBeThroughputProbe(sim),
        )
        sim.attach_controller(controller)
        return controller
