"""Shared control state between the top-level controller and the
subcontrollers.

The top-level loop digests latency/load into *signals* — BE enabled or
not, growth allowed or not, cooldown in effect — and the subcontrollers
"operate fairly independently of each other" (§4.3), consulting these
signals plus their own resource measurements.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class GrowthPhase(enum.Enum):
    """Gradient-descent phase of the core & memory subcontroller."""

    GROW_LLC = "grow_llc"
    GROW_CORES = "grow_cores"


@dataclass
class ControlState:
    """Mutable blackboard shared by the Heracles control loops."""

    # Written by the top-level controller.
    slack: float = 1.0
    load: float = 0.0
    growth_allowed: bool = True
    cooldown_until_s: float = 0.0
    last_latency_ms: Optional[float] = None

    # Written by the core & memory subcontroller.
    phase: GrowthPhase = GrowthPhase.GROW_LLC

    def in_cooldown(self, now_s: float) -> bool:
        return now_s < self.cooldown_until_s

    def enter_cooldown(self, now_s: float, duration_s: float) -> None:
        if duration_s < 0:
            raise ValueError("cooldown duration cannot be negative")
        self.cooldown_until_s = max(self.cooldown_until_s,
                                    now_s + duration_s)

    def can_grow_be(self, now_s: float, be_enabled: bool) -> bool:
        """Algorithm 2's CanGrowBE(): BE running, growth permitted, and
        no post-violation cooldown in effect."""
        return be_enabled and self.growth_allowed and not self.in_cooldown(now_s)
