"""Figure 8: the 12-hour websearch cluster under Heracles.

Tens of leaves behind a fan-out root, a diurnal 20%-90% load trace,
brain on half the leaves and streetview on the other half.  Reported:

* root latency (µ/30s) vs the cluster SLO, baseline and Heracles — the
  paper shows no violations and slack reduced by 20-30%;
* cluster EMU over the trace — "an average EMU of 90% and a minimum of
  80%" for the paper's hardware; our simulated substrate lands close
  (~0.8 average) with the same no-violation property.

The cluster runs on the batched backend by default (all leaves advance
per tick as one vectorized step — see :mod:`repro.sim.batch`), and the
managed and baseline arms are independent simulations fanned across the
sweep runner.  ``engine="scalar"`` reruns the reference per-leaf loop.

The full-fidelity run is 12 simulated hours; ``time_compression``
shrinks the trace period for quick looks (controller dynamics stay at
real speed, so heavy compression makes the controller look artificially
sluggish — use 1 for the faithful experiment).

This module is a thin consumer of the scenario layer: the two-arm run
is the registered ``fig8`` scenario (see
:func:`repro.scenarios.library.fig8_scenario`), and ``python -m
repro.cli fig8`` and ``python -m repro.cli scenario fig8`` run the
same compiled spec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cluster.cluster import ClusterHistory
from ..hardware.spec import MachineSpec
from ..scenarios import compile_scenario, registry
from ..scenarios.library import fig8_scenario


@dataclass
class Fig8Result:
    """Both cluster arms plus the derived headline metrics."""

    managed: ClusterHistory
    baseline: ClusterHistory
    root_slo_ms: float

    @property
    def heracles_max_slo(self) -> float:
        """Worst root-latency SLO fraction under Heracles."""
        return self.managed.max_root_slo_fraction(skip_s=600.0)

    @property
    def baseline_max_slo(self) -> float:
        """Worst root-latency SLO fraction without colocation."""
        return self.baseline.max_root_slo_fraction(skip_s=600.0)

    @property
    def heracles_mean_emu(self) -> float:
        """Mean cluster EMU under Heracles."""
        return self.managed.mean_emu(skip_s=600.0)

    @property
    def baseline_mean_emu(self) -> float:
        """Mean cluster EMU without colocation."""
        return self.baseline.mean_emu(skip_s=600.0)


def run_fig8(leaves: int = 12,
             duration_s: float = 12 * 3600.0,
             time_compression: float = 1.0,
             spec: Optional[MachineSpec] = None,
             seed: int = 7,
             engine: str = "batch",
             processes: Optional[int] = None) -> Fig8Result:
    """Run the cluster trace with and without Heracles.

    Compiles a parametrized ``fig8`` scenario spec; the two arms share
    nothing, so they are dispatched through
    :func:`repro.sim.runner.run_sweep` — on a multi-core host they run
    concurrently; on a single core the runner falls back to a serial
    loop.

    Args:
        leaves / duration_s / time_compression / seed / engine:
            forwarded to :func:`repro.scenarios.library.fig8_scenario`.
        spec: optional machine override (``None`` = the paper's
            server).  A non-default machine runs the cluster driver
            directly, outside the scenario layer.
        processes: runner worker count (``None`` = auto).

    Returns:
        The populated :class:`Fig8Result`.
    """
    if spec is not None:
        from ..cluster.cluster import run_cluster_arm
        from ..sim.runner import run_sweep
        from ..workloads.traces import DiurnalTrace
        if time_compression < 1.0:
            raise ValueError("compression must be >= 1")
        period = 12 * 3600.0 / time_compression
        arms = [
            dict(leaves=leaves, spec=spec,
                 trace=DiurnalTrace(low=0.20, high=0.90, period_s=period,
                                    noise_sigma=0.02, seed=seed),
                 managed=managed, seed=seed, engine=engine,
                 duration=duration_s / time_compression)
            for managed in (True, False)
        ]
        (managed_history, root_slo_ms), (baseline_history, _) = run_sweep(
            run_cluster_arm, arms, processes=processes)
        return Fig8Result(managed=managed_history,
                          baseline=baseline_history,
                          root_slo_ms=root_slo_ms)
    scenario = fig8_scenario(leaves=leaves, duration_s=duration_s,
                             time_compression=time_compression, seed=seed,
                             engine=engine)
    result = compile_scenario(scenario).run(processes=processes)
    return Fig8Result(managed=result.cluster_arms["managed"],
                      baseline=result.cluster_arms["baseline"],
                      root_slo_ms=result.root_slo_ms)


def main(leaves: Optional[int] = None,
         engine: Optional[str] = None) -> None:
    """Regenerate the Figure 8 report (the registered ``fig8`` scenario).

    Args:
        leaves: override the registered scenario's leaf count (the CLI
            exposes this as ``--leaves``; validated by the spec, so
            zero or negative counts fail loudly).
        engine: override the leaf backend (``batch`` or ``scalar``;
            the CLI's ``--engine``).
    """
    if leaves is None and engine is None:
        spec = registry.get("fig8")
    else:
        spec = fig8_scenario(leaves=leaves if leaves is not None else 8,
                             engine=engine or "batch")
    print(compile_scenario(spec).run().render(), end="")


if __name__ == "__main__":
    main()
