"""Columnar tick storage: preallocated, geometrically-grown arrays.

The recording layer used to keep one Python object per tick (lists of
dataclasses), which costs ~700 bytes per record and forces every
aggregate metric to rebuild a NumPy array with an O(T) attribute scan.
:class:`ColumnStore` inverts the layout: one preallocated NumPy array
per field, doubled in place when full, so appends are O(1) amortized
and :meth:`ColumnStore.column` hands back a zero-copy view that
vectorized metrics consume directly.

:class:`BatchColumnStore` extends the layout to batched engines: every
per-member field is a ``(capacity, N)`` member-major array, so a batch
of N servers records a whole tick with one vectorized row write instead
of N dataclass constructions.  Time is stored once (all members share
the batch clock), as an ordinary ``(capacity,)`` column.

Dtype policy: float-valued fields are stored as ``float64`` exactly as
produced (summaries stay bit-identical with the list-of-records
implementation they replaced); optional fields encode ``None`` as NaN;
counts and flags may use narrow integer/bool dtypes to keep history
memory flat — :meth:`ColumnStore.column` up-casts those to ``float64``
on read, which is the dtype the old ``column()`` API always returned.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple, Union

import numpy as np

#: Field specification: name -> NumPy dtype (anything np.dtype accepts).
FieldSpec = Union[Mapping[str, object], Iterable[Tuple[str, object]]]

#: Initial per-column capacity (rows) before the first geometric growth.
INITIAL_CAPACITY = 256


def _normalize_fields(fields: FieldSpec) -> Dict[str, np.dtype]:
    """Validate and normalize a field spec into ``{name: dtype}``."""
    if isinstance(fields, Mapping):
        pairs = list(fields.items())
    else:
        pairs = [(name, dtype) for name, dtype in fields]
    if not pairs:
        raise ValueError("a column store needs at least one field")
    out: Dict[str, np.dtype] = {}
    for name, dtype in pairs:
        if name in out:
            raise ValueError(f"duplicate field {name!r}")
        out[name] = np.dtype(dtype)
    return out


class ColumnStore:
    """One growable NumPy column per field; O(1) amortized row appends.

    Args:
        fields: mapping (or pairs) of field name to dtype.
        capacity: initial row capacity (grown geometrically as needed).
    """

    def __init__(self, fields: FieldSpec,
                 capacity: int = INITIAL_CAPACITY):
        self._dtypes = _normalize_fields(fields)
        self._capacity = max(1, int(capacity))
        self._length = 0
        self._data: Dict[str, np.ndarray] = {
            name: np.empty(self._shape_of(name, self._capacity),
                           dtype=dtype)
            for name, dtype in self._dtypes.items()
        }

    # -- layout hooks (overridden by BatchColumnStore) -----------------

    def _shape_of(self, name: str, rows: int):
        """Allocation shape for ``rows`` of the named column."""
        return (rows,)

    # -- introspection --------------------------------------------------

    @property
    def fields(self) -> Tuple[str, ...]:
        """The stored field names, in declaration order."""
        return tuple(self._dtypes)

    @property
    def capacity(self) -> int:
        """Currently allocated row capacity."""
        return self._capacity

    def __len__(self) -> int:
        """Number of recorded rows."""
        return self._length

    def __contains__(self, name: str) -> bool:
        """True when ``name`` is a stored field."""
        return name in self._dtypes

    def nbytes(self, allocated: bool = False) -> int:
        """History bytes held by the columns.

        Args:
            allocated: count the full preallocated capacity instead of
                only the rows recorded so far.
        """
        if allocated:
            return sum(a.nbytes for a in self._data.values())
        if self._capacity == 0:
            return 0
        return sum(a.nbytes * self._length // self._capacity
                   for a in self._data.values())

    # -- writes ---------------------------------------------------------

    def _grow_to(self, rows: int) -> None:
        """Ensure capacity for ``rows`` total rows (geometric doubling)."""
        if rows <= self._capacity:
            return
        new_cap = self._capacity
        while new_cap < rows:
            new_cap *= 2
        for name, array in self._data.items():
            grown = np.empty(self._shape_of(name, new_cap),
                             dtype=array.dtype)
            grown[:self._length] = array[:self._length]
            self._data[name] = grown
        self._capacity = new_cap

    def append_row(self, values: Mapping[str, object]) -> None:
        """Append one row; ``values`` must cover every field.

        ``None`` is encoded as NaN (only meaningful for float fields).
        """
        self._grow_to(self._length + 1)
        i = self._length
        for name in self._dtypes:
            value = values[name]
            self._data[name][i] = np.nan if value is None else value
        self._length += 1

    # -- reads ----------------------------------------------------------

    def raw_column(self, name: str) -> np.ndarray:
        """Zero-copy view of one column in its storage dtype, shape (T,).

        The view is marked read-only: it aliases the live recording
        buffer, and an in-place mutation would silently rewrite
        history (the pre-columnar API returned fresh arrays, so
        callers may still assume mutation is safe).
        """
        view = self._data[name][:self._length]
        view.flags.writeable = False
        return view

    def column(self, name: str) -> np.ndarray:
        """One column as ``float64``, shape (T,...).

        Zero-copy for ``float64`` fields; narrow (int/bool) fields are
        up-cast on read, matching the dtype the records-based
        ``column()`` API historically returned.
        """
        raw = self.raw_column(name)
        if raw.dtype == np.float64:
            return raw
        return raw.astype(np.float64)

    def value(self, name: str, index: int):
        """One cell, decoded: NaN-able float fields give NaN through."""
        return self._data[name][index if index >= 0
                                else self._length + index]


class BatchColumnStore(ColumnStore):
    """(T, N) member-major columns for batched engines.

    Per-member fields allocate as ``(capacity, n)``; fields named in
    ``shared`` (by default just the time column) allocate as
    ``(capacity,)`` because every member shares the batch clock.  One
    :meth:`append_tick` call records a whole tick for all N members.
    """

    def __init__(self, fields: FieldSpec, n: int,
                 shared: Iterable[str] = ("t_s",),
                 capacity: int = INITIAL_CAPACITY):
        if n < 1:
            raise ValueError("batch stores need at least one member")
        self.n = int(n)
        self._shared = frozenset(shared)
        super().__init__(fields, capacity=capacity)
        unknown = self._shared - set(self._dtypes)
        if unknown:
            raise ValueError(f"shared fields not in spec: {sorted(unknown)}")

    def _shape_of(self, name: str, rows: int):
        """(rows,) for shared columns, (rows, N) for per-member ones."""
        return (rows,) if name in self._shared else (rows, self.n)

    def append_tick(self, values: Mapping[str, object]) -> None:
        """Record one tick: scalars for shared fields, (N,) arrays else."""
        self._grow_to(self._length + 1)
        i = self._length
        for name in self._dtypes:
            self._data[name][i] = values[name]
        self._length += 1

    def member_column(self, name: str, index: int) -> np.ndarray:
        """Zero-copy (T,) view of one member's column (storage dtype).

        Read-only, like :meth:`ColumnStore.raw_column`.
        """
        raw = self._data[name]
        view = raw[:self._length] if name in self._shared \
            else raw[:self._length, index]
        view.flags.writeable = False
        return view
