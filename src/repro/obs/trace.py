"""Decision tracing: structured engine events with a deterministic
JSONL export.

A :class:`TraceSink` is a tiny append-only event log backed by the same
:class:`~repro.metrics.columns.ColumnStore` the telemetry layer uses —
so it inherits O(1) amortized appends, narrow dtypes, and chunked
spill-to-disk (``REPRO_SPILL_DIR``) for long-horizon runs.  Engines
hold at most one sink and consult it with a single ``is None`` check
per tick, which is the entire cost of the disabled path.

Event model
-----------

One event is one fixed-width row:

========  =======  ====================================================
field     dtype    meaning
========  =======  ====================================================
``t_s``   float64  engine clock when the event resolved
``member``  int64  *global* member (leaf) index; ``-1`` = run-scoped
``source``  int64  code into :data:`SOURCES` (who decided)
``kind``    int64  code into :data:`KINDS` (what happened)
``a``     float64  payload: old value / chaos value / placed cores
``b``     float64  payload: new value / scheduled at_s / job index
``slo``   float64  triggering tail-latency/SLO fraction (NaN if n/a)
``load``  float64  triggering offered load (NaN if n/a)
========  =======  ====================================================

``source`` and ``kind`` are *fixed* code tables (module constants, not
first-appearance interning) so the encoded arrays — and the JSONL
export — are identical no matter which shard or worker emitted the
event first.

Determinism
-----------

The merge contract mirrors the telemetry bit-identity contract: the
*multiset* of events a run produces is invariant across shard plans
and ``REPRO_JOBS`` (controller deltas are derived from actuator columns
that are themselves bit-identical, chaos resolutions are engine-level
deterministic), so canonical order is a sort on the full field tuple
``(t_s, member, source, kind, a, b, slo, load)``.  Two events equal on
every field are interchangeable, hence the sorted byte stream is
unique.

The sort is paid at *export*, not at run time: engine and fleet
plumbing combine sink payloads with :func:`concat_payloads` (a pure
concatenation, so a result's event table is in unspecified order),
while :func:`iter_events` / :func:`events_to_jsonl` canonicalize
before decoding — the JSONL export stays byte-identical across plans
and pool sizes, and a traced run never pays an O(n log n) sort over
the full event volume inside the timed run path.
:func:`merge_payloads` remains the eager canonicalizer for callers
that want sorted columns in hand.
"""

from __future__ import annotations

import json
import math
import os
from typing import Dict, Iterator, List, Mapping, Optional, Sequence

import numpy as np

from repro.metrics.columns import ColumnStore

#: Environment toggle: any non-empty value other than ``"0"`` enables
#: tracing process-wide (workers inherit it through the pool fork).
TRACE_ENV = "REPRO_TRACE"

#: Who emitted the event.
SOURCES = ("controller", "chaos", "sched", "checkpoint")

#: What happened.  Controller kinds carry ``a`` = old actuator value and
#: ``b`` = new value; chaos kinds carry ``a`` = injected value (NaN for
#: valueless actions) and ``b`` = the scheduled ``at_s``; scheduler
#: kinds carry ``a`` = cores and ``b`` = job index; ``save`` carries
#: ``a`` = completed ticks.
KINDS = (
    "be_gate",        # controller enabled/disabled BE (a=old, b=new 0/1)
    "cores",          # BE core grant changed (grow/revoke)
    "llc",            # BE LLC ways changed
    "dvfs",           # BE DVFS cap changed (GHz)
    "net_ceil",       # BE network HTB ceiling changed (Gbps)
    "chaos_leaf_crash",
    "chaos_leaf_restart",
    "chaos_straggler",
    "chaos_power_cap",
    "chaos_partition",
    "chaos_enable_be",
    "chaos_disable_be",
    "chaos_set_be_cores",
    "chaos_set_llc_split",
    "chaos_set_be_net_ceil",
    "place",          # scheduler placed job cores on a leaf
    "evict",          # scheduler evicted a job from a latched leaf
    "save",           # engine checkpoint written
)

#: Fixed code tables (the inverse of :data:`SOURCES` / :data:`KINDS`).
SOURCE_CODE = {name: i for i, name in enumerate(SOURCES)}
KIND_CODE = {name: i for i, name in enumerate(KINDS)}

#: The controller-actuator kinds, in the row order
#: :meth:`TraceSink.emit_actuator_deltas` expects.
ACTUATOR_KINDS = ("be_gate", "cores", "llc", "dvfs", "net_ceil")
_ACTUATOR_KIND_CODES = np.array([KIND_CODE[name] for name in ACTUATOR_KINDS],
                                dtype=np.int64)

#: The sink's column layout; the canonical sort key is this field order.
FIELDS = (
    ("t_s", np.float64),
    ("member", np.int64),
    ("source", np.int64),
    ("kind", np.int64),
    ("a", np.float64),
    ("b", np.float64),
    ("slo", np.float64),
    ("load", np.float64),
)

_NAN = float("nan")


def trace_enabled() -> bool:
    """True when :data:`TRACE_ENV` requests decision tracing."""
    return os.environ.get(TRACE_ENV, "") not in ("", "0")


def make_sink() -> Optional["TraceSink"]:
    """A fresh :class:`TraceSink` when tracing is enabled, else None.

    Engines call this once at construction; the returned ``None`` on
    the disabled path keeps the per-tick cost to one attribute check.
    """
    return TraceSink() if trace_enabled() else None


class TraceSink:
    """Append-only structured event log (ColumnStore-backed).

    The sink is process-local: each shard worker fills its own and
    ships the raw arrays back through its
    :class:`~repro.fleet.shard.ShardResult`; :func:`merge_payloads`
    canonicalizes the union.
    """

    def __init__(self) -> None:
        self._store = ColumnStore(FIELDS)

    def __len__(self) -> int:
        """Number of recorded events."""
        return len(self._store)

    def emit(self, t_s: float, member: int, source: str, kind: str,
             a: float = _NAN, b: float = _NAN, slo: float = _NAN,
             load: float = _NAN) -> None:
        """Record one event.

        ``source`` / ``kind`` are names from :data:`SOURCES` /
        :data:`KINDS` (a typo raises ``KeyError`` eagerly — a silent
        mis-coded event would defeat the whole point of tracing).
        """
        self._store.append_row({
            "t_s": float(t_s),
            "member": int(member),
            "source": SOURCE_CODE[source],
            "kind": KIND_CODE[kind],
            "a": _NAN if a is None else float(a),
            "b": _NAN if b is None else float(b),
            "slo": _NAN if slo is None else float(slo),
            "load": _NAN if load is None else float(load),
        })

    def emit_block(self, t_s: float, members: np.ndarray, source: str,
                   kind: str, a=None, b=None, slo=None,
                   load=None) -> None:
        """Record one event per entry of ``members`` in a single append.

        The vectorized counterpart of :meth:`emit` for the batched
        engines, whose hot loops would otherwise pay a Python call per
        member per tick.  Payload fields accept ``(len(members),)``
        arrays or scalars (broadcast); ``None`` and ``inf`` encode as
        NaN, matching the scalar path's null policy.  Events land in
        the same canonical columns, so :func:`merge_payloads` output is
        identical whichever emit path produced them.
        """
        members = np.asarray(members, dtype=np.int64)
        count = len(members)
        if not count:
            return

        def payload_column(value) -> np.ndarray:
            if value is None:
                return np.full(count, _NAN)
            column = np.asarray(value, dtype=np.float64)
            if column.ndim == 0:
                column = np.full(count, float(column))
            return np.where(np.isinf(column), _NAN, column)

        self._store.append_rows({
            "t_s": np.full(count, float(t_s)),
            "member": members,
            "source": np.full(count, SOURCE_CODE[source], dtype=np.int64),
            "kind": np.full(count, KIND_CODE[kind], dtype=np.int64),
            "a": payload_column(a),
            "b": payload_column(b),
            "slo": payload_column(slo),
            "load": payload_column(load),
        })

    def emit_actuator_deltas(self, t_s: float, members: np.ndarray,
                             old: np.ndarray, new: np.ndarray,
                             slo: np.ndarray, load: np.ndarray) -> None:
        """Record one tick's controller actuator deltas in one append.

        ``old`` / ``new`` are ``(5, N)`` float arrays in
        :data:`ACTUATOR_KINDS` row order (pre- and post-controller
        actuator state); every cell where they differ becomes one
        ``controller`` event carrying ``a`` = old and ``b`` = new,
        with the member's triggering ``slo`` / ``load`` attached.
        ``inf`` (uncapped DVFS / network ceiling) encodes as NaN, the
        scalar :meth:`emit` path's null policy.  The batched engines'
        hot loop calls this once per tick — a 1000-leaf mega tick
        emits ~1k events, far too many for per-event Python calls.
        """
        kind_rows, member_cols = np.nonzero(old != new)
        count = len(kind_rows)
        if not count:
            return
        a = old[kind_rows, member_cols]
        b = new[kind_rows, member_cols]
        self._store.append_rows({
            "t_s": np.full(count, float(t_s)),
            "member": np.asarray(members, dtype=np.int64)[member_cols],
            "source": np.full(count, SOURCE_CODE["controller"],
                              dtype=np.int64),
            "kind": _ACTUATOR_KIND_CODES[kind_rows],
            "a": np.where(np.isinf(a), _NAN, a),
            "b": np.where(np.isinf(b), _NAN, b),
            "slo": np.asarray(slo, dtype=np.float64)[member_cols],
            "load": np.asarray(load, dtype=np.float64)[member_cols],
        })

    def payload(self) -> Dict[str, np.ndarray]:
        """The recorded events as ``{field: array}`` (materialized).

        The arrays are copies, safe to pickle across the process pool
        and to hold after the sink keeps growing.
        """
        return {name: np.array(self._store.raw_column(name))
                for name, _ in FIELDS}


def empty_payload() -> Dict[str, np.ndarray]:
    """A zero-event payload with the canonical fields and dtypes."""
    return {name: np.empty(0, dtype=dtype) for name, dtype in FIELDS}


def concat_payloads(payloads: Sequence[Mapping[str, np.ndarray]]
                    ) -> Dict[str, np.ndarray]:
    """Concatenate sink payloads into one event table, *unsorted*.

    This is the run-path combiner: O(n) copies, no sort, event order
    unspecified (whatever the shards/groups emitted).  Canonical order
    is an export concern — :func:`iter_events` /
    :func:`events_to_jsonl` sort before decoding, and
    :func:`merge_payloads` produces eagerly sorted columns.
    """
    payloads = [p for p in payloads if p is not None]
    if not payloads:
        return empty_payload()
    if len(payloads) == 1:
        return {name: np.asarray(payloads[0][name]) for name, _ in FIELDS}
    return {name: np.concatenate([np.asarray(p[name]) for p in payloads])
            for name, _ in FIELDS}


def canonical_order(payload: Mapping[str, np.ndarray]) -> np.ndarray:
    """The permutation sorting ``payload`` into canonical event order.

    Canonical order is a sort on the full field tuple ``(t_s, member,
    source, kind, a, b, slo, load)``, so any two runs producing the
    same multiset of events (the tracing contract) canonicalize to
    byte-identical tables regardless of shard plan, worker count, or
    arrival order.
    """
    # np.lexsort keys: last key is the primary; NaNs sort last, and all
    # payload NaNs share one bit pattern, so ties stay deterministic.
    return np.lexsort(tuple(np.asarray(payload[name])
                            for name, _ in reversed(FIELDS)))


def merge_payloads(payloads: Sequence[Mapping[str, np.ndarray]]
                   ) -> Dict[str, np.ndarray]:
    """Merge sink payloads into one canonically ordered event table.

    :func:`concat_payloads` plus the :func:`canonical_order` sort, for
    callers that want sorted columns in hand (the JSONL exporters sort
    internally — run-time plumbing should use the cheap concat).
    """
    merged = concat_payloads(payloads)
    order = canonical_order(merged)
    return {name: column[order] for name, column in merged.items()}


def _jsonable(value: float):
    """NaN → None so the export stays strict JSON."""
    return None if math.isnan(value) else value


def iter_events(payload: Mapping[str, np.ndarray]) -> Iterator[dict]:
    """Decode an event table into canonically ordered per-event dicts.

    ``source`` / ``kind`` come back as names; NaN payload fields come
    back as ``None``.  The input's order does not matter — events are
    canonicalized here (idempotent for already-sorted tables), so a
    result's unsorted concatenated trace decodes exactly like an
    eagerly merged one.
    """
    merged = merge_payloads([payload])
    n = len(merged["t_s"])
    for i in range(n):
        yield {
            "t_s": float(merged["t_s"][i]),
            "member": int(merged["member"][i]),
            "source": SOURCES[int(merged["source"][i])],
            "kind": KINDS[int(merged["kind"][i])],
            "a": _jsonable(float(merged["a"][i])),
            "b": _jsonable(float(merged["b"][i])),
            "slo": _jsonable(float(merged["slo"][i])),
            "load": _jsonable(float(merged["load"][i])),
        }


def events_to_jsonl(payload: Mapping[str, np.ndarray]) -> str:
    """Render an event table as canonical JSONL (one event/line).

    Events are canonicalized on the way out (see :func:`iter_events`),
    and ``json.dumps(..., sort_keys=True)`` over float ``repr`` is
    deterministic for identical bits — so byte identity of this string
    is exactly multiset identity of the events, whatever order the
    input arrived in.
    """
    lines: List[str] = []
    for event in iter_events(payload):
        lines.append(json.dumps(event, sort_keys=True))
    return "".join(line + "\n" for line in lines)


def write_jsonl(merged: Mapping[str, np.ndarray], path: str) -> str:
    """Write :func:`events_to_jsonl` output to ``path``; returns it."""
    text = events_to_jsonl(merged)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return path


def read_jsonl(path: str) -> List[dict]:
    """Parse a trace JSONL file back into a list of event dicts."""
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
