"""Unit tests for the columnar telemetry subsystem (repro.metrics)."""

from dataclasses import dataclass
from typing import Optional

import numpy as np
import pytest

from repro.metrics import (BatchColumnStore, ColumnStore, WindowedMetrics,
                           derive_dt_s, max_after, mean_after, min_after,
                           sample_mean, window_width, worst_window_mean)
from repro.metrics.columns import SPILL_DIR_ENV
from repro.metrics.history import BatchMemberSeries, ColumnarHistory
from repro.metrics.windows import (streaming_max, streaming_mean,
                                   streaming_min, streaming_worst_window)


@pytest.fixture
def in_ram(monkeypatch):
    """Force the in-RAM layout even under the CI spill env toggle.

    A handful of tests assert layout-specific facts (zero-copy views,
    geometric capacity growth, allocated bytes) that the spilling
    layout legitimately changes; they pin the in-RAM behaviour.
    """
    monkeypatch.delenv(SPILL_DIR_ENV, raising=False)


class TestColumnStore:
    def test_append_and_views(self):
        store = ColumnStore({"t_s": np.float64, "x": np.float64},
                            capacity=2)
        for i in range(5):
            store.append_row({"t_s": float(i), "x": i * 10.0})
        assert len(store) == 5
        np.testing.assert_array_equal(store.column("t_s"),
                                      [0.0, 1.0, 2.0, 3.0, 4.0])
        np.testing.assert_array_equal(store.column("x"),
                                      [0.0, 10.0, 20.0, 30.0, 40.0])

    def test_geometric_growth(self, in_ram):
        store = ColumnStore({"x": np.float64}, capacity=1)
        for i in range(100):
            store.append_row({"x": float(i)})
        assert store.capacity >= 100
        assert store.capacity < 400  # geometric, not unbounded
        assert store.column("x")[99] == 99.0

    def test_float_column_is_zero_copy(self, in_ram):
        store = ColumnStore({"x": np.float64})
        store.append_row({"x": 1.0})
        view = store.column("x")
        assert np.shares_memory(view, store.raw_column("x"))

    def test_column_views_are_read_only(self):
        """Zero-copy views must not let callers rewrite history."""
        store = ColumnStore({"x": np.float64})
        store.append_row({"x": 1.0})
        with pytest.raises(ValueError):
            store.column("x")[0] = 99.0
        batch = BatchColumnStore({"t_s": np.float64, "x": np.float64},
                                 n=2, shared=("t_s",))
        batch.append_tick({"t_s": 0.0, "x": np.array([1.0, 2.0])})
        with pytest.raises(ValueError):
            batch.member_column("x", 0)[0] = 99.0
        assert store.column("x")[0] == 1.0  # storage unharmed

    def test_narrow_column_upcasts_on_read(self):
        store = ColumnStore({"n": np.int32, "b": np.bool_})
        store.append_row({"n": 7, "b": True})
        assert store.column("n").dtype == np.float64
        assert store.column("b").dtype == np.float64
        assert store.column("b")[0] == 1.0

    def test_none_encodes_as_nan(self):
        store = ColumnStore({"x": np.float64})
        store.append_row({"x": None})
        store.append_row({"x": 2.5})
        col = store.column("x")
        assert np.isnan(col[0]) and col[1] == 2.5

    def test_nbytes_tracks_rows_not_capacity(self, in_ram):
        store = ColumnStore({"x": np.float64}, capacity=1024)
        assert store.nbytes() == 0
        assert store.nbytes(allocated=True) == 1024 * 8
        for i in range(10):
            store.append_row({"x": float(i)})
        assert store.nbytes() == pytest.approx(10 * 8, abs=8)

    def test_field_validation(self):
        with pytest.raises(ValueError):
            ColumnStore({})
        with pytest.raises(ValueError):
            ColumnStore([("x", np.float64), ("x", np.float64)])

    def test_contains_and_fields(self):
        store = ColumnStore({"a": np.float64, "b": np.float64})
        assert "a" in store and "z" not in store
        assert store.fields == ("a", "b")


class TestNoneRejection:
    """Regression: None headed for a narrow column fails loudly.

    ``append_row`` encodes None as NaN, which only exists for float
    dtypes; assigning NaN into an int32/bool column used to surface as
    an opaque NumPy cast error mid-run.  The store now rejects it
    eagerly with a TypeError naming the field.
    """

    def test_none_into_int_column_names_the_field(self):
        store = ColumnStore({"x": np.float64, "count": np.int32})
        with pytest.raises(TypeError, match="count"):
            store.append_row({"x": 1.0, "count": None})

    def test_none_into_bool_column_names_the_field(self):
        store = ColumnStore({"flag": np.bool_})
        with pytest.raises(TypeError, match="flag"):
            store.append_row({"flag": None})

    def test_none_into_float_column_still_encodes_nan(self):
        store = ColumnStore({"x": np.float64, "count": np.int32})
        store.append_row({"x": None, "count": 3})
        assert np.isnan(store.value("x", 0))
        assert store.value("count", 0) == 3


class TestViewGenerations:
    """Regression: growth invalidates zero-copy views detectably.

    ``_grow_to`` reallocates the backing buffer, so a view fetched
    before an append that triggers growth silently freezes — it keeps
    the old buffer alive and never sees new rows.  The ``generation``
    counter makes that detectable: compare and re-fetch.
    """

    def test_growth_while_viewing(self, in_ram):
        store = ColumnStore({"x": np.float64}, capacity=2)
        store.append_row({"x": 1.0})
        view = store.raw_column("x")
        generation = store.generation
        store.append_row({"x": 2.0})       # fits: no realloc
        assert store.generation == generation
        store.append_row({"x": 3.0})       # grows: view now stale
        assert store.generation > generation
        assert len(view) == 1              # the stale view froze
        refetched = store.raw_column("x")
        np.testing.assert_array_equal(refetched, [1.0, 2.0, 3.0])

    def test_no_growth_no_bump(self, in_ram):
        store = ColumnStore({"x": np.float64}, capacity=16)
        generation = store.generation
        for i in range(10):
            store.append_row({"x": float(i)})
        assert store.generation == generation

    def test_spill_flush_bumps_generation(self, tmp_path):
        store = ColumnStore({"x": np.float64}, spill_dir=str(tmp_path),
                            spill_chunk_rows=4)
        generation = store.generation
        for i in range(4):
            store.append_row({"x": float(i)})
        assert store.generation > generation


class TestSpill:
    """Chunked spill-to-disk keeps resident memory bounded by chunk."""

    FIELDS = {"t_s": np.float64, "x": np.float64, "n": np.int32}

    def make(self, tmp_path, rows=11, chunk=4):
        store = ColumnStore(self.FIELDS, spill_dir=str(tmp_path),
                            spill_chunk_rows=chunk)
        for i in range(rows):
            store.append_row({"t_s": float(i), "x": i * 0.5, "n": i})
        return store

    def test_reads_match_in_ram(self, tmp_path, in_ram):
        spilled = self.make(tmp_path)
        plain = ColumnStore(self.FIELDS)
        for i in range(11):
            plain.append_row({"t_s": float(i), "x": i * 0.5, "n": i})
        for name in self.FIELDS:
            np.testing.assert_array_equal(spilled.raw_column(name),
                                          plain.raw_column(name))
            np.testing.assert_array_equal(spilled.column(name),
                                          plain.column(name))
        assert spilled.column("n").dtype == np.float64

    def test_chunk_files_and_counters(self, tmp_path):
        store = self.make(tmp_path, rows=11, chunk=4)
        assert len(store) == 11
        assert store.spilled_rows == 8       # two full chunks flushed
        files = sorted(p.name for p in tmp_path.iterdir())
        assert "chunk_000000_x.npy" in files
        assert "chunk_000001_t_s.npy" in files
        assert store.spilled_nbytes() > 0
        # The resident tail is 3 rows, never the full 11.
        assert store.nbytes() == 3 * (8 + 8 + 4)

    def test_value_reads_through_chunks(self, tmp_path):
        store = self.make(tmp_path, rows=11, chunk=4)
        assert store.value("x", 0) == 0.0    # in chunk 0
        assert store.value("x", 6) == 3.0    # in chunk 1
        assert store.value("x", 10) == 5.0   # in the tail
        assert store.value("x", -1) == 5.0

    def test_column_chunks_stream(self, tmp_path):
        store = self.make(tmp_path, rows=11, chunk=4)
        chunks = list(store.column_chunks("x"))
        assert [len(c) for c in chunks] == [4, 4, 3]
        np.testing.assert_array_equal(np.concatenate(chunks),
                                      np.arange(11) * 0.5)

    def test_batch_spill_member_reads(self, tmp_path):
        store = BatchColumnStore({"t_s": np.float64, "x": np.float64},
                                 n=3, shared=("t_s",),
                                 spill_dir=str(tmp_path),
                                 spill_chunk_rows=4)
        for t in range(10):
            store.append_tick({"t_s": float(t),
                               "x": np.array([t, 2.0 * t, -t],
                                             dtype=float)})
        np.testing.assert_array_equal(store.member_column("x", 1),
                                      2.0 * np.arange(10.0))
        chunks = list(store.member_column_chunks("x", 2))
        np.testing.assert_array_equal(np.concatenate(chunks),
                                      -np.arange(10.0))
        np.testing.assert_array_equal(store.member_column("t_s", 0),
                                      np.arange(10.0))
        assert store.column("x").shape == (10, 3)

    def test_env_toggle_spills(self, tmp_path, monkeypatch):
        monkeypatch.setenv(SPILL_DIR_ENV, str(tmp_path))
        monkeypatch.setenv("REPRO_SPILL_CHUNK", "4")
        store = ColumnStore({"x": np.float64})
        for i in range(9):
            store.append_row({"x": float(i)})
        assert store.spilled_rows == 8
        assert store.spill_dir is not None
        assert str(tmp_path) in store.spill_dir
        np.testing.assert_array_equal(store.column("x"), np.arange(9.0))

    def test_bad_chunk_size_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ColumnStore({"x": np.float64}, spill_dir=str(tmp_path),
                        spill_chunk_rows=0)


class TestStreamingAggregates:
    """Streaming chunk reductions agree with the materialized ones."""

    def pairs(self, v, t, chunk=7):
        return [(v[i:i + chunk], t[i:i + chunk])
                for i in range(0, len(v), chunk)]

    def test_against_materialized(self):
        rng = np.random.default_rng(5)
        v = rng.uniform(0.0, 2.0, size=200)
        t = np.arange(200.0) * 0.5
        skip = 13.0
        assert streaming_max(self.pairs(v, t), skip) == max_after(v, t, skip)
        assert streaming_min(self.pairs(v, t), skip) == min_after(v, t, skip)
        assert streaming_mean(self.pairs(v, t), skip) == pytest.approx(
            mean_after(v, t, skip), rel=1e-12)
        got = streaming_worst_window(lambda: self.pairs(v, t),
                                     window_s=30.0, skip_s=skip)
        assert got == pytest.approx(
            worst_window_mean(v, t, window_s=30.0, skip_s=skip), rel=1e-12)

    def test_empty_and_short(self):
        empty = []
        assert streaming_mean(empty) == 0.0
        assert streaming_max(empty) == 0.0
        assert streaming_min(empty) == 0.0
        assert streaming_worst_window(lambda: []) == 0.0
        v, t = np.array([1.0, 3.0]), np.array([0.0, 1.0])
        assert streaming_worst_window(lambda: self.pairs(v, t),
                                      window_s=60.0) == pytest.approx(2.0)

    def test_history_chunk_pairs(self, tmp_path):
        history = _RecHistory(spill_dir=str(tmp_path), spill_chunk_rows=4)
        for i in range(11):
            history.append(_Rec(t_s=float(i), value=i * 1.5, count=i,
                                flag=False, cap=None))
        assert streaming_max(history.chunk_pairs("value")) == \
            history.metrics.maximum("value")
        assert streaming_mean(history.chunk_pairs("value"),
                              skip_s=3.0) == pytest.approx(
            history.metrics.mean("value", skip_s=3.0), rel=1e-12)


class TestBatchColumnStore:
    def test_tick_append_shapes(self):
        store = BatchColumnStore({"t_s": np.float64, "x": np.float64},
                                 n=3, shared=("t_s",))
        for t in range(4):
            store.append_tick({"t_s": float(t),
                               "x": np.array([1.0, 2.0, 3.0]) * t})
        assert store.column("x").shape == (4, 3)
        assert store.column("t_s").shape == (4,)
        np.testing.assert_array_equal(store.member_column("x", 1),
                                      [0.0, 2.0, 4.0, 6.0])
        np.testing.assert_array_equal(store.member_column("t_s", 1),
                                      [0.0, 1.0, 2.0, 3.0])

    def test_member_column_is_zero_copy(self, in_ram):
        store = BatchColumnStore({"t_s": np.float64, "x": np.float64},
                                 n=2, shared=("t_s",))
        store.append_tick({"t_s": 0.0, "x": np.array([1.0, 2.0])})
        assert np.shares_memory(store.member_column("x", 0),
                                store.raw_column("x"))

    def test_growth_preserves_layout(self):
        store = BatchColumnStore({"t_s": np.float64, "x": np.float64},
                                 n=2, shared=("t_s",), capacity=1)
        for t in range(9):
            store.append_tick({"t_s": float(t),
                               "x": np.array([t, -t], dtype=float)})
        assert store.column("x").shape == (9, 2)
        np.testing.assert_array_equal(store.member_column("x", 1),
                                      -np.arange(9.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchColumnStore({"t_s": np.float64}, n=0)
        with pytest.raises(ValueError):
            BatchColumnStore({"x": np.float64}, n=2, shared=("t_s",))


class TestWindowFunctions:
    def test_sample_mean(self):
        assert sample_mean([1.0, 2.0, 6.0]) == pytest.approx(3.0)

    def test_derive_dt(self):
        assert derive_dt_s(np.array([0.0, 0.5, 1.0])) == pytest.approx(0.5)
        assert derive_dt_s(np.array([4.0])) == 1.0
        assert derive_dt_s(np.array([]), default=2.0) == 2.0

    def test_window_width(self):
        assert window_width(60.0, 0.5) == 120
        assert window_width(60.0, 5.0) == 12
        assert window_width(1.0, 30.0) == 1  # never below one sample
        with pytest.raises(ValueError):
            window_width(60.0, 0.0)

    def test_filters_against_naive_reference(self):
        rng = np.random.default_rng(0)
        t = np.arange(50.0) * 2.0
        v = rng.uniform(0.0, 2.0, size=50)
        skip = 31.0
        keep = [float(x) for x, ts in zip(v, t) if ts >= skip]
        assert mean_after(v, t, skip) == pytest.approx(np.mean(keep))
        assert max_after(v, t, skip) == pytest.approx(max(keep))
        assert min_after(v, t, skip) == pytest.approx(min(keep))

    def test_empty_filters_are_zero(self):
        t = np.array([0.0, 1.0])
        v = np.array([5.0, 6.0])
        assert mean_after(v, t, skip_s=10.0) == 0.0
        assert max_after(v, t, skip_s=10.0) == 0.0
        assert min_after(v, t, skip_s=10.0) == 0.0

    def test_worst_window_matches_naive_sliding_mean(self):
        rng = np.random.default_rng(1)
        v = rng.uniform(0.0, 1.0, size=240)
        t = np.arange(240.0) * 0.5  # dt = 0.5 -> 120-sample windows
        width = 120
        naive = max(np.mean(v[i:i + width])
                    for i in range(len(v) - width + 1))
        assert worst_window_mean(v, t, window_s=60.0) == pytest.approx(
            float(naive), rel=1e-12)

    def test_worst_window_short_run_reports_mean(self):
        v = np.array([1.0, 3.0])
        t = np.array([0.0, 1.0])
        assert worst_window_mean(v, t, window_s=60.0) == pytest.approx(2.0)

    def test_worst_window_rejects_bad_dt(self):
        v, t = np.ones(5), np.arange(5.0)
        with pytest.raises(ValueError):
            worst_window_mean(v, t, dt_s=-1.0)
        assert worst_window_mean(np.ones(0), np.ones(0), dt_s=-1.0) == 0.0


@dataclass
class _Rec:
    """Tiny record type exercising every decode path."""

    t_s: float
    value: float
    count: int
    flag: bool
    cap: Optional[float]


class _RecHistory(ColumnarHistory):
    """Columnar history of :class:`_Rec` rows (test fixture)."""

    RECORD_TYPE = _Rec
    INT_FIELDS = frozenset({"count"})
    BOOL_FIELDS = frozenset({"flag"})
    OPTIONAL_FIELDS = frozenset({"cap"})


class TestColumnarHistory:
    def make(self, rows=5):
        history = _RecHistory()
        for i in range(rows):
            history.append(_Rec(t_s=float(i), value=i * 1.5, count=i,
                                flag=bool(i % 2), cap=None if i == 0
                                else float(i)))
        return history

    def test_round_trip(self):
        history = self.make()
        records = history.records
        assert len(records) == len(history) == 5
        assert records[0] == _Rec(0.0, 0.0, 0, False, None)
        assert records[3] == _Rec(3.0, 4.5, 3, True, 3.0)
        assert history.last() == records[-1]
        assert isinstance(records[2].count, int)
        assert isinstance(records[2].flag, bool)

    def test_records_list_is_a_snapshot(self):
        history = self.make()
        history.records.append("garbage")
        assert len(history) == 5  # storage untouched

    def test_columns_and_metrics(self):
        history = self.make()
        np.testing.assert_array_equal(history.column("value"),
                                      [0.0, 1.5, 3.0, 4.5, 6.0])
        assert history.column("count").dtype == np.float64
        assert history.metrics.mean("value", skip_s=3.0) == pytest.approx(
            5.25)
        assert history.metrics.maximum("value") == 6.0
        assert history.metrics.minimum("value") == 0.0

    def test_metric_memoization_tracks_appends(self):
        history = self.make()
        assert history.metrics.maximum("value") == 6.0
        history.append(_Rec(5.0, 99.0, 5, False, None))
        assert history.metrics.maximum("value") == 99.0


class _RecView(BatchMemberSeries):
    """Member view over a batch store of :class:`_Rec` fields."""

    RECORD_TYPE = _Rec
    INT_FIELDS = _RecHistory.INT_FIELDS
    BOOL_FIELDS = _RecHistory.BOOL_FIELDS
    OPTIONAL_FIELDS = _RecHistory.OPTIONAL_FIELDS


class TestBatchMemberSeries:
    def test_member_slices_share_storage(self):
        store = BatchColumnStore(_RecView.field_dtypes(), n=2,
                                 shared=("t_s",))
        for t in range(3):
            store.append_tick({
                "t_s": float(t),
                "value": np.array([t * 1.0, t * 10.0]),
                "count": np.array([t, t + 1]),
                "flag": np.array([True, False]),
                "cap": np.array([np.nan, 1.5]),
            })
        a, b = _RecView(store, 0), _RecView(store, 1)
        assert len(a) == len(b) == 3
        np.testing.assert_array_equal(a.column("value"), [0.0, 1.0, 2.0])
        np.testing.assert_array_equal(b.column("value"), [0.0, 10.0, 20.0])
        np.testing.assert_array_equal(a.times(), b.times())
        assert a.last() == _Rec(2.0, 2.0, 2, True, None)
        assert b.last() == _Rec(2.0, 20.0, 3, False, 1.5)
        assert np.shares_memory(a.column("value"), store.raw_column("value"))


class TestBatchHistoryAppend:
    """The compact public append API works against either store layout."""

    def _result(self, t_s, n=1):
        from repro.sim.batch import BatchTickResult
        return BatchTickResult(
            t_s=t_s, load=np.full(n, 0.5), tail_latency_ms=np.full(n, 3.0),
            slo_fraction=np.full(n, 0.4), be_throughput_norm=np.zeros(n),
            emu=np.full(n, 0.5), be_running=np.zeros(n, dtype=bool))

    def test_standalone_compact_store(self):
        from repro.sim.batch import BatchHistory
        history = BatchHistory()
        history.append(self._result(0.0, n=2))
        history.append(self._result(1.0, n=2))
        assert history.column("load").shape == (2, 2)
        np.testing.assert_array_equal(history.times(), [0.0, 1.0])

    def test_append_on_engine_owned_full_store(self):
        """Regression: appending a compact BatchTickResult to the
        engine's full-field history must record absent fields as
        NaN/zero instead of raising KeyError."""
        from repro.sim.batch import BatchColocationSim
        from repro.workloads.latency_critical import make_lc_workload
        from repro.workloads.traces import ConstantLoad
        sim = BatchColocationSim(lc=make_lc_workload("websearch"),
                                 trace=ConstantLoad(0.5), seeds=[0],
                                 record_history=True)
        sim.run(3)
        sim.history.append(self._result(3.0))
        assert len(sim.history) == 4
        appended = sim.members[0].history.last()
        assert appended.t_s == 3.0
        assert appended.be_cores == 0 and appended.be_enabled is False
        assert appended.be_dvfs_cap_ghz is None
        assert np.isnan(appended.dram_bw_gbps)


class TestSimHistoryIntegration:
    """The engine history reports through the shared implementation."""

    def make_history(self):
        from repro.sim.engine import SimHistory, TickRecord
        history = SimHistory()
        rng = np.random.default_rng(3)
        for i in range(180):
            history.append(TickRecord(
                t_s=i * 0.5, load=0.5, tail_latency_ms=5.0,
                slo_fraction=float(rng.uniform(0.2, 1.1)),
                be_throughput_norm=0.3, be_cores=2, be_llc_ways=3,
                be_dvfs_cap_ghz=None, be_net_ceil_gbps=None,
                be_enabled=True, emu=float(rng.uniform(0.5, 1.2)),
                dram_bw_gbps=40.0, dram_utilization=0.5,
                cpu_utilization=0.6, power_fraction_of_tdp=0.7,
                lc_net_gbps=1.0, be_net_gbps=0.5, link_utilization=0.2))
        return history

    def test_metrics_match_naive_records_scan(self):
        history = self.make_history()
        records = history.records
        skip = 30.0
        kept = [r.slo_fraction for r in records if r.t_s >= skip]
        assert history.max_slo_fraction(skip_s=skip) == max(kept)
        assert history.mean("slo_fraction", skip_s=skip) == pytest.approx(
            float(np.mean(kept)), rel=1e-12)
        assert history.dt_s() == pytest.approx(0.5)
        assert history.worst_window_slo(
            window_s=30.0, skip_s=skip) == pytest.approx(
            worst_window_mean(history.column("slo_fraction"),
                              history.times(), 30.0, skip), rel=1e-15)

    def test_means_batch_query(self):
        history = self.make_history()
        out = history.means(("emu", "load"), skip_s=10.0)
        assert out["emu"] == pytest.approx(history.mean_emu(skip_s=10.0))
        assert out["load"] == pytest.approx(0.5)

    def test_store_memory_is_columnar(self):
        history = self.make_history()
        # 18 fields, mostly float64: far below the ~700 B/record the
        # list-of-dataclass layout used to cost.
        assert history.store.nbytes() < len(history) * 200


class TestWindowedMetricsClass:
    def test_bound_helper_equals_functions(self):
        t = np.arange(40.0)
        v = np.sin(t / 7.0) + 1.0
        metrics = WindowedMetrics(lambda name: v, lambda: t)
        assert metrics.mean("v", 5.0) == mean_after(v, t, 5.0)
        assert metrics.worst_window("v", 10.0, 3.0) == worst_window_mean(
            v, t, 10.0, 3.0)
        assert metrics.dt_s() == 1.0
