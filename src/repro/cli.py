"""Command-line entry point: ``python -m repro.cli <experiment>``.

Runs any of the paper's experiments, a quickstart demo, or the whole
suite, printing the same tables/series the paper's figures report.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from .experiments import (fig1_interference, fig3_convexity,
                          fig4_latency_slo, fig5_emu, fig6_shared_resources,
                          fig7_network_bw, fig8_cluster, tco_table)

EXPERIMENTS: Dict[str, Callable[[], None]] = {
    "fig1": fig1_interference.main,
    "fig3": fig3_convexity.main,
    "fig4": fig4_latency_slo.main,
    "fig5": fig5_emu.main,
    "fig6": fig6_shared_resources.main,
    "fig7": fig7_network_bw.main,
    "fig8": fig8_cluster.main,
    "tco": tco_table.main,
}


def quickstart() -> None:
    """The README demo: websearch + brain at 50% load."""
    from . import HeraclesController, build_colocation
    sim = build_colocation("websearch", "brain", load=0.50, seed=42)
    HeraclesController.for_sim(sim)
    history = sim.run(900)
    print(f"worst 60s tail: {history.worst_window_slo(skip_s=240):.0%} "
          f"of SLO; mean EMU: {history.mean_emu(skip_s=240):.0%}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction harness for 'Heracles: Improving "
                    "Resource Efficiency at Scale' (ISCA 2015).")
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["quickstart", "all"],
        help="which artefact to regenerate (fig8 takes minutes; "
             "'all' runs everything)")
    parser.add_argument(
        "-j", "--jobs", type=int, default=None, metavar="N",
        help="worker processes for sweep fan-out (default: one per "
             "CPU; 1 forces the serial path)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.jobs is not None:
        if args.jobs < 1:
            raise SystemExit("--jobs must be >= 1")
        import os

        from .sim.runner import JOBS_ENV
        os.environ[JOBS_ENV] = str(args.jobs)
    if args.experiment == "quickstart":
        quickstart()
        return 0
    if args.experiment == "all":
        for name in sorted(EXPERIMENTS):
            print(f"==== {name} " + "=" * 50)
            EXPERIMENTS[name]()
        return 0
    EXPERIMENTS[args.experiment]()
    return 0


if __name__ == "__main__":
    sys.exit(main())
