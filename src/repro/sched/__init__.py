"""Fleet-wide best-effort job scheduler ("Borg-lite").

The paper closes with the cluster-wide payoff (§5.3, §6): Heracles
reclaims headroom on latency-critical machines, and a Borg-like
scheduler converts that headroom into throughput by launching
best-effort tasks wherever slack exists.  This package is that
scheduler for the simulated fleet: a queue of typed
:class:`~repro.sched.jobs.BeJob` work (core-seconds of demand,
parallelism limits, priorities, arrival times) placed each decision
epoch by a pluggable policy over the per-leaf Heracles slack signals
the fleet layer rolls up.

Layered use::

    from repro.fleet import ClusterPlan, ShardedFleetSim
    from repro.sched import BeJob, run_schedule

    fleet = ShardedFleetSim([ClusterPlan(...)], shard_leaves=64)
    result = fleet.run(3600.0, slack_epoch_s=60.0)
    outcome = run_schedule(result.slack,
                           [BeJob("encode-%d" % i, demand_core_s=4000.0)
                            for i in range(32)],
                           policy="slack-greedy")
    print(outcome.summary())

Declaratively, the same runs are ``schedule:``-shaped scenario specs
(see ``docs/scenarios.md``) runnable as
``python -m repro.cli sched <name-or-file>``, which also prints the
policy-vs-static comparison and the §5.3 TCO roll-up.
"""

from .jobs import BeJob, JobRecord, JobState, expand_jobs
from .policies import (POLICIES, PlacementContext, Policy,
                       RoundRobinPolicy, SlackGreedyPolicy, StaticPolicy,
                       make_policy)
from .report import (compare_policies, credited_core_seconds,
                     fleet_core_seconds, lc_utilization, render_comparison,
                     tco_summary)
from .scheduler import ScheduleOutcome, run_schedule

__all__ = [
    "POLICIES",
    "BeJob", "JobRecord", "JobState", "PlacementContext", "Policy",
    "RoundRobinPolicy", "ScheduleOutcome", "SlackGreedyPolicy",
    "StaticPolicy",
    "compare_policies", "credited_core_seconds", "expand_jobs",
    "fleet_core_seconds", "lc_utilization", "make_policy",
    "render_comparison", "run_schedule", "tco_summary",
]
