"""Fleet telemetry roll-up: shards → clusters → fleet columns.

Three stages, all deterministic and shard-count-independent:

1. :func:`rollup_cluster` reassembles a cluster's per-tick leaf
   telemetry from its shard slices (concatenated in global leaf order)
   and replays the *literal* recording protocol of
   :class:`~repro.cluster.cluster.WebsearchCluster` — the same
   :class:`~repro.cluster.root.RootAggregator` window arithmetic, the
   same tick-counted record cadence, the same ``np.mean`` EMU
   reduction — so the resulting :class:`~repro.cluster.cluster.
   ClusterHistory` is bit-identical to the one a monolithic
   single-process run of the same cluster produces, for any shard
   partition.

2. :func:`build_fleet_telemetry` stacks the per-cluster histories into
   one fleet-level :class:`~repro.metrics.columns.BatchColumnStore`
   (clusters on the member axis, record ticks on the row axis) and
   derives the fleet aggregates: leaf-weighted fleet EMU and
   load-weighted root latency, stored as shared columns alongside the
   per-cluster ones.

3. :func:`reduce_leaf_epochs` folds the raw per-tick leaf telemetry
   into the decision-epoch granularity the fleet scheduler consumes —
   per-leaf harvested BE core-seconds, the Heracles BE-core grant, and
   the SLO latch — as a compact :class:`LeafSlackView` per cluster
   (stacked fleet-wide by :class:`FleetSlackView`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..cluster.cluster import ClusterHistory, ClusterRecord
from ..cluster.root import RootAggregator
from ..metrics.columns import BatchColumnStore
from ..metrics.windows import WindowedMetrics
from ..workloads.traces import LoadTrace
from .shard import ShardResult


@dataclass
class AssembledCluster:
    """One cluster's leaf telemetry, reassembled in global leaf order.

    ``times_s`` is the shared (T,) tick clock; ``tails_ms`` and
    ``emus`` are (T, leaves).  ``be_norm`` / ``be_cores`` carry the
    scheduler's slack signals when the shards collected them
    (``collect_be``), else they are empty (0, 0) arrays.
    """

    times_s: np.ndarray
    tails_ms: np.ndarray
    emus: np.ndarray
    be_norm: np.ndarray
    be_cores: np.ndarray


def assemble_cluster(shards: Sequence[ShardResult],
                     total_leaves: Optional[int] = None) -> AssembledCluster:
    """Concatenate one cluster's shard slices into leaf-ordered arrays.

    Returns an :class:`AssembledCluster` with the leaf axis in global
    leaf order.  Shards must tile the population contiguously — from
    leaf 0 up to ``total_leaves`` when given — and agree on the tick
    clock; all of it is asserted, since a violation (a missing shard,
    say) would silently break the bit-identity contract.
    """
    ordered = sorted(shards, key=lambda s: s.leaf_lo)
    lo = ordered[0].leaf_lo
    if lo != 0:
        raise ValueError(f"cluster {ordered[0].cluster!r}: shard coverage "
                         f"starts at leaf {lo}, not 0")
    if total_leaves is not None and ordered[-1].leaf_hi != total_leaves:
        raise ValueError(
            f"cluster {ordered[0].cluster!r}: shard coverage ends at leaf "
            f"{ordered[-1].leaf_hi}, not the cluster's {total_leaves}")
    for prev, nxt in zip(ordered, ordered[1:]):
        if prev.leaf_hi != nxt.leaf_lo:
            raise ValueError(
                f"cluster {prev.cluster!r}: shards [{prev.leaf_lo}, "
                f"{prev.leaf_hi}) and [{nxt.leaf_lo}, {nxt.leaf_hi}) do "
                f"not tile the leaf population")
        if not np.array_equal(prev.times_s, nxt.times_s):
            raise ValueError(f"cluster {prev.cluster!r}: shards disagree "
                             f"on the tick clock")
    times = ordered[0].times_s
    tails = np.concatenate([s.tails_ms for s in ordered], axis=1)
    emus = np.concatenate([s.emus for s in ordered], axis=1)
    if all(s.be_norm.size or not s.times_s.size for s in ordered):
        be_norm = np.concatenate([s.be_norm for s in ordered], axis=1) \
            if times.size else np.zeros((0, 0))
        be_cores = np.concatenate([s.be_cores for s in ordered], axis=1) \
            if times.size else np.zeros((0, 0))
    else:
        be_norm = be_cores = np.zeros((0, 0))
    return AssembledCluster(times_s=times, tails_ms=tails, emus=emus,
                            be_norm=be_norm, be_cores=be_cores)


@dataclass
class LeafSlackView:
    """One cluster's per-leaf slack signals at decision-epoch grain.

    The scheduler never sees raw ticks: the (T, leaves) telemetry is
    folded into epochs of ``epoch_s`` simulated seconds (tick-counted,
    like the record cadence), keeping the view small enough to hold
    for a 1000-leaf 12-hour run while preserving exactly the signals
    Algorithm 1 exposes — how much BE throughput Heracles actually
    harvested, how many cores it granted BE, and whether the leaf
    latched an SLO violation.

    Arrays are (E, leaves): ``harvest_core_s`` is the normalized BE
    core-seconds each leaf harvested during the epoch (BE throughput
    normalized to a whole dedicated server x machine cores x seconds);
    ``grant_cores`` is the floor of the mean Heracles BE-core grant;
    ``latched`` marks epochs where any tick's tail latency reached the
    leaf SLO.  ``epoch_t_s`` / ``epoch_len_s`` are (E,).
    """

    cluster: str
    total_cores: int
    epoch_t_s: np.ndarray
    epoch_len_s: np.ndarray
    harvest_core_s: np.ndarray
    grant_cores: np.ndarray
    latched: np.ndarray

    @property
    def epochs(self) -> int:
        """Number of decision epochs in the view."""
        return len(self.epoch_t_s)

    @property
    def leaves(self) -> int:
        """Number of leaves in the cluster."""
        return self.harvest_core_s.shape[1]


def reduce_leaf_epochs(assembled: AssembledCluster, cluster: str,
                       leaf_slo_ms: float, total_cores: int,
                       epoch_s: float, dt_s: float) -> LeafSlackView:
    """Fold per-tick leaf telemetry into a :class:`LeafSlackView`.

    Args:
        assembled: the cluster's leaf-ordered telemetry (must carry the
            BE signals, i.e. the shards ran with ``collect_be``).
        cluster: the cluster's name (carried through for reporting).
        leaf_slo_ms: the uniform leaf latency target the latch compares
            against.
        total_cores: physical cores of the cluster's machine spec (the
            EMU denominator that converts normalized BE throughput to
            core-seconds).
        epoch_s: decision-epoch length in simulated seconds; the epoch
            is tick-counted (``max(1, round(epoch_s / dt_s))`` ticks),
            the same derivation every cadence in the repo uses.
        dt_s: tick size of the recorded run.
    """
    if epoch_s <= 0:
        raise ValueError("epoch_s must be positive")
    if dt_s <= 0:
        raise ValueError("dt must be positive")
    steps, leaves = assembled.tails_ms.shape
    if steps and assembled.be_norm.shape != (steps, leaves):
        raise ValueError(
            f"cluster {cluster!r}: BE slack signals were not collected "
            f"(run the shards with collect_be=True)")
    epoch_ticks = max(1, int(round(epoch_s / dt_s)))
    starts = np.arange(0, steps, epoch_ticks)
    if not steps:
        empty = np.zeros((0, leaves))
        return LeafSlackView(cluster=cluster, total_cores=total_cores,
                             epoch_t_s=np.zeros(0), epoch_len_s=np.zeros(0),
                             harvest_core_s=empty, grant_cores=empty,
                             latched=empty.astype(bool))
    ticks_per = np.diff(np.append(starts, steps))
    harvest = np.add.reduceat(assembled.be_norm, starts, axis=0) \
        * total_cores * dt_s
    grant = np.floor(np.add.reduceat(assembled.be_cores, starts, axis=0)
                     / ticks_per[:, None])
    latched = np.maximum.reduceat(assembled.tails_ms, starts, axis=0) \
        >= leaf_slo_ms
    return LeafSlackView(
        cluster=cluster, total_cores=total_cores,
        epoch_t_s=assembled.times_s[starts],
        epoch_len_s=ticks_per * dt_s,
        harvest_core_s=harvest, grant_cores=grant, latched=latched)


class FleetSlackView:
    """The fleet-wide slack view: per-cluster epochs, stacked by leaf.

    Concatenates the clusters' :class:`LeafSlackView` arrays along the
    leaf axis (in fleet plan order, so global leaf identity is stable
    whatever the shard partition) and exposes the flattened (E, N)
    signal arrays the placement policies consume.
    """

    def __init__(self, views: Sequence[LeafSlackView]):
        views = list(views)
        if not views:
            raise ValueError("a fleet slack view needs at least one cluster")
        first = views[0]
        for view in views[1:]:
            if not np.array_equal(view.epoch_t_s, first.epoch_t_s):
                raise ValueError(
                    f"clusters {first.cluster!r} and {view.cluster!r} "
                    f"disagree on the epoch clock")
        self.views = views
        self.epoch_t_s = first.epoch_t_s
        self.epoch_len_s = first.epoch_len_s
        self.harvest_core_s = np.concatenate(
            [v.harvest_core_s for v in views], axis=1)
        self.grant_cores = np.concatenate(
            [v.grant_cores for v in views], axis=1)
        self.latched = np.concatenate([v.latched for v in views], axis=1)
        self.leaf_cores = np.concatenate(
            [np.full(v.leaves, v.total_cores) for v in views])
        self.leaf_cluster = np.concatenate(
            [np.full(v.leaves, i) for i, v in enumerate(views)])
        self.cluster_names = [v.cluster for v in views]

    @property
    def epochs(self) -> int:
        """Number of decision epochs."""
        return len(self.epoch_t_s)

    @property
    def leaves(self) -> int:
        """Total fleet leaf population."""
        return self.harvest_core_s.shape[1]

    def cluster_view(self, name: str) -> LeafSlackView:
        """Look up one cluster's slack view by name."""
        for view in self.views:
            if view.cluster == name:
                return view
        raise KeyError(f"no cluster named {name!r} in this slack view")


def rollup_cluster(times_s: np.ndarray,
                   tails_ms: np.ndarray,
                   emus: np.ndarray,
                   trace: LoadTrace,
                   root_slo_ms: float,
                   record_period_s: float = 30.0,
                   dt_s: float = 1.0) -> ClusterHistory:
    """Replay the cluster recording protocol over assembled telemetry.

    Args:
        times_s: (T,) tick clock (time at the *start* of each tick,
            matching ``WebsearchCluster.tick``'s use of ``time_s``).
        tails_ms / emus: (T, leaves) per-tick leaf telemetry in global
            leaf order.
        trace: the cluster's shared load trace (sampled at record
            ticks, exactly as the monolithic cluster samples it).
        root_slo_ms: the cluster root SLO the fractions normalize by.
        record_period_s / dt_s: record cadence and tick size — the
            record interval is tick-counted
            (``max(1, round(record_period_s / dt_s))``), the same
            derivation the cluster driver uses.

    Returns:
        A :class:`ClusterHistory` bit-identical to the one the
        monolithic cluster run would have recorded.
    """
    if dt_s <= 0:
        raise ValueError("dt must be positive")
    root = RootAggregator()
    history = ClusterHistory()
    record_every = max(1, int(round(record_period_s / dt_s)))
    for k in range(len(times_s)):
        t = float(times_s[k])
        root.record(t, tails_ms[k].tolist())
        if k % record_every == 0:
            windowed = root.windowed_latency_ms()
            history.append(ClusterRecord(
                t_s=t,
                load=trace.clipped(t),
                root_latency_ms=windowed,
                root_slo_fraction=windowed / root_slo_ms,
                emu=float(np.mean(emus[k])),
            ))
    return history


class FleetTelemetry:
    """Fleet-level columns over the per-cluster record streams.

    One :class:`BatchColumnStore` with the fleet's clusters on the
    member axis: per-cluster columns ``load``, ``root_latency_ms``,
    ``root_slo_fraction`` and ``emu`` (each ``(T, C)``), the shared
    record clock ``t_s``, and two derived shared columns —
    ``fleet_emu`` (leaf-weighted mean EMU across clusters) and
    ``weighted_root_latency_ms`` (root latency weighted by each
    cluster's offered load x leaf count, i.e. by where the traffic
    actually is).  Aggregates route through the shared
    :class:`~repro.metrics.windows.WindowedMetrics` stack like every
    other history in the repo.
    """

    #: Per-cluster (member-axis) fields mirrored from ClusterHistory.
    CLUSTER_FIELDS = ("load", "root_latency_ms", "root_slo_fraction", "emu")
    #: Derived fleet-wide (shared-axis) fields.
    FLEET_FIELDS = ("fleet_emu", "weighted_root_latency_ms")

    def __init__(self, store: BatchColumnStore,
                 cluster_names: Sequence[str],
                 cluster_leaves: Sequence[int]):
        self._store = store
        self.cluster_names = list(cluster_names)
        self.cluster_leaves = list(cluster_leaves)
        self.metrics = WindowedMetrics(self.fleet_column, self.times)

    @property
    def store(self) -> BatchColumnStore:
        """The backing (T, C) column store."""
        return self._store

    def __len__(self) -> int:
        """Number of recorded fleet rows (record-cadence ticks)."""
        return len(self._store)

    def times(self) -> np.ndarray:
        """The shared record clock, shape (T,)."""
        return self._store.column("t_s")

    def column(self, name: str) -> np.ndarray:
        """One per-cluster field as a (T, C) float column."""
        return self._store.column(name)

    def cluster_column(self, name: str, cluster: str) -> np.ndarray:
        """One cluster's (T,) slice of a per-cluster field."""
        index = self.cluster_names.index(cluster)
        return self._store.member_column(name, index)

    def fleet_column(self, name: str) -> np.ndarray:
        """One derived fleet-wide field as a (T,) float column."""
        if name not in self.FLEET_FIELDS:
            raise KeyError(f"not a fleet-wide field: {name!r} (choose "
                           f"from {', '.join(self.FLEET_FIELDS)})")
        return self._store.column(name)

    def mean_fleet_emu(self, skip_s: float = 0.0) -> float:
        """Mean leaf-weighted fleet EMU after ``skip_s`` seconds."""
        return self.metrics.mean("fleet_emu", skip_s=skip_s)

    def min_fleet_emu(self, skip_s: float = 0.0) -> float:
        """Minimum leaf-weighted fleet EMU after ``skip_s`` seconds."""
        return self.metrics.minimum("fleet_emu", skip_s=skip_s)

    def mean_weighted_root_latency_ms(self, skip_s: float = 0.0) -> float:
        """Mean load-weighted root latency (ms) after ``skip_s``."""
        return self.metrics.mean("weighted_root_latency_ms", skip_s=skip_s)


def fleet_emu_row(emus: np.ndarray, leaves: np.ndarray) -> np.ndarray:
    """Leaf-weighted fleet EMU per record tick.

    Args:
        emus: (T, C) per-cluster EMU.
        leaves: (C,) leaf counts.

    Returns:
        (T,) fleet EMU — each cluster's EMU weighted by its share of
        the fleet's leaves, so a 400-leaf cluster moves the fleet
        number four times as far as a 100-leaf one.
    """
    weights = np.asarray(leaves, dtype=float)
    return (np.asarray(emus, dtype=float) @ weights) / weights.sum()


def weighted_root_latency_row(latency_ms: np.ndarray,
                              loads: np.ndarray,
                              leaves: np.ndarray) -> np.ndarray:
    """Load-weighted fleet root latency per record tick.

    Each cluster's root latency is weighted by ``load x leaves`` — its
    instantaneous share of the fleet's offered traffic — so a cluster
    at its diurnal peak dominates the fleet latency figure while a
    trough cluster barely moves it.  Ticks where the whole fleet
    offers zero load fall back to the unweighted cluster mean.
    """
    latency = np.asarray(latency_ms, dtype=float)
    weights = np.asarray(loads, dtype=float) * np.asarray(leaves,
                                                          dtype=float)
    totals = weights.sum(axis=1)
    safe = np.where(totals > 0, totals, 1.0)
    weighted = (latency * weights).sum(axis=1) / safe
    fallback = latency.mean(axis=1)
    return np.where(totals > 0, weighted, fallback)


def build_fleet_telemetry(histories: Dict[str, ClusterHistory],
                          cluster_names: Sequence[str],
                          cluster_leaves: Sequence[int]) -> FleetTelemetry:
    """Stack per-cluster histories into the fleet column store.

    All clusters share one record cadence (the fleet runs them for the
    same duration at the same ``dt_s`` and record period), which is
    asserted rather than assumed.
    """
    names = list(cluster_names)
    lengths = {name: len(histories[name]) for name in names}
    if len(set(lengths.values())) != 1:
        raise ValueError(f"clusters disagree on record count: {lengths}")
    t = histories[names[0]].times()
    for name in names[1:]:
        if not np.array_equal(histories[name].times(), t):
            raise ValueError(
                f"clusters {names[0]!r} and {name!r} disagree on the "
                f"record clock (mixed dt_s or record periods?)")
    per_cluster = {
        field: np.stack([histories[name].column(field) for name in names],
                        axis=1)
        for field in FleetTelemetry.CLUSTER_FIELDS
    }
    leaves = np.asarray(cluster_leaves, dtype=float)
    fleet_emu = fleet_emu_row(per_cluster["emu"], leaves)
    weighted = weighted_root_latency_row(
        per_cluster["root_latency_ms"], per_cluster["load"], leaves)

    fields = [("t_s", np.float64)]
    fields += [(name, np.float64) for name in FleetTelemetry.CLUSTER_FIELDS]
    fields += [(name, np.float64) for name in FleetTelemetry.FLEET_FIELDS]
    store = BatchColumnStore(
        fields, n=len(names),
        shared=("t_s",) + FleetTelemetry.FLEET_FIELDS)
    for k in range(len(t)):
        row = {field: per_cluster[field][k]
               for field in FleetTelemetry.CLUSTER_FIELDS}
        row["t_s"] = t[k]
        row["fleet_emu"] = fleet_emu[k]
        row["weighted_root_latency_ms"] = weighted[k]
        store.append_tick(row)
    return FleetTelemetry(store, names, cluster_leaves)
