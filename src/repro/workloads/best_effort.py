"""Best-effort (BE) workload models.

The evaluation colocates each LC service with BE tasks drawn from two
families (§5.1):

* **Production batch jobs** — ``brain`` (deep learning on images:
  computationally intensive, LLC-size sensitive, high DRAM bandwidth)
  and ``streetview`` (image stitching: highly demanding on the DRAM
  subsystem).
* **Synthetic single-resource stressors** — ``stream-LLC`` (streams data
  sized to about half the LLC), ``stream-DRAM`` (streams an array far
  larger than the LLC), ``cpu_pwr`` (a power virus), and ``iperf``
  (saturates transmit bandwidth with many mice flows).

BE tasks are elastic: they use however many cores they are given and
their value is measured as *throughput normalized to running alone on a
whole server* — the quantity EMU sums (§5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..hardware.server import TaskTickDemand, TaskUsage
from ..hardware.spec import MachineSpec, default_machine_spec
from ..perf.interference import be_throughput_efficiency
from .base import Allocation, cache_demand_for, split_across_sockets


@dataclass(frozen=True)
class BeWorkloadProfile:
    """Static description of one best-effort task."""

    name: str
    activity: float               # CPU activity per core (0..1)
    power_weight: float = 1.0     # >1 for power viruses
    hot_mb: float = 0.0
    bulk_mb: float = 0.0          # total data footprint (machine-wide)
    bulk_reuse: float = 1.0
    access_gbps_per_core: float = 0.0
    hot_access_fraction: float = 0.0
    uncached_dram_gbps_per_core: float = 0.0
    net_demand_gbps: float = 0.0  # offered egress load when running
    net_flows: int = 1
    mem_bound_fraction: float = 0.3
    cache_benefit: float = 0.3

    def validate(self) -> None:
        if not 0.0 <= self.activity <= 1.0:
            raise ValueError("activity must be in [0, 1]")
        if self.power_weight < 0 or self.power_weight * self.activity > 3.0:
            raise ValueError("power_weight out of modeled range")
        if self.bulk_mb < 0 or self.hot_mb < 0:
            raise ValueError("footprints must be non-negative")
        if self.access_gbps_per_core < 0 or self.uncached_dram_gbps_per_core < 0:
            raise ValueError("bandwidths must be non-negative")
        if self.net_demand_gbps < 0 or self.net_flows < 1:
            raise ValueError("bad network parameters")


class BestEffortWorkload:
    """Executable model of an elastic BE task."""

    def __init__(self, profile: BeWorkloadProfile,
                 spec: Optional[MachineSpec] = None):
        profile.validate()
        self.profile = profile
        self.spec = spec or default_machine_spec()
        self.name = profile.name

    def demand(self, alloc: Allocation) -> TaskTickDemand:
        """Hardware demand when running on ``alloc`` (always full tilt)."""
        p = self.profile
        cores = alloc.total_cores
        return TaskTickDemand(
            task=self.name,
            cores_by_socket=dict(alloc.cores_by_socket),
            activity=min(3.0, p.activity * p.power_weight),
            dvfs_cap_ghz=alloc.dvfs_cap_ghz,
            cache_by_socket=cache_demand_for(
                self.name, alloc, self.spec,
                hot_mb=p.hot_mb,
                bulk_mb=p.bulk_mb,
                access_gbps=p.access_gbps_per_core * cores,
                hot_access_fraction=p.hot_access_fraction,
                bulk_reuse=p.bulk_reuse),
            cache_cos=alloc.cache_cos,
            uncached_dram_gbps_by_socket=split_across_sockets(
                p.uncached_dram_gbps_per_core * cores, alloc),
            net_demand_gbps=p.net_demand_gbps if cores else 0.0,
            net_flows=p.net_flows,
            net_ceil_gbps=alloc.net_ceil_gbps,
            ht_share_fraction=alloc.ht_share_fraction,
            dram_throttle=alloc.dram_throttle,
        )

    def throughput_units(self, usage: TaskUsage) -> float:
        """Raw progress this tick: cores x per-core efficiency."""
        if usage.cores <= 0:
            return 0.0
        nominal = self.spec.socket.turbo.nominal_ghz
        eff = be_throughput_efficiency(
            usage, reference_freq_ghz=nominal,
            mem_bound_fraction=self.profile.mem_bound_fraction,
            cache_benefit=self.profile.cache_benefit)
        # Network-bound BE tasks (iperf) are additionally throttled by
        # achieved egress bandwidth.
        if self.profile.net_demand_gbps > 0:
            eff *= usage.net_satisfaction
        return usage.cores * eff


def reference_throughput_units(workload: BestEffortWorkload) -> float:
    """Throughput of the BE task running *alone* on a whole server.

    This is the EMU denominator: "we compute the throughput rate of the
    batch workload with Heracles and normalize it to the throughput of
    the batch workload running alone on a single server" (§5.1).
    """
    from ..hardware.server import Server
    from .base import spread_cores

    server = Server(workload.spec)
    alloc = Allocation(cores_by_socket=spread_cores(
        workload.spec.total_cores, workload.spec))
    demand = workload.demand(alloc)
    usages = server.resolve([demand])
    return workload.throughput_units(usages[workload.name])


# ----------------------------------------------------------------------
# The paper's BE workloads
# ----------------------------------------------------------------------

BRAIN = BeWorkloadProfile(
    name="brain",
    activity=0.95,
    power_weight=1.15,
    hot_mb=6.0,
    bulk_mb=80.0,
    bulk_reuse=0.85,
    access_gbps_per_core=3.0,
    hot_access_fraction=0.10,
    uncached_dram_gbps_per_core=1.2,
    mem_bound_fraction=0.35,
    cache_benefit=0.40,
)

STREETVIEW = BeWorkloadProfile(
    name="streetview",
    activity=0.70,
    hot_mb=4.0,
    bulk_mb=120.0,
    bulk_reuse=0.30,
    access_gbps_per_core=4.0,
    hot_access_fraction=0.05,
    uncached_dram_gbps_per_core=3.0,
    mem_bound_fraction=0.60,
    cache_benefit=0.15,
)

STREAM_LLC = BeWorkloadProfile(
    name="stream-LLC",
    activity=0.50,
    bulk_mb=45.0,  # about half of the total LLC (22.5 MB per socket)
    bulk_reuse=1.0,
    access_gbps_per_core=8.0,
    uncached_dram_gbps_per_core=0.2,
    mem_bound_fraction=0.45,
    cache_benefit=0.55,
)

STREAM_DRAM = BeWorkloadProfile(
    name="stream-DRAM",
    activity=0.60,
    bulk_mb=4096.0,  # far larger than the LLC: every access misses
    bulk_reuse=0.0,
    access_gbps_per_core=10.0,
    mem_bound_fraction=0.85,
    cache_benefit=0.05,
)

CPU_PWR = BeWorkloadProfile(
    name="cpu_pwr",
    activity=1.0,
    power_weight=2.2,
    hot_mb=0.5,
    bulk_mb=0.5,
    bulk_reuse=1.0,
    access_gbps_per_core=0.5,
    mem_bound_fraction=0.02,
    cache_benefit=0.02,
)

IPERF = BeWorkloadProfile(
    name="iperf",
    activity=0.15,
    net_demand_gbps=10.0,
    net_flows=800,
    mem_bound_fraction=0.05,
    cache_benefit=0.02,
)

BE_PROFILES: Dict[str, BeWorkloadProfile] = {
    p.name: p for p in (BRAIN, STREETVIEW, STREAM_LLC, STREAM_DRAM,
                        CPU_PWR, IPERF)
}


def make_be_workload(name: str,
                     spec: Optional[MachineSpec] = None) -> BestEffortWorkload:
    """Factory: build one of the paper's BE workloads by name."""
    try:
        profile = BE_PROFILES[name]
    except KeyError:
        raise KeyError(f"unknown BE workload {name!r}; "
                       f"choose from {sorted(BE_PROFILES)}") from None
    return BestEffortWorkload(profile, spec)
