"""Socket power: RAPL-style metering, Turbo headroom, and throttling.

The clock frequency of the cores used by an LC task depends not just on
its own load but on the intensity of any BE task on the same socket (§2):
dynamic overclocking (Turbo) raises frequency only while there is power
headroom, and a power-hungry neighbour removes that headroom.  This
module computes the frequency equilibrium of a socket given each task's
activity and per-core DVFS caps, and meters the resulting power the way
RAPL does.

Model: ``P = idle + sum_i activity_i * k * (f_i / f_nominal)^3`` over
active cores (voltage tracks frequency, so dynamic power ~ f^3).  Every
core targets ``min(dvfs_cap, turbo_ceiling)``; if the socket would exceed
TDP, frequencies scale down uniformly (respecting the DVFS floor) until
power fits — which is exactly how package-level RAPL clamping behaves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .spec import SocketSpec


@dataclass
class CorePowerRequest:
    """Power-relevant state of one group of physical cores on a socket.

    Attributes:
        task: owner label (one request per task per socket is typical).
        cores: number of active physical cores in the group.
        activity: average activity factor; 0 for a halted core, ~1.0 for
            ordinary full-tilt code.  Values above 1.0 (up to 3.0) model
            power viruses, which draw substantially more current than
            typical code at the same frequency by exercising every
            functional unit at once.
        dvfs_cap_ghz: per-core DVFS limit, or None for uncapped.
    """

    task: str
    cores: int
    activity: float
    dvfs_cap_ghz: Optional[float] = None

    def validate(self) -> None:
        if self.cores < 0:
            raise ValueError("core count must be non-negative")
        if not 0.0 <= self.activity <= 3.0:
            raise ValueError("activity must be in [0, 3]")
        if self.dvfs_cap_ghz is not None and self.dvfs_cap_ghz <= 0:
            raise ValueError("DVFS cap must be positive")


@dataclass
class PowerGrant:
    """Achieved frequency for one request group."""

    task: str
    freq_ghz: float


@dataclass
class PowerResolution:
    """Socket-wide power outcome."""

    socket_power_watts: float
    tdp_watts: float
    throttled: bool
    grants: List[PowerGrant]

    def freq_of(self, task: str) -> float:
        for g in self.grants:
            if g.task == task:
                return g.freq_ghz
        raise KeyError(task)

    @property
    def power_fraction_of_tdp(self) -> float:
        return self.socket_power_watts / self.tdp_watts


class SocketPowerModel:
    """Frequency/power equilibrium solver for one socket."""

    def __init__(self, spec: SocketSpec):
        self.spec = spec

    def _power_watts(self, requests: List[CorePowerRequest],
                     freqs: Dict[str, float]) -> float:
        nominal = self.spec.turbo.nominal_ghz
        dynamic = 0.0
        for r in requests:
            f = freqs[r.task]
            dynamic += (r.cores * r.activity * self.spec.core_dynamic_watts
                        * (f / nominal) ** 3)
        return self.spec.idle_watts + dynamic

    def resolve(self, requests: List[CorePowerRequest]) -> PowerResolution:
        """Find the frequency each group actually runs at.

        1. Target frequency = min(DVFS cap, turbo ceiling for the number
           of active cores on the socket).
        2. If the resulting power exceeds TDP, scale all frequencies by a
           common factor (floored at the DVFS minimum) via bisection.
        """
        for r in requests:
            r.validate()
        active = sum(r.cores for r in requests if r.activity > 0)
        ceiling = self.spec.turbo.turbo_ceiling_ghz(active, self.spec.cores)

        def target(r: CorePowerRequest) -> float:
            t = ceiling if r.dvfs_cap_ghz is None else min(
                r.dvfs_cap_ghz, ceiling)
            return max(self.spec.turbo.min_ghz, t)

        targets = {r.task: target(r) for r in requests}
        power = self._power_watts(requests, targets)
        throttled = False
        freqs = dict(targets)

        if power > self.spec.tdp_watts:
            throttled = True
            lo, hi = 0.0, 1.0
            floor = self.spec.turbo.min_ghz
            for _ in range(40):
                mid = (lo + hi) / 2.0
                freqs = {t: max(floor, f * mid) for t, f in targets.items()}
                if self._power_watts(requests, freqs) > self.spec.tdp_watts:
                    hi = mid
                else:
                    lo = mid
            freqs = {t: max(floor, f * lo) for t, f in targets.items()}
            power = self._power_watts(requests, freqs)

        grants = [PowerGrant(task=r.task, freq_ghz=freqs[r.task])
                  for r in requests]
        return PowerResolution(
            socket_power_watts=power,
            tdp_watts=self.spec.tdp_watts,
            throttled=throttled,
            grants=grants,
        )


class RaplMeter:
    """Running Average Power Limit-style power telemetry for one socket.

    Heracles "uses RAPL to determine the operating power of the CPU and
    its maximum design power" (§4.3).  The meter keeps a short exponential
    average, as RAPL energy counters are integrated over an interval.
    """

    def __init__(self, tdp_watts: float, smoothing: float = 0.5):
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        self.tdp_watts = tdp_watts
        self.smoothing = smoothing
        self._power_watts = 0.0
        self._initialized = False

    def record(self, instantaneous_watts: float) -> None:
        if instantaneous_watts < 0:
            raise ValueError("power cannot be negative")
        if not self._initialized:
            self._power_watts = instantaneous_watts
            self._initialized = True
        else:
            a = self.smoothing
            self._power_watts = (a * instantaneous_watts
                                 + (1 - a) * self._power_watts)

    def read_watts(self) -> float:
        return self._power_watts

    def read_fraction_of_tdp(self) -> float:
        return self._power_watts / self.tdp_watts
