"""Tests for repro.hardware.network: per-flow fairness and ceilings."""

import pytest

from repro.hardware.network import EgressLink, FlowDemand


@pytest.fixture
def link():
    return EgressLink(10.0)


class TestFairSharing:
    def test_undersubscribed_all_satisfied(self, link):
        res = link.resolve([FlowDemand("a", 2.0, flows=10),
                            FlowDemand("b", 3.0, flows=1)])
        assert res.grant_for("a").achieved_gbps == pytest.approx(2.0)
        assert res.grant_for("b").achieved_gbps == pytest.approx(3.0)
        assert res.utilization == pytest.approx(0.5)

    def test_flow_count_wins_contention(self, link):
        # The mice-flow effect: many small flows crowd out few big ones.
        res = link.resolve([FlowDemand("mice", 10.0, flows=800),
                            FlowDemand("victim", 10.0, flows=200)])
        assert res.grant_for("mice").achieved_gbps == pytest.approx(8.0)
        assert res.grant_for("victim").achieved_gbps == pytest.approx(2.0)

    def test_small_demand_satisfied_despite_mice(self, link):
        # A task with low demand keeps its share under contention —
        # why websearch ignores the network antagonist (§3.3).
        res = link.resolve([FlowDemand("mice", 10.0, flows=800),
                            FlowDemand("ws", 1.0, flows=256)])
        assert res.grant_for("ws").satisfaction == pytest.approx(1.0)

    def test_leftover_redistribution(self, link):
        res = link.resolve([FlowDemand("a", 1.0, flows=100),
                            FlowDemand("b", 20.0, flows=1)])
        assert res.grant_for("a").achieved_gbps == pytest.approx(1.0)
        assert res.grant_for("b").achieved_gbps == pytest.approx(9.0)

    def test_link_never_oversubscribed(self, link):
        res = link.resolve([FlowDemand("a", 50.0, flows=3),
                            FlowDemand("b", 50.0, flows=7)])
        assert res.total_achieved_gbps <= 10.0 + 1e-9


class TestCeilings:
    def test_ceil_caps_task(self, link):
        res = link.resolve([FlowDemand("be", 10.0, flows=800,
                                       ceil_gbps=3.0),
                            FlowDemand("lc", 6.0, flows=10)])
        assert res.grant_for("be").achieved_gbps == pytest.approx(3.0)
        assert res.grant_for("lc").achieved_gbps == pytest.approx(6.0)

    def test_zero_ceil_starves_task(self, link):
        res = link.resolve([FlowDemand("be", 5.0, flows=10, ceil_gbps=0.0)])
        assert res.grant_for("be").achieved_gbps == pytest.approx(0.0)

    def test_satisfaction_metric(self, link):
        res = link.resolve([FlowDemand("be", 8.0, flows=1, ceil_gbps=2.0)])
        assert res.grant_for("be").satisfaction == pytest.approx(0.25)

    def test_satisfaction_with_zero_demand(self, link):
        res = link.resolve([FlowDemand("idle", 0.0)])
        assert res.grant_for("idle").satisfaction == pytest.approx(1.0)


class TestValidation:
    def test_bad_link_rate(self):
        with pytest.raises(ValueError):
            EgressLink(0.0)

    def test_bad_demand(self, link):
        with pytest.raises(ValueError):
            link.resolve([FlowDemand("a", -1.0)])

    def test_bad_flow_count(self, link):
        with pytest.raises(ValueError):
            link.resolve([FlowDemand("a", 1.0, flows=0)])

    def test_counters(self, link):
        link.resolve([FlowDemand("a", 4.0), FlowDemand("b", 2.0)])
        assert link.measured_tx_gbps() == pytest.approx(6.0)
        assert link.per_task_tx_gbps()["a"] == pytest.approx(4.0)
