"""Sharded fleet gate: wall-clock speedup and cross-plan bit-identity.

Runs the registered 1000-leaf ``mixed-fleet-1k`` scenario (four
heterogeneous clusters on a 12-hour diurnal day, time-compressed so
the gate completes in CI; set ``REPRO_BENCH_FLEET_COMPRESSION=1`` for
the full-fidelity 12-hour run) under two execution plans:

* **sequential** — one shard per cluster, ``processes=1``: the
  pre-fleet way of running the population, each cluster as one
  monolithic batched sim, one after another;
* **sharded** — the fleet default: every cluster partitioned into
  ~64-leaf shards fanned across the ``REPRO_JOBS`` process pool.

and gates the two contractual properties of the fleet layer:

* **equivalence**: both plans produce bit-identical per-cluster
  histories, bit-identical fleet summaries, and bit-identical
  per-shard worst-tail metrics — sharding and parallelism change
  wall-clock, never numbers;
* **speedup**: with enough cores (>= ``MIN_CPUS``), the sharded plan
  completes at least 3x faster in wall-clock time.  Hosts with fewer
  cores (e.g. 4-vCPU CI runners) still enforce a CPU-scaled tripwire
  (>= ``0.5 x cpus``) so a serialization regression cannot slip
  through; only single-core hosts and sandboxes where no process pool
  can be created skip the speedup assertion — the equivalence gate
  always runs.

Measurements land in ``BENCH_PR4.json`` (path overridable via
``REPRO_BENCH_FLEET_OUT``); ``tools/bench_report.py`` folds them into
the CI perf-trajectory artifact.
"""

import json
import os
import time

import numpy as np
import pytest
from conftest import regenerate

from repro.scenarios import compile_scenario
from repro.scenarios.library import mixed_fleet_1k_scenario

COMPRESSION = float(os.environ.get("REPRO_BENCH_FLEET_COMPRESSION", "72"))
SHARD_LEAVES = 64
MIN_SPEEDUP = 3.0
MIN_CPUS = 6
OUT_ENV = "REPRO_BENCH_FLEET_OUT"
DEFAULT_OUT = "BENCH_PR4.json"
CLUSTER_FIELDS = ("t_s", "load", "root_latency_ms", "root_slo_fraction",
                  "emu")


def _pool_available() -> bool:
    """True when a process pool can actually be created here."""
    from concurrent.futures import ProcessPoolExecutor
    try:
        with ProcessPoolExecutor(max_workers=2) as pool:
            list(pool.map(abs, [1]))
        return True
    except (OSError, PermissionError, ValueError):
        return False


def _run_fleet(shard_leaves: int, processes):
    """One execution plan of the 1000-leaf fleet scenario."""
    spec = mixed_fleet_1k_scenario(time_compression=COMPRESSION,
                                   shard_leaves=shard_leaves)
    return compile_scenario(spec).run(processes=processes)


def test_bench_fleet_speedup_and_equivalence(benchmark):
    spec = mixed_fleet_1k_scenario(time_compression=COMPRESSION,
                                   shard_leaves=SHARD_LEAVES)
    total_leaves = spec.fleet.total_leaves()
    biggest = max(c.leaves for c in spec.fleet.clusters)

    # Sequential comparator: whole clusters, one at a time, in-process.
    seq_start = time.perf_counter()
    sequential = _run_fleet(shard_leaves=biggest, processes=1)
    seq_wall = time.perf_counter() - seq_start

    # Sharded plan (the benchmark timer records this run).
    sharded_start = time.perf_counter()
    sharded = regenerate(benchmark, _run_fleet, SHARD_LEAVES, None)
    sharded_wall = time.perf_counter() - sharded_start

    speedup = seq_wall / sharded_wall
    shard_count = sum(len(o.shards) for o in sharded.fleet.clusters)
    warmup = spec.warmup_s

    print()
    print(f"{total_leaves}-leaf fleet, {spec.duration_s / 60:.0f} simulated "
          f"minutes (compression {COMPRESSION:.0f}x):")
    print(f"  sequential (per-cluster batches): {seq_wall:.2f}s wall")
    print(f"  sharded ({shard_count} shards): {sharded_wall:.2f}s wall "
          f"-> {speedup:.2f}x")

    # -- equivalence: sharding must never change a number ---------------
    for seq_outcome in sequential.fleet.clusters:
        shr_outcome = sharded.fleet.cluster(seq_outcome.name)
        assert shr_outcome.root_slo_ms == seq_outcome.root_slo_ms
        for name in CLUSTER_FIELDS:
            a = seq_outcome.history.column(name)
            b = shr_outcome.history.column(name)
            assert np.array_equal(a, b), (
                f"cluster {seq_outcome.name!r} column {name!r} diverged "
                f"between execution plans")
        # Per-shard metrics roll up exactly: the worst leaf tail of the
        # cluster is the max over its shards' worst tails, whatever the
        # partition.
        seq_worst = max(s.summary["worst_tail_ms"]
                        for s in seq_outcome.shards)
        shr_worst = max(s.summary["worst_tail_ms"]
                        for s in shr_outcome.shards)
        assert shr_worst == seq_worst, (
            f"cluster {seq_outcome.name!r}: per-shard worst-tail metrics "
            f"diverged between execution plans")
    seq_summary = sequential.fleet.summary(skip_s=warmup)
    shr_summary = sharded.fleet.summary(skip_s=warmup)
    assert seq_summary == shr_summary, "fleet summaries diverged"
    print(f"  fleet EMU {shr_summary['fleet_emu']:.1%} (min "
          f"{shr_summary['min_fleet_emu']:.1%}), load-weighted root "
          f"latency {shr_summary['weighted_root_latency_ms']:.1f} ms "
          f"[bit-identical across plans]")

    cpus = os.cpu_count() or 1
    report = {
        "benchmark": "test_bench_fleet",
        "leaves": total_leaves,
        "clusters": len(spec.fleet.clusters),
        "shards": shard_count,
        "time_compression": COMPRESSION,
        "duration_s": spec.duration_s,
        "cpus": cpus,
        "wall_s_sequential": round(seq_wall, 2),
        "wall_s_sharded": round(sharded_wall, 2),
        "speedup": round(speedup, 2),
        "bit_identical": True,
    }
    out_path = os.environ.get(OUT_ENV, DEFAULT_OUT)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"  report: {out_path}")

    # -- speedup: needs real cores to mean anything ---------------------
    if cpus < 2:
        pytest.skip(f"speedup gate needs >= 2 CPUs (host has {cpus}); "
                    f"equivalence gate passed, measured {speedup:.2f}x")
    if not _pool_available():
        pytest.skip("speedup gate needs a process pool (unavailable in "
                    "this sandbox); equivalence gate passed")
    # Full 3x gate on capable hosts; smaller multi-core hosts (4-vCPU
    # CI runners) enforce a CPU-scaled floor so a regression to serial
    # execution (speedup ~1x) still fails everywhere a pool exists.
    required = MIN_SPEEDUP if cpus >= MIN_CPUS else min(MIN_SPEEDUP,
                                                        0.5 * cpus)
    assert speedup >= required, (
        f"sharded fleet only {speedup:.2f}x faster than sequential "
        f"per-cluster batches (need >= {required:.1f}x on {cpus} CPUs)")
