"""Tests for repro.workloads.latency_critical: the three LC services."""

import pytest

from repro.hardware.server import Server
from repro.hardware.spec import default_machine_spec
from repro.workloads.base import Allocation, spread_cores
from repro.workloads.latency_critical import (LC_PROFILES, MEMKEYVAL,
                                              ML_CLUSTER, WEBSEARCH,
                                              make_lc_workload)


@pytest.fixture(scope="module")
def workloads():
    spec = default_machine_spec()
    return {name: make_lc_workload(name, spec) for name in LC_PROFILES}


def baseline_tail(lc, load):
    server = Server(lc.spec)
    alloc = Allocation(cores_by_socket=spread_cores(lc.spec.total_cores,
                                                    lc.spec))
    usages = server.resolve([lc.demand(load, alloc)])
    return lc.tail_latency_ms(
        load, usages[lc.name],
        link_utilization=server.telemetry.link_utilization)


class TestProfilesMatchPaper:
    """Each profile encodes a quantitative statement from §3.1."""

    def test_names(self):
        assert set(LC_PROFILES) == {"websearch", "ml_cluster", "memkeyval"}

    def test_slo_scales(self):
        # "tens of milliseconds" vs "a few hundreds of microseconds".
        assert 10.0 <= WEBSEARCH.slo_latency_ms <= 50.0
        assert 10.0 <= ML_CLUSTER.slo_latency_ms <= 50.0
        assert 0.1 <= MEMKEYVAL.slo_latency_ms <= 0.5

    def test_slo_percentiles(self):
        assert WEBSEARCH.slo_percentile == 0.99
        assert ML_CLUSTER.slo_percentile == 0.95  # 95%-ile per the paper
        assert MEMKEYVAL.slo_percentile == 0.99

    def test_dram_fractions(self):
        # 40% / 60% / 20% of available bandwidth at peak (§3.1).
        assert WEBSEARCH.dram_frac_at_peak == pytest.approx(0.40)
        assert ML_CLUSTER.dram_frac_at_peak == pytest.approx(0.60)
        assert MEMKEYVAL.dram_frac_at_peak == pytest.approx(0.20)

    def test_ml_cluster_superlinear_dram(self):
        assert ML_CLUSTER.dram_load_exponent > 1.2
        assert WEBSEARCH.dram_load_exponent == pytest.approx(1.0)

    def test_memkeyval_network_bound(self):
        assert MEMKEYVAL.net_frac_at_peak > 0.8
        assert WEBSEARCH.net_frac_at_peak < 0.2
        assert ML_CLUSTER.net_frac_at_peak < 0.2

    def test_memkeyval_high_qps(self, workloads):
        # "hundreds of thousands of requests per second at peak".
        assert workloads["memkeyval"].peak_qps > 100_000

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            make_lc_workload("nope")


class TestCalibration:
    def test_unloaded_tail_fraction(self, workloads):
        for name, lc in workloads.items():
            fraction = baseline_tail(lc, 0.0) / lc.profile.slo_latency_ms
            # Baseline runs at turbo, so it lands at or below the
            # nominal-frequency calibration point.
            assert fraction <= lc.profile.unloaded_tail_fraction + 0.02

    def test_baseline_meets_slo_at_95(self, workloads):
        for name, lc in workloads.items():
            assert baseline_tail(lc, 0.95) <= lc.profile.slo_latency_ms

    def test_baseline_monotone_in_load(self, workloads):
        for lc in workloads.values():
            tails = [baseline_tail(lc, l) for l in (0.1, 0.4, 0.7, 0.95)]
            assert all(b >= a * 0.999 for a, b in zip(tails, tails[1:]))

    def test_baseline_rises_substantially(self, workloads):
        for lc in workloads.values():
            assert baseline_tail(lc, 0.95) > 1.5 * baseline_tail(lc, 0.05)


class TestDemandCurves:
    def test_dram_target_at_peak(self, workloads):
        lc = workloads["websearch"]
        assert lc.dram_target_gbps(1.0) == pytest.approx(0.40 * 120.0)

    def test_dram_superlinear_for_ml_cluster(self, workloads):
        lc = workloads["ml_cluster"]
        half = lc.dram_target_gbps(0.5)
        full = lc.dram_target_gbps(1.0)
        assert full > 2.5 * half  # super-linear growth

    def test_net_demand_linear(self, workloads):
        lc = workloads["memkeyval"]
        assert lc.net_demand_gbps(0.5) == pytest.approx(
            0.5 * lc.net_demand_gbps(1.0))

    def test_required_cores_monotone(self, workloads):
        lc = workloads["websearch"]
        cores = [lc.required_cores(l) for l in (0.1, 0.3, 0.5, 0.7, 0.9)]
        assert cores == sorted(cores)
        assert cores[0] >= 1
        assert cores[-1] <= lc.spec.total_cores

    def test_required_cores_meet_target(self, workloads):
        from repro.perf.queueing import QueueModel
        lc = workloads["websearch"]
        for load in (0.2, 0.6):
            k = lc.required_cores(load, target_fraction=0.9)
            model = QueueModel(servers=k, service_ms=lc.base_service_ms,
                               service_tail_mult=lc.profile.service_tail_mult,
                               percentile=lc.profile.slo_percentile,
                               pool_size=lc.profile.pool_size)
            assert (model.tail_latency_ms(lc.qps_at(load))
                    <= 0.9 * lc.profile.slo_latency_ms + 1e-9)

    def test_demand_structure(self, workloads):
        lc = workloads["websearch"]
        alloc = Allocation(cores_by_socket={0: 9, 1: 9})
        demand = lc.demand(0.5, alloc)
        assert demand.total_cores() == 18
        assert set(demand.cache_by_socket) == {0, 1}
        assert demand.net_demand_gbps > 0
        assert 0 < demand.activity <= 1.0

    def test_zero_cores_rho_infinite(self, workloads):
        lc = workloads["websearch"]
        assert lc.offered_rho(0.5, 0) == float("inf")


class TestLatencyModel:
    def test_noise_is_reproducible(self, workloads):
        import numpy as np
        lc = workloads["websearch"]
        server = Server(lc.spec)
        alloc = Allocation(cores_by_socket=spread_cores(36, lc.spec))
        usages = server.resolve([lc.demand(0.5, alloc)])
        t1 = lc.tail_latency_ms(0.5, usages[lc.name],
                                rng=np.random.default_rng(7))
        t2 = lc.tail_latency_ms(0.5, usages[lc.name],
                                rng=np.random.default_rng(7))
        assert t1 == pytest.approx(t2)

    def test_sched_delay_is_additive(self, workloads):
        lc = workloads["websearch"]
        server = Server(lc.spec)
        alloc = Allocation(cores_by_socket=spread_cores(36, lc.spec))
        usages = server.resolve([lc.demand(0.5, alloc)])
        base = lc.tail_latency_ms(0.5, usages[lc.name])
        delayed = lc.tail_latency_ms(0.5, usages[lc.name],
                                     sched_delay_ms=10.0)
        assert delayed == pytest.approx(base + 10.0)

    def test_zero_cores_raises(self, workloads):
        lc = workloads["websearch"]
        server = Server(lc.spec)
        alloc = Allocation(cores_by_socket=spread_cores(36, lc.spec))
        usages = server.resolve([lc.demand(0.5, alloc)])
        import dataclasses
        broken = dataclasses.replace(usages[lc.name], cores=0)
        with pytest.raises(ValueError):
            lc.tail_latency_ms(0.5, broken)

    def test_slo_fraction(self, workloads):
        lc = workloads["websearch"]
        assert lc.slo_fraction(12.5) == pytest.approx(0.5)


class TestProfileValidation:
    def test_bad_unloaded_fraction(self):
        import dataclasses
        bad = dataclasses.replace(WEBSEARCH, unloaded_tail_fraction=0.99)
        with pytest.raises(ValueError):
            bad.validate()

    def test_bad_pool_size(self):
        import dataclasses
        bad = dataclasses.replace(WEBSEARCH, pool_size=0)
        with pytest.raises(ValueError):
            bad.validate()

    def test_bad_dram_fraction(self):
        import dataclasses
        bad = dataclasses.replace(WEBSEARCH, dram_frac_at_peak=1.5)
        with pytest.raises(ValueError):
            bad.validate()
