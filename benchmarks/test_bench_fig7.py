"""Regenerates Figure 7: memkeyval network bandwidth with iperf."""

from conftest import regenerate

from repro.analysis.tables import render_load_series_table
from repro.experiments.fig7_network_bw import run_fig7
from repro.hardware.spec import default_machine_spec

LOADS = (0.10, 0.25, 0.40, 0.55, 0.70, 0.85, 0.95)


def test_bench_fig7_network_bw(benchmark):
    points = regenerate(benchmark, run_fig7, loads=LOADS, duration_s=700.0)
    link = default_machine_spec().nic.link_gbps
    print()
    print(render_load_series_table(
        {
            "memkeyval (frac of link)": [p.lc_gbps / link for p in points],
            "iperf (frac of link)": [p.be_gbps / link for p in points],
            "worst tail (frac of SLO)": [p.worst_slo for p in points],
        },
        list(LOADS), title="memkeyval network bandwidth under Heracles"))
    # memkeyval keeps its SLO and its bandwidth; iperf takes what is
    # left, shrinking as the LC load grows.
    assert all(p.worst_slo <= 1.0 for p in points)
    assert points[-1].be_gbps < points[0].be_gbps
    assert points[-1].lc_gbps > points[0].lc_gbps
