"""Core & memory subcontroller — Algorithm 2 of the paper.

One subcontroller manages both cores and cache "due to the strong
coupling between core count, LLC needs, and memory bandwidth needs"
(§4.3).  Its hard constraint is DRAM bandwidth: whenever measured
traffic exceeds ``DRAM_LIMIT`` (90% of peak), it removes BE cores
immediately.  Otherwise, when the top level allows growth, it runs a
one-dimension-at-a-time gradient descent over (BE cores, BE LLC ways):

* ``GROW_LLC`` — grow the BE cache partition while the *predicted* total
  bandwidth (offline LC model + measured BE traffic + derivative) stays
  under the limit, the measured bandwidth actually decreases (more cache
  should mean fewer misses — if not, roll back), and the BE task
  benefits.
* ``GROW_CORES`` — predict the bandwidth of one more BE core; if it fits
  and latency slack is above 10%, move one core from LC to BE.

Offline analysis (Fig. 3) shows LC performance is convex in cores x
cache, so this per-dimension descent converges to the global optimum,
typically in ~30 seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..hardware.counters import CounterBank
from ..sim.monitors import LatencyMonitor
from ..sim.actuators import Actuators
from .config import HeraclesConfig
from .dram_model import LcDramBandwidthModel
from .state import ControlState, GrowthPhase


@dataclass
class _PendingLlcCheck:
    """Bookkeeping for the grow-then-measure-then-maybe-rollback step."""

    previous_ways: int
    bw_before_gbps: float
    be_throughput_before: float
    slack_before: float


class CoreMemoryController:
    """Algorithm 2: DRAM-bandwidth-guarded gradient descent."""

    def __init__(self, config: HeraclesConfig, state: ControlState,
                 actuators: Actuators, counters: CounterBank,
                 dram_model: LcDramBandwidthModel,
                 lc_task: str, be_task: str,
                 be_throughput_fn: Callable[[], float],
                 monitor: Optional["LatencyMonitor"] = None,
                 slo_target_ms: Optional[float] = None):
        config.validate()
        self.config = config
        self.state = state
        self.actuators = actuators
        self.counters = counters
        self.dram_model = dram_model
        self.lc_task = lc_task
        self.be_task = be_task
        self.be_throughput_fn = be_throughput_fn
        # "Heracles will reassign cores one at a time, each time checking
        # for DRAM bandwidth saturation and SLO violations" (§4.3): the
        # 2-second growth loop refreshes latency slack itself instead of
        # trusting the 15-second-old top-level value.
        self.monitor = monitor
        self.slo_target_ms = slo_target_ms
        self._last_step_s: Optional[float] = None
        self._last_bw_gbps: Optional[float] = None
        self._bw_derivative: float = 0.0
        self._pending: Optional[_PendingLlcCheck] = None
        self._now_s: float = 0.0
        # Slack trajectory for the pre-violation estimate (§4.3: "the
        # subcontroller must avoid trying suboptimal allocations that
        # will either trigger DRAM bandwidth saturation or a signal from
        # the top-level controller to disable BE tasks ... Heracles
        # estimates whether it is close to an SLO violation for the LC
        # task based on the amount of latency slack").
        self._slack_before_grant: Optional[float] = None
        self._last_slack_drop: float = 0.0
        self._llc_slack_drop: float = 0.0

    # ------------------------------------------------------------------
    # Measurements and estimates
    # ------------------------------------------------------------------

    @property
    def dram_limit_gbps(self) -> float:
        """DRAM_LIMIT: 90% of one socket's peak streaming bandwidth.

        Saturation is per memory controller, and Heracles packs BE tasks
        onto a single socket (§4.3), so the binding constraint is the
        busiest socket, not the machine-wide sum.
        """
        return (self.config.dram_limit_fraction
                * self.counters.socket_dram_capacity_gbps())

    def measure_dram_bw(self) -> float:
        """MeasureDRAMBw(): busiest-socket traffic + derivative."""
        bw = self.counters.worst_socket_dram_bw_gbps()
        if self._last_bw_gbps is not None:
            self._bw_derivative = bw - self._last_bw_gbps
        self._last_bw_gbps = bw
        return bw

    def lc_bw_model_gbps(self) -> float:
        """LcBwModel(): offline model at current load and LC LLC ways,
        scaled to the LC traffic landing on the BE socket (the LC
        workload spreads its traffic across all sockets)."""
        total = self.dram_model.predict_gbps(self.state.load,
                                             self.actuators.lc_llc_ways)
        sockets = self.actuators.spec.sockets
        return total / max(1, sockets)

    def be_bw_gbps(self) -> float:
        """BeBw(): BE traffic landing on one socket's controllers.

        BE copies are spread one per socket, so each socket sees an even
        share of the total BE traffic (NUMA-local counter estimate)."""
        total = self.counters.dram_bw_of(self.be_task)
        return total / max(1, self.actuators.spec.sockets)

    def be_bw_per_core_gbps(self) -> float:
        """BeBwPerCore(): average BE traffic per core.

        Computed from the machine-wide per-task counter over all BE
        cores (adding one core to a socket adds one core's worth of
        traffic to that socket's controllers)."""
        cores = self.actuators.be_cores
        if cores <= 0:
            return 1.0  # conservative non-zero divisor
        return max(0.1, self.counters.dram_bw_of(self.be_task) / cores)

    def predicted_total_bw_gbps(self) -> float:
        """PredictedTotalBW() = LcBwModel() + BeBw() + bw_derivative."""
        return self.lc_bw_model_gbps() + self.be_bw_gbps() + self._bw_derivative

    def be_core_budget(self) -> int:
        """Maximum BE cores permitted by the load-proportional LC floor.

        Near the minimum viable core count, LC tail latency is flat
        right up to a one-step queueing cliff that no local slack
        gradient can predict, so the controller never shrinks the LC
        workload below the cores its current load needs plus a margin.
        The load signal is the same one Algorithm 1 polls.
        """
        import math
        total = self.actuators.spec.total_cores
        lc_floor = min(total, math.ceil(self.state.load * total * 1.08) + 1)
        return max(0, total - lc_floor)

    def current_slack(self) -> float:
        """Freshest latency slack available to the 2-second loop.

        Uses the short-window latency estimate when a monitor is wired
        in; otherwise falls back to the top-level's 15-second value.
        """
        if self.monitor is not None and self.slo_target_ms is not None:
            latency = self.monitor.recent_latency_ms(
                self._now_s, span_s=self.config.core_mem_period_s)
            if latency is not None:
                return (self.slo_target_ms - latency) / self.slo_target_ms
        return self.state.slack

    # ------------------------------------------------------------------
    # Control loop
    # ------------------------------------------------------------------

    def due(self, now_s: float) -> bool:
        return (self._last_step_s is None
                or now_s - self._last_step_s >= self.config.core_mem_period_s)

    def step(self, now_s: float) -> None:
        if not self.due(now_s):
            return
        self._last_step_s = now_s
        self._now_s = now_s

        total_bw = self.measure_dram_bw()

        # Hard constraint: never saturate DRAM.
        if total_bw > self.dram_limit_gbps and self.actuators.be_cores > 0:
            overage = total_bw - self.dram_limit_gbps
            import math
            to_remove = max(1, math.ceil(overage / self.be_bw_per_core_gbps()))
            self.actuators.remove_be_cores(to_remove)
            self._pending = None
            return

        # Hard constraint: rising load reclaims LC cores immediately,
        # without waiting for latency slack to collapse first.
        over_budget = self.actuators.be_cores - self.be_core_budget()
        if over_budget > 0:
            self.actuators.remove_be_cores(over_budget)
            self._pending = None
            return

        # Complete a pending grow-LLC check before anything else.
        if self._pending is not None:
            self._finish_llc_check()
        else:
            # Decay stale slack-cost estimates so the descent re-probes:
            # a drop observed during an unrelated transient (load spike,
            # noise burst) must not freeze growth permanently.
            self._last_slack_drop *= 0.8
            self._llc_slack_drop *= 0.8

        if not self.state.can_grow_be(now_s, self.actuators.be_enabled):
            return

        if self.state.phase is GrowthPhase.GROW_LLC:
            self._grow_llc_step()
        else:
            self._grow_cores_step()

    def _grow_llc_step(self) -> None:
        slack = min(self.state.slack, self.current_slack())
        if slack < self.config.slack_no_growth + self.config.growth_guard:
            return
        # Pre-violation estimate, as for cores: don't try a cache size
        # predicted to squeeze the LC workload into the red band.
        if slack - 3.0 * self._llc_slack_drop <= self.config.slack_cut_cores:
            self.state.phase = GrowthPhase.GROW_CORES
            return
        if self.predicted_total_bw_gbps() > self.dram_limit_gbps:
            self.state.phase = GrowthPhase.GROW_CORES
            return
        previous = self.actuators.be_llc_ways
        if not self.actuators.grow_be_llc(1):
            self.state.phase = GrowthPhase.GROW_CORES
            return
        self._pending = _PendingLlcCheck(
            previous_ways=previous,
            bw_before_gbps=self._last_bw_gbps or 0.0,
            be_throughput_before=self.be_throughput_fn(),
            slack_before=slack,
        )

    def _finish_llc_check(self) -> None:
        """After a cache grant: verify bandwidth fell, the LC workload
        kept its slack, and the BE task benefited; otherwise roll back."""
        pending, self._pending = self._pending, None
        slack_now = self.current_slack()
        self._llc_slack_drop = max(0.0, pending.slack_before - slack_now)
        # Latency check: the grant stole cache the LC workload needed.
        if slack_now < self.config.slack_no_growth:
            self.actuators.set_llc_split(pending.previous_ways)
            self.state.phase = GrowthPhase.GROW_CORES
            return
        # bw_derivative >= 0: growing the BE cache did not reduce traffic
        # (the BE task does not fit or does not reuse) -> roll back.
        if self._bw_derivative >= 0:
            self.actuators.set_llc_split(pending.previous_ways)
            self.state.phase = GrowthPhase.GROW_CORES
            return
        # BeBenefit(): did BE throughput improve measurably?
        gain = self.be_throughput_fn() - pending.be_throughput_before
        if gain <= self.config.be_benefit_epsilon * max(
                1e-9, pending.be_throughput_before):
            self.state.phase = GrowthPhase.GROW_CORES

    def _grow_cores_step(self) -> None:
        needed = (self.lc_bw_model_gbps() + self.be_bw_gbps()
                  + self.be_bw_per_core_gbps())
        if needed > self.dram_limit_gbps:
            self._on_core_growth_dram_blocked()
            return
        self._try_grant_core()

    def _on_core_growth_dram_blocked(self) -> None:
        """Hook: core growth refused because bandwidth would saturate.

        The base controller (2015 hardware) can only fall back to
        growing the cache; the MBA variant overrides this to tighten the
        BE bandwidth throttle instead."""
        self.state.phase = GrowthPhase.GROW_LLC

    def _try_grant_core(self) -> None:
        """Slack-gated, budget-gated single-core grant."""
        slack = min(self.state.slack, self.current_slack())
        # Update the per-core slack cost observed from the last grant.
        if self._slack_before_grant is not None:
            self._last_slack_drop = max(
                0.0, self._slack_before_grant - self.current_slack())
            self._slack_before_grant = None
        if slack <= self.config.slack_no_growth + self.config.growth_guard:
            return
        if self.be_core_budget() - self.actuators.be_cores <= 0:
            # Cores exhausted by the LC floor: hand the round to the
            # cache dimension ("switching between increasing the cores
            # and increasing the cache", §4.3).
            self.state.phase = GrowthPhase.GROW_LLC
            return
        # Pre-violation estimate: latency-vs-cores is convex (Fig. 3) and
        # steepens super-linearly near saturation, so the next removal
        # can cost several times what the last one did.  Do not try an
        # allocation predicted to land inside the red band.
        predicted = slack - 3.0 * self._last_slack_drop
        if predicted <= self.config.slack_cut_cores:
            return
        if self.actuators.add_be_core():
            self._slack_before_grant = self.current_slack()
