"""Fleet layer: sharded execution differential-tested against the
single-process batch cluster and the scalar reference engine.

The heart of this module is the differential harness the PR-4 issue
asks for: the same 8-leaf cluster run (a) as a scalar per-leaf loop,
(b) as one monolithic ``BatchColocationSim``, and (c) as a sharded
fleet across shard counts {1, 3, 8} and ``REPRO_JOBS`` ∈ {1, 4} — all
producing *bit-identical* cluster histories.  Equality is asserted
with ``np.array_equal`` (no tolerance): the fleet layer's contract is
that partitioning and parallelism change wall-clock, never numbers.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.cluster.cluster import WebsearchCluster, cluster_slo_targets
from repro.fleet import (ClusterPlan, ShardedFleetSim, partition_leaves,
                         run_shard)
from repro.fleet.shard import ShardTask
from repro.hardware.spec import default_machine_spec
from repro.scenarios import (ScenarioError, compile_scenario, load_scenario,
                             registry)
from repro.sim.chaos import ChaosEvent
from repro.sim.runner import JOBS_ENV
from repro.workloads.traces import (ConstantLoad, PhasedTrace,
                                    websearch_cluster_trace)

LEAVES = 8
DURATION = 240.0
SEED = 3
CLUSTER_FIELDS = ("t_s", "load", "root_latency_ms", "root_slo_fraction",
                  "emu")


def reference_trace():
    """The shared cluster trace every differential run uses."""
    return websearch_cluster_trace(seed=SEED)


def assert_cluster_histories_identical(got, want, what):
    """Bitwise equality of two ClusterHistory column sets."""
    assert len(got) == len(want), f"{what}: record counts differ"
    for name in CLUSTER_FIELDS:
        a, b = got.column(name), want.column(name)
        assert np.array_equal(a, b), (
            f"{what}: column {name!r} diverged (max abs diff "
            f"{np.abs(a - b).max():.3e})")


class TestPartitionLeaves:
    def test_single_shard(self):
        assert partition_leaves(8, 8) == [(0, 8)]
        assert partition_leaves(8, 100) == [(0, 8)]

    def test_near_equal_split(self):
        assert partition_leaves(8, 3) == [(0, 3), (3, 6), (6, 8)]
        assert partition_leaves(10, 4) == [(0, 4), (4, 7), (7, 10)]

    def test_unit_shards(self):
        ranges = partition_leaves(5, 1)
        assert ranges == [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]

    def test_tiles_exactly(self):
        for total in (2, 7, 64, 1000):
            for size in (1, 3, 64, 128):
                ranges = partition_leaves(total, size)
                assert ranges[0][0] == 0 and ranges[-1][1] == total
                assert all(hi == nlo for (_, hi), (nlo, _)
                           in zip(ranges, ranges[1:]))
                assert all(0 < hi - lo <= size for lo, hi in ranges)

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError, match="must be positive"):
            partition_leaves(0, 4)
        with pytest.raises(ValueError, match="must be positive"):
            partition_leaves(-3, 4)
        with pytest.raises(ValueError, match="zero or negative"):
            partition_leaves(8, 0)
        with pytest.raises(ValueError, match="zero or negative"):
            partition_leaves(8, -1)


@pytest.fixture(scope="module")
def batch_cluster():
    """The monolithic single-process batch run (the reference)."""
    cluster = WebsearchCluster(leaves=LEAVES, trace=reference_trace(),
                               seed=SEED, engine="batch")
    cluster.run(DURATION)
    return cluster


@pytest.fixture(scope="module")
def scalar_cluster():
    """The per-leaf scalar reference run."""
    cluster = WebsearchCluster(leaves=LEAVES, trace=reference_trace(),
                               seed=SEED, engine="scalar")
    cluster.run(DURATION)
    return cluster


def run_fleet_once(shard_leaves, processes=1, engine="sharded",
                   slack_epoch_s=None):
    """One fleet run of the differential cluster (any engine)."""
    fleet = ShardedFleetSim(
        [ClusterPlan(name="diff", leaves=LEAVES, trace=reference_trace(),
                     seed=SEED)],
        shard_leaves=shard_leaves, engine=engine)
    return fleet.run(DURATION, processes=processes,
                     slack_epoch_s=slack_epoch_s)


class TestFleetDifferential:
    """Sharded fleet vs batch cluster vs scalar cluster: bit-identical."""

    def test_scalar_matches_batch_bitwise(self, batch_cluster,
                                          scalar_cluster):
        assert_cluster_histories_identical(
            scalar_cluster.history, batch_cluster.history,
            "scalar vs batch")
        assert scalar_cluster.root_slo_ms == batch_cluster.root_slo_ms

    @pytest.mark.parametrize("jobs", ["1", "4"])
    @pytest.mark.parametrize("shard_leaves,expected_shards",
                             [(8, 1), (3, 3), (1, 8)])
    def test_fleet_matches_batch_bitwise(self, batch_cluster, monkeypatch,
                                         shard_leaves, expected_shards,
                                         jobs):
        monkeypatch.setenv(JOBS_ENV, jobs)
        result = run_fleet_once(shard_leaves, processes=None)
        outcome = result.cluster("diff")
        assert len(outcome.shards) == expected_shards
        assert outcome.root_slo_ms == batch_cluster.root_slo_ms
        assert outcome.leaf_slo_ms == batch_cluster.leaf_slo_ms
        assert_cluster_histories_identical(
            outcome.history, batch_cluster.history,
            f"fleet[{expected_shards} shard(s), jobs={jobs}] vs batch")

    def test_assemble_rejects_incomplete_tiling(self):
        """A missing trailing shard must fail loudly, never roll up."""
        from repro.fleet import assemble_cluster
        result = run_fleet_once(shard_leaves=3)
        shards = sorted(result.cluster("diff").shards,
                        key=lambda s: s.leaf_lo)
        with pytest.raises(ValueError, match="ends at leaf"):
            assemble_cluster(shards[:-1], total_leaves=LEAVES)
        with pytest.raises(ValueError, match="starts at leaf"):
            assemble_cluster(shards[1:], total_leaves=LEAVES)
        with pytest.raises(ValueError, match="do not tile"):
            assemble_cluster([shards[0], shards[2]], total_leaves=LEAVES)

    def test_summary_is_shard_count_invariant(self):
        summaries = [run_fleet_once(shard_leaves).summary(skip_s=60.0)
                     for shard_leaves in (8, 3)]
        assert summaries[0] == summaries[1]

    def test_slo_targets_use_cluster_population_not_shard_size(self):
        """A shard of 3 leaves must keep the 8-leaf root SLO."""
        spec = default_machine_spec()
        _, root_slo_full = cluster_slo_targets(spec, LEAVES)
        _, root_slo_small = cluster_slo_targets(spec, 3)
        assert root_slo_full > root_slo_small
        result = run_fleet_once(shard_leaves=3)
        assert result.cluster("diff").root_slo_ms == root_slo_full


class TestMegaEngineDifferential:
    """The mega engine joins the bit-identity triangle: one fleet-wide
    array program must reproduce the batch cluster (and hence the
    scalar reference and every sharded plan) number for number."""

    @pytest.fixture(scope="class")
    def mega_result(self):
        return run_fleet_once(shard_leaves=LEAVES, engine="mega")

    def test_mega_matches_batch_bitwise(self, mega_result, batch_cluster):
        outcome = mega_result.cluster("diff")
        assert outcome.root_slo_ms == batch_cluster.root_slo_ms
        assert outcome.leaf_slo_ms == batch_cluster.leaf_slo_ms
        assert_cluster_histories_identical(
            outcome.history, batch_cluster.history, "mega vs batch")

    def test_mega_matches_scalar_bitwise(self, mega_result,
                                         scalar_cluster):
        assert_cluster_histories_identical(
            mega_result.cluster("diff").history, scalar_cluster.history,
            "mega vs scalar")

    def test_mega_is_one_whole_cluster_shard(self, mega_result):
        """The mega engine reports each cluster as a single
        whole-population shard so the roll-up stays shared."""
        shards = mega_result.cluster("diff").shards
        assert len(shards) == 1
        assert (shards[0].leaf_lo, shards[0].leaf_hi) == (0, LEAVES)

    @pytest.mark.parametrize("jobs", ["1", "4"])
    @pytest.mark.parametrize("shard_leaves", [8, 3, 1])
    def test_mega_summary_matches_sharded(self, mega_result, monkeypatch,
                                          shard_leaves, jobs):
        """Summaries are engine- and shard-plan-invariant, whatever
        the worker pool shape."""
        monkeypatch.setenv(JOBS_ENV, jobs)
        sharded = run_fleet_once(shard_leaves, processes=None)
        assert mega_result.summary(skip_s=60.0) \
            == sharded.summary(skip_s=60.0)

    def test_mega_slack_view_matches_sharded(self):
        """The scheduler's slack signals survive the engine swap."""
        mega = run_fleet_once(LEAVES, engine="mega", slack_epoch_s=30.0)
        sharded = run_fleet_once(3, slack_epoch_s=30.0)
        a, b = mega.slack, sharded.slack
        assert a is not None and b is not None
        assert np.array_equal(a.epoch_t_s, b.epoch_t_s)
        for name in ("harvest_core_s", "grant_cores", "latched"):
            assert np.array_equal(getattr(a, name), getattr(b, name)), (
                f"slack signal {name!r} diverged between engines")

    def test_mega_slack_view_matches_sharded_under_be_chaos(self):
        """BE-toggle chaos must land in the *same* grant row on both
        engines.  The recorded grant for tick k is what tick k+1's
        actuator gather sees — including chaos events firing at the
        start of tick k+1 — so the mega loop cannot simply read the
        post-controller state after tick k.  The fuzzer caught the
        mega engine doing exactly that (shifting ``grant_cores`` by
        one tick around every BE toggle and diverging the scheduler's
        crediting); one-tick epochs make any such shift visible here.
        """
        events = (ChaosEvent(45.0, "disable_be"),
                  ChaosEvent(75.0, "enable_be"),
                  ChaosEvent(110.0, "set_be_cores", 2, members=(3,)),
                  ChaosEvent(150.0, "disable_be", members=(3,)))

        def run(engine, shard_leaves):
            fleet = ShardedFleetSim(
                [ClusterPlan(name="diff", leaves=LEAVES,
                             trace=reference_trace(), seed=SEED,
                             events=events)],
                shard_leaves=shard_leaves, engine=engine)
            return fleet.run(DURATION, processes=1, slack_epoch_s=1.0)

        a = run("mega", LEAVES).slack
        b = run("sharded", 3).slack
        for name in ("harvest_core_s", "grant_cores", "latched"):
            assert np.array_equal(getattr(a, name), getattr(b, name)), (
                f"slack signal {name!r} diverged between engines "
                f"under BE-toggle chaos")

    def test_mega_heterogeneous_matches_sharded(self):
        """Mixed specs / LCs / unmanaged clusters in one array program."""
        def plans():
            return [
                ClusterPlan(name="web", leaves=4,
                            trace=reference_trace(), seed=1),
                ClusterPlan(name="kv", leaves=3, lc_name="memkeyval",
                            be_mix=("iperf",),
                            trace=PhasedTrace(reference_trace(), 600.0),
                            managed=False, seed=2),
            ]
        sharded = ShardedFleetSim(plans(), shard_leaves=2) \
            .run(120.0, processes=1)
        mega = ShardedFleetSim(plans(), engine="mega").run(120.0)
        for name in ("web", "kv"):
            assert_cluster_histories_identical(
                mega.cluster(name).history, sharded.cluster(name).history,
                f"mega vs sharded [{name}]")
        for name in ("fleet_emu", "weighted_root_latency_ms"):
            assert np.array_equal(mega.telemetry.fleet_column(name),
                                  sharded.telemetry.fleet_column(name))

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="engine='bogus'"):
            ShardedFleetSim(
                [ClusterPlan(name="c", leaves=4, trace=ConstantLoad(0.5))],
                engine="bogus")


#: One event schedule per chaos action (plus the legacy actuator pokes),
#: each exercising the action's full lifecycle — fire, run degraded,
#: recover — inside the differential window.
CHAOS_SETS = {
    "leaf_crash": (ChaosEvent(30.0, "leaf_crash", members=(1, 4)),
                   ChaosEvent(80.0, "leaf_restart", members=(1, 4))),
    "straggler": (ChaosEvent(25.0, "straggler", 0.55, members=(2,)),
                  ChaosEvent(90.0, "straggler", 1.0, members=(2,))),
    "power_cap": (ChaosEvent(20.0, "power_cap", 0.7),
                  ChaosEvent(100.0, "power_cap", 1.0)),
    "partition": (ChaosEvent(40.0, "partition", 30.0, members=(0, 5)),),
    "actuator": (ChaosEvent(20.0, "disable_be", members=(3,)),
                 ChaosEvent(60.0, "enable_be", members=(3,)),
                 ChaosEvent(75.0, "set_be_cores", 2, members=(3,)),
                 ChaosEvent(90.0, "set_llc_split", 3, members=(3,)),
                 ChaosEvent(105.0, "set_be_net_ceil", 2.5, members=(3,))),
}

CHAOS_DURATION = 120.0


def run_chaos_fleet(events, shard_leaves, engine="sharded", processes=1):
    """One fleet run of the differential cluster under a chaos schedule."""
    fleet = ShardedFleetSim(
        [ClusterPlan(name="diff", leaves=LEAVES, trace=reference_trace(),
                     seed=SEED, events=tuple(events))],
        shard_leaves=shard_leaves, engine=engine)
    return fleet.run(CHAOS_DURATION, processes=processes)


class TestChaosDifferential:
    """Chaos events across engines: the bit-identity contract extends to
    every fault-injection action.  The same schedule runs (a) as one
    whole-cluster shard, (b) sharded 3 ways across worker pools, and
    (c) on the mega engine — identical histories, no tolerance."""

    @pytest.mark.parametrize("action", sorted(CHAOS_SETS))
    def test_action_is_shard_and_engine_invariant(self, action):
        events = CHAOS_SETS[action]
        whole = run_chaos_fleet(events, shard_leaves=LEAVES)
        sharded = run_chaos_fleet(events, shard_leaves=3)
        mega = run_chaos_fleet(events, shard_leaves=LEAVES, engine="mega")
        for other, what in ((sharded, "3-shard"), (mega, "mega")):
            assert_cluster_histories_identical(
                other.cluster("diff").history,
                whole.cluster("diff").history,
                f"chaos[{action}] {what} vs whole-cluster")
            assert other.summary(skip_s=10.0) == whole.summary(skip_s=10.0)

    @pytest.mark.parametrize("action", sorted(CHAOS_SETS))
    def test_action_actually_fires(self, action):
        """Guard against silently dropped events: every schedule must
        change the cluster's history relative to the no-chaos run."""
        plain = run_chaos_fleet((), shard_leaves=LEAVES)
        chaos = run_chaos_fleet(CHAOS_SETS[action], shard_leaves=LEAVES)
        a = plain.cluster("diff").history.column("root_latency_ms")
        b = chaos.cluster("diff").history.column("root_latency_ms")
        assert not np.array_equal(a, b), (
            f"chaos[{action}]: schedule had no observable effect")

    @pytest.mark.parametrize("jobs", ["1", "4"])
    def test_mixed_schedule_across_pools(self, monkeypatch, jobs):
        """All five chaos actions plus actuator pokes interleaved, on a
        heterogeneous managed + unmanaged fleet, across worker pools."""
        monkeypatch.setenv(JOBS_ENV, jobs)
        events_a = (ChaosEvent(20.0, "leaf_crash", members=(0,)),
                    ChaosEvent(30.0, "straggler", 0.6, members=(2,)),
                    ChaosEvent(45.0, "power_cap", 0.75),
                    ChaosEvent(60.0, "partition", 25.0, members=(3,)),
                    ChaosEvent(90.0, "leaf_restart", members=(0,)),
                    ChaosEvent(100.0, "set_be_cores", 1, members=(1,)))
        events_b = (ChaosEvent(35.0, "enable_be"),
                    ChaosEvent(55.0, "set_llc_split", 2, members=(1,)),
                    ChaosEvent(70.0, "leaf_crash", members=(2,)),
                    ChaosEvent(95.0, "set_be_net_ceil", 1.5))

        def plans():
            return [
                ClusterPlan(name="alpha", leaves=5,
                            trace=reference_trace(), seed=1,
                            events=events_a),
                ClusterPlan(name="beta", leaves=4, lc_name="memkeyval",
                            be_mix=("iperf",),
                            trace=PhasedTrace(reference_trace(), 600.0),
                            managed=False, seed=2, events=events_b),
            ]
        fine = ShardedFleetSim(plans(), shard_leaves=2) \
            .run(CHAOS_DURATION, processes=None)
        coarse = ShardedFleetSim(plans(), shard_leaves=5) \
            .run(CHAOS_DURATION, processes=None)
        mega = ShardedFleetSim(plans(), engine="mega").run(CHAOS_DURATION)
        for name in ("alpha", "beta"):
            want = coarse.cluster(name).history
            for other, what in ((fine, "2-leaf shards"), (mega, "mega")):
                assert_cluster_histories_identical(
                    other.cluster(name).history, want,
                    f"mixed chaos [{name}] {what} vs whole-cluster")
        assert fine.summary() == coarse.summary() == mega.summary()

    def test_whole_cluster_events_reach_every_shard(self):
        """members=None fans out to all leaves on every execution plan —
        including shards whose leaf range starts past zero."""
        events = (ChaosEvent(30.0, "leaf_crash"),)
        sharded = run_chaos_fleet(events, shard_leaves=3)
        tails = sharded.cluster("diff").history.column("root_latency_ms")
        # Every leaf dead: the root sees zero latency after the crash.
        assert tails[-1] == 0.0

    def test_plan_rejects_out_of_range_targets(self):
        with pytest.raises(ValueError, match="targets\\s+leaf 9"):
            ShardedFleetSim([ClusterPlan(
                name="c", leaves=4, trace=ConstantLoad(0.5),
                events=(ChaosEvent(10.0, "leaf_crash", members=(9,)),))])

    def test_plan_rejects_invalid_events(self):
        with pytest.raises(ValueError, match="value"):
            ShardedFleetSim([ClusterPlan(
                name="c", leaves=4, trace=ConstantLoad(0.5),
                events=(ChaosEvent(10.0, "straggler"),))])


#: A chaos schedule that *straddles* the snapshot tick below: at
#: t=55 s two leaves are crashed, one is a straggler, the power cap is
#: active — and the recovery events are still pending.  The shard
#: archives must carry the degraded state and the schedule cursor.
STRADDLING_EVENTS = (
    ChaosEvent(30.0, "leaf_crash", members=(1, 4)),
    ChaosEvent(40.0, "straggler", 0.6, members=(2,)),
    ChaosEvent(50.0, "power_cap", 0.75),
    ChaosEvent(80.0, "leaf_restart", members=(1, 4)),
    ChaosEvent(95.0, "straggler", 1.0, members=(2,)),
    ChaosEvent(100.0, "power_cap", 1.0),
)

SNAPSHOT_AT = 55.0


class TestCheckpointResume:
    """Fleet-level checkpoint/resume: run-to-T ≡ save + restore +
    resume, bit for bit, for the sharded and mega engines, across
    shard plans and worker pools, under chaos events straddling the
    snapshot tick.  Plus the manifest validation that keeps a snapshot
    from silently resuming under a different fleet."""

    def _fleet(self, engine="sharded", shard_leaves=LEAVES,
               events=STRADDLING_EVENTS):
        return ShardedFleetSim(
            [ClusterPlan(name="diff", leaves=LEAVES,
                         trace=reference_trace(), seed=SEED,
                         events=tuple(events))],
            shard_leaves=shard_leaves, engine=engine)

    def _straight(self, **over):
        return self._fleet(**over).run(CHAOS_DURATION, processes=1)

    def test_saving_does_not_perturb_the_run(self, tmp_path):
        """The run that *writes* the snapshot stays on trajectory, and
        the checkpoint directory holds a manifest + shard archives."""
        import os

        from repro.fleet.simulator import FLEET_META_NAME
        ckpt = str(tmp_path / "ckpt")
        straight = self._straight()
        saved = self._fleet().run(CHAOS_DURATION, processes=1,
                                  checkpoint_dir=ckpt,
                                  checkpoint_at_s=SNAPSHOT_AT)
        assert_cluster_histories_identical(
            saved.cluster("diff").history, straight.cluster("diff").history,
            "checkpointing run vs straight")
        names = sorted(os.listdir(ckpt))
        assert FLEET_META_NAME in names
        assert [n for n in names if n.startswith("shard_")]
        meta = json.loads((tmp_path / "ckpt" / FLEET_META_NAME)
                          .read_text())
        assert meta["version"] == 1
        assert meta["checkpoint_t_s"] == SNAPSHOT_AT
        assert meta["engine"] == "sharded"

    @pytest.mark.parametrize("engine,shard_leaves,jobs",
                             [("sharded", 8, "1"), ("sharded", 3, "4"),
                              ("sharded", 1, "1"), ("mega", 8, "1")])
    def test_resume_is_bit_identical(self, tmp_path, monkeypatch, engine,
                                     shard_leaves, jobs):
        monkeypatch.setenv(JOBS_ENV, jobs)
        ckpt = str(tmp_path / "ckpt")
        straight = self._straight(engine=engine,
                                  shard_leaves=shard_leaves)
        self._fleet(engine=engine, shard_leaves=shard_leaves) \
            .run(CHAOS_DURATION, processes=None, checkpoint_dir=ckpt,
                 checkpoint_at_s=SNAPSHOT_AT)
        resumed = self._fleet(engine=engine, shard_leaves=shard_leaves) \
            .run(CHAOS_DURATION, processes=None, resume_from=ckpt)
        assert_cluster_histories_identical(
            resumed.cluster("diff").history,
            straight.cluster("diff").history,
            f"resumed[{engine}, shard={shard_leaves}, jobs={jobs}] "
            f"vs straight")
        assert resumed.summary(skip_s=10.0) == straight.summary(
            skip_s=10.0)

    def test_resume_with_spill_matches_in_ram(self, tmp_path,
                                              monkeypatch):
        """Spill on both segments of the resumed run: reads
        materialize exactly what an in-RAM straight run records."""
        from repro.metrics.columns import SPILL_CHUNK_ENV
        monkeypatch.setenv(SPILL_CHUNK_ENV, "16")
        ckpt = str(tmp_path / "ckpt")
        straight = self._straight(shard_leaves=3)
        self._fleet(shard_leaves=3).run(
            CHAOS_DURATION, processes=1, checkpoint_dir=ckpt,
            checkpoint_at_s=SNAPSHOT_AT,
            spill_dir=str(tmp_path / "spill_a"))
        resumed = self._fleet(shard_leaves=3).run(
            CHAOS_DURATION, processes=1, resume_from=ckpt,
            spill_dir=str(tmp_path / "spill_b"))
        assert_cluster_histories_identical(
            resumed.cluster("diff").history,
            straight.cluster("diff").history,
            "spilled resume vs in-RAM straight")

    def test_branching_two_futures_from_one_snapshot(self, tmp_path):
        """Warm-started what-if: the same snapshot resumed twice gives
        bit-identical futures (fork determinism at fleet scale)."""
        ckpt = str(tmp_path / "ckpt")
        self._fleet().run(CHAOS_DURATION, processes=1,
                          checkpoint_dir=ckpt,
                          checkpoint_at_s=SNAPSHOT_AT)
        forks = [self._fleet().run(CHAOS_DURATION, processes=1,
                                   resume_from=ckpt) for _ in range(2)]
        assert_cluster_histories_identical(
            forks[0].cluster("diff").history,
            forks[1].cluster("diff").history, "fork A vs fork B")

    def test_checkpoint_args_must_pair(self):
        from repro.sim.checkpoint import CheckpointError
        with pytest.raises(CheckpointError, match="go together"):
            self._fleet().run(CHAOS_DURATION, checkpoint_dir="/tmp/x")
        with pytest.raises(CheckpointError, match="go together"):
            self._fleet().run(CHAOS_DURATION, checkpoint_at_s=30.0)

    def test_snapshot_must_land_inside_the_run(self, tmp_path):
        from repro.sim.checkpoint import CheckpointError
        with pytest.raises(CheckpointError, match="land in"):
            self._fleet().run(CHAOS_DURATION,
                              checkpoint_dir=str(tmp_path / "c"),
                              checkpoint_at_s=CHAOS_DURATION + 60.0)

    def test_manifest_rejects_cross_engine_resume(self, tmp_path):
        from repro.sim.checkpoint import CheckpointError
        ckpt = str(tmp_path / "ckpt")
        self._fleet(engine="sharded").run(
            CHAOS_DURATION, processes=1, checkpoint_dir=ckpt,
            checkpoint_at_s=SNAPSHOT_AT)
        with pytest.raises(CheckpointError, match="engine"):
            self._fleet(engine="mega").run(CHAOS_DURATION,
                                           resume_from=ckpt)

    def test_manifest_rejects_topology_mismatch(self, tmp_path):
        from repro.sim.checkpoint import CheckpointError
        ckpt = str(tmp_path / "ckpt")
        self._fleet(shard_leaves=3).run(
            CHAOS_DURATION, processes=1, checkpoint_dir=ckpt,
            checkpoint_at_s=SNAPSHOT_AT)
        with pytest.raises(CheckpointError, match="shard_leaves"):
            self._fleet(shard_leaves=8).run(CHAOS_DURATION,
                                            resume_from=ckpt)

    def test_resumed_run_cannot_checkpoint_backwards(self, tmp_path):
        from repro.sim.checkpoint import CheckpointError
        ckpt = str(tmp_path / "ckpt")
        self._fleet().run(CHAOS_DURATION, processes=1,
                          checkpoint_dir=ckpt,
                          checkpoint_at_s=SNAPSHOT_AT)
        with pytest.raises(CheckpointError, match="further ahead"):
            self._fleet().run(CHAOS_DURATION, processes=1,
                              resume_from=ckpt,
                              checkpoint_dir=str(tmp_path / "again"),
                              checkpoint_at_s=SNAPSHOT_AT)

    def test_missing_manifest_fails_loudly(self, tmp_path):
        from repro.sim.checkpoint import CheckpointError
        with pytest.raises(CheckpointError, match="manifest"):
            self._fleet().run(CHAOS_DURATION,
                              resume_from=str(tmp_path / "nowhere"))


class TestRunShard:
    def _task(self, **over):
        spec = default_machine_spec()
        leaf_slo_ms, _ = cluster_slo_targets(spec, 4)
        base = dict(cluster="c", cluster_index=0, shard_index=0,
                    leaf_lo=0, leaf_hi=2, total_leaves=4,
                    lc_name="websearch", be_mix=("brain", "streetview"),
                    leaf_slo_ms=leaf_slo_ms, spec=spec,
                    trace=ConstantLoad(0.5), managed=False, seed=1,
                    duration_s=30.0, dt_s=1.0)
        base.update(over)
        return ShardTask(**base)

    def test_shapes_and_summary(self):
        result = run_shard(self._task())
        assert result.tails_ms.shape == (30, 2)
        assert result.emus.shape == (30, 2)
        assert result.times_s.shape == (30,)
        assert result.summary["worst_tail_ms"] == result.tails_ms.max()
        assert (result.tails_ms > 0).all()

    def test_rejects_degenerate_tasks(self):
        with pytest.raises(ValueError, match="duration"):
            run_shard(self._task(duration_s=0.0))
        with pytest.raises(ValueError, match="dt"):
            run_shard(self._task(dt_s=-1.0))
        with pytest.raises(ValueError, match="empty"):
            run_shard(self._task(leaf_hi=0))
        with pytest.raises(ValueError, match="outside the cluster"):
            run_shard(self._task(leaf_hi=9))


class TestHeterogeneousFleet:
    @pytest.fixture(scope="class")
    def result(self):
        fleet = ShardedFleetSim(
            [
                ClusterPlan(name="web", leaves=4,
                            trace=reference_trace(), seed=1),
                ClusterPlan(name="kv", leaves=3, lc_name="memkeyval",
                            be_mix=("iperf",),
                            trace=PhasedTrace(reference_trace(), 600.0),
                            managed=False, seed=2),
            ],
            shard_leaves=2)
        return fleet.run(120.0, processes=1)

    def test_telemetry_shapes(self, result):
        telemetry = result.telemetry
        assert telemetry.column("emu").shape == (len(telemetry), 2)
        assert telemetry.fleet_column("fleet_emu").shape \
            == (len(telemetry),)
        assert telemetry.cluster_names == ["web", "kv"]
        with pytest.raises(KeyError):
            telemetry.fleet_column("emu")

    def test_fleet_emu_is_leaf_weighted(self, result):
        telemetry = result.telemetry
        emu = telemetry.column("emu")
        expected = (emu[:, 0] * 4 + emu[:, 1] * 3) / 7.0
        np.testing.assert_allclose(telemetry.fleet_column("fleet_emu"),
                                   expected, rtol=1e-12)

    def test_weighted_latency_bounded_by_slowest_cluster(self, result):
        telemetry = result.telemetry
        latency = telemetry.column("root_latency_ms")
        weighted = telemetry.fleet_column("weighted_root_latency_ms")
        assert (weighted <= latency.max(axis=1) + 1e-12).all()
        assert (weighted >= latency.min(axis=1) - 1e-12).all()

    def test_cluster_lookup_and_shards(self, result):
        web = result.cluster("web")
        assert web.leaves == 4 and len(web.shards) == 2
        summaries = web.shard_summaries()
        assert [s["leaf_lo"] for s in summaries] == [0, 2]
        with pytest.raises(KeyError):
            result.cluster("nope")

    def test_summary_contents(self, result):
        summary = result.summary(skip_s=30.0)
        assert summary["leaves"] == 7
        assert set(summary["clusters"]) == {"web", "kv"}
        assert 0.0 < summary["fleet_emu"] <= 1.5
        assert summary["weighted_root_latency_ms"] > 0


class TestFleetValidation:
    def _plan(self, **over):
        base = dict(name="c", leaves=4, trace=ConstantLoad(0.5))
        base.update(over)
        return ClusterPlan(**base)

    def test_rejects_bad_leaf_counts(self):
        for leaves in (0, -5, 1):
            with pytest.raises(ValueError, match="at least two leaves"):
                ShardedFleetSim([self._plan(leaves=leaves)])

    def test_rejects_bad_shard_size(self):
        with pytest.raises(ValueError, match="zero or negative"):
            ShardedFleetSim([self._plan()], shard_leaves=0)
        with pytest.raises(ValueError, match="zero or negative"):
            ShardedFleetSim([self._plan()], shard_leaves=-4)

    def test_rejects_cross_cluster_seed_collisions(self):
        """Adjacent seeds + 1000-leaf clusters would share noise streams."""
        with pytest.raises(ValueError, match="seed ranges overlap"):
            ShardedFleetSim([
                self._plan(name="a", leaves=1500, seed=7),
                self._plan(name="b", leaves=1500, seed=8),
            ])
        # Widely spaced seeds (or sub-1000 clusters) are fine.
        ShardedFleetSim([self._plan(name="a", leaves=1500, seed=7),
                         self._plan(name="b", leaves=1500, seed=9)])
        ShardedFleetSim([self._plan(name="a", leaves=500, seed=7),
                         self._plan(name="b", leaves=500, seed=8)])

    def test_rejects_duplicate_names_and_empty_fleets(self):
        with pytest.raises(ValueError, match="unique"):
            ShardedFleetSim([self._plan(), self._plan()])
        with pytest.raises(ValueError, match="at least one cluster"):
            ShardedFleetSim([])

    def test_rejects_unknown_workloads(self):
        with pytest.raises(ValueError, match="unknown LC workload"):
            ShardedFleetSim([self._plan(lc_name="nope")])
        with pytest.raises(ValueError, match="unknown BE workload"):
            ShardedFleetSim([self._plan(be_mix=("nope",))])
        with pytest.raises(ValueError, match="at least one BE"):
            ShardedFleetSim([self._plan(be_mix=())])

    def test_rejects_bad_run_arguments(self):
        fleet = ShardedFleetSim([self._plan()])
        with pytest.raises(ValueError, match="duration"):
            fleet.run(0.0)
        with pytest.raises(ValueError, match="dt"):
            fleet.run(10.0, dt_s=0.0)
        with pytest.raises(ValueError, match="record_period_s"):
            ShardedFleetSim([self._plan()], record_period_s=0.0)

    def test_zero_step_run_is_empty_not_a_crash(self):
        """duration/dt rounding to zero ticks mirrors the cluster driver
        (an empty history), instead of crashing on empty reductions."""
        fleet = ShardedFleetSim([self._plan(leaves=2)])
        result = fleet.run(1.0, dt_s=5.0, processes=1)
        assert len(result.cluster("c").history) == 0
        assert len(result.telemetry) == 0
        summary = result.cluster("c").shard_summaries()[0]
        assert summary["worst_tail_ms"] == 0.0


class TestFleetSpecSchema:
    def _fleet_dict(self, **over):
        data = {
            "name": "spec-fleet",
            "duration_s": 120, "warmup_s": 30,
            "fleet": {
                "shard_leaves": 2,
                "clusters": [
                    {"name": "a", "leaves": 4,
                     "trace": {"kind": "constant", "load": 0.5}},
                    {"name": "b", "leaves": 3, "lc": "memkeyval",
                     "be_mix": ["iperf"], "managed": False,
                     "trace": {"kind": "diurnal", "period_s": 600,
                               "phase_s": 150}},
                ],
            },
        }
        data.update(over)
        return data

    def test_loads_and_compiles(self):
        spec = load_scenario(self._fleet_dict())
        assert spec.fleet.total_leaves() == 7
        assert spec.fleet.clusters[1].trace.phase_s == 150
        assert compile_scenario(spec).kind == "fleet"

    def test_cluster_seed_derivation(self):
        spec = load_scenario(self._fleet_dict(seed=10))
        assert spec.fleet.cluster_seed(0, spec.seed) == 10
        assert spec.fleet.cluster_seed(1, spec.seed) == 11
        explicit = self._fleet_dict(seed=10)
        explicit["fleet"]["clusters"][1]["seed"] = 99
        spec = load_scenario(explicit)
        assert spec.fleet.cluster_seed(1, spec.seed) == 99

    def test_rejects_zero_or_negative_counts(self):
        bad = self._fleet_dict()
        bad["fleet"]["clusters"][0]["leaves"] = 0
        with pytest.raises(ScenarioError, match="zero or negative"):
            load_scenario(bad)
        bad = self._fleet_dict()
        bad["fleet"]["clusters"][0]["leaves"] = -4
        with pytest.raises(ScenarioError, match="zero or negative"):
            load_scenario(bad)
        bad = self._fleet_dict()
        bad["fleet"]["shard_leaves"] = 0
        with pytest.raises(ScenarioError, match="zero or negative"):
            load_scenario(bad)

    def test_fleet_engine_field(self):
        """`fleet.engine` selects the execution engine (default
        sharded); unknown engines fail at load time, and the top-level
        per-cluster `engine` stays rejected for fleet shapes."""
        spec = load_scenario(self._fleet_dict())
        assert spec.fleet.engine == "sharded"
        mega = self._fleet_dict()
        mega["fleet"]["engine"] = "mega"
        spec = load_scenario(mega)
        assert spec.fleet.engine == "mega"
        compiled = compile_scenario(spec)
        assert compiled.kind == "fleet"
        assert compiled._build_fleet(spec.fleet).engine == "mega"
        bad = self._fleet_dict()
        bad["fleet"]["engine"] = "bogus"
        with pytest.raises(ScenarioError, match="unknown fleet engine"):
            load_scenario(bad)

    def test_rejects_unknown_fields_and_names(self):
        bad = self._fleet_dict()
        bad["fleet"]["shards"] = 4
        with pytest.raises(ScenarioError, match="unknown field"):
            load_scenario(bad)
        bad = self._fleet_dict()
        bad["fleet"]["clusters"][0]["lc"] = "nope"
        with pytest.raises(ScenarioError, match="unknown LC workload"):
            load_scenario(bad)
        bad = self._fleet_dict()
        bad["fleet"]["clusters"][1]["name"] = "a"
        with pytest.raises(ScenarioError, match="unique"):
            load_scenario(bad)

    def test_rejects_misplaced_top_level_fields(self):
        with pytest.raises(ScenarioError, match="per\\s+cluster"):
            load_scenario(self._fleet_dict(server={"cores": 8}))
        with pytest.raises(ScenarioError, match="engine"):
            load_scenario(self._fleet_dict(engine="batch"))
        with pytest.raises(ScenarioError, match="controller"):
            load_scenario(self._fleet_dict(controller="none"))
        both = self._fleet_dict()
        both["members"] = [{"lc": "websearch"}]
        with pytest.raises(ScenarioError, match="exactly one"):
            load_scenario(both)

    def test_rejects_seed_collisions_at_load_time(self):
        """Overlapping leaf-seed ranges fail as a load-time ScenarioError
        (never a mid-run ValueError the CLI would not catch)."""
        bad = self._fleet_dict()
        bad["fleet"]["clusters"][0]["leaves"] = 1500
        bad["fleet"]["clusters"][1]["leaves"] = 1500
        with pytest.raises(ScenarioError, match="seed ranges"):
            load_scenario(bad)
        spaced = self._fleet_dict()
        spaced["fleet"]["clusters"][0]["leaves"] = 1500
        spaced["fleet"]["clusters"][1]["leaves"] = 1500
        spaced["fleet"]["clusters"][1]["seed"] = 99
        assert load_scenario(spaced).fleet.total_leaves() == 3000

    def test_shard_records_are_summary_only(self):
        """Results keep shard summaries, not the bulk (T, n) telemetry."""
        result = run_fleet_once(shard_leaves=3)
        for shard in result.cluster("diff").shards:
            assert shard.tails_ms.size == 0 and shard.emus.size == 0
            assert shard.summary["worst_tail_ms"] > 0

    def test_registered_fleet_scenarios_validate(self):
        mixed = registry.get("mixed-fleet-1k")
        assert mixed.fleet.total_leaves() == 1000
        assert len(mixed.fleet.clusters) == 4
        sun = registry.get("follow-the-sun")
        phases = [c.trace.phase_s for c in sun.fleet.clusters]
        assert phases[0] == 0.0 and phases[1] < phases[2]
        chaos = registry.get("chaos-1k")
        assert chaos.fleet.total_leaves() == 1000
        actions = {inj.action for inj in chaos.injections}
        assert {"leaf_crash", "leaf_restart", "straggler", "power_cap",
                "partition"} <= actions
        assert all(inj.at_s < chaos.duration_s for inj in chaos.injections)

    def test_fleet_spec_runs_through_compiler(self):
        spec = load_scenario(self._fleet_dict())
        result = compile_scenario(spec).run(processes=1)
        assert result.kind == "fleet"
        rendered = result.render()
        assert "spec-fleet" in rendered and "a" in rendered
        assert "fleet EMU" in rendered

    def test_build_raises_for_fleet_shape(self):
        spec = load_scenario(self._fleet_dict())
        with pytest.raises(ScenarioError, match="runner grid"):
            compile_scenario(spec).build()


class TestFleetCli:
    def test_fleet_list_shows_only_fleet_scenarios(self, capsys):
        from repro.cli import main
        assert main(["fleet", "--list"]) == 0
        out = capsys.readouterr().out
        assert "mixed-fleet-1k" in out and "follow-the-sun" in out
        assert "chaos-1k" in out
        assert "fig4" not in out

    def test_fleet_runs_spec_file(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main
        monkeypatch.setenv(JOBS_ENV, "1")
        spec = {
            "name": "cli-fleet", "duration_s": 60, "warmup_s": 10,
            "fleet": {"clusters": [
                {"name": "only", "leaves": 2, "managed": False,
                 "trace": {"kind": "constant", "load": 0.4}}]},
        }
        path = tmp_path / "fleet.json"
        path.write_text(json.dumps(spec))
        assert main(["fleet", str(path)]) == 0
        out = capsys.readouterr().out
        assert "cli-fleet" in out and "fleet EMU" in out

    def test_fleet_rejects_non_fleet_scenarios(self):
        from repro.cli import main
        with pytest.raises(SystemExit, match="not fleet-shaped"):
            main(["fleet", "fig4"])

    def test_fleet_rejects_bad_shard_leaves(self):
        from repro.cli import main
        with pytest.raises(SystemExit, match="positive"):
            main(["fleet", "mixed-fleet-1k", "--shard-leaves", "0"])

    def test_fig8_exposes_leaves_and_engine(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(["fig8", "--leaves", "6",
                                          "--engine", "scalar"])
        assert args.leaves == 6 and args.engine == "scalar"

    def test_fig8_rejects_bad_leaves(self):
        from repro.cli import main
        with pytest.raises(SystemExit, match="at least two leaves"):
            main(["fig8", "--leaves", "0"])

    def test_fig8_rejects_unknown_engine(self):
        from repro.cli import build_parser
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig8", "--engine", "warp"])
