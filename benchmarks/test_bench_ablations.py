"""Ablation benches for the design choices DESIGN.md calls out.

1. **Coordinated vs single-mechanism control** — disabling one
   subcontroller either breaks the SLO or wastes EMU, demonstrating the
   paper's claim (a): "coordinated management of multiple isolation
   mechanisms is key to achieving high utilization without SLO
   violations".
2. **Offline DRAM model robustness** — perturbing the model (the
   websearch binary changed between profiling and evaluation, §5.2)
   must not produce violations.
3. **Slack-band sensitivity** — shrinking the guard band trades safety
   for throughput; widening it trades throughput for safety.
"""

import pytest
from conftest import regenerate

import repro
from repro.core import HeraclesConfig, HeraclesController
from repro.core.dram_model import profile_lc_dram_model
from repro.workloads.latency_critical import make_lc_workload


def run_with(disabled=None, lc="websearch", be="streetview", load=0.45,
             duration=700.0, config=None, dram_model=None, seed=3):
    sim = repro.build_colocation(lc, be, load=load, seed=seed)
    controller = HeraclesController.for_sim(sim, config=config,
                                            dram_model=dram_model)
    if disabled:
        setattr(getattr(controller, disabled), "step", lambda now_s: None)
    history = sim.run(duration)
    return (history.worst_window_slo(skip_s=240),
            history.mean_emu(skip_s=240),
            history.max_slo_fraction(skip_s=60))


def test_bench_ablation_subcontrollers(benchmark):
    def sweep():
        results = {"full": run_with(None)}
        # Disabling the network loop against a network-hungry BE task.
        results["no network ctrl"] = run_with(
            "network", lc="memkeyval", be="iperf", load=0.45)
        results["full (memkeyval+iperf)"] = run_with(
            None, lc="memkeyval", be="iperf", load=0.45)
        # Disabling the core&memory loop: BE stays at its initial grant.
        results["no core/mem ctrl"] = run_with("core_memory")
        # Disabling the power loop against a power virus.
        results["no power ctrl"] = run_with(
            "power", lc="websearch", be="cpu_pwr", load=0.45)
        return results

    results = regenerate(benchmark, sweep)
    print()
    for name, (slo, emu, peak) in results.items():
        print(f"{name:<28} worst tail {slo * 100:>5.0f}% of SLO "
              f"(peak {peak * 100:>5.0f}%), EMU {emu * 100:>4.0f}%")
    # Full controller: safe (no violation even instantaneously).
    assert results["full"][2] <= 1.0
    assert results["full (memkeyval+iperf)"][2] <= 1.0
    # Without the network loop, iperf's mice flows break memkeyval:
    # the top-level safety net contains each breach with a disable +
    # cooldown cycle, so the symptom is recurring instantaneous
    # violations plus collapsed colocation throughput.
    assert results["no network ctrl"][2] > 1.3
    assert (results["no network ctrl"][1]
            < results["full (memkeyval+iperf)"][1] - 0.10)
    # Without the core/memory loop there is no growth: EMU collapses.
    assert results["no core/mem ctrl"][1] < results["full"][1] - 0.10


def test_bench_ablation_stale_dram_model(benchmark):
    def sweep():
        lc = make_lc_workload("websearch")
        fresh = profile_lc_dram_model(lc)
        out = {}
        for scale in (0.8, 1.0, 1.3, 1.6):
            out[scale] = run_with(None, dram_model=fresh.perturbed(scale))
        return out

    results = regenerate(benchmark, sweep)
    print()
    for scale, (slo, emu, _) in results.items():
        print(f"model x{scale:<4} worst tail {slo * 100:>5.0f}% of SLO, "
              f"EMU {emu * 100:>4.0f}%")
    # Heracles is resilient to a stale model (§5.2): no violations even
    # at +/-60% model error.
    assert all(slo <= 1.0 for slo, _, _ in results.values())


def test_bench_ablation_slack_bands(benchmark):
    def sweep():
        out = {}
        for guard in (0.05, 0.15, 0.30):
            config = HeraclesConfig(growth_guard=guard)
            out[guard] = run_with(None, config=config)
        return out

    results = regenerate(benchmark, sweep)
    print()
    for guard, (slo, emu, _) in results.items():
        print(f"growth guard {guard:.2f}: worst tail {slo * 100:>5.0f}% "
              f"of SLO, EMU {emu * 100:>4.0f}%")
    guards = sorted(results)
    # Wider guard -> lower worst-case latency (more safety margin).
    assert results[guards[-1]][0] <= results[guards[0]][0] + 0.05
