"""Windowed telemetry metrics over explicit per-sample timestamps.

This module is the *single* implementation of the paper's reporting
aggregates — the 60-second worst-case SLO window of §5.1, mean EMU of
§5.3, and per-field steady-state means — shared by the scalar, batched,
and cluster histories plus the analysis layer.  Before it existed the
repo carried three divergent copies, two of which silently assumed a
1-second tick; every helper here takes the sample timestamps
explicitly and derives the tick size from them, so the metrics stay
correct for any ``dt_s``.

Semantics are pinned by the golden regression tests: each function
evaluates the exact NumPy expression the original per-history code
used (same filtering, same cumulative-sum windowing, same reduction
order), so refactoring a history onto this module is bit-identical.

The :class:`WindowedMetrics` helper binds the functions to one
column-oriented history and memoizes each summary result against the
history length and last timestamp at computation time: repeated
queries over a finished
(no longer growing) run are answered from the cache, while any append
invalidates and the next query recomputes from the columns.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Sequence, Tuple

import numpy as np


def sample_mean(values: Sequence[float]) -> float:
    """Plain sequential mean of already-materialized samples.

    The monitor layer's window estimates (15-second latency poll,
    2-second subcontroller view) are tiny suffixes of a deque; they use
    this one helper so the estimate's float semantics (left-to-right
    Python summation) are defined in exactly one place.

    An empty sequence reports the metric layer's nothing-recorded value
    (0.0, like :func:`mean_after` and friends) instead of raising a
    bare ``ZeroDivisionError`` at the call site.
    """
    if not len(values):
        return 0.0
    return sum(values) / len(values)


def derive_dt_s(t: np.ndarray, default: float = 1.0) -> float:
    """Tick interval of a recorded run, derived from its timestamps.

    Records are appended once per engine tick, so the mean spacing of
    consecutive timestamps *is* the tick size; falls back to
    ``default`` when the series is too short to tell.
    """
    t = np.asarray(t, dtype=float)
    if len(t) >= 2:
        span = float(t[-1] - t[0])
        if span > 0:
            return span / (len(t) - 1)
    return default


def mean_after(values: np.ndarray, t: np.ndarray,
               skip_s: float = 0.0) -> float:
    """Mean of ``values`` at timestamps ``>= skip_s``; 0.0 when empty."""
    vals = np.asarray(values, dtype=float)[np.asarray(t) >= skip_s]
    return float(np.mean(vals)) if vals.size else 0.0


def max_after(values: np.ndarray, t: np.ndarray,
              skip_s: float = 0.0) -> float:
    """Max of ``values`` at timestamps ``>= skip_s``; 0.0 when empty."""
    vals = np.asarray(values, dtype=float)[np.asarray(t) >= skip_s]
    return float(vals.max()) if vals.size else 0.0


def min_after(values: np.ndarray, t: np.ndarray,
              skip_s: float = 0.0) -> float:
    """Min of ``values`` at timestamps ``>= skip_s``; 0.0 when empty."""
    vals = np.asarray(values, dtype=float)[np.asarray(t) >= skip_s]
    return float(vals.min()) if vals.size else 0.0


def window_width(window_s: float, dt_s: float) -> int:
    """Window width in samples for a ``window_s``-second window."""
    if dt_s <= 0:
        raise ValueError("dt must be positive")
    return max(1, int(round(window_s / dt_s)))


def worst_window_mean(values: np.ndarray, t: np.ndarray,
                      window_s: float = 60.0,
                      skip_s: float = 0.0,
                      dt_s: Optional[float] = None) -> float:
    """Worst mean over any ``window_s``-second window — §5.1's metric.

    "Since the SLO is defined over 60-second windows, we report the
    worst-case latency that was seen during experiments": the tail over
    a window is estimated from all of that window's samples, so the
    per-window value is the mean of the per-tick tail estimates, and
    the reported figure is the max across windows.

    The window width in samples is derived from the actual tick size
    (``window_s / dt_s``) so the metric stays a true ``window_s``-second
    window for any tick size; pass ``dt_s`` to override the spacing
    derived from ``t``.  Runs shorter than one window report the mean
    of what they have.
    """
    t = np.asarray(t, dtype=float)
    vals = np.asarray(values, dtype=float)[t >= skip_s]
    if not vals.size:
        return 0.0
    if dt_s is None:
        dt_s = derive_dt_s(t)
    width = window_width(window_s, dt_s)
    if len(vals) < width:
        return float(np.mean(vals))
    csum = np.cumsum(np.insert(vals, 0, 0.0))
    windows = (csum[width:] - csum[:-width]) / width
    return float(windows.max())


def streaming_mean(pairs: Iterable[Tuple[np.ndarray, np.ndarray]],
                   skip_s: float = 0.0) -> float:
    """:func:`mean_after` over (values, times) chunk pairs, one pass.

    Built for spilled histories (:meth:`~repro.metrics.columns.
    ColumnStore.column_chunks`): each chunk is reduced while memory-
    mapped, so peak RSS stays bounded by the chunk size.  The running
    sum accumulates chunk subtotals left to right, which can differ
    from NumPy's pairwise whole-array summation in the last ulps —
    callers needing bit-exact parity with :func:`mean_after` must
    materialize instead.
    """
    total = 0.0
    count = 0
    for values, t in pairs:
        vals = np.asarray(values, dtype=float)[np.asarray(t) >= skip_s]
        if vals.size:
            total += float(vals.sum())
            count += vals.size
    return total / count if count else 0.0


def streaming_max(pairs: Iterable[Tuple[np.ndarray, np.ndarray]],
                  skip_s: float = 0.0) -> float:
    """:func:`max_after` over (values, times) chunk pairs, one pass.

    Max is order-insensitive, so the result is bit-exact with the
    materialized reduction.
    """
    best = None
    for values, t in pairs:
        vals = np.asarray(values, dtype=float)[np.asarray(t) >= skip_s]
        if vals.size:
            chunk_max = float(vals.max())
            best = chunk_max if best is None else max(best, chunk_max)
    return best if best is not None else 0.0


def streaming_min(pairs: Iterable[Tuple[np.ndarray, np.ndarray]],
                  skip_s: float = 0.0) -> float:
    """:func:`min_after` over (values, times) chunk pairs, one pass.

    Min is order-insensitive, so the result is bit-exact with the
    materialized reduction.
    """
    best = None
    for values, t in pairs:
        vals = np.asarray(values, dtype=float)[np.asarray(t) >= skip_s]
        if vals.size:
            chunk_min = float(vals.min())
            best = chunk_min if best is None else min(best, chunk_min)
    return best if best is not None else 0.0


def streaming_worst_window(pairs_fn: Callable[
                               [], Iterable[Tuple[np.ndarray, np.ndarray]]],
                           window_s: float = 60.0,
                           skip_s: float = 0.0,
                           dt_s: Optional[float] = None) -> float:
    """:func:`worst_window_mean` over chunked history, two passes.

    Args:
        pairs_fn: zero-argument callable producing a *fresh* iterator
            of (values, times) chunk pairs each call — the first pass
            derives the tick size and sample counts, the second slides
            the window.

    Peak memory is one chunk plus a ``width - 1`` carry buffer: window
    sums that straddle a chunk boundary are computed by prepending the
    previous chunk's last ``width - 1`` filtered samples.  Per-window
    means come from chunk-local cumulative sums, so the result can
    differ from the materialized implementation in the last ulps.
    """
    first_t = last_t = None
    total_times = 0
    kept = 0
    for values, t in pairs_fn():
        t = np.asarray(t, dtype=float)
        if t.size:
            if first_t is None:
                first_t = float(t[0])
            last_t = float(t[-1])
            total_times += t.size
        kept += int(np.count_nonzero(t >= skip_s))
    if not kept:
        return 0.0
    if dt_s is None:
        dt_s = 1.0
        if total_times >= 2 and last_t - first_t > 0:
            dt_s = (last_t - first_t) / (total_times - 1)
    width = window_width(window_s, dt_s)
    if kept < width:
        return streaming_mean(pairs_fn(), skip_s=skip_s)
    carry = np.empty(0, dtype=float)
    best = None
    for values, t in pairs_fn():
        vals = np.asarray(values, dtype=float)[np.asarray(t) >= skip_s]
        if not vals.size:
            continue
        buf = np.concatenate([carry, vals])
        if len(buf) >= width:
            csum = np.cumsum(np.insert(buf, 0, 0.0))
            windows = (csum[width:] - csum[:-width]) / width
            chunk_best = float(windows.max())
            best = chunk_best if best is None else max(best, chunk_best)
            carry = buf[len(buf) - (width - 1):] if width > 1 \
                else buf[:0]
        else:
            carry = buf
    return best if best is not None else 0.0


class WindowedMetrics:
    """Windowed summaries bound to one columnar history.

    Args:
        column: callable returning a field's (T,) float column.
        times: callable returning the (T,) timestamp column.

    Every method filters by explicit timestamps (never an assumed
    uniform tick) and delegates to the module-level functions, so all
    histories report through one implementation.  Summary results are
    memoized against the history length and last timestamp: after a
    run finishes, each (metric, column, skip) query is computed once
    and served from the cache thereafter; an append (or a same-length
    history with a different clock) invalidates, and the next query
    recomputes from the columns (one O(T) vectorized pass).
    """

    def __init__(self, column: Callable[[str], np.ndarray],
                 times: Callable[[], np.ndarray]):
        self._column = column
        self._times = times
        self._cache: Dict[Tuple, Tuple[int, object]] = {}

    def _memo(self, key: Tuple, build: Callable[[], object]):
        """Value of ``build()`` memoized until the history changes.

        The staleness check covers both the history *length* and its
        last timestamp: a same-length history with different contents
        (a reset-and-refilled store, a restored snapshot) restarts its
        clock, so keying on length alone would serve stale aggregates.
        """
        times = self._times()
        length = len(times)
        last_t = float(times[-1]) if length else None
        stamp = (length, last_t)
        hit = self._cache.get(key)
        if hit is not None and hit[0] == stamp:
            return hit[1]
        value = build()
        self._cache[key] = (stamp, value)
        return value

    def dt_s(self, default: float = 1.0) -> float:
        """Tick interval derived from the recorded timestamps."""
        return derive_dt_s(self._times(), default=default)

    def mean(self, name: str, skip_s: float = 0.0) -> float:
        """Mean of one column after ``skip_s`` seconds."""
        return self._memo(
            ("mean", name, skip_s),
            lambda: mean_after(self._column(name), self._times(), skip_s))

    def maximum(self, name: str, skip_s: float = 0.0) -> float:
        """Max of one column after ``skip_s`` seconds."""
        return self._memo(
            ("max", name, skip_s),
            lambda: max_after(self._column(name), self._times(), skip_s))

    def minimum(self, name: str, skip_s: float = 0.0) -> float:
        """Min of one column after ``skip_s`` seconds."""
        return self._memo(
            ("min", name, skip_s),
            lambda: min_after(self._column(name), self._times(), skip_s))

    def means(self, names: Iterable[str],
              skip_s: float = 0.0) -> Dict[str, float]:
        """Means of several columns sharing one timestamp filter pass."""
        t = self._times()
        mask = np.asarray(t) >= skip_s
        out = {}
        for name in names:
            vals = np.asarray(self._column(name), dtype=float)[mask]
            out[name] = float(np.mean(vals)) if vals.size else 0.0
        return out

    def worst_window(self, name: str, window_s: float = 60.0,
                     skip_s: float = 0.0,
                     dt_s: Optional[float] = None) -> float:
        """Worst ``window_s``-second windowed mean of one column."""
        return self._memo(
            ("worst", name, window_s, skip_s, dt_s),
            lambda: worst_window_mean(self._column(name), self._times(),
                                      window_s=window_s, skip_s=skip_s,
                                      dt_s=dt_s))
