"""Simulation engine: monitors, actuators, and the colocation loop."""

from .actuators import Actuators, BE_COS, LC_COS
from .engine import ColocationSim, Controller, SimHistory, TickRecord
from .monitors import LatencyMonitor, ThroughputMonitor

__all__ = [
    "Actuators", "BE_COS", "LC_COS",
    "ColocationSim", "Controller", "SimHistory", "TickRecord",
    "LatencyMonitor", "ThroughputMonitor",
]
