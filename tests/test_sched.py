"""Scheduler layer: job model, policies, the decision-epoch engine,
the ``schedule:`` scenario shape, and the sched CLI.

The differential class at the heart of this module mirrors PR-4's
harness one layer up: a ``schedule:`` scenario with an *empty* job
queue must produce bit-identical cluster histories to the plain
``fleet:`` run of the same fleet, for any shard count and worker-pool
size — the scheduler meters jobs over Heracles' slack and never
touches leaf physics.
"""

import json

import numpy as np
import pytest

from repro.fleet.aggregate import FleetSlackView, LeafSlackView
from repro.scenarios import (ScenarioError, compile_scenario, load_scenario,
                             registry)
from repro.sched import (BeJob, JobState, PlacementContext,
                         RoundRobinPolicy, SlackGreedyPolicy, StaticPolicy,
                         compare_policies, expand_jobs, make_policy,
                         render_comparison, run_schedule, tco_summary)
from repro.sched.jobs import JobRecord
from repro.sim.runner import JOBS_ENV

CLUSTER_FIELDS = ("t_s", "load", "root_latency_ms", "root_slo_fraction",
                  "emu")


def make_slack(harvest, grant, latched=None, epoch_s=60.0,
               cluster="c", total_cores=36):
    """Build a synthetic single-cluster fleet slack view from arrays."""
    harvest = np.asarray(harvest, dtype=float)
    grant = np.asarray(grant, dtype=float)
    epochs, leaves = harvest.shape
    if latched is None:
        latched = np.zeros((epochs, leaves), dtype=bool)
    view = LeafSlackView(
        cluster=cluster, total_cores=total_cores,
        epoch_t_s=np.arange(epochs) * epoch_s,
        epoch_len_s=np.full(epochs, epoch_s),
        harvest_core_s=harvest, grant_cores=grant,
        latched=np.asarray(latched, dtype=bool))
    return FleetSlackView([view])


class TestBeJob:
    def test_validation(self):
        BeJob("ok", demand_core_s=1.0).validate()
        with pytest.raises(ValueError, match="demand"):
            BeJob("j", demand_core_s=0.0).validate()
        with pytest.raises(ValueError, match="max_cores"):
            BeJob("j", demand_core_s=1.0, max_cores=0).validate()
        with pytest.raises(ValueError, match="arrival"):
            BeJob("j", demand_core_s=1.0, arrival_s=-1.0).validate()
        with pytest.raises(ValueError, match="non-empty name"):
            BeJob("", demand_core_s=1.0).validate()

    def test_order_key_priority_then_arrival_then_name(self):
        jobs = [BeJob("b", 1.0, priority=0, arrival_s=5.0),
                BeJob("a", 1.0, priority=0, arrival_s=5.0),
                BeJob("z", 1.0, priority=3),
                BeJob("c", 1.0, priority=0, arrival_s=1.0)]
        ordered = [r.job.name for r in expand_jobs(jobs)]
        assert ordered == ["z", "c", "a", "b"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate job name"):
            expand_jobs([BeJob("j", 1.0), BeJob("j", 2.0)])


def ctx_for(jobs, rate, cap, latched=None, epoch=1):
    """A one-epoch placement context over synthetic signals."""
    rate = np.asarray(rate, dtype=float)
    if latched is None:
        latched = np.zeros(len(rate), dtype=bool)
    records = [JobRecord(job=j, state=JobState.QUEUED) for j in jobs]
    for i, record in enumerate(records):
        record.pinned_leaf = i % len(rate)
    return PlacementContext(
        epoch=epoch, epoch_len_s=60.0, rate_per_core=rate,
        cap=np.asarray(cap, dtype=float),
        latched=np.asarray(latched, dtype=bool), jobs=records)


class TestPolicies:
    def test_greedy_packs_best_leaves_first(self):
        ctx = ctx_for([BeJob("j", 1e6, max_cores=6)],
                      rate=[0.2, 0.9, 0.5], cap=[4, 4, 4])
        placement = SlackGreedyPolicy().place(ctx)
        assert placement == [{1: 4, 2: 2}]

    def test_greedy_skips_latched_and_zero_rate_leaves(self):
        ctx = ctx_for([BeJob("j", 1e6, max_cores=8)],
                      rate=[0.2, 0.9, 0.0], cap=[4, 4, 4],
                      latched=[False, True, False])
        placement = SlackGreedyPolicy().place(ctx)
        assert placement == [{0: 4}]

    def test_greedy_is_work_conserving(self):
        jobs = [BeJob(f"j{i}", 1e6, max_cores=3) for i in range(4)]
        ctx = ctx_for(jobs, rate=[0.5, 0.4], cap=[5, 5])
        placement = SlackGreedyPolicy().place(ctx)
        placed = sum(sum(p.values()) for p in placement)
        # 12 wanted cores against 10 slots: every slot is filled.
        assert placed == 10

    def test_round_robin_spreads_and_rotates(self):
        jobs = [BeJob("j", 1e6, max_cores=2)]
        p0 = RoundRobinPolicy().place(
            ctx_for(jobs, rate=[0, 0, 0], cap=[2, 2, 2], epoch=0))
        p1 = RoundRobinPolicy().place(
            ctx_for(jobs, rate=[0, 0, 0], cap=[2, 2, 2], epoch=1))
        assert p0 == [{0: 1, 1: 1}]
        assert p1 == [{1: 1, 2: 1}]

    def test_round_robin_wraps_jobs_wider_than_the_ring(self):
        # A job wider than the granted-leaf count keeps cycling until
        # its parallelism limit or the grant runs out.
        jobs = [BeJob("wide", 1e6, max_cores=8)]
        placement = RoundRobinPolicy().place(
            ctx_for(jobs, rate=[0, 0], cap=[8, 8], epoch=0))
        assert placement == [{0: 4, 1: 4}]
        placement = RoundRobinPolicy().place(
            ctx_for(jobs, rate=[0, 0], cap=[3, 2], epoch=0))
        assert placement == [{0: 3, 1: 2}]

    def test_static_stays_on_pinned_leaf(self):
        jobs = [BeJob("a", 1e6, max_cores=8), BeJob("b", 1e6, max_cores=8)]
        ctx = ctx_for(jobs, rate=[0.1, 0.9, 0.9], cap=[4, 4, 4])
        placement = StaticPolicy().place(ctx)
        assert placement == [{0: 4}, {1: 4}]

    def test_all_policies_respect_caps(self):
        jobs = [BeJob(f"j{i}", 1e6, max_cores=50) for i in range(3)]
        for policy in ("slack-greedy", "round-robin", "static"):
            ctx = ctx_for(jobs, rate=[0.5, 0.5], cap=[3, 2])
            placement = make_policy(policy).place(ctx)
            per_leaf = {}
            for slots in placement:
                for leaf, cores in slots.items():
                    per_leaf[leaf] = per_leaf.get(leaf, 0) + cores
            for leaf, used in per_leaf.items():
                assert used <= ctx.cap[leaf], policy

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            make_policy("fifo")


class TestScheduler:
    def test_first_epoch_places_nothing(self):
        slack = make_slack([[100.0], [100.0]], [[4], [4]])
        outcome = run_schedule(slack, [BeJob("j", 1e6)], "slack-greedy")
        assigned = outcome.store.column("assigned_cores")
        assert assigned[0].sum() == 0
        assert assigned[1].sum() > 0

    def test_crediting_full_leaf(self):
        # One job holding the whole grant earns the leaf's whole
        # harvest; demand sized to exactly one epoch's credit.
        slack = make_slack([[120.0], [120.0]], [[4], [4]])
        outcome = run_schedule(slack, [BeJob("j", 120.0, max_cores=4)])
        record = outcome.job("j")
        assert record.state == JobState.COMPLETED
        assert record.completed_at_s == 120.0
        assert outcome.goodput_core_s == pytest.approx(120.0)
        assert outcome.credited_core_s == pytest.approx(120.0)

    def test_partial_occupancy_credits_proportionally(self):
        # max_cores=1 against a grant of 4: the job can absorb only a
        # quarter of the leaf's harvest; the rest is wasted.
        slack = make_slack([[120.0], [120.0]], [[4], [4]])
        outcome = run_schedule(slack, [BeJob("j", 1e6, max_cores=1)])
        assert outcome.credited_core_s == pytest.approx(30.0)
        assert outcome.wasted_core_s == pytest.approx(120.0 + 90.0)

    def test_latched_epoch_forfeits_credit_and_counts_eviction(self):
        slack = make_slack([[120.0], [120.0]], [[4], [4]],
                           latched=[[False], [True]])
        outcome = run_schedule(slack, [BeJob("j", 1e6, max_cores=4)])
        assert outcome.credited_core_s == 0.0
        assert outcome.evictions == 1
        assert outcome.job("j").evictions == 1
        assert outcome.wasted_core_s == pytest.approx(240.0)

    def test_queue_limit_rejects_overflow_in_priority_order(self):
        slack = make_slack([[10.0, 10.0]], [[2, 2]])
        jobs = [BeJob("low", 100.0, priority=0),
                BeJob("high", 100.0, priority=1),
                BeJob("mid", 100.0, priority=0, arrival_s=0.0)]
        outcome = run_schedule(slack, jobs, queue_limit=2)
        assert outcome.rejected == 1
        assert outcome.job("high").state == JobState.QUEUED
        # 'low' and 'mid' tie on priority and arrival; the name
        # tiebreak admits 'low' and bounces 'mid'.
        assert outcome.job("low").state == JobState.QUEUED
        assert outcome.job("mid").state == JobState.REJECTED

    def test_empty_queue_wastes_all_harvest(self):
        slack = make_slack([[50.0, 20.0]], [[2, 2]])
        outcome = run_schedule(slack, [])
        assert outcome.store is None
        assert outcome.harvested_core_s == pytest.approx(70.0)
        assert outcome.wasted_core_s == pytest.approx(70.0)
        assert outcome.goodput_core_s == 0.0

    def test_arrivals_wait_for_their_epoch(self):
        slack = make_slack([[60.0]] * 4, [[4]] * 4)
        outcome = run_schedule(slack, [BeJob("late", 1e6, arrival_s=130.0)])
        assigned = outcome.store.column("assigned_cores")
        assert assigned[:3].sum() == 0  # epochs start at 0/60/120/180
        assert assigned[3].sum() > 0

    def test_accounting_columns_reconcile(self):
        slack = make_slack([[100.0, 40.0]] * 3, [[4, 4]] * 3)
        jobs = [BeJob(f"j{i}", 150.0, max_cores=4) for i in range(3)]
        outcome = run_schedule(slack, jobs)
        store = outcome.store
        assert store.column("credit_core_s").sum() == pytest.approx(
            outcome.credited_core_s)
        shared = store.column("credited_core_s")
        assert shared.sum() == pytest.approx(outcome.credited_core_s)
        assert store.column("harvest_core_s").sum() == pytest.approx(
            outcome.harvested_core_s)
        assert (store.column("wasted_core_s") >= -1e-9).all()

    def test_goodput_never_exceeds_credit(self):
        slack = make_slack([[90.0, 10.0]] * 4, [[3, 3]] * 4)
        jobs = [BeJob(f"j{i}", 80.0, max_cores=2) for i in range(5)]
        for policy in ("slack-greedy", "round-robin", "static"):
            outcome = run_schedule(slack, jobs, policy)
            assert outcome.goodput_core_s <= outcome.credited_core_s + 1e-9
            assert outcome.credited_core_s <= outcome.harvested_core_s + 1e-9

    def test_policy_comparison_on_skewed_fleet(self):
        # Four leaves, one of which harvests nothing (an unmanaged
        # machine): greedy avoids it, static pins a job onto it.
        rng = np.random.default_rng(0)
        harvest = rng.uniform(20.0, 80.0, size=(8, 4))
        harvest[:, 3] = 0.0
        grant = np.full((8, 4), 4.0)
        grant[:, 3] = 0.0
        slack = make_slack(harvest, grant)
        jobs = [BeJob(f"j{i}", 120.0, max_cores=4) for i in range(4)]
        outcomes = compare_policies(slack, jobs,
                                    policies=("slack-greedy", "static"))
        greedy, static = outcomes["slack-greedy"], outcomes["static"]
        assert greedy.credited_core_s > static.credited_core_s
        assert greedy.goodput_core_s >= static.goodput_core_s
        text = render_comparison(outcomes)
        assert "slack-greedy" in text and "static" in text


def schedule_dict(jobs=(), shard_leaves=3, epoch_s=60, **over):
    """A small loadable schedule-scenario dict."""
    data = {
        "name": "sched-spec",
        "duration_s": 240, "warmup_s": 60, "seed": 3,
        "schedule": {
            "epoch_s": epoch_s,
            "fleet": {
                "shard_leaves": shard_leaves,
                "clusters": [
                    {"name": "a", "leaves": 5,
                     "trace": {"kind": "diurnal", "period_s": 600,
                               "noise_sigma": 0.02}},
                    {"name": "b", "leaves": 4, "managed": False,
                     "trace": {"kind": "constant", "load": 0.5}},
                ],
            },
            "jobs": list(jobs),
        },
    }
    data.update(over)
    return data


class TestScheduleDifferential:
    """Empty queue => bit-identical to the plain fleet run."""

    @pytest.fixture(scope="class")
    def plain_fleet(self):
        data = schedule_dict()
        data["fleet"] = data.pop("schedule")["fleet"]
        spec = load_scenario(data)
        return compile_scenario(spec).run(processes=1)

    @pytest.mark.parametrize("jobs", ["1", "4"])
    @pytest.mark.parametrize("shard_leaves", [1, 3, 9])
    def test_empty_queue_matches_plain_fleet(self, plain_fleet, monkeypatch,
                                             shard_leaves, jobs):
        monkeypatch.setenv(JOBS_ENV, jobs)
        spec = load_scenario(schedule_dict(shard_leaves=shard_leaves))
        result = compile_scenario(spec).run()
        assert result.kind == "schedule"
        for name in ("a", "b"):
            want = plain_fleet.fleet.cluster(name).history
            got = result.fleet.cluster(name).history
            for column in CLUSTER_FIELDS:
                assert np.array_equal(got.column(column),
                                      want.column(column)), (
                    f"cluster {name!r} column {column!r} diverged from "
                    f"the plain fleet run (shards={shard_leaves}, "
                    f"jobs={jobs})")
        assert result.fleet.summary(skip_s=60.0) == \
            plain_fleet.fleet.summary(skip_s=60.0)

    @pytest.mark.parametrize("jobs", ["1", "4"])
    @pytest.mark.parametrize("shard_leaves", [3, 9])
    def test_schedule_outcome_is_plan_invariant(self, monkeypatch,
                                                shard_leaves, jobs):
        """Non-empty queues: goodput accounting is bit-identical too."""
        monkeypatch.setenv(JOBS_ENV, jobs)
        spec = load_scenario(schedule_dict(
            jobs=[{"name": "j", "demand_core_s": 2000, "max_cores": 6,
                   "count": 4}],
            shard_leaves=shard_leaves))
        summary = compile_scenario(spec).run().schedule.summary()
        reference = getattr(self, "_summary", None)
        if reference is None:
            type(self)._summary = summary
        else:
            assert summary == reference


class TestScheduleSpecSchema:
    def test_loads_and_compiles(self):
        spec = load_scenario(schedule_dict(
            jobs=[{"name": "j", "demand_core_s": 100, "count": 3}]))
        assert spec.schedule.fleet.total_leaves() == 9
        assert [j.name for j in spec.schedule.expand_jobs()] == \
            ["j-000", "j-001", "j-002"]
        assert compile_scenario(spec).kind == "schedule"

    def test_single_jobs_keep_their_bare_name(self):
        spec = load_scenario(schedule_dict(
            jobs=[{"name": "solo", "demand_core_s": 10}]))
        assert [j.name for j in spec.schedule.expand_jobs()] == ["solo"]

    def test_rejects_unknown_fields_and_bad_values(self):
        bad = schedule_dict()
        bad["schedule"]["preemption"] = True
        with pytest.raises(ScenarioError, match="unknown field"):
            load_scenario(bad)
        bad = schedule_dict(jobs=[{"name": "j", "demand_core_s": -5}])
        with pytest.raises(ScenarioError, match="demand_core_s"):
            load_scenario(bad)
        bad = schedule_dict(jobs=[{"name": "j", "demand_core_s": 5,
                                   "max_cores": 0}])
        with pytest.raises(ScenarioError, match="max_cores"):
            load_scenario(bad)
        bad = schedule_dict(jobs=[{"name": "j", "demand_core_s": 5,
                                   "count": 0}])
        with pytest.raises(ScenarioError, match="count"):
            load_scenario(bad)
        bad = schedule_dict(epoch_s=0)
        with pytest.raises(ScenarioError, match="epoch_s"):
            load_scenario(bad)
        bad = schedule_dict()
        bad["schedule"]["policy"] = "fifo"
        with pytest.raises(ScenarioError, match="unknown scheduling"):
            load_scenario(bad)
        bad = schedule_dict()
        bad["schedule"]["queue_limit"] = -1
        with pytest.raises(ScenarioError, match="queue_limit"):
            load_scenario(bad)

    def test_rejects_name_collisions_after_expansion(self):
        bad = schedule_dict(jobs=[
            {"name": "j-000", "demand_core_s": 5},
            {"name": "j", "demand_core_s": 5, "count": 2}])
        with pytest.raises(ScenarioError, match="collides after expansion"):
            load_scenario(bad)

    def test_rejects_misplaced_top_level_fields(self):
        with pytest.raises(ScenarioError, match="per\\s+cluster"):
            load_scenario(schedule_dict(server={"cores": 8}))
        with pytest.raises(ScenarioError, match="controller"):
            load_scenario(schedule_dict(controller="none"))
        with pytest.raises(ScenarioError, match="engine"):
            load_scenario(schedule_dict(engine="batch"))
        both = schedule_dict()
        both["members"] = [{"lc": "websearch"}]
        with pytest.raises(ScenarioError, match="exactly one"):
            load_scenario(both)

    def test_rejects_seed_collisions_in_nested_fleet(self):
        bad = schedule_dict()
        bad["schedule"]["fleet"]["clusters"][0]["leaves"] = 1500
        bad["schedule"]["fleet"]["clusters"][1]["leaves"] = 1500
        with pytest.raises(ScenarioError, match="seed ranges"):
            load_scenario(bad)

    def test_registered_schedule_scenarios_validate(self):
        backlog = registry.get("batch-backlog-1k")
        assert backlog.schedule.fleet.total_leaves() == 1000
        assert sum(j.count for j in backlog.schedule.jobs) == 1000
        assert any(not c.managed
                   for c in backlog.schedule.fleet.clusters)
        scavenger = registry.get("diurnal-scavenger")
        assert scavenger.schedule.queue_limit > 0
        arrivals = {j.arrival_s for j in scavenger.schedule.jobs}
        assert len(arrivals) > 1

    def test_build_raises_for_schedule_shape(self):
        spec = load_scenario(schedule_dict())
        with pytest.raises(ScenarioError, match="runner grid"):
            compile_scenario(spec).build()

    def test_tco_summary_requires_slack_view(self):
        data = schedule_dict()
        data["fleet"] = data.pop("schedule")["fleet"]
        plain = compile_scenario(load_scenario(data)).run(processes=1)
        spec = load_scenario(schedule_dict(
            jobs=[{"name": "j", "demand_core_s": 100}]))
        scheduled = compile_scenario(spec).run(processes=1)
        with pytest.raises(ValueError, match="no slack view"):
            tco_summary(scheduled.schedule, plain.fleet)
        summary = tco_summary(scheduled.schedule, scheduled.fleet,
                              skip_s=60.0)
        assert 0.0 <= summary["harvested_utilization"] <= 1.0
        assert summary["lc_utilization"] > 0


class TestSchedCli:
    def test_sched_list_shows_only_schedule_scenarios(self, capsys):
        from repro.cli import main
        assert main(["sched", "--list"]) == 0
        out = capsys.readouterr().out
        assert "batch-backlog-1k" in out and "diurnal-scavenger" in out
        assert "mixed-fleet-1k" not in out and "fig4" not in out

    def test_sched_runs_spec_file_with_comparison(self, tmp_path, capsys,
                                                  monkeypatch):
        from repro.cli import main
        monkeypatch.setenv(JOBS_ENV, "1")
        path = tmp_path / "sched.json"
        path.write_text(json.dumps(schedule_dict(
            jobs=[{"name": "j", "demand_core_s": 1000, "count": 3}])))
        assert main(["sched", str(path)]) == 0
        out = capsys.readouterr().out
        assert "scheduler [slack-greedy]" in out
        assert "throughput/TCO" in out
        assert "static" in out  # the comparison table

    def test_sched_policy_override_and_no_compare(self, tmp_path, capsys,
                                                  monkeypatch):
        from repro.cli import main
        monkeypatch.setenv(JOBS_ENV, "1")
        path = tmp_path / "sched.json"
        path.write_text(json.dumps(schedule_dict(
            jobs=[{"name": "j", "demand_core_s": 1000}])))
        assert main(["sched", str(path), "--policy", "static",
                     "--no-compare"]) == 0
        out = capsys.readouterr().out
        assert "scheduler [static]" in out
        assert "vs-static" not in out

    def test_sched_rejects_non_schedule_scenarios(self):
        from repro.cli import main
        with pytest.raises(SystemExit, match="not schedule-shaped"):
            main(["sched", "mixed-fleet-1k"])

    def test_fleet_points_schedule_scenarios_at_sched(self):
        from repro.cli import main
        with pytest.raises(SystemExit, match="'sched' command"):
            main(["fleet", "batch-backlog-1k"])
