"""Figure 8: the 12-hour websearch cluster under Heracles.

Tens of leaves behind a fan-out root, a diurnal 20%-90% load trace,
brain on half the leaves and streetview on the other half.  Reported:

* root latency (µ/30s) vs the cluster SLO, baseline and Heracles — the
  paper shows no violations and slack reduced by 20-30%;
* cluster EMU over the trace — "an average EMU of 90% and a minimum of
  80%" for the paper's hardware; our simulated substrate lands close
  (~0.8 average) with the same no-violation property.

The cluster runs on the batched backend by default (all leaves advance
per tick as one vectorized step — see :mod:`repro.sim.batch`), and the
managed and baseline arms are independent simulations fanned across the
sweep runner.  ``engine="scalar"`` reruns the reference per-leaf loop.

The full-fidelity run is 12 simulated hours; ``time_compression``
shrinks the trace period for quick looks (controller dynamics stay at
real speed, so heavy compression makes the controller look artificially
sluggish — use 1 for the faithful experiment).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cluster.cluster import ClusterHistory, WebsearchCluster
from ..hardware.spec import MachineSpec
from ..sim.runner import run_sweep
from ..workloads.traces import DiurnalTrace


@dataclass
class Fig8Result:
    managed: ClusterHistory
    baseline: ClusterHistory
    root_slo_ms: float

    @property
    def heracles_max_slo(self) -> float:
        return self.managed.max_root_slo_fraction(skip_s=600.0)

    @property
    def baseline_max_slo(self) -> float:
        return self.baseline.max_root_slo_fraction(skip_s=600.0)

    @property
    def heracles_mean_emu(self) -> float:
        return self.managed.mean_emu(skip_s=600.0)

    @property
    def baseline_mean_emu(self) -> float:
        return self.baseline.mean_emu(skip_s=600.0)


def _run_cluster_arm(kwargs: dict):
    """One independent cluster simulation (module-level for pickling)."""
    duration = kwargs.pop("duration")
    cluster = WebsearchCluster(**kwargs)
    return cluster.run(duration), cluster.root_slo_ms


def run_fig8(leaves: int = 12,
             duration_s: float = 12 * 3600.0,
             time_compression: float = 1.0,
             spec: Optional[MachineSpec] = None,
             seed: int = 7,
             engine: str = "batch",
             processes: Optional[int] = None) -> Fig8Result:
    """Run the cluster trace with and without Heracles.

    The two arms share nothing, so they are dispatched through
    :func:`repro.sim.runner.run_sweep` — on a multi-core host they run
    concurrently; on a single core the runner falls back to a serial
    loop.
    """
    if time_compression < 1.0:
        raise ValueError("compression must be >= 1")
    period = 12 * 3600.0 / time_compression
    duration = duration_s / time_compression

    def make_trace() -> DiurnalTrace:
        return DiurnalTrace(low=0.20, high=0.90, period_s=period,
                            noise_sigma=0.02, seed=seed)

    arms = [
        dict(leaves=leaves, spec=spec, trace=make_trace(), managed=managed,
             seed=seed, engine=engine, duration=duration)
        for managed in (True, False)
    ]
    (managed_history, root_slo_ms), (baseline_history, _) = run_sweep(
        _run_cluster_arm, arms, processes=processes)
    return Fig8Result(managed=managed_history, baseline=baseline_history,
                      root_slo_ms=root_slo_ms)


def main() -> None:
    result = run_fig8(leaves=8)
    print(f"root SLO: {result.root_slo_ms:.1f} ms")
    print(f"Heracles: max latency {result.heracles_max_slo * 100:.0f}% of "
          f"SLO, mean EMU {result.heracles_mean_emu * 100:.0f}%")
    print(f"baseline: max latency {result.baseline_max_slo * 100:.0f}% of "
          f"SLO, mean EMU {result.baseline_mean_emu * 100:.0f}%")


if __name__ == "__main__":
    main()
