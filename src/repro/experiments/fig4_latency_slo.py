"""Figure 4: LC tail latency under Heracles across loads and BE tasks.

"At all loads and in all colocation cases, there are no SLO violations
with Heracles" (§5.2) — the headline result.  For each LC workload and
each BE colocation, sweep load 5%..95% and record the worst-case
windowed tail latency as a fraction of the SLO, plus the no-colocation
baseline.

Figures 5, 6 and 7 are different projections of the same runs, so the
sweep is shared: :func:`run_sweep` returns the full
:class:`~repro.experiments.common.ColocationResult` grid and each
figure module extracts its series.

This module is a thin consumer of the scenario layer: the grid itself
is the registered ``fig4`` scenario (see
:func:`repro.scenarios.library.fig4_scenario`), and ``python -m
repro.cli fig4`` and ``python -m repro.cli scenario fig4`` run the
same compiled spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..hardware.spec import MachineSpec
from ..scenarios import compile_scenario, registry
from ..scenarios.library import (DEFAULT_LOADS,  # noqa: F401  (re-export)
                                 FIG4_BE_TASKS, fig4_scenario)
from ..workloads.latency_critical import LC_PROFILES
from .common import ColocationResult


@dataclass
class ColocationSweep:
    """All Figure 4-7 measurements for one LC workload."""

    lc_name: str
    loads: List[float]
    baseline_slo: List[float] = field(default_factory=list)
    results: Dict[str, List[ColocationResult]] = field(default_factory=dict)

    def worst_slo_series(self, be_name: str) -> List[float]:
        """Worst 60 s windowed SLO fraction per load for one BE task."""
        return [r.history.worst_window_slo(skip_s=240.0)
                for r in self.results[be_name]]

    def emu_series(self, be_name: str) -> List[float]:
        """Mean EMU per load for one BE task."""
        return [r.mean_emu for r in self.results[be_name]]

    def metric_series(self, be_name: str, attr: str) -> List[float]:
        """Any :class:`ColocationResult` attribute per load."""
        return [getattr(r, attr) for r in self.results[be_name]]

    def no_violations(self, be_name: str, threshold: float = 1.0) -> bool:
        """True when no load point breaks the SLO for this BE task."""
        return all(v <= threshold for v in self.worst_slo_series(be_name))


def run_sweep(lc_name: str,
              be_tasks: Sequence[str] = FIG4_BE_TASKS,
              loads: Sequence[float] = DEFAULT_LOADS,
              duration_s: float = 900.0,
              spec: Optional[MachineSpec] = None,
              seed: int = 0,
              processes: Optional[int] = None) -> ColocationSweep:
    """Run the Heracles colocation grid for one LC workload.

    Compiles a parametrized ``fig4`` scenario spec and runs it; the
    (BE task x load) grid fans out across a process pool via
    :func:`repro.experiments.common.colocation_sweep`.  Pass
    ``processes=1`` (or set ``REPRO_JOBS=1``) to force the serial path.

    Args:
        lc_name: LC workload to sweep.
        be_tasks / loads: grid axes.
        duration_s: per-cell run length (warm-up stays the paper's
            240 s).
        spec: machine override.  ``None`` uses the paper's server; a
            non-default machine bypasses the scenario layer (scenario
            hardware is expressed as ``ServerSpec`` overrides) and
            calls the sweep machinery directly.
        seed / processes: forwarded to every cell / the runner.

    Returns:
        The populated :class:`ColocationSweep`.
    """
    if lc_name not in LC_PROFILES:
        raise KeyError(f"unknown LC workload {lc_name!r}")
    if spec is not None:
        from ..workloads.latency_critical import make_lc_workload
        from .common import baseline_cell, colocation_sweep
        sweep = ColocationSweep(lc_name=lc_name, loads=list(loads))
        lc = make_lc_workload(lc_name, spec)
        sweep.baseline_slo = [baseline_cell(lc, load, spec)
                              for load in loads]
        sweep.results = colocation_sweep(
            lc_name, be_tasks, loads, duration_s=duration_s, spec=spec,
            seed=seed, processes=processes)
        return sweep
    # The paper's 240 s warm-up, clamped so short smoke runs (which the
    # pre-scenario harness allowed) still validate instead of tripping
    # the spec's warmup < duration check.
    warmup_s = min(240.0, max(0.0, duration_s - 1.0))
    scenario = fig4_scenario(lc_tasks=(lc_name,), be_tasks=be_tasks,
                             loads=loads, duration_s=duration_s,
                             warmup_s=warmup_s, seed=seed)
    result = compile_scenario(scenario).run(processes=processes)
    grid = result.sweeps[lc_name]
    return ColocationSweep(lc_name=lc_name, loads=grid.loads,
                           baseline_slo=grid.baseline_slo,
                           results=grid.results)


def run_fig4(lc_names: Optional[Sequence[str]] = None,
             loads: Sequence[float] = DEFAULT_LOADS,
             duration_s: float = 900.0) -> Dict[str, ColocationSweep]:
    """The full Figure 4 grid (shared by Figs. 5-7)."""
    lc_names = lc_names or sorted(LC_PROFILES)
    return {name: run_sweep(name, loads=loads, duration_s=duration_s)
            for name in lc_names}


def main() -> None:
    """Regenerate the Figure 4 tables (the registered ``fig4`` scenario)."""
    print(compile_scenario(registry.get("fig4")).run().render(), end="")


if __name__ == "__main__":
    main()
