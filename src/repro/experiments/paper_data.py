"""The paper's published Figure 1 cells, for quantitative comparison.

Transcribed from the ISCA 2015 paper's Figure 1 ("Impact of
interference on shared resources on websearch, ml_cluster, and
memkeyval").  Values are tail latency as a percent of the SLO; the
paper clips its display at ">300%", recorded here as 350.

:func:`figure1_agreement` scores a regenerated table against this data
with the binary violation/no-violation criterion (the decision the
controller actually acts on); EXPERIMENTS.md reports the score.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..workloads.traces import load_sweep

#: Display value the paper uses for saturated (">300%") cells.
SATURATED = 3.5


def _row(text: str) -> List[float]:
    values = [float(x) / 100.0 for x in text.split()]
    if len(values) != 19:
        raise ValueError("each Figure 1 row has 19 load points")
    return values


PAPER_FIG1: Dict[str, Dict[str, List[float]]] = {
    "websearch": {
        "LLC (small)": _row("134 103 96 96 109 102 100 96 96 104 99 100 "
                            "101 100 104 103 104 103 99"),
        "LLC (med)": _row("152 106 99 99 116 111 109 103 105 116 109 108 "
                          "107 110 123 125 114 111 101"),
        "LLC (big)": _row("350 350 350 350 350 350 350 350 350 350 350 350 "
                          "350 350 350 264 222 123 102"),
        "DRAM": _row("350 350 350 350 350 350 350 350 350 350 350 350 350 "
                     "350 350 270 228 122 103"),
        "HyperThread": _row("81 109 106 106 104 113 106 114 113 105 114 "
                            "117 118 119 122 136 350 350 350"),
        "CPU power": _row("190 124 110 107 134 115 106 108 102 114 107 105 "
                          "104 101 105 100 98 99 97"),
        "Network": _row("35 35 36 36 36 36 36 37 37 38 39 41 44 48 51 55 "
                        "58 64 95"),
        "brain": _row("158 165 157 173 160 168 180 230 350 350 350 350 350 "
                      "350 350 350 350 350 350"),
    },
    "ml_cluster": {
        "LLC (small)": _row("101 88 99 84 91 110 96 93 100 216 117 106 119 "
                            "105 182 206 109 202 203"),
        "LLC (med)": _row("98 88 102 91 112 115 105 104 111 350 282 212 "
                          "237 220 220 212 215 205 201"),
        "LLC (big)": _row("350 350 350 350 350 350 350 350 350 350 350 350 "
                          "350 350 276 250 223 214 206"),
        "DRAM": _row("350 350 350 350 350 350 350 350 350 350 350 350 350 "
                     "350 350 287 230 223 211"),
        "HyperThread": _row("113 109 110 111 104 100 97 107 111 112 114 "
                            "114 114 119 121 130 259 262 262"),
        "CPU power": _row("112 101 97 89 91 86 89 90 89 92 91 90 89 89 90 "
                          "92 94 97 106"),
        "Network": _row("57 56 58 60 58 58 58 58 59 59 59 59 59 63 63 67 "
                        "76 89 113"),
        "brain": _row("151 149 174 189 193 202 209 217 225 239 350 350 279 "
                      "350 350 350 350 350 350"),
    },
    "memkeyval": {
        "LLC (small)": _row("115 88 88 91 99 101 79 91 97 101 135 138 148 "
                            "140 134 150 114 78 70"),
        "LLC (med)": _row("209 148 159 107 207 119 96 108 117 138 170 230 "
                          "182 181 167 162 144 100 104"),
        "LLC (big)": _row("350 350 350 350 350 350 350 350 350 350 350 350 "
                          "350 280 225 222 170 79 85"),
        "DRAM": _row("350 350 350 350 350 350 350 350 350 350 350 350 350 "
                     "350 252 234 199 103 100"),
        "HyperThread": _row("26 31 32 32 32 32 33 35 39 43 48 51 56 62 81 "
                            "119 116 153 350"),
        "CPU power": _row("192 277 237 294 350 350 219 350 292 224 350 252 "
                          "227 193 163 167 122 82 123"),
        "Network": _row("27 28 28 29 29 27 350 350 350 350 350 350 350 350 "
                        "350 350 350 350 350"),
        "brain": _row("197 232 350 350 350 350 350 350 350 350 350 350 350 "
                      "350 350 350 350 350 350"),
    },
}


@dataclass
class AgreementReport:
    """Binary violation/no-violation agreement with the paper's cells."""

    agreed: int
    total: int
    per_row: Dict[tuple, int]

    @property
    def fraction(self) -> float:
        return self.agreed / self.total


def figure1_agreement(tables) -> AgreementReport:
    """Score regenerated Figure 1 tables against the published cells.

    Args:
        tables: the dict returned by
            :func:`repro.experiments.fig1_interference.run_fig1` run at
            the full 19-point load axis.
    """
    loads = load_sweep()
    agreed = 0
    total = 0
    per_row: Dict[tuple, int] = {}
    for lc_name, rows in PAPER_FIG1.items():
        table = tables[lc_name]
        for antagonist, paper_values in rows.items():
            row_agree = 0
            for load, paper_value in zip(loads, paper_values):
                ours = table.cell(antagonist, load) > 1.0
                theirs = paper_value > 1.0
                total += 1
                if ours == theirs:
                    agreed += 1
                    row_agree += 1
            per_row[(lc_name, antagonist)] = row_agree
    return AgreementReport(agreed=agreed, total=total, per_row=per_row)
