"""Tests for repro.perf.interference and repro.perf.saturation."""

import pytest

from repro.hardware.server import TaskUsage
from repro.perf.interference import (InterferenceSensitivity,
                                     be_throughput_efficiency,
                                     network_latency_factor,
                                     service_inflation)
from repro.perf.saturation import headroom_fraction, knee_penalty, soft_clip


def usage(freq=2.3, hit=1.0, hot=1.0, bulk=1.0, occ=20.0, mem_delay=1.0,
          net_demand=0.0, net_achieved=0.0, ht=0.0, dram_demand=0.0,
          dram_achieved=0.0, cores=8):
    sat = 1.0 if net_demand <= 0 else min(1.0, net_achieved / net_demand)
    return TaskUsage(
        task="t", cores=cores, freq_ghz=freq, cache_hit_fraction=hit,
        hot_coverage=hot, bulk_coverage=bulk, cache_occupancy_mb=occ,
        dram_demand_gbps=dram_demand, dram_achieved_gbps=dram_achieved,
        mem_delay_factor=mem_delay, net_demand_gbps=net_demand,
        net_achieved_gbps=net_achieved, net_satisfaction=sat,
        ht_share_fraction=ht)


SENS = InterferenceSensitivity()


class TestServiceInflation:
    def test_neutral_at_calibration_point(self):
        factor = service_inflation(usage(), SENS, 2.3, 0.5)
        assert factor == pytest.approx(1.0)

    def test_turbo_speeds_up(self):
        factor = service_inflation(usage(freq=3.0), SENS, 2.3, 0.5)
        assert factor < 1.0

    def test_throttle_slows_down(self):
        factor = service_inflation(usage(freq=1.5), SENS, 2.3, 0.5)
        assert factor > 1.4

    def test_freq_exponent_zero_ignores_frequency(self):
        sens = InterferenceSensitivity(freq_exponent=0.0)
        factor = service_inflation(usage(freq=1.2), sens, 2.3, 0.0)
        assert factor == pytest.approx(1.0)

    def test_hot_loss_is_convex(self):
        mild = service_inflation(usage(hot=0.9), SENS, 2.3, 0.5) - 1.0
        deep = service_inflation(usage(hot=0.1), SENS, 2.3, 0.5) - 1.0
        # Deep loss is much more than 9x the mild loss.
        assert deep > 5.0 * (mild * 9.0) / 9.0
        assert deep / max(mild, 1e-12) > 9.0

    def test_bulk_loss_linear(self):
        sens = InterferenceSensitivity(hot_miss_weight=0.0,
                                       bulk_miss_weight=1.0)
        half = service_inflation(usage(bulk=0.5), sens, 2.3, 0.5) - 1.0
        full = service_inflation(usage(bulk=0.0), sens, 2.3, 0.5) - 1.0
        assert full == pytest.approx(2.0 * half)

    def test_memory_delay_scaled_by_fraction(self):
        sens = InterferenceSensitivity(mem_time_fraction=0.5)
        factor = service_inflation(usage(mem_delay=3.0), sens, 2.3, 0.5)
        assert factor == pytest.approx(2.0)

    def test_ht_penalty_grows_with_utilization(self):
        low = service_inflation(usage(ht=1.0), SENS, 2.3, 0.1)
        high = service_inflation(usage(ht=1.0), SENS, 2.3, 0.95)
        assert high > low > 1.0

    def test_ht_base_fraction_applies_at_idle(self):
        sens = InterferenceSensitivity(ht_slowdown=1.0, ht_base_fraction=0.6)
        factor = service_inflation(usage(ht=1.0), sens, 2.3, 0.0)
        assert factor == pytest.approx(1.6)

    def test_factors_compose_multiplicatively(self):
        sens = InterferenceSensitivity(mem_time_fraction=0.5,
                                       hot_miss_weight=0.0,
                                       bulk_miss_weight=1.0)
        combined = service_inflation(usage(mem_delay=3.0, bulk=0.0),
                                     sens, 2.3, 0.5)
        assert combined == pytest.approx(2.0 * 2.0)

    def test_rejects_bad_frequency(self):
        with pytest.raises(ValueError):
            service_inflation(usage(freq=0.0), SENS, 2.3, 0.5)

    def test_sensitivity_validation(self):
        with pytest.raises(ValueError):
            InterferenceSensitivity(freq_exponent=5.0).validate()
        with pytest.raises(ValueError):
            InterferenceSensitivity(mem_time_fraction=2.0).validate()
        with pytest.raises(ValueError):
            InterferenceSensitivity(hot_miss_weight=-1.0).validate()
        with pytest.raises(ValueError):
            InterferenceSensitivity(ht_base_fraction=1.5).validate()


class TestNetworkLatencyFactor:
    def test_no_demand_no_effect(self):
        assert network_latency_factor(usage(), SENS, 0.99) == 1.0

    def test_satisfied_demand_no_effect(self):
        u = usage(net_demand=2.0, net_achieved=2.0)
        assert network_latency_factor(u, SENS, 0.99) == pytest.approx(1.0)

    def test_shortfall_blows_up(self):
        u = usage(net_demand=4.0, net_achieved=2.0)
        assert network_latency_factor(u, SENS, 0.9) > 5.0

    def test_blowup_grows_with_shortfall(self):
        mild = network_latency_factor(
            usage(net_demand=2.2, net_achieved=2.0), SENS, 0.9)
        severe = network_latency_factor(
            usage(net_demand=8.0, net_achieved=2.0), SENS, 0.9)
        assert severe > mild > 1.0

    def test_capped(self):
        u = usage(net_demand=100.0, net_achieved=0.1)
        assert network_latency_factor(u, SENS, 1.0) <= 60.0


class TestBeThroughputEfficiency:
    def test_reference_conditions(self):
        eff = be_throughput_efficiency(usage(freq=2.3), 2.3)
        assert eff == pytest.approx(1.0)

    def test_frequency_scales_throughput(self):
        eff = be_throughput_efficiency(usage(freq=1.15), 2.3)
        assert eff == pytest.approx(0.5, rel=0.01)

    def test_memory_starvation(self):
        u = usage(dram_demand=10.0, dram_achieved=5.0)
        eff = be_throughput_efficiency(u, 2.3, mem_bound_fraction=1.0)
        assert eff == pytest.approx(0.5, rel=0.01)

    def test_cache_benefit(self):
        full = be_throughput_efficiency(usage(hit=1.0), 2.3,
                                        cache_benefit=0.5)
        none = be_throughput_efficiency(usage(hit=0.0), 2.3,
                                        cache_benefit=0.5)
        assert full / none == pytest.approx(2.0, rel=0.01)

    def test_ht_sharing_penalty(self):
        shared = be_throughput_efficiency(usage(ht=1.0), 2.3)
        alone = be_throughput_efficiency(usage(ht=0.0), 2.3)
        assert shared < alone

    def test_never_nonpositive(self):
        u = usage(freq=1.2, hit=0.0, dram_demand=100, dram_achieved=1)
        assert be_throughput_efficiency(u, 2.3, mem_bound_fraction=1.0,
                                        cache_benefit=1.0) > 0.0


class TestSaturationCurves:
    def test_knee_flat_below(self):
        assert knee_penalty(0.5, knee=0.8) == 1.0
        assert knee_penalty(0.8, knee=0.8) == 1.0

    def test_knee_grows_past(self):
        assert knee_penalty(0.9, knee=0.8) > 1.0
        assert knee_penalty(0.99, knee=0.8) > knee_penalty(0.9, knee=0.8)

    def test_oversubscription_monotone(self):
        assert knee_penalty(1.5, knee=0.8) > knee_penalty(1.1, knee=0.8)

    def test_ceiling(self):
        assert knee_penalty(0.999, knee=0.5, gain=100.0, ceiling=10.0) == 10.0

    def test_knee_validation(self):
        with pytest.raises(ValueError):
            knee_penalty(-0.1)
        with pytest.raises(ValueError):
            knee_penalty(0.5, knee=1.5)

    def test_soft_clip(self):
        assert soft_clip(0.0, 5.0) == 0.0
        assert soft_clip(5.0, 5.0) == pytest.approx(2.5)
        assert soft_clip(1e9, 5.0) < 5.0
        with pytest.raises(ValueError):
            soft_clip(1.0, 0.0)

    def test_headroom(self):
        assert headroom_fraction(30.0, 60.0) == pytest.approx(0.5)
        assert headroom_fraction(90.0, 60.0) == 0.0
        with pytest.raises(ValueError):
            headroom_fraction(1.0, 0.0)
