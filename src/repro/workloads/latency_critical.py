"""Latency-critical workload models: websearch, ml_cluster, memkeyval.

The paper characterizes three Google production LC services (§3.1); these
models are calibrated against every quantitative statement made there:

* **websearch** — query serving leaf of web search.  99%-ile SLO in the
  tens of milliseconds; high memory footprint (in-DRAM index shards) with
  *moderate* DRAM bandwidth (40% of available at 100% load) because most
  index accesses miss the LLC; a small but significant hot working set of
  instructions and data; fairly compute-intensive (scoring/sorting); low
  network bandwidth.

* **ml_cluster** — real-time text clustering against an in-memory model.
  95%-ile SLO in the tens of milliseconds; *more* memory-bandwidth
  intensive (60% at peak) with super-linear DRAM growth vs load (small
  per-request cache footprints that add up and spill); slightly less
  compute-intensive than websearch; low network.

* **memkeyval** — in-memory key-value store (memcached-like).  99%-ile
  SLO of a few hundred *microseconds*; hundreds of thousands of QPS;
  network-bandwidth-limited at peak; compute-bound despite little work
  per request; low DRAM bandwidth (20% at max); both a static
  instruction working set and a per-request data working set.

Each model self-calibrates its mean service time so that, with the whole
machine at nominal frequency, tail latency reaches ~SLO exactly at peak
load — that is what "peak load" *means* operationally.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..hardware.server import TaskTickDemand, TaskUsage
from ..hardware.spec import MachineSpec, default_machine_spec
from ..perf.interference import (InterferenceSensitivity,
                                 network_latency_factor, service_inflation)
from ..perf.queueing import QueueModel, solve_peak_qps
from .base import Allocation, cache_demand_for, split_across_sockets


@dataclass(frozen=True)
class LcWorkloadProfile:
    """Static description of one latency-critical service.

    Latency calibration is three-parameter: ``unloaded_tail_fraction``
    fixes where the latency curve starts (tail/SLO at zero load),
    ``calibration_fraction`` fixes where it ends (tail/SLO at peak load
    on the whole machine), and ``pool_size`` shapes how fast it rises in
    between.  Mean service time and peak QPS are *derived* from these,
    so "peak load" always means "the load at which the full machine
    reaches the SLO" — its operational definition.
    """

    name: str
    slo_latency_ms: float
    slo_percentile: float
    unloaded_tail_fraction: float
    service_tail_mult: float
    pool_size: int
    # Resource demand curves (fractions of machine capacity at peak load).
    dram_frac_at_peak: float
    dram_load_exponent: float
    net_frac_at_peak: float
    net_flows: int
    # Cache behaviour.
    hot_mb: float
    bulk_mb_at_peak: float
    bulk_reuse: float
    hot_access_fraction: float
    # Power behaviour.
    compute_activity: float
    # Interference response.
    sensitivity: InterferenceSensitivity
    # Tail noise (lognormal sigma); memkeyval's microsecond SLO makes its
    # measured tail far noisier (§5.2).
    noise_sigma: float = 0.05
    # Fraction of tail latency hit at peak load during calibration.
    calibration_fraction: float = 0.93

    def validate(self) -> None:
        if self.slo_latency_ms <= 0:
            raise ValueError("SLO must be positive")
        if not 0.0 < self.unloaded_tail_fraction < self.calibration_fraction:
            raise ValueError("unloaded tail fraction must be below the "
                             "calibration fraction")
        if self.pool_size < 1:
            raise ValueError("pool size must be >= 1")
        if not 0.5 <= self.slo_percentile < 1.0:
            raise ValueError("SLO percentile out of range")
        if not 0.0 <= self.dram_frac_at_peak <= 1.0:
            raise ValueError("dram fraction out of range")
        if self.dram_load_exponent < 0.5:
            raise ValueError("dram load exponent too small")
        if not 0.0 <= self.net_frac_at_peak <= 1.0:
            raise ValueError("net fraction out of range")
        self.sensitivity.validate()


class LatencyCriticalWorkload:
    """Executable model of one LC service on a given machine."""

    def __init__(self, profile: LcWorkloadProfile,
                 spec: Optional[MachineSpec] = None):
        profile.validate()
        self.profile = profile
        self.spec = spec or default_machine_spec()
        self.name = profile.name
        # Calibration step 1: the unloaded tail fraction pins the mean
        # service time (unloaded tail = service_tail_mult * service).
        self.base_service_ms = (profile.unloaded_tail_fraction
                                * profile.slo_latency_ms
                                / profile.service_tail_mult)
        # Calibration step 2: peak QPS is the arrival rate at which the
        # whole machine reaches calibration_fraction * SLO — at the
        # frequency the machine *actually* sustains at full load (turbo
        # minus any TDP throttling), found by a short fixed-point
        # iteration between load, activity, and frequency.
        from ..hardware.power import CorePowerRequest, SocketPowerModel
        power_model = SocketPowerModel(self.spec.socket)
        nominal = self.spec.socket.turbo.nominal_ghz
        # Cache inflation the workload experiences *alone* at peak: a
        # working set larger than the LLC costs bulk coverage even with
        # no antagonist (ml_cluster's case), and "peak load" must mean
        # "hits the SLO including that self-inflicted miss cost".
        hot_left_mb = max(0.0, self.spec.total_llc_mb - profile.hot_mb)
        bulk_cov = (min(1.0, hot_left_mb / profile.bulk_mb_at_peak)
                    if profile.bulk_mb_at_peak > 0 else 1.0)
        hot_loss = max(0.0, (profile.hot_mb - self.spec.total_llc_mb)
                       / max(1e-9, profile.hot_mb))
        cache_inflation = (1.0
                           + profile.sensitivity.hot_miss_weight * hot_loss
                           * (0.3 + 0.7 * hot_loss)
                           + profile.sensitivity.bulk_miss_weight
                           * (1.0 - bulk_cov))
        rho_guess = 0.85
        peak = 0.0
        for _ in range(3):
            activity = min(1.0, profile.compute_activity * rho_guess)
            resolution = power_model.resolve([CorePowerRequest(
                task=profile.name, cores=self.spec.socket.cores,
                activity=activity)])
            full_load_freq = resolution.freq_of(profile.name)
            service_at_full = (self.base_service_ms * cache_inflation
                               * (nominal / full_load_freq)
                               ** profile.sensitivity.freq_exponent)
            peak = solve_peak_qps(
                servers=self.spec.total_cores,
                service_ms=service_at_full,
                target_tail_ms=(profile.calibration_fraction
                                * profile.slo_latency_ms),
                service_tail_mult=profile.service_tail_mult,
                percentile=profile.slo_percentile,
                pool_size=profile.pool_size,
            )
            rho_guess = (peak * self.base_service_ms / 1000.0
                         / self.spec.total_cores)
        self.peak_qps = peak
        self.full_load_freq_ghz = full_load_freq
        # Baseline LLC hit fraction when the whole working set is resident.
        self._baseline_hit = (profile.hot_access_fraction
                              + (1.0 - profile.hot_access_fraction)
                              * profile.bulk_reuse)
        # Split the peak DRAM target between always-miss traffic and
        # LLC-miss traffic so that cache deprivation *raises* DRAM use.
        self._dram_peak_gbps = (profile.dram_frac_at_peak
                                * self.spec.total_dram_bw_gbps)
        self._uncached_share = 0.6

    # ------------------------------------------------------------------
    # Demand curves
    # ------------------------------------------------------------------

    def qps_at(self, load: float) -> float:
        return max(0.0, load) * self.peak_qps

    def dram_target_gbps(self, load: float) -> float:
        """Total DRAM bandwidth the service generates at ``load`` when its
        working set is cache-resident (the offline-model ground truth)."""
        load = max(0.0, load)
        return self._dram_peak_gbps * load ** self.profile.dram_load_exponent

    def _access_gbps(self, load: float) -> float:
        """LLC access bandwidth such that misses at baseline coverage
        account for the cached share of the DRAM target."""
        cached = (1.0 - self._uncached_share) * self.dram_target_gbps(load)
        miss_frac = max(1e-3, 1.0 - self._baseline_hit)
        return cached / miss_frac

    def net_demand_gbps(self, load: float) -> float:
        return (self.profile.net_frac_at_peak * self.spec.nic.link_gbps
                * max(0.0, load))

    def bulk_mb(self, load: float) -> float:
        return self.profile.bulk_mb_at_peak * max(0.0, load)

    def offered_rho(self, load: float, cores: int) -> float:
        """Per-core utilization at base service time."""
        if cores <= 0:
            return math.inf
        return (self.qps_at(load) * self.base_service_ms / 1000.0) / cores

    def required_cores(self, load: float,
                       target_fraction: float = 0.90) -> int:
        """Minimum cores at which predicted tail latency stays at or
        below ``target_fraction`` of the SLO — the paper's "enough cores
        to satisfy its SLO at this load" pinning rule (§3.2)."""
        if load <= 0:
            return 1
        target_ms = target_fraction * self.profile.slo_latency_ms
        qps = self.qps_at(load)
        for cores in range(1, self.spec.total_cores + 1):
            model = QueueModel(servers=cores,
                               service_ms=self.base_service_ms,
                               service_tail_mult=self.profile.service_tail_mult,
                               percentile=self.profile.slo_percentile,
                               pool_size=self.profile.pool_size)
            if model.tail_latency_ms(qps) <= target_ms:
                return cores
        return self.spec.total_cores

    # ------------------------------------------------------------------
    # Simulation protocol
    # ------------------------------------------------------------------

    def demand(self, load: float, alloc: Allocation) -> TaskTickDemand:
        """Hardware demand for one tick at ``load`` under ``alloc``."""
        cores = alloc.total_cores
        rho = min(1.0, self.offered_rho(load, cores)) if cores else 0.0
        activity = self.profile.compute_activity * rho
        uncached = self._uncached_share * self.dram_target_gbps(load)
        return TaskTickDemand(
            task=self.name,
            cores_by_socket=dict(alloc.cores_by_socket),
            activity=activity,
            dvfs_cap_ghz=alloc.dvfs_cap_ghz,
            cache_by_socket=cache_demand_for(
                self.name, alloc, self.spec,
                hot_mb=self.profile.hot_mb,
                bulk_mb=self.bulk_mb(load),
                access_gbps=self._access_gbps(load),
                hot_access_fraction=self.profile.hot_access_fraction,
                bulk_reuse=self.profile.bulk_reuse),
            cache_cos=alloc.cache_cos,
            uncached_dram_gbps_by_socket=split_across_sockets(uncached, alloc),
            net_demand_gbps=self.net_demand_gbps(load),
            net_flows=self.profile.net_flows,
            net_ceil_gbps=alloc.net_ceil_gbps,
            ht_share_fraction=alloc.ht_share_fraction,
            dram_throttle=alloc.dram_throttle,
        )

    def tail_latency_ms(self, load: float, usage: TaskUsage,
                        link_utilization: float = 0.0,
                        sched_delay_ms: float = 0.0,
                        rng: Optional[np.random.Generator] = None) -> float:
        """Tail latency given what the server actually granted.

        Args:
            load: offered load fraction of peak.
            usage: resolved hardware state for this task.
            link_utilization: NIC egress utilization (for serialization
                delay even when this task's own demand is satisfied).
            sched_delay_ms: additive CFS tail delay (OS-isolation
                baseline only; zero under Heracles pinning).
            rng: optional noise source.
        """
        cores = usage.cores
        if cores <= 0:
            raise ValueError("LC task has no cores")
        nominal = self.spec.socket.turbo.nominal_ghz
        rho_base = min(1.0, self.offered_rho(load, cores))
        inflation = service_inflation(usage, self.profile.sensitivity,
                                      reference_freq_ghz=nominal,
                                      core_utilization=rho_base)
        service_ms = self.base_service_ms * inflation
        model = QueueModel(servers=cores, service_ms=service_ms,
                           service_tail_mult=self.profile.service_tail_mult,
                           percentile=self.profile.slo_percentile,
                           pool_size=self.profile.pool_size)
        tail = model.tail_latency_ms(self.qps_at(load))
        tail *= network_latency_factor(usage, self.profile.sensitivity,
                                       link_utilization)
        tail += sched_delay_ms
        if rng is not None and self.profile.noise_sigma > 0:
            tail *= float(rng.lognormal(mean=0.0,
                                        sigma=self.profile.noise_sigma))
        return tail

    def slo_fraction(self, tail_ms: float) -> float:
        """Tail latency normalized to the SLO target (Fig. 1's metric)."""
        return tail_ms / self.profile.slo_latency_ms


# ----------------------------------------------------------------------
# The three production workloads
# ----------------------------------------------------------------------

WEBSEARCH = LcWorkloadProfile(
    name="websearch",
    slo_latency_ms=25.0,
    slo_percentile=0.99,
    unloaded_tail_fraction=0.35,
    service_tail_mult=3.0,
    pool_size=6,
    calibration_fraction=0.82,
    dram_frac_at_peak=0.40,
    dram_load_exponent=1.0,
    net_frac_at_peak=0.12,
    net_flows=256,
    hot_mb=24.0,
    bulk_mb_at_peak=160.0,
    bulk_reuse=0.12,
    hot_access_fraction=0.40,
    compute_activity=0.90,
    sensitivity=InterferenceSensitivity(
        freq_exponent=1.0,
        hot_miss_weight=1.6,
        bulk_miss_weight=0.10,
        mem_time_fraction=0.35,
        ht_slowdown=0.12,
        ht_base_fraction=0.50,
        ht_load_exponent=4.0,
        net_tail_gain=4.0,
    ),
    noise_sigma=0.04,
)

ML_CLUSTER = LcWorkloadProfile(
    name="ml_cluster",
    slo_latency_ms=18.0,
    slo_percentile=0.95,
    unloaded_tail_fraction=0.55,
    service_tail_mult=2.4,
    pool_size=6,
    dram_frac_at_peak=0.60,
    dram_load_exponent=1.7,
    net_frac_at_peak=0.06,
    net_flows=128,
    hot_mb=10.0,
    bulk_mb_at_peak=100.0,
    bulk_reuse=0.75,
    hot_access_fraction=0.25,
    compute_activity=0.55,
    sensitivity=InterferenceSensitivity(
        freq_exponent=0.55,
        hot_miss_weight=1.0,
        bulk_miss_weight=0.9,
        mem_time_fraction=0.40,
        ht_slowdown=0.10,
        ht_base_fraction=0.60,
        ht_load_exponent=4.0,
        net_tail_gain=4.0,
    ),
    noise_sigma=0.04,
)

MEMKEYVAL = LcWorkloadProfile(
    name="memkeyval",
    slo_latency_ms=0.30,
    slo_percentile=0.99,
    unloaded_tail_fraction=0.22,
    service_tail_mult=1.6,
    pool_size=4,
    dram_frac_at_peak=0.20,
    dram_load_exponent=1.0,
    net_frac_at_peak=0.88,
    net_flows=320,
    hot_mb=16.0,
    bulk_mb_at_peak=30.0,
    bulk_reuse=0.50,
    hot_access_fraction=0.55,
    compute_activity=0.95,
    sensitivity=InterferenceSensitivity(
        freq_exponent=1.0,
        hot_miss_weight=1.3,
        bulk_miss_weight=0.45,
        mem_time_fraction=0.25,
        ht_slowdown=0.12,
        ht_base_fraction=0.30,
        ht_load_exponent=3.0,
        net_tail_gain=6.0,
    ),
    noise_sigma=0.10,
)

LC_PROFILES: Dict[str, LcWorkloadProfile] = {
    p.name: p for p in (WEBSEARCH, ML_CLUSTER, MEMKEYVAL)
}


def make_lc_workload(name: str,
                     spec: Optional[MachineSpec] = None) -> LatencyCriticalWorkload:
    """Factory: build one of the paper's LC workloads by name."""
    try:
        profile = LC_PROFILES[name]
    except KeyError:
        raise KeyError(f"unknown LC workload {name!r}; "
                       f"choose from {sorted(LC_PROFILES)}") from None
    return LatencyCriticalWorkload(profile, spec)
