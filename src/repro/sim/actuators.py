"""Actuation surface: the knobs a controller may turn.

This is the write-side counterpart of :class:`~repro.hardware.counters.
CounterBank`: cores (cpuset), LLC ways (CAT), BE frequency (per-core
DVFS), BE egress ceiling (HTB), and BE enable/disable.  The engine owns
the placement state; controllers mutate it only through this interface,
mirroring how the real Heracles drives cgroups, MSRs, and ``tc``.

Placement invariants enforced here:

* LC and BE cpusets are always disjoint sets of *physical* cores (no
  HyperThread sharing — §3 shows that is never safe).
* The LC workload always keeps at least one core.
* LLC way assignments never overlap and never exceed the cache.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..hardware.server import Server
from ..hardware.spec import MachineSpec
from ..oslayer.traffic_control import HtbQdisc
from ..workloads.base import Allocation

#: CAT class names used by Heracles (one LC partition, one BE partition).
LC_COS = "lc"
BE_COS = "be"


class Actuators:
    """Mutable placement state for one LC + one BE group on a server."""

    def __init__(self, server: Server, min_lc_cores: int = 1,
                 min_lc_llc_ways: int = 1,
                 initial_be_llc_fraction: float = 0.10):
        self.server = server
        self.spec: MachineSpec = server.spec
        if min_lc_cores < 1:
            raise ValueError("LC needs at least one core")
        if not 1 <= min_lc_llc_ways <= server.spec.socket.llc_ways - 1:
            raise ValueError("LC way floor must leave at least one way "
                             "for BE")
        self.min_lc_cores = min_lc_cores
        # Floor on the LC cache partition, normally derived from the
        # offline profile (enough ways to keep the hot working set —
        # instructions and hot data — resident).
        self.min_lc_llc_ways = min_lc_llc_ways
        self.initial_be_llc_fraction = initial_be_llc_fraction
        self.htb = HtbQdisc(self.spec.nic.link_gbps)
        self.htb.add_class(LC_COS, ceil_gbps=None)
        self.htb.add_class(BE_COS, ceil_gbps=None)
        self._be_cores = 0
        self._be_enabled = False
        self._be_dvfs_cap: Optional[float] = None
        self._be_dram_throttle = 1.0
        # CAT: start with everything owned by LC.
        total_ways = self.spec.socket.llc_ways
        self._lc_ways = total_ways
        self._be_ways = 0
        self._apply_cat()

    # ------------------------------------------------------------------
    # Cores
    # ------------------------------------------------------------------

    @property
    def be_cores(self) -> int:
        return self._be_cores if self._be_enabled else 0

    @property
    def lc_cores(self) -> int:
        return self.spec.total_cores - self.be_cores

    def set_be_cores(self, count: int) -> int:
        """Set the BE core count, clamped to keep the LC minimum."""
        maximum = self.spec.total_cores - self.min_lc_cores
        self._be_cores = max(0, min(int(count), maximum))
        return self._be_cores

    def add_be_core(self) -> bool:
        """Move one core from LC to BE; False if LC is at its minimum."""
        if self._be_cores >= self.spec.total_cores - self.min_lc_cores:
            return False
        self._be_cores += 1
        return True

    def remove_be_cores(self, count: int) -> int:
        """Return up to ``count`` cores from BE to LC; returns removed."""
        removed = min(max(0, int(count)), self._be_cores)
        self._be_cores -= removed
        return removed

    # ------------------------------------------------------------------
    # LLC (CAT)
    # ------------------------------------------------------------------

    @property
    def be_llc_ways(self) -> int:
        return self._be_ways if self._be_enabled else 0

    @property
    def lc_llc_ways(self) -> int:
        return self.spec.socket.llc_ways - self.be_llc_ways

    def set_llc_split(self, be_ways: int) -> int:
        """Assign ``be_ways`` ways to BE (LC gets the rest), clamped so
        the LC partition never drops below its hot-working-set floor."""
        total = self.spec.socket.llc_ways
        be_ways = max(0, min(int(be_ways), total - self.min_lc_llc_ways))
        self._be_ways = be_ways
        self._lc_ways = total - be_ways
        self._apply_cat()
        return self._be_ways

    def grow_be_llc(self, ways: int = 1) -> bool:
        if self._be_ways + ways > self.spec.socket.llc_ways - 1:
            return False
        self.set_llc_split(self._be_ways + ways)
        return True

    def shrink_be_llc(self, ways: int = 1) -> bool:
        if self._be_ways < ways:
            return False
        self.set_llc_split(self._be_ways - ways)
        return True

    def _apply_cat(self) -> None:
        for cat in self.server.cat.values():
            # Clear then set to avoid transient overflow.
            cat.set_partition(LC_COS, 0)
            cat.set_partition(BE_COS, 0)
            cat.set_partition(LC_COS, self._lc_ways)
            cat.set_partition(BE_COS, self._be_ways)

    # ------------------------------------------------------------------
    # DVFS
    # ------------------------------------------------------------------

    @property
    def be_dvfs_cap_ghz(self) -> Optional[float]:
        return self._be_dvfs_cap

    def lower_be_frequency(self, steps: int = 1) -> float:
        """Step the BE frequency cap down (Algorithm 3's LowerFrequency)."""
        turbo = self.spec.socket.turbo
        current = (self._be_dvfs_cap if self._be_dvfs_cap is not None
                   else turbo.max_turbo_ghz)
        self._be_dvfs_cap = turbo.clamp_ghz(current - steps * turbo.step_ghz)
        return self._be_dvfs_cap

    def raise_be_frequency(self, steps: int = 1) -> Optional[float]:
        """Step the BE frequency cap up; clears the cap at max turbo."""
        if self._be_dvfs_cap is None:
            return None
        turbo = self.spec.socket.turbo
        raised = self._be_dvfs_cap + steps * turbo.step_ghz
        if raised >= turbo.max_turbo_ghz - 1e-9:
            self._be_dvfs_cap = None
        else:
            self._be_dvfs_cap = turbo.clamp_ghz(raised)
        return self._be_dvfs_cap

    # ------------------------------------------------------------------
    # DRAM bandwidth throttle (MBA — see repro.core.mba)
    # ------------------------------------------------------------------

    @property
    def be_dram_throttle(self) -> float:
        return self._be_dram_throttle

    def lower_be_dram_throttle(self, factor: float = 0.85,
                               floor: float = 0.10) -> float:
        """Tighten the BE DRAM request-rate throttle multiplicatively."""
        if not 0.0 < factor < 1.0:
            raise ValueError("factor must be in (0, 1)")
        self._be_dram_throttle = max(floor, self._be_dram_throttle * factor)
        return self._be_dram_throttle

    def raise_be_dram_throttle(self, factor: float = 0.85) -> float:
        """Relax the throttle; saturates at 1.0 (unthrottled)."""
        if not 0.0 < factor < 1.0:
            raise ValueError("factor must be in (0, 1)")
        self._be_dram_throttle = min(1.0, self._be_dram_throttle / factor)
        return self._be_dram_throttle

    def set_be_dram_throttle(self, value: float) -> float:
        """Set the throttle directly (controller rollback path)."""
        if not 0.0 < value <= 1.0:
            raise ValueError("throttle must be in (0, 1]")
        self._be_dram_throttle = value
        return self._be_dram_throttle

    # ------------------------------------------------------------------
    # Network (HTB)
    # ------------------------------------------------------------------

    def set_be_net_ceil(self, gbps: Optional[float]) -> None:
        self.htb.set_ceil(BE_COS, gbps)

    @property
    def be_net_ceil_gbps(self) -> Optional[float]:
        return self.htb.ceil_of(BE_COS)

    # ------------------------------------------------------------------
    # BE lifecycle
    # ------------------------------------------------------------------

    @property
    def be_enabled(self) -> bool:
        return self._be_enabled

    def enable_be(self) -> None:
        """(Re)admit BE tasks: one core and 10% of the LLC (§4.3)."""
        if self._be_enabled:
            return
        self._be_enabled = True
        self.set_be_cores(1)
        initial_ways = max(1, round(self.initial_be_llc_fraction
                                    * self.spec.socket.llc_ways))
        self.set_llc_split(initial_ways)

    def disable_be(self) -> None:
        """Evict BE tasks; all resources return to the LC workload."""
        self._be_enabled = False
        self._be_cores = 0
        self.set_llc_split(0)
        self._be_dvfs_cap = None
        self._be_dram_throttle = 1.0
        self.set_be_net_ceil(None)

    # ------------------------------------------------------------------
    # Allocation views (consumed by the engine)
    # ------------------------------------------------------------------

    def _core_split(self) -> tuple:
        """Consistent (lc, be) per-socket core partition.

        Each BE *task* is bound to a single socket for cores and memory
        (the numactl policy of §4.3), but Heracles "attempts to run as
        many copies of the BE task as possible" and "different BE jobs
        can run on either socket" — so the aggregate BE core pool
        spreads across sockets, one job per socket, which also balances
        BE DRAM traffic across memory controllers.  LC owns the
        complement, so the cpusets are disjoint by construction.
        """
        be = {s: 0 for s in range(self.spec.sockets)}
        left = self.be_cores
        for _ in range(left):
            # Round-robin, fullest-last: keeps per-socket counts within 1.
            target = min(range(self.spec.sockets),
                         key=lambda s: (be[s], s))
            if be[target] >= self.spec.socket.cores:
                break
            be[target] += 1
        lc = {s: self.spec.socket.cores - be[s]
              for s in range(self.spec.sockets)}
        return lc, be

    def lc_allocation(self) -> Allocation:
        lc, _ = self._core_split()
        return Allocation(
            cores_by_socket={s: n for s, n in lc.items() if n > 0},
            cache_cos=LC_COS,
            dvfs_cap_ghz=None,
            net_ceil_gbps=self.htb.ceil_of(LC_COS),
        )

    def be_allocation(self) -> Allocation:
        if not self.be_enabled or self.be_cores == 0:
            return Allocation(cores_by_socket={})
        _, be = self._core_split()
        return Allocation(
            cores_by_socket={s: n for s, n in be.items() if n > 0},
            cache_cos=BE_COS,
            dvfs_cap_ghz=self._be_dvfs_cap,
            net_ceil_gbps=self.htb.ceil_of(BE_COS),
            dram_throttle=self._be_dram_throttle,
        )
