"""Placement policies: which leaves get which best-effort jobs.

A policy sees one :class:`PlacementContext` per decision epoch — the
previous epoch's per-leaf slack signals (per-slot harvest rate, the
Heracles BE-core grant, the SLO latch) plus the queue in priority
order — and returns, for each job, the BE core slots it should hold on
which leaves this epoch.  Policies are *pure*: same context, same
placement, which is what makes scheduling runs bit-reproducible across
shard counts and worker pools.

Three policies ship, mirroring the evaluation axes of the paper's
cluster study:

* ``slack-greedy`` — the Heracles-driven scheduler: pack the queue
  onto the leaves with the highest per-slot harvest rate, skipping
  leaves that latched their SLO last epoch;
* ``round-robin`` — slack-blind spreading: cycle the leaf list,
  placing one slot at a time wherever Heracles granted cores;
* ``static`` — static provisioning, the paper's baseline: each job is
  pinned to one leaf at admission and never migrates, whatever the
  leaf's slack does.

Every policy honours the same hard constraint: a leaf is never
assigned more slots than its (previous-epoch) Heracles grant, which
itself never exceeds the machine's core count — the capacity
invariant ``tests/test_sched_properties.py`` pins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from .jobs import JobRecord

#: Registered policy names, in the order the docs list them.
POLICIES = ("slack-greedy", "round-robin", "static")


@dataclass
class PlacementContext:
    """Everything a policy may consult for one epoch's decision.

    ``rate_per_core`` (N,) is the previous epoch's harvested
    core-seconds per granted BE core slot per second — the policy's
    estimate of what one slot on each leaf will earn; ``cap`` (N,) is
    the previous epoch's Heracles BE-core grant (the slot supply);
    ``latched`` (N,) flags leaves that hit their SLO last epoch.
    ``jobs`` is the runnable queue in priority order.
    """

    epoch: int
    epoch_len_s: float
    rate_per_core: np.ndarray
    cap: np.ndarray
    latched: np.ndarray
    jobs: Sequence[JobRecord]

    @property
    def leaves(self) -> int:
        """Fleet leaf population."""
        return len(self.cap)


Placement = List[Dict[int, int]]


class Policy:
    """Interface: a named, pure placement function."""

    #: Registry name (also what scenario specs select by).
    name = "abstract"

    def place(self, ctx: PlacementContext) -> Placement:
        """Return one ``{leaf: cores}`` dict per job in ``ctx.jobs``."""
        raise NotImplementedError


class SlackGreedyPolicy(Policy):
    """Pack jobs onto the highest-harvest leaves first.

    Leaves are ranked by predicted per-slot harvest rate (descending,
    leaf index breaking ties); leaves with no predicted harvest and
    leaves that latched their SLO last epoch are excluded outright —
    the scheduler reads the latch exactly as Borg would read a
    Heracles "DISABLED" signal.  Jobs take slots in priority order, up
    to their parallelism limit, until the queue or the slot supply is
    exhausted (the work-conservation property).
    """

    name = "slack-greedy"

    def place(self, ctx: PlacementContext) -> Placement:
        """Greedy descending-rate packing (see class docstring)."""
        usable = (ctx.rate_per_core > 0) & ~ctx.latched
        free = np.where(usable, ctx.cap, 0).astype(int)
        # Stable sort on negated rate: equal-rate leaves stay in leaf
        # order, so the packing is one deterministic sequence.  The
        # cursor never retreats — slots are consumed front to back —
        # keeping one epoch's packing O(leaves + jobs).
        order = [int(i) for i in np.argsort(-ctx.rate_per_core,
                                            kind="stable")
                 if usable[i] and free[i] > 0]
        pos = 0
        placement: Placement = []
        for record in ctx.jobs:
            out: Dict[int, int] = {}
            want = record.job.max_cores
            while want > 0 and pos < len(order):
                leaf = order[pos]
                grab = int(min(free[leaf], want))
                if grab > 0:
                    free[leaf] -= grab
                    want -= grab
                    out[leaf] = out.get(leaf, 0) + grab
                if free[leaf] == 0:
                    pos += 1
            placement.append(out)
        return placement


class RoundRobinPolicy(Policy):
    """Spread slots across the leaf list, blind to slack.

    Cycles the leaf population (rotating the starting leaf by epoch so
    no prefix of the fleet is structurally favoured), handing each job
    one slot at a time wherever a grant exists.  Uses the same grant
    caps as every policy but ignores harvest rates and latches — the
    "spread for balance" strawman between static pinning and
    slack-driven packing.
    """

    name = "round-robin"

    def place(self, ctx: PlacementContext) -> Placement:
        """One-slot-at-a-time rotation over the granted leaves."""
        free = np.maximum(ctx.cap, 0).astype(int)
        leaves = [int(i) for i in range(ctx.leaves) if free[i] > 0]
        placement: Placement = []
        if not leaves:
            return [{} for _ in ctx.jobs]
        cursor = ctx.epoch % len(leaves)
        for record in ctx.jobs:
            out: Dict[int, int] = {}
            taken = 0
            # Keep cycling the ring — one slot per leaf per pass —
            # until the job is satisfied or a full pass finds nothing
            # free (jobs wider than the ring wrap around it).
            progressed = True
            while taken < record.job.max_cores and progressed:
                progressed = False
                for step in range(len(leaves)):
                    if taken >= record.job.max_cores:
                        break
                    leaf = leaves[(cursor + step) % len(leaves)]
                    if free[leaf] > 0:
                        free[leaf] -= 1
                        out[leaf] = out.get(leaf, 0) + 1
                        taken += 1
                        progressed = True
            cursor = (cursor + 1) % len(leaves)
            placement.append(out)
        return placement


class StaticPolicy(Policy):
    """Static provisioning: jobs are pinned at admission, forever.

    Each job holds slots only on its pinned leaf (assigned by the
    scheduler at admission time, round-robin over the population), up
    to that leaf's grant.  No migration, no reaction to latches — this
    is the baseline the paper's TCO argument measures Heracles-driven
    scheduling against.
    """

    name = "static"

    def place(self, ctx: PlacementContext) -> Placement:
        """Slots on the pinned leaf only, capped by its grant."""
        free = np.maximum(ctx.cap, 0).astype(int)
        placement: Placement = []
        for record in ctx.jobs:
            out: Dict[int, int] = {}
            leaf = record.pinned_leaf
            if leaf is not None and free[leaf] > 0:
                grab = int(min(free[leaf], record.job.max_cores))
                free[leaf] -= grab
                out[leaf] = grab
            placement.append(out)
        return placement


_POLICY_TYPES = {cls.name: cls for cls in (SlackGreedyPolicy,
                                           RoundRobinPolicy, StaticPolicy)}
assert set(_POLICY_TYPES) == set(POLICIES)


def make_policy(policy: "str | Policy") -> Policy:
    """Resolve a policy name (or pass an instance through)."""
    if isinstance(policy, Policy):
        return policy
    try:
        return _POLICY_TYPES[policy]()
    except KeyError:
        raise ValueError(f"unknown scheduling policy {policy!r}; choose "
                         f"from {', '.join(POLICIES)}") from None
