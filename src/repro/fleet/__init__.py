"""Fleet layer: sharded simulation of thousands of servers.

Composes the pieces the earlier layers built — the vectorized
:class:`~repro.sim.batch.BatchColocationSim`, the process-pool sweep
runner, and the columnar telemetry stack — into a fleet abstraction:
many heterogeneous clusters, each partitioned into homogeneous shards
that run in parallel and roll up into bit-exact per-cluster histories
plus fleet-level columns.

Three entry points::

    from repro.fleet import ClusterPlan, ShardedFleetSim

    fleet = ShardedFleetSim([ClusterPlan(...), ...], shard_leaves=64)
    result = fleet.run(duration_s=12 * 3600.0)
    result.summary(skip_s=600.0)

Declaratively, the same fleets are scenario specs (``fleet:`` shape,
see ``docs/scenarios.md``) runnable as
``python -m repro.cli fleet <name-or-file>``.
"""

from .aggregate import (AssembledCluster, FleetSlackView, FleetTelemetry,
                        LeafSlackView, assemble_cluster,
                        build_fleet_telemetry, fleet_emu_row,
                        reduce_leaf_epochs, rollup_cluster,
                        weighted_root_latency_row)
from .shard import (ShardResult, ShardTask, overlapping_seed_ranges,
                    partition_leaves, run_shard)
from .simulator import (DEFAULT_SHARD_LEAVES, ClusterOutcome, ClusterPlan,
                        FleetResult, ShardedFleetSim)

__all__ = [
    "DEFAULT_SHARD_LEAVES",
    "AssembledCluster", "ClusterOutcome", "ClusterPlan", "FleetResult",
    "FleetSlackView", "FleetTelemetry", "LeafSlackView",
    "ShardResult", "ShardTask", "ShardedFleetSim",
    "assemble_cluster", "build_fleet_telemetry", "fleet_emu_row",
    "overlapping_seed_ranges", "partition_leaves", "reduce_leaf_epochs",
    "rollup_cluster", "run_shard", "weighted_root_latency_row",
]
