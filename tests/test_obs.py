"""The observability layer's two contracts, pinned.

1. **Zero cost when off, zero perturbation when on** — enabling
   decision tracing or the phase profiler never changes a single
   simulated number: telemetry, summaries and schedules stay
   bit-identical to the untraced run.
2. **Determinism of the trace itself** — the merged decision trace is
   one canonical event stream: byte-identical JSONL across fleet
   engines, shard plans, worker counts, and checkpoint/resume, with
   fleet-global member indices throughout.

Plus the first-divergence explainer (``tools/diff_runs.py``), which is
pinned against a re-creation of the PR 9 mega ``grant_cores`` bug: it
must name the exact tick, column and member, with the triggering chaos
event attached as context.
"""

import dataclasses
import json
import os
import sys

import numpy as np
import pytest

from repro.obs import (FIELDS, KINDS, PHASES, SOURCES, PhaseProfiler,
                       TRACE_ENV, PROFILE_ENV, PROGRESS_ENV, TraceSink,
                       empty_payload, events_to_jsonl, iter_events,
                       make_sink, merge_payloads, merge_profiles,
                       read_jsonl, render_profile, trace_enabled,
                       write_jsonl)
from repro.scenarios import CheckpointSpec, load_scenario, run_scenario
from repro.scenarios.spec import (FleetSpec, InjectionSpec, ScenarioSpec,
                                  ScheduleSpec, ShardSpec, TraceSpec,
                                  JobSpec, WorkloadSpec)
from repro.sim.runner import JOBS_ENV

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
sys.path.insert(0, os.path.join(ROOT, "tools"))

import diff_runs  # noqa: E402

FIELD_NAMES = tuple(name for name, _ in FIELDS)


def fleet_spec(duration_s=40.0, schedule=False, seed=3):
    """A small two-cluster fleet with chaos + actuator injections."""
    clusters = (
        ShardSpec(name="east", leaves=5, lc="websearch",
                  be_mix=("stream-DRAM",), managed=True,
                  trace=TraceSpec(kind="constant", load=0.5)),
        ShardSpec(name="west", leaves=4, lc="memkeyval",
                  be_mix=("brain",), managed=True,
                  trace=TraceSpec(kind="diurnal", low=0.2, high=0.8,
                                  period_s=30.0, noise_sigma=0.0)),
    )
    fleet = FleetSpec(clusters=clusters, shard_leaves=3,
                      record_period_s=5.0)
    injections = tuple(
        injection for injection in (
            InjectionSpec(at_s=10.0, action="disable_be", cluster="east",
                          leaf=2),
            InjectionSpec(at_s=18.0, action="enable_be", cluster="east",
                          leaf=2),
            InjectionSpec(at_s=14.0, action="straggler", value=0.5,
                          cluster="west", leaf=1),
            InjectionSpec(at_s=25.0, action="power_cap", value=0.7),
        ) if injection.at_s < duration_s)
    kwargs = dict(name="obs-fleet", duration_s=duration_s, dt_s=1.0,
                  warmup_s=0.0, seed=seed, injections=injections)
    if schedule:
        jobs = (JobSpec(name="crunch", demand_core_s=60.0, max_cores=4,
                        count=2),)
        return ScenarioSpec(schedule=ScheduleSpec(fleet=fleet, jobs=jobs,
                                                  epoch_s=10.0), **kwargs)
    return ScenarioSpec(fleet=fleet, **kwargs)


def member_spec(duration_s=30.0):
    """A two-member scenario with one chaos injection."""
    return ScenarioSpec(
        name="obs-members", duration_s=duration_s, warmup_s=0.0, seed=1,
        members=(
            WorkloadSpec(lc="websearch", be="stream-DRAM",
                         trace=TraceSpec(kind="constant", load=0.5)),
            WorkloadSpec(lc="memkeyval", be="brain",
                         trace=TraceSpec(kind="constant", load=0.6)),
        ),
        injections=(InjectionSpec(at_s=8.0, action="disable_be", leaf=0),
                    InjectionSpec(at_s=16.0, action="enable_be", leaf=0)))


def run_traced(spec, jobs=1, monkeypatch=None, trace=True, profile=False):
    """Run a scenario with the obs env toggles pinned."""
    saved = {name: os.environ.get(name)
             for name in (TRACE_ENV, PROFILE_ENV, JOBS_ENV)}
    os.environ[JOBS_ENV] = str(jobs)
    if trace:
        os.environ[TRACE_ENV] = "1"
    else:
        os.environ.pop(TRACE_ENV, None)
    if profile:
        os.environ[PROFILE_ENV] = "1"
    else:
        os.environ.pop(PROFILE_ENV, None)
    try:
        return run_scenario(spec, processes=None)
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


def with_fleet(spec, **overrides):
    """Replace fleet engine/shard knobs on a fleet or schedule spec."""
    if spec.schedule is not None:
        fleet = dataclasses.replace(spec.schedule.fleet, **overrides)
        return dataclasses.replace(
            spec, schedule=dataclasses.replace(spec.schedule, fleet=fleet))
    return dataclasses.replace(
        spec, fleet=dataclasses.replace(spec.fleet, **overrides))


class TestTraceSchema:
    def test_sink_emits_canonical_fields(self):
        sink = TraceSink()
        sink.emit(4.0, 2, "controller", "cores", a=3.0, b=4.0, slo=0.9,
                  load=0.5)
        sink.emit(1.0, -1, "checkpoint", "save", a=10.0)
        payload = sink.payload()
        assert tuple(payload) == FIELD_NAMES
        assert all(len(payload[name]) == 2 for name in payload)

    def test_unknown_source_and_kind_are_rejected(self):
        sink = TraceSink()
        with pytest.raises(KeyError):
            sink.emit(0.0, 0, "nonsense", "cores")
        with pytest.raises(KeyError):
            sink.emit(0.0, 0, "controller", "nonsense")

    def test_merge_is_permutation_invariant(self):
        sink = TraceSink()
        events = [(3.0, 1, "chaos", "chaos_straggler", 0.5),
                  (1.0, 0, "controller", "be_gate", 0.0),
                  (3.0, 0, "controller", "cores", 2.0),
                  (2.0, 2, "sched", "place", 4.0)]
        for t, m, source, kind, a in events:
            sink.emit(t, m, source, kind, a=a)
        forward = sink.payload()
        sink2 = TraceSink()
        for t, m, source, kind, a in reversed(events):
            sink2.emit(t, m, source, kind, a=a)
        merged_a = merge_payloads([forward])
        merged_b = merge_payloads([sink2.payload()])
        assert events_to_jsonl(merged_a) == events_to_jsonl(merged_b)
        times = merged_a["t_s"]
        assert np.all(times[:-1] <= times[1:])

    def test_jsonl_round_trip_and_nan_policy(self, tmp_path):
        sink = TraceSink()
        sink.emit(5.0, 3, "chaos", "chaos_power_cap", a=0.7)
        merged = merge_payloads([sink.payload()])
        path = write_jsonl(merged, str(tmp_path / "t.jsonl"))
        events = read_jsonl(path)
        assert events == list(iter_events(merged))
        # unset payload fields export as JSON null, never NaN
        assert events[0]["b"] is None
        assert "NaN" not in (tmp_path / "t.jsonl").read_text()

    def test_empty_payload_has_every_field(self):
        payload = empty_payload()
        assert tuple(payload) == FIELD_NAMES
        assert all(len(payload[name]) == 0 for name in payload)
        assert events_to_jsonl(merge_payloads([payload])) == ""

    def test_vocabulary_is_fixed(self):
        assert SOURCES == ("controller", "chaos", "sched", "checkpoint")
        assert len(set(KINDS)) == len(KINDS)
        for kind in ("be_gate", "cores", "llc", "dvfs", "net_ceil",
                     "place", "evict", "save"):
            assert kind in KINDS
        assert all(k.startswith("chaos_") for k in KINDS
                   if k not in ("be_gate", "cores", "llc", "dvfs",
                                "net_ceil", "place", "evict", "save"))

    def test_make_sink_follows_env(self, monkeypatch):
        monkeypatch.delenv(TRACE_ENV, raising=False)
        assert make_sink() is None
        assert not trace_enabled()
        monkeypatch.setenv(TRACE_ENV, "1")
        assert isinstance(make_sink(), TraceSink)
        assert trace_enabled()


class TestTraceNeverPerturbs:
    """Contract 1: tracing on ≡ tracing off, bit for bit."""

    @pytest.mark.parametrize("engine", ["sharded", "mega"])
    def test_fleet_telemetry_identical(self, engine):
        spec = with_fleet(fleet_spec(), engine=engine)
        spec.validate()
        plain = run_traced(spec, trace=False)
        traced = run_traced(spec, trace=True, profile=True)
        assert traced.fleet.summary(skip_s=0.0) == \
            plain.fleet.summary(skip_s=0.0)
        for outcome in plain.fleet.clusters:
            other = traced.fleet.cluster(outcome.name)
            for name in ("t_s", "load", "root_latency_ms", "emu"):
                assert np.array_equal(other.history.column(name),
                                      outcome.history.column(name))
        assert plain.trace is None and traced.trace is not None
        assert len(traced.trace["t_s"]) > 0

    def test_schedule_outcome_identical(self):
        spec = fleet_spec(schedule=True)
        spec.validate()
        plain = run_traced(spec, trace=False)
        traced = run_traced(spec, trace=True)
        assert traced.schedule.summary() == plain.schedule.summary()
        kinds = {event["kind"] for event in iter_events(traced.trace)}
        assert "place" in kinds

    def test_members_identical(self):
        spec = member_spec()
        spec.validate()
        plain = run_traced(spec, trace=False)
        traced = run_traced(spec, trace=True)
        for a, b in zip(plain.members, traced.members):
            for name in ("tail_latency_ms", "emu", "be_throughput_norm"):
                assert np.array_equal(a.history.column(name),
                                      b.history.column(name))
        assert len(traced.trace["t_s"]) > 0


class TestTraceDeterminism:
    """Contract 2: one canonical event stream, however the fleet ran."""

    VARIANTS = (
        ("sharded shard=3 jobs=1", dict(engine="sharded"), 1),
        ("sharded shard=1 jobs=4", dict(engine="sharded",
                                        shard_leaves=1), 4),
        ("sharded shard=64 jobs=1", dict(engine="sharded",
                                         shard_leaves=64), 1),
        ("mega jobs=1", dict(engine="mega"), 1),
        ("mega jobs=4", dict(engine="mega"), 4),
    )

    @pytest.mark.parametrize("schedule", [False, True])
    def test_jsonl_identical_across_engines_plans_jobs(self, schedule):
        spec = fleet_spec(schedule=schedule)
        spec.validate()
        reference = None
        for what, overrides, jobs in self.VARIANTS:
            result = run_traced(with_fleet(spec, **overrides), jobs=jobs)
            text = events_to_jsonl(result.trace)
            if reference is None:
                reference = text
                assert text  # the injections guarantee events
            else:
                assert text == reference, f"{what}: trace diverged"

    def test_member_indices_are_fleet_global(self):
        spec = fleet_spec()
        spec.validate()
        result = run_traced(spec)
        members = {event["member"]
                   for event in iter_events(result.trace)}
        leaves = sum(c.leaves for c in spec.fleet.clusters)
        assert members <= set(range(-1, leaves))
        # west's straggler chaos lands at global index 5 + 1 == 6
        straggler = [event for event in iter_events(result.trace)
                     if event["kind"] == "chaos_straggler"]
        assert [event["member"] for event in straggler] == [6]

    @pytest.mark.parametrize("engine", ["sharded", "mega"])
    def test_checkpoint_resume_trace_identical(self, engine, tmp_path):
        spec = with_fleet(fleet_spec(), engine=engine)
        ckpt = str(tmp_path / "ckpt")
        saver = dataclasses.replace(
            spec, checkpoint=CheckpointSpec(save=ckpt, at_s=20.0))
        saver.validate()
        saved = run_traced(saver)
        resumer = dataclasses.replace(
            spec, checkpoint=CheckpointSpec(resume=ckpt))
        resumed = run_traced(resumer)
        assert events_to_jsonl(resumed.trace) == \
            events_to_jsonl(saved.trace)
        kinds = [event["kind"] for event in iter_events(saved.trace)
                 if event["source"] == "checkpoint"]
        assert kinds == ["save"]


class TestProfiler:
    def test_phases_fixed_and_sums_sane(self):
        spec = fleet_spec(duration_s=20.0)
        spec.validate()
        result = run_traced(spec, trace=False, profile=True)
        assert result.profile is not None
        assert set(result.profile) <= set(PHASES)
        assert all(value >= 0.0 for value in result.profile.values())
        core = {"chaos", "physics", "telemetry", "controllers"}
        assert sum(result.profile.get(name, 0.0) for name in core) > 0.0

    def test_merge_accumulates(self):
        one = PhaseProfiler()
        one.add("physics", 1.5)
        two = PhaseProfiler()
        two.add("physics", 0.5)
        two.add("ipc", 1.0)
        merged = merge_profiles([one.as_dict(), two.as_dict()])
        assert merged["physics"] == 2.0
        assert merged["ipc"] == 1.0
        with pytest.raises(KeyError):
            one.add("nonsense", 1.0)

    def test_render_is_share_ordered(self):
        text = render_profile({"physics": 3.0, "ipc": 1.0})
        lines = text.strip().splitlines()
        assert "75.0%" in lines[1] and "physics" in lines[1]
        assert lines[-1].startswith("total")


class TestDiffRuns:
    def test_identical_columns_yield_none(self):
        times = np.arange(4.0)
        cols = {"x": np.arange(8.0).reshape(4, 2)}
        assert diff_runs.first_divergence(times, cols, cols) is None

    def test_nan_equals_nan(self):
        times = np.arange(2.0)
        cols = {"x": np.array([np.nan, 1.0])}
        assert diff_runs.first_divergence(
            times, cols, {"x": np.array([np.nan, 1.0])}) is None

    def test_earliest_tick_then_name_then_member(self):
        times = np.arange(3.0) * 10.0
        a = {"b_col": np.zeros((3, 2)), "a_col": np.zeros((3, 2))}
        b = {"b_col": np.zeros((3, 2)), "a_col": np.zeros((3, 2))}
        b["b_col"][1, 0] = 1.0   # tick 1
        b["a_col"][1, 1] = 2.0   # tick 1, earlier name, later member
        b["a_col"][2, 0] = 3.0   # later tick: ignored
        div = diff_runs.first_divergence(times, a, b)
        assert (div.tick, div.column, div.member) == (1, "a_col", 1)
        assert div.t_s == 10.0
        assert (div.value_a, div.value_b) == (0.0, 2.0)

    def test_shared_column_reports_no_member(self):
        times = np.arange(3.0)
        a = {"fleet_emu": np.array([1.0, 1.0, 1.0])}
        b = {"fleet_emu": np.array([1.0, 0.5, 1.0])}
        div = diff_runs.first_divergence(times, a, b)
        assert div.member is None and div.tick == 1

    def test_mismatched_schemas_are_structural_errors(self):
        times = np.arange(2.0)
        with pytest.raises(ValueError):
            diff_runs.first_divergence(times, {"x": np.zeros(2)},
                                       {"y": np.zeros(2)})
        with pytest.raises(ValueError):
            diff_runs.first_divergence(times, {"x": np.zeros(2)},
                                       {"x": np.zeros(3)})

    def test_context_window_reaches_lagged_trigger(self):
        sink = TraceSink()
        sink.emit(20.0, 2, "chaos", "chaos_disable_be", b=20.0)
        trace = merge_payloads([sink.payload()])
        events = diff_runs.nearest_events(trace, 19.0, member=2,
                                          window=1.0)
        assert [event["kind"] for event in events] == ["chaos_disable_be"]
        assert diff_runs.nearest_events(trace, 19.0, member=2) == []


class TestDiffRunsPinpointsPR9MegaBug:
    """The acceptance gate: re-create the PR 9 mega ``grant_cores``
    regression (reading ``be_cores_now()`` mid-loop instead of the
    chaos-aware lagged gather) and demand the explainer names the
    exact tick, column and member, with the triggering chaos event
    attached."""

    def run_fleet(self, spec, engine, buggy=False):
        """One traced per-tick-slack fleet run, optionally re-broken."""
        from repro.scenarios.compiler import compile_scenario
        from repro.sim.megabatch import MegaClusterSim

        fleet_spec_ = dataclasses.replace(spec.fleet, engine=engine)
        fleet = compile_scenario(spec)._build_fleet(fleet_spec_)
        original = MegaClusterSim.tick

        def buggy_tick(sim, dt_s):
            pre = sim.be_cores_now()   # pre-chaos read: the old bug
            result = original(sim, dt_s)
            sim._gathered_be_cores = pre
            return result

        if buggy:
            MegaClusterSim.tick = buggy_tick
        try:
            return fleet.run(spec.duration_s, dt_s=spec.dt_s,
                             slack_epoch_s=spec.dt_s)
        finally:
            MegaClusterSim.tick = original

    def test_exact_tick_column_member_and_trigger(self, monkeypatch):
        monkeypatch.setenv(TRACE_ENV, "1")
        monkeypatch.setenv(JOBS_ENV, "1")
        spec = fleet_spec(duration_s=30.0)
        spec.validate()
        reference = self.run_fleet(spec, "sharded")
        rebroken = self.run_fleet(spec, "mega", buggy=True)
        groups = {group: (times, cols, window) for group, times, cols,
                  window in diff_runs.fleet_columns(reference)}
        times, cols, window = groups["slack"]
        buggy_cols = {group: cols_ for group, _, cols_, _ in
                      diff_runs.fleet_columns(rebroken)}["slack"]
        div = diff_runs.first_divergence(times, cols, buggy_cols,
                                         trace=reference.trace,
                                         window=window)
        assert div is not None
        # The first chaos BE-toggle is disable_be on east leaf 2 at
        # t=10 s; the lagged gather writes it into slack row 9.
        assert div.column == "grant_cores"
        assert div.member == 2
        assert div.tick == 9
        assert div.value_a == 0.0      # chaos disabled BE: no grant
        assert div.value_b > 0.0       # the buggy read missed it
        kinds = [event["kind"] for event in div.context]
        assert "chaos_disable_be" in kinds

    def test_healthy_engines_report_no_divergence(self, monkeypatch):
        monkeypatch.setenv(TRACE_ENV, "1")
        monkeypatch.setenv(JOBS_ENV, "1")
        spec = fleet_spec(duration_s=20.0)
        spec.validate()
        a = self.run_fleet(spec, "sharded")
        b = self.run_fleet(spec, "mega")
        for group, times, cols, window in diff_runs.fleet_columns(a):
            other = [g[2] for g in diff_runs.fleet_columns(b)
                     if g[0] == group][0]
            assert diff_runs.first_divergence(times, cols, other) is None


class TestCliJsonAndArtifacts:
    @pytest.fixture(autouse=True)
    def _isolated_obs_env(self):
        """Snapshot/restore the obs toggles around every CLI test.

        ``repro.cli`` enables --trace/--profile/--progress by exporting
        the env toggles process-wide (correct for a real CLI process,
        which exits); in-process tests must put the environment back or
        later tests inherit observability they never asked for.
        """
        names = (TRACE_ENV, PROFILE_ENV, PROGRESS_ENV)
        saved = {name: os.environ.get(name) for name in names}
        for name in names:
            os.environ.pop(name, None)
        yield
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value

    def write_spec(self, tmp_path):
        path = tmp_path / "obs.json"
        path.write_text(json.dumps(fleet_spec(duration_s=20.0).to_data())
                        + "\n")
        return str(path)

    def test_scenario_json_is_machine_readable(self, tmp_path, capsys,
                                               monkeypatch):
        from repro.cli import main
        monkeypatch.setenv(JOBS_ENV, "1")
        main(["scenario", self.write_spec(tmp_path), "--json"])
        out = capsys.readouterr().out
        doc = json.loads(out)
        assert doc["kind"] == "fleet"
        assert doc["scenario"] == "obs-fleet"
        assert "fleet" in doc

    def test_trace_flag_writes_canonical_jsonl(self, tmp_path, capsys,
                                               monkeypatch):
        from repro.cli import main
        monkeypatch.setenv(JOBS_ENV, "1")
        trace_path = tmp_path / "out.jsonl"
        main(["scenario", self.write_spec(tmp_path), "--json",
              "--trace", str(trace_path)])
        err = capsys.readouterr().err
        events = read_jsonl(str(trace_path))
        assert events, "trace file is empty"
        assert f"-> {trace_path}" in err
        for event in events:
            assert event["source"] in SOURCES
            assert event["kind"] in KINDS

    def test_profile_flag_prints_phase_table(self, tmp_path, capsys,
                                             monkeypatch):
        from repro.cli import main
        monkeypatch.setenv(JOBS_ENV, "1")
        main(["scenario", self.write_spec(tmp_path), "--json",
              "--profile"])
        err = capsys.readouterr().err
        assert "phase" in err and "physics" in err

    def test_progress_heartbeat_reaches_stderr(self, tmp_path, capsys,
                                               monkeypatch):
        from repro.cli import main
        monkeypatch.setenv(JOBS_ENV, "1")
        main(["scenario", self.write_spec(tmp_path), "--json",
              "--progress"])
        err = capsys.readouterr().err
        assert "[progress]" in err and "100%" in err

    def test_sched_json_includes_policies(self, tmp_path, capsys,
                                          monkeypatch):
        from repro.cli import main
        monkeypatch.setenv(JOBS_ENV, "1")
        path = tmp_path / "sched.json"
        path.write_text(json.dumps(
            fleet_spec(duration_s=20.0, schedule=True).to_data()) + "\n")
        main(["sched", str(path), "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "schedule"
        assert "policies" in doc and doc["policies"]
