"""Observability cost gates: zero when off, bounded when on.

The PR-10 observability layer (``repro.obs``) instruments every engine
tick — actuator-delta decision tracing, chaos/scheduler/checkpoint
events, wall-clock phase counters — behind a single ``is None`` check
per hook.  This gate prices that promise on the registered 1000-leaf
``mixed-fleet-1k`` scenario under the mega engine (time-compressed for
CI; ``REPRO_BENCH_OBS_COMPRESSION=1`` restores the full 12-hour day):

* **disabled path** — an untraced run measured against the mean of
  its two untraced neighbours must agree within ``DISABLED_TOL``
  (2%): with observability off, the instrumented build is
  indistinguishable from noise — there is no measurable "off" tax;
* **traced path** — enabling *full* observability (``REPRO_TRACE=1`` +
  ``REPRO_PROFILE=1``) may cost at most ``TRACED_TOL`` (15%) over the
  untraced wall, while producing the merged decision trace and the
  fleet-wide tick-phase breakdown printed below;

Shared CI boxes drift (thermal throttling, noisy neighbours), so both
gates use the same drift-immune statistic: each sample compares one
*center* run against the mean of the two runs surrounding it — linear
drift cancels exactly — and the gate takes the median over all
rounds, which sheds the heavy-tailed scheduling outliers.  The traced
sample's center is a traced run; the disabled sample's center is just
another untraced run, so its median measures the pure noise floor of
the identical-work comparison.  Because that comparison is a *null*
(both arms execute byte-for-byte the same code — it can detect noise,
never a real off-path tax), the disabled gate is an equivalence test:
it fails only when the A/B deviation exceeds ``DISABLED_TOL`` *and*
is statistically significant against the observed round spread
(> 2.5 standard errors of the median), so an unlucky noise draw
cannot fail it while a genuinely skewed measurement still does.
* **bit identity** — the traced run's fleet summary and per-cluster
  histories equal the untraced run's exactly; observability never
  changes a simulated number.

Measurements (gates, walls, trace volume, and the 1000-leaf phase
breakdown) land in ``BENCH_PR10.json`` (path overridable via
``REPRO_BENCH_OBS_OUT``); ``tools/bench_report.py`` folds them into
the CI perf-trajectory artifact.
"""

import dataclasses
import json
import math
import os
import statistics
import time

import numpy as np
from conftest import regenerate

from repro.obs import PROFILE_ENV, TRACE_ENV, render_profile
from repro.scenarios import compile_scenario
from repro.scenarios.library import mixed_fleet_1k_scenario

COMPRESSION = float(os.environ.get("REPRO_BENCH_OBS_COMPRESSION", "288"))
#: Off-vs-off A/B agreement demanded of the disabled path (2%).
DISABLED_TOL = 0.02
#: Wall-clock overhead allowed for trace + profile both on (15%).
TRACED_TOL = 0.15
#: Rounds of the five-run sequence ``off, on, off, off, off``: one
#: drift-immune traced sample (the ``on`` center vs its two ``off``
#: neighbours) and one disabled sample (the fourth run vs *its* two
#: ``off`` neighbours) per round.
ROUNDS = 12
OUT_ENV = "REPRO_BENCH_OBS_OUT"
DEFAULT_OUT = "BENCH_PR10.json"
CLUSTER_FIELDS = ("t_s", "load", "root_latency_ms", "root_slo_fraction",
                  "emu")


def _scenario():
    spec = mixed_fleet_1k_scenario(time_compression=COMPRESSION)
    return dataclasses.replace(
        spec, fleet=dataclasses.replace(spec.fleet, engine="mega"))


def _run(spec, traced):
    """One in-process mega run with the obs toggles pinned; timed."""
    saved = {name: os.environ.get(name)
             for name in (TRACE_ENV, PROFILE_ENV)}
    for name in (TRACE_ENV, PROFILE_ENV):
        if traced:
            os.environ[name] = "1"
        else:
            os.environ.pop(name, None)
    try:
        start = time.perf_counter()
        result = compile_scenario(spec).run(processes=1)
        return result, time.perf_counter() - start
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


def test_bench_obs_overhead_gates(benchmark):
    spec = _scenario()
    leaves = spec.fleet.total_leaves()

    # Warm the per-process memoized hardware models off the clock, so
    # the one-off profiling cost lands on neither arm.
    _run(spec, traced=False)

    # Each round runs ``off, on, off, off, off`` back-to-back and
    # yields one sample per gate, both with the same center-vs-ends
    # shape: the traced sample is run 2 against the mean of runs 1
    # and 3; the disabled sample is run 4 against the mean of runs 3
    # and 5.  Linear drift across a round cancels exactly in both, and
    # the median over rounds sheds heavy-tailed scheduling outliers —
    # the only statistic that is stable on a noisy shared box.
    off_ratios, on_ratios = [], []
    off_walls, on_walls = [], []
    untraced = traced = None
    for i in range(ROUNDS):
        untraced, off_1 = _run(spec, traced=False)
        if i == 0:
            traced, on_wall = regenerate(benchmark, _run, spec, True)
        else:
            traced, on_wall = _run(spec, traced=True)
        _, off_2 = _run(spec, traced=False)
        _, off_3 = _run(spec, traced=False)
        _, off_4 = _run(spec, traced=False)
        off_walls += [off_1, off_2, off_3, off_4]
        on_walls.append(on_wall)
        on_ratios.append(on_wall / ((off_1 + off_2) / 2.0))
        off_ratios.append(off_3 / ((off_2 + off_4) / 2.0))

    wall_off = statistics.median(off_walls)
    wall_on = statistics.median(on_walls)
    disabled_ab = abs(statistics.median(off_ratios) - 1.0)
    traced_overhead = statistics.median(on_ratios) - 1.0
    # Standard error of the median of the disabled A/B samples
    # (1.2533 = sqrt(pi/2), the normal-theory median inflation): the
    # yardstick the equivalence gate measures the deviation against.
    disabled_se = (1.2533 * statistics.stdev(off_ratios)
                   / math.sqrt(len(off_ratios)))

    events = len(traced.trace["t_s"])
    profile = dict(traced.profile)

    print()
    print(f"{leaves}-leaf mega fleet, {spec.duration_s / 60:.0f} simulated "
          f"minutes (compression {COMPRESSION:.0f}x):")
    print(f"  untraced: {wall_off:.2f}s wall (median of {4 * ROUNDS}; "
          f"off-vs-off A/B {disabled_ab:.1%} +- {disabled_se:.1%} SE)")
    print(f"  traced+profiled: {wall_on:.2f}s wall (median of {ROUNDS} "
          f"center-vs-ends rounds) -> +{traced_overhead:.1%}, "
          f"{events} trace events")
    print(render_profile(profile))

    # -- bit identity: observability never changes a number -------------
    assert traced.fleet.summary(skip_s=spec.warmup_s) == \
        untraced.fleet.summary(skip_s=spec.warmup_s), \
        "tracing changed the fleet summary"
    for outcome in untraced.fleet.clusters:
        other = traced.fleet.cluster(outcome.name)
        for name in CLUSTER_FIELDS:
            assert np.array_equal(other.history.column(name),
                                  outcome.history.column(name)), (
                f"cluster {outcome.name!r} column {name!r} diverged "
                f"with tracing on")
    assert events > 0, "traced run produced no decision events"

    report = {
        "benchmark": "test_bench_obs",
        "leaves": leaves,
        "time_compression": COMPRESSION,
        "duration_s": spec.duration_s,
        "cpus": os.cpu_count() or 1,
        "wall_s_off": round(wall_off, 3),
        "wall_s_traced": round(wall_on, 3),
        "disabled_ab_ratio": round(disabled_ab, 4),
        "disabled_ab_se": round(disabled_se, 4),
        "traced_overhead": round(traced_overhead, 4),
        "gate_disabled_tol": DISABLED_TOL,
        "gate_traced_tol": TRACED_TOL,
        "trace_events": events,
        "phase_seconds": {name: round(value, 4)
                          for name, value in sorted(profile.items())},
        "bit_identical": True,
    }
    out_path = os.environ.get(OUT_ENV, DEFAULT_OUT)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"  report: {out_path}")

    # -- the gates ------------------------------------------------------
    assert disabled_ab <= max(DISABLED_TOL, 2.5 * disabled_se), (
        f"off-vs-off A/B halves differ by {disabled_ab:.1%} "
        f"(> {DISABLED_TOL:.0%} and > 2.5 standard errors "
        f"{2.5 * disabled_se:.1%}): the disabled path is not "
        f"noise-level")
    assert traced_overhead <= TRACED_TOL, (
        f"full observability costs +{traced_overhead:.1%} "
        f"(> {TRACED_TOL:.0%}) on the {leaves}-leaf mega run")
