"""Tests for the top-level controller (Algorithm 1)."""

import pytest

from repro.core.config import HeraclesConfig
from repro.core.state import ControlState
from repro.core.top_level import TopLevelController
from repro.hardware.server import Server
from repro.hardware.spec import default_machine_spec
from repro.sim.actuators import Actuators
from repro.sim.monitors import LatencyMonitor

SLO_MS = 20.0


@pytest.fixture
def rig():
    server = Server(default_machine_spec())
    actuators = Actuators(server)
    state = ControlState()
    monitor = LatencyMonitor()
    controller = TopLevelController(HeraclesConfig(), state, actuators,
                                    monitor, slo_target_ms=SLO_MS)
    return controller, state, actuators, monitor


def feed(monitor, now_s, tail_ms, load, span=16):
    """Fill the monitor's window with uniform samples ending at now_s."""
    start = max(0.0, now_s - span + 1)
    for i in range(int(span)):
        monitor.record(start + i, tail_ms, load)


class TestAlgorithm1:
    def test_negative_slack_disables_and_cools_down(self, rig):
        controller, state, actuators, monitor = rig
        actuators.enable_be()
        feed(monitor, 15.0, tail_ms=25.0, load=0.5)  # slack < 0
        controller.step(15.0)
        assert not actuators.be_enabled
        assert state.in_cooldown(15.0 + 1.0)
        assert state.in_cooldown(15.0 + 290.0)
        assert not state.in_cooldown(15.0 + 301.0)

    def test_high_load_disables_without_cooldown(self, rig):
        controller, state, actuators, monitor = rig
        actuators.enable_be()
        feed(monitor, 15.0, tail_ms=10.0, load=0.90)
        controller.step(15.0)
        assert not actuators.be_enabled
        assert not state.in_cooldown(16.0)

    def test_low_load_enables(self, rig):
        controller, state, actuators, monitor = rig
        feed(monitor, 15.0, tail_ms=10.0, load=0.50)
        controller.step(15.0)
        assert actuators.be_enabled
        assert actuators.be_cores == 1  # fresh grant

    def test_hysteresis_band_neither_enables_nor_disables(self, rig):
        controller, state, actuators, monitor = rig
        feed(monitor, 15.0, tail_ms=10.0, load=0.82)
        controller.step(15.0)
        assert not actuators.be_enabled  # was off, stays off

        actuators.enable_be()
        feed(monitor, 30.0, tail_ms=10.0, load=0.82)
        controller.step(30.0)
        assert actuators.be_enabled  # was on, stays on

    def test_cooldown_blocks_reenable(self, rig):
        controller, state, actuators, monitor = rig
        actuators.enable_be()
        feed(monitor, 15.0, tail_ms=25.0, load=0.5)
        controller.step(15.0)
        assert not actuators.be_enabled
        feed(monitor, 30.0, tail_ms=5.0, load=0.5)
        controller.step(30.0)
        assert not actuators.be_enabled  # still cooling down
        feed(monitor, 400.0, tail_ms=5.0, load=0.5)
        controller.step(400.0)
        assert actuators.be_enabled

    def test_small_slack_disallows_growth(self, rig):
        controller, state, actuators, monitor = rig
        actuators.enable_be()
        feed(monitor, 15.0, tail_ms=18.5, load=0.5)  # slack 7.5%
        controller.step(15.0)
        assert actuators.be_enabled
        assert not state.growth_allowed
        assert actuators.be_cores == 1  # no core cut at 5-10% slack

    def test_tiny_slack_cuts_cores_to_floor(self, rig):
        controller, state, actuators, monitor = rig
        actuators.enable_be()
        actuators.set_be_cores(10)
        feed(monitor, 15.0, tail_ms=19.5, load=0.5)  # slack 2.5%
        controller.step(15.0)
        assert actuators.be_enabled
        assert actuators.be_cores == HeraclesConfig().be_cores_floor

    def test_large_slack_allows_growth(self, rig):
        controller, state, actuators, monitor = rig
        state.growth_allowed = False
        feed(monitor, 15.0, tail_ms=5.0, load=0.5)
        controller.step(15.0)
        assert state.growth_allowed

    def test_poll_period_respected(self, rig):
        controller, state, actuators, monitor = rig
        feed(monitor, 15.0, tail_ms=10.0, load=0.5)
        controller.step(15.0)
        assert actuators.be_enabled
        actuators.disable_be()
        feed(monitor, 30.0, tail_ms=10.0, load=0.5)
        controller.step(20.0)  # only 5s later: not due
        assert not actuators.be_enabled
        controller.step(30.0)  # 15s later: due
        assert actuators.be_enabled

    def test_no_samples_no_action(self, rig):
        controller, state, actuators, monitor = rig
        controller.step(0.0)
        assert not actuators.be_enabled
        assert state.slack == pytest.approx(1.0)  # untouched

    def test_state_is_published(self, rig):
        controller, state, actuators, monitor = rig
        feed(monitor, 15.0, tail_ms=10.0, load=0.42)
        controller.step(15.0)
        assert state.load == pytest.approx(0.42)
        assert state.slack == pytest.approx(0.5)
        assert state.last_latency_ms == pytest.approx(10.0)

    def test_validation(self, rig):
        controller, state, actuators, monitor = rig
        with pytest.raises(ValueError):
            TopLevelController(HeraclesConfig(), state, actuators, monitor,
                               slo_target_ms=0.0)


class TestConfigValidation:
    def test_defaults_are_paper_constants(self):
        cfg = HeraclesConfig()
        assert cfg.poll_period_s == 15.0
        assert cfg.load_disable_threshold == 0.85
        assert cfg.load_enable_threshold == 0.80
        assert cfg.cooldown_s == 300.0
        assert cfg.slack_no_growth == 0.10
        assert cfg.slack_cut_cores == 0.05
        assert cfg.dram_limit_fraction == 0.90
        assert cfg.power_tdp_threshold == 0.90
        assert cfg.core_mem_period_s == 2.0
        assert cfg.power_period_s == 2.0
        assert cfg.network_period_s == 1.0

    def test_bad_hysteresis(self):
        import dataclasses
        bad = dataclasses.replace(HeraclesConfig(),
                                  load_enable_threshold=0.9,
                                  load_disable_threshold=0.8)
        with pytest.raises(ValueError):
            bad.validate()

    def test_bad_slack_bands(self):
        import dataclasses
        bad = dataclasses.replace(HeraclesConfig(), slack_cut_cores=0.5)
        with pytest.raises(ValueError):
            bad.validate()

    def test_bad_periods(self):
        import dataclasses
        bad = dataclasses.replace(HeraclesConfig(), network_period_s=0.0)
        with pytest.raises(ValueError):
            bad.validate()


class TestControlState:
    def test_cooldown_extends_not_shrinks(self):
        state = ControlState()
        state.enter_cooldown(0.0, 100.0)
        state.enter_cooldown(10.0, 10.0)  # would end earlier
        assert state.in_cooldown(50.0)

    def test_can_grow_requires_all_conditions(self):
        state = ControlState()
        assert state.can_grow_be(0.0, be_enabled=True)
        assert not state.can_grow_be(0.0, be_enabled=False)
        state.growth_allowed = False
        assert not state.can_grow_be(0.0, be_enabled=True)
        state.growth_allowed = True
        state.enter_cooldown(0.0, 10.0)
        assert not state.can_grow_be(5.0, be_enabled=True)

    def test_negative_cooldown_rejected(self):
        with pytest.raises(ValueError):
            ControlState().enter_cooldown(0.0, -1.0)
