"""Figure 6: shared-resource utilization under Heracles.

Three metric families per LC workload, as a function of load and
colocated BE task:

* **DRAM bandwidth** (% of available) — Heracles sizes BE tasks to stay
  clear of saturation; stream-DRAM/streetview colocations run high DRAM
  with few cores.
* **CPU utilization** (% of cores in use) — compute-bound colocations
  (brain, cpu_pwr) fill the cores instead.
* **CPU power** (% of TDP) — rises with colocation; the 20%-load case
  shows the energy-efficiency win: EMU triples while power grows
  modestly (2.3-3.4x efficiency gain, §5.2).

These are projections of the Figure 4 sweep.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from .fig4_latency_slo import (DEFAULT_LOADS, FIG4_BE_TASKS,
                               ColocationSweep, run_sweep)

#: metric attribute on ColocationResult -> normalizer
FIG6_METRICS = {
    "dram": "mean_dram_gbps",
    "cpu": "mean_cpu_utilization",
    "power": "mean_power_fraction",
}


def run_fig6(lc_names: Optional[Sequence[str]] = None,
             be_tasks: Sequence[str] = FIG4_BE_TASKS,
             loads: Sequence[float] = DEFAULT_LOADS,
             duration_s: float = 900.0) -> Dict[str, ColocationSweep]:
    lc_names = lc_names or ("websearch", "ml_cluster", "memkeyval")
    return {name: run_sweep(name, be_tasks=be_tasks, loads=loads,
                            duration_s=duration_s)
            for name in lc_names}


def metric_fraction_series(sweep: ColocationSweep, be_name: str,
                           metric: str) -> list:
    """One metric series normalized to machine capacity where needed."""
    if metric not in FIG6_METRICS:
        raise KeyError(f"unknown metric {metric!r}; "
                       f"choose from {sorted(FIG6_METRICS)}")
    attr = FIG6_METRICS[metric]
    values = sweep.metric_series(be_name, attr)
    if metric == "dram":
        from ..hardware.spec import default_machine_spec
        capacity = default_machine_spec().total_dram_bw_gbps
        return [v / capacity for v in values]
    return values


def energy_efficiency_gain(sweep: ColocationSweep, be_name: str,
                           load: float) -> float:
    """The §5.2 efficiency arithmetic at one load point:
    (EMU achieved / baseline load) / (power achieved / baseline power).

    Baseline power is approximated by the same run's idle-plus-LC
    component, i.e. what the server would draw at `load` alone — we
    recompute it from a no-BE run embedded in the sweep's baseline data.
    """
    idx = sweep.loads.index(load)
    result = sweep.results[be_name][idx]
    emu_gain = result.mean_emu / max(1e-9, load)
    # Power at the same load without colocation.
    from ..hardware.server import Server
    from ..workloads.base import Allocation, spread_cores
    from ..workloads.latency_critical import make_lc_workload
    lc = make_lc_workload(sweep.lc_name)
    server = Server(lc.spec)
    alloc = Allocation(cores_by_socket=spread_cores(
        lc.spec.total_cores, lc.spec))
    server.resolve([lc.demand(load, alloc)])
    baseline_power = server.telemetry.power_fraction_of_tdp
    power_gain = result.mean_power_fraction / max(1e-9, baseline_power)
    return emu_gain / power_gain


def main() -> None:
    from ..analysis.tables import render_load_series_table
    sweeps = run_fig6(lc_names=("websearch",))
    sweep = sweeps["websearch"]
    for metric in FIG6_METRICS:
        series = {be: metric_fraction_series(sweep, be, metric)
                  for be in sweep.results}
        print(render_load_series_table(
            series, sweep.loads, title=f"websearch {metric}"))
        print()


if __name__ == "__main__":
    main()
