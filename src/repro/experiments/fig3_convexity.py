"""Figure 3: websearch performance is convex in cores x LLC.

The paper characterizes websearch offline and finds that its maximum
load under the SLO is a convex function of the cores and cache it is
given — the property that guarantees the core & memory subcontroller's
one-dimension-at-a-time gradient descent converges to a global optimum
(§4.3).  This experiment regenerates the surface: for a grid of
(cores %, LLC %) allocations, the highest load at which tail latency
still meets the SLO.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..hardware.server import Server
from ..hardware.spec import MachineSpec, default_machine_spec
from ..sim.actuators import LC_COS
from ..workloads.base import Allocation, spread_cores
from ..workloads.latency_critical import (LatencyCriticalWorkload,
                                          make_lc_workload)


@dataclass
class ConvexitySurface:
    """Max load under SLO over a (cores, ways) grid."""

    lc_name: str
    core_counts: List[int]
    way_counts: List[int]
    max_load: np.ndarray  # shape (len(core_counts), len(way_counts))

    def core_slice(self, way_index: int) -> np.ndarray:
        return self.max_load[:, way_index]

    def way_slice(self, core_index: int) -> np.ndarray:
        return self.max_load[core_index, :]

    def is_monotone_nondecreasing(self, tolerance: float = 1e-6) -> bool:
        """More resources never reduce the achievable load."""
        rows_ok = bool(np.all(np.diff(self.max_load, axis=0) >= -tolerance))
        cols_ok = bool(np.all(np.diff(self.max_load, axis=1) >= -tolerance))
        return rows_ok and cols_ok

    def has_diminishing_returns(self, axis: int = 0,
                                tolerance: float = 0.05) -> bool:
        """Concavity along an axis (the "convex performance function" of
        the paper means gradient descent over resource *grants* sees
        diminishing marginal gains — no local optima)."""
        diffs = np.diff(self.max_load, axis=axis)
        second = np.diff(diffs, axis=axis)
        return bool(np.mean(second <= tolerance) >= 0.9)


def max_load_under_slo(lc: LatencyCriticalWorkload, cores: int, ways: int,
                       spec: Optional[MachineSpec] = None,
                       slo_fraction: float = 1.0,
                       tolerance: float = 1e-3) -> float:
    """Highest load with tail <= slo_fraction * SLO at this allocation."""
    spec = spec or lc.spec
    if not 1 <= cores <= spec.total_cores:
        raise ValueError("core count out of range")
    if not 1 <= ways <= spec.socket.llc_ways:
        raise ValueError("way count out of range")

    def tail_fraction(load: float) -> float:
        server = Server(spec)
        for cat in server.cat.values():
            cat.set_partition(LC_COS, ways)
        alloc = Allocation(cores_by_socket=spread_cores(cores, spec),
                           cache_cos=LC_COS)
        usages = server.resolve([lc.demand(load, alloc)])
        tail = lc.tail_latency_ms(
            load, usages[lc.name],
            link_utilization=server.telemetry.link_utilization)
        return lc.slo_fraction(tail)

    if tail_fraction(0.0) > slo_fraction:
        return 0.0
    lo, hi = 0.0, 1.0
    if tail_fraction(1.0) <= slo_fraction:
        return 1.0
    while hi - lo > tolerance:
        mid = (lo + hi) / 2.0
        if tail_fraction(mid) > slo_fraction:
            hi = mid
        else:
            lo = mid
    return lo


def run_fig3(lc_name: str = "websearch",
             core_fractions: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 1.0),
             way_fractions: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 1.0),
             spec: Optional[MachineSpec] = None) -> ConvexitySurface:
    """Compute the Figure 3 surface."""
    spec = spec or default_machine_spec()
    lc = make_lc_workload(lc_name, spec)
    core_counts = sorted({max(1, round(f * spec.total_cores))
                          for f in core_fractions})
    way_counts = sorted({max(1, round(f * spec.socket.llc_ways))
                         for f in way_fractions})
    surface = np.zeros((len(core_counts), len(way_counts)))
    for i, cores in enumerate(core_counts):
        for j, ways in enumerate(way_counts):
            surface[i, j] = max_load_under_slo(lc, cores, ways, spec)
    return ConvexitySurface(lc_name=lc_name, core_counts=core_counts,
                            way_counts=way_counts, max_load=surface)


def main() -> None:
    surface = run_fig3()
    print(f"Max load under SLO — {surface.lc_name}")
    header = "cores\\ways " + " ".join(f"{w:>5d}" for w in surface.way_counts)
    print(header)
    for i, cores in enumerate(surface.core_counts):
        row = " ".join(f"{surface.max_load[i, j] * 100:>4.0f}%"
                       for j in range(len(surface.way_counts)))
        print(f"{cores:>10d} {row}")
    print("monotone:", surface.is_monotone_nondecreasing())


if __name__ == "__main__":
    main()
