"""Parallel sweep runner: fan independent simulation points across cores.

Every figure of the evaluation is a *sweep* — the same build → warm up →
measure loop repeated over loads, BE tasks, ablation arms, or cluster
configurations, with no data dependencies between points.
:func:`run_sweep` fans such points across a ``ProcessPoolExecutor``
(results come back in submission order) and degrades gracefully to a
serial loop when only one CPU is available, when the pool cannot be
created (restricted sandboxes), or when ``processes=1`` is requested.

The worker count defaults to ``min(len(points), cpu_count)`` and can be
pinned globally through the ``REPRO_JOBS`` environment variable (the CLI
exposes it as ``--jobs``); ``REPRO_JOBS=1`` forces serial execution,
which is also the right setting inside pytest on single-core CI runners.

Offline profiling memoization
-----------------------------

Heracles needs one offline DRAM-bandwidth model per (LC workload,
machine) pair, and a sweep would otherwise re-profile it at every point
— in every worker process.  :func:`memoized_dram_model` caches the
profile per process and, more importantly, lets the parent profile once
and ship the model to the workers as an argument (``repro.experiments.
common.colocation_sweep`` does exactly that), so a 60-point sweep pays
for one profiling run instead of 60.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.dram_model import LcDramBandwidthModel, profile_lc_dram_model
from ..hardware.spec import MachineSpec, default_machine_spec

#: Environment variable that pins the worker count (0/unset = auto).
JOBS_ENV = "REPRO_JOBS"

_MODEL_CACHE: Dict[Tuple[str, MachineSpec], LcDramBandwidthModel] = {}


def default_jobs(points: int) -> int:
    """Worker count for a sweep of ``points`` independent tasks.

    ``REPRO_JOBS`` pins the count; ``0`` (like unset) means auto — the
    historical behaviour of forcing serial execution for ``0``
    contradicted the documented contract.  Negative pins are rejected
    loudly instead of being silently clamped to serial; non-numeric
    values are ignored (auto).
    """
    env = os.environ.get(JOBS_ENV, "").strip()
    if env:
        try:
            pinned = int(env)
        except ValueError:
            pinned = None
        if pinned is not None:
            if pinned < 0:
                raise ValueError(
                    f"{JOBS_ENV}={env!r}: worker count must be >= 0 "
                    f"(0 or unset = auto)")
            if pinned > 0:
                return pinned
    return max(1, min(points, os.cpu_count() or 1))


def memoized_dram_model(lc_name: str,
                        spec: Optional[MachineSpec] = None
                        ) -> LcDramBandwidthModel:
    """Process-local cache of the offline LC DRAM-bandwidth profile.

    The profile is a pure function of (workload, machine spec); both
    are hashable frozen dataclasses, so one profiling run serves every
    sweep point that shares them.
    """
    from ..workloads.latency_critical import make_lc_workload
    spec = spec or default_machine_spec()
    key = (lc_name, spec)
    model = _MODEL_CACHE.get(key)
    if model is None:
        model = profile_lc_dram_model(make_lc_workload(lc_name, spec))
        _MODEL_CACHE[key] = model
    return model


def clear_model_cache() -> None:
    """Drop memoized profiles (tests, or after spec monkey-patching)."""
    _MODEL_CACHE.clear()


def _call_point(payload: Tuple[Callable[..., Any], tuple, dict]) -> Any:
    fn, args, kwargs = payload
    return fn(*args, **kwargs)


def run_sweep(fn: Callable[..., Any],
              points: Sequence[Any],
              processes: Optional[int] = None,
              star: bool = False) -> List[Any]:
    """Evaluate ``fn`` over independent sweep points, possibly in parallel.

    Args:
        fn: a picklable (module-level) callable.
        points: one argument per point.  With ``star=False`` each point
            is passed as the single positional argument; with
            ``star=True`` each point must be a ``(args, kwargs)`` tuple
            which is splatted into ``fn``.
        processes: worker processes; ``None`` = :func:`default_jobs`,
            ``1`` (or a single-core machine) = serial in-process loop.

    Returns:
        Results in the order of ``points`` (unlike ``as_completed``).
    """
    points = list(points)
    if not points:
        return []
    if star:
        payloads = [(fn, tuple(args), dict(kwargs))
                    for args, kwargs in points]
    else:
        payloads = [(fn, (p,), {}) for p in points]
    workers = processes if processes is not None else default_jobs(len(points))
    workers = min(workers, len(points))
    if workers <= 1:
        return [_call_point(p) for p in payloads]
    try:
        pool = ProcessPoolExecutor(max_workers=workers)
    except (OSError, PermissionError, ValueError):
        # Pool creation can fail in restricted sandboxes; the sweep is
        # still correct serially, just slower.  Only *creation* errors
        # fall back — an exception raised by a sweep point itself must
        # propagate, not silently trigger a serial re-run.
        return [_call_point(p) for p in payloads]
    with pool:
        return list(pool.map(_call_point, payloads))
