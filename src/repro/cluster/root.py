"""Root of the websearch fan-out tree.

"The cluster root fans out each user request to all leaf servers and
combines their replies" (§5.3), so a request completes when its
*slowest* leaf replies: with tens of leaves, the mean request latency at
the root tracks a high percentile of the per-leaf latency distribution.
The root's SLO is defined on mean latency over 30-second windows
(µ/30s), with the target set at the baseline's latency when serving 90%
load without colocation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Sequence, Tuple


@dataclass
class RootSample:
    """Root-level latency at one instant."""

    t_s: float
    latency_ms: float


class RootAggregator:
    """Combines per-leaf tail estimates into root latency."""

    def __init__(self, window_s: float = 30.0,
                 straggler_weight: float = 0.85):
        """
        Args:
            window_s: SLO averaging window (30 s in the paper).
            straggler_weight: how strongly the root latency tracks the
                worst leaf: ``latency = w * max(leaf tails) + (1 - w) *
                mean(leaf tails)``.  With full fan-out every request
                waits for its slowest leaf, but reply combination starts
                early, so the root sits slightly below the strict max.
        """
        if window_s <= 0:
            raise ValueError("window must be positive")
        if not 0.0 <= straggler_weight <= 1.0:
            raise ValueError("straggler weight must be in [0, 1]")
        self.window_s = window_s
        self.straggler_weight = straggler_weight
        self._samples: Deque[RootSample] = deque()

    def combine(self, leaf_tails_ms: Sequence[float]) -> float:
        """Root request latency given each leaf's current tail."""
        if not leaf_tails_ms:
            raise ValueError("need at least one leaf")
        worst = max(leaf_tails_ms)
        mean = sum(leaf_tails_ms) / len(leaf_tails_ms)
        return (self.straggler_weight * worst
                + (1.0 - self.straggler_weight) * mean)

    def record(self, t_s: float, leaf_tails_ms: Sequence[float]) -> float:
        latency = self.combine(leaf_tails_ms)
        self._samples.append(RootSample(t_s=t_s, latency_ms=latency))
        while self._samples and self._samples[0].t_s < t_s - self.window_s:
            self._samples.popleft()
        return latency

    def windowed_latency_ms(self) -> float:
        """µ/30s: mean root latency over the SLO window."""
        if not self._samples:
            raise ValueError("no samples recorded yet")
        return sum(s.latency_ms for s in self._samples) / len(self._samples)
