#!/usr/bin/env python3
"""Probe a latency-critical service's interference sensitivity.

Reproduces the paper's §3 methodology for one workload: pin the service
to just enough cores for its SLO at each load, run a single-resource
antagonist on the remaining cores, and tabulate tail latency normalized
to the SLO.  The output is one block of Figure 1.

Run:
    python examples/interference_probe.py [websearch|ml_cluster|memkeyval]
"""

import sys

from repro.experiments.fig1_interference import run_fig1
from repro.workloads.traces import load_sweep


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "memkeyval"
    loads = load_sweep(points=10)  # coarser axis for a quick probe
    tables = run_fig1(lc_names=[workload], loads=loads)
    table = tables[workload]
    print(table.render())
    print()
    print("Legend: cells are tail latency as % of the SLO;")
    print(">100% = SLO violation, >300% saturated (as in the paper).")

    # Headline observations, programmatically checked:
    big = [table.cell("LLC (big)", loads[0]),
           table.cell("LLC (big)", loads[-1])]
    print(f"\nLLC (big) interference fades with load: "
          f"{big[0] * 100:.0f}% -> {big[1] * 100:.0f}%")
    brain_bad = sum(table.cell("brain", l) > 1.0 for l in loads)
    print(f"OS-only isolation (brain row) violates the SLO at "
          f"{brain_bad}/{len(loads)} load points")


if __name__ == "__main__":
    main()
