"""Tests for repro.hardware.spec: machine description and validation."""

import dataclasses

import pytest

from repro.hardware.spec import (MachineSpec, NicSpec, SocketSpec, TurboSpec,
                                 default_machine_spec)


class TestTurboSpec:
    def test_default_ordering(self):
        t = TurboSpec()
        assert t.min_ghz <= t.nominal_ghz <= t.all_core_turbo_ghz
        assert t.all_core_turbo_ghz <= t.max_turbo_ghz

    def test_ceiling_single_core_is_max_turbo(self):
        t = TurboSpec()
        assert t.turbo_ceiling_ghz(1, 18) == pytest.approx(t.max_turbo_ghz)

    def test_ceiling_all_cores_is_all_core_turbo(self):
        t = TurboSpec()
        assert t.turbo_ceiling_ghz(18, 18) == pytest.approx(
            t.all_core_turbo_ghz)

    def test_ceiling_monotone_in_active_cores(self):
        t = TurboSpec()
        values = [t.turbo_ceiling_ghz(n, 18) for n in range(1, 19)]
        assert values == sorted(values, reverse=True)

    def test_ceiling_zero_active_cores(self):
        t = TurboSpec()
        assert t.turbo_ceiling_ghz(0, 18) == pytest.approx(t.max_turbo_ghz)

    def test_ceiling_single_core_machine(self):
        t = TurboSpec()
        assert t.turbo_ceiling_ghz(1, 1) == pytest.approx(t.max_turbo_ghz)

    def test_clamp_to_range(self):
        t = TurboSpec()
        assert t.clamp_ghz(10.0) == pytest.approx(t.max_turbo_ghz)
        assert t.clamp_ghz(0.1) == pytest.approx(t.min_ghz)

    def test_clamp_quantizes_to_step(self):
        t = TurboSpec()
        clamped = t.clamp_ghz(2.349)
        assert clamped == pytest.approx(2.3)
        assert t.clamp_ghz(2.35) in (pytest.approx(2.3), pytest.approx(2.4))


class TestSocketSpec:
    def test_hyperthreads(self):
        s = SocketSpec(cores=18, threads_per_core=2)
        assert s.hyperthreads == 36

    def test_paper_llc_per_core(self):
        # 2.5 MB of LLC per core, per the paper's hardware description.
        s = SocketSpec()
        assert s.llc_mb / s.cores == pytest.approx(2.5)


class TestMachineSpec:
    def test_default_is_dual_socket(self):
        spec = default_machine_spec()
        assert spec.sockets == 2
        assert spec.total_cores == 36
        assert spec.total_threads == 72

    def test_totals(self):
        spec = default_machine_spec()
        assert spec.total_llc_mb == pytest.approx(90.0)
        assert spec.total_dram_bw_gbps == pytest.approx(120.0)
        assert spec.total_tdp_watts == pytest.approx(240.0)

    def test_default_validates(self):
        default_machine_spec().validate()

    def test_rejects_zero_sockets(self):
        spec = dataclasses.replace(default_machine_spec(), sockets=0)
        with pytest.raises(ValueError):
            spec.validate()

    def test_rejects_single_way_llc(self):
        bad_socket = dataclasses.replace(SocketSpec(), llc_ways=1)
        spec = dataclasses.replace(default_machine_spec(), socket=bad_socket)
        with pytest.raises(ValueError):
            spec.validate()

    def test_rejects_idle_above_tdp(self):
        bad_socket = dataclasses.replace(SocketSpec(), idle_watts=500.0)
        spec = dataclasses.replace(default_machine_spec(), socket=bad_socket)
        with pytest.raises(ValueError):
            spec.validate()

    def test_rejects_unordered_turbo(self):
        bad_turbo = dataclasses.replace(TurboSpec(), max_turbo_ghz=1.0)
        bad_socket = dataclasses.replace(SocketSpec(), turbo=bad_turbo)
        spec = dataclasses.replace(default_machine_spec(), socket=bad_socket)
        with pytest.raises(ValueError):
            spec.validate()

    def test_rejects_zero_link(self):
        spec = dataclasses.replace(default_machine_spec(),
                                   nic=NicSpec(link_gbps=0.0))
        with pytest.raises(ValueError):
            spec.validate()

    def test_custom_machine(self):
        spec = MachineSpec(sockets=1, socket=SocketSpec(cores=8))
        spec.validate()
        assert spec.total_cores == 8
